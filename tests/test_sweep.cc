/**
 * @file
 * Tests for the parallel sweep engine: serial (jobs = 1) and parallel
 * (jobs = 4) sweeps over the same points must produce byte-identical
 * stats dumps and RunResults, outcomes must come back in sweep-index
 * order, and the queue's LambdaEvent pool must keep allocations near
 * the in-flight peak rather than the scheduled count.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"

using namespace bctrl;

namespace {

/** Micro workloads x two safety models, small enough for a unit test. */
std::vector<SweepPoint>
identityPoints()
{
    std::vector<SweepPoint> points;
    for (const char *wl : {"uniform", "strided"}) {
        for (SafetyModel safety :
             {SafetyModel::atsOnlyIommu, SafetyModel::borderControlBcc}) {
            SweepPoint p;
            p.workload = wl;
            p.config.safety = safety;
            p.config.profile = GpuProfile::moderatelyThreaded;
            points.push_back(std::move(p));
        }
    }
    return points;
}

std::vector<SweepOutcome>
sweepWithJobs(const std::vector<SweepPoint> &points, unsigned jobs,
              bool capture_stats = true)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.captureStats = capture_stats;
    return runSweep(points, opts);
}

} // namespace

TEST(Sweep, EmptySweepYieldsNoOutcomes)
{
    EXPECT_TRUE(runSweep({}).empty());
    EXPECT_TRUE(sweepWithJobs({}, 4).empty());
}

TEST(Sweep, OutcomesComeBackInSweepIndexOrder)
{
    const std::vector<SweepPoint> points = identityPoints();
    const std::vector<SweepOutcome> outcomes =
        sweepWithJobs(points, 4, false);
    ASSERT_EQ(outcomes.size(), points.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].index, i);
        EXPECT_EQ(outcomes[i].workload, points[i].workload);
        EXPECT_GT(outcomes[i].hostEvents, 0u);
        EXPECT_GT(outcomes[i].result.runtimeTicks, 0u);
    }
}

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    setLogVerbose(false);
    const std::vector<SweepPoint> points = identityPoints();
    const std::vector<SweepOutcome> serial = sweepWithJobs(points, 1);
    const std::vector<SweepOutcome> parallel = sweepWithJobs(points, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("sweep index " + std::to_string(i));
        const SweepOutcome &s = serial[i];
        const SweepOutcome &p = parallel[i];
        EXPECT_EQ(s.result.runtimeTicks, p.result.runtimeTicks);
        EXPECT_EQ(s.result.gpuCycles, p.result.gpuCycles);
        EXPECT_EQ(s.result.memOps, p.result.memOps);
        EXPECT_EQ(s.result.borderRequests, p.result.borderRequests);
        EXPECT_EQ(s.result.bccHits, p.result.bccHits);
        EXPECT_EQ(s.result.bccMisses, p.result.bccMisses);
        EXPECT_EQ(s.result.violations, p.result.violations);
        EXPECT_EQ(s.result.pageFaults, p.result.pageFaults);
        EXPECT_EQ(s.hostEvents, p.hostEvents);
        // The full per-component stats dump is the strongest identity
        // check: every counter in the system, byte for byte.
        ASSERT_FALSE(s.statsDump.empty());
        EXPECT_EQ(s.statsDump, p.statsDump);
    }
}

TEST(Sweep, RepeatedParallelSweepsAreIdentical)
{
    setLogVerbose(false);
    std::vector<SweepPoint> points;
    SweepPoint p;
    p.workload = "strided";
    p.config.safety = SafetyModel::borderControlNoBcc;
    p.config.profile = GpuProfile::moderatelyThreaded;
    points.push_back(p);
    points.push_back(p);
    points.push_back(p);

    const std::vector<SweepOutcome> first = sweepWithJobs(points, 3);
    const std::vector<SweepOutcome> second = sweepWithJobs(points, 3);
    ASSERT_EQ(first.size(), 3u);
    // Identical points produce identical results, both across slots of
    // one sweep and across whole sweeps.
    for (const SweepOutcome &o : first) {
        EXPECT_EQ(o.statsDump, first[0].statsDump);
        EXPECT_EQ(o.result.runtimeTicks, first[0].result.runtimeTicks);
    }
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(second[i].statsDump, first[i].statsDump);
}

TEST(Sweep, PrepareHookRunsPerPointBeforeTheWorkload)
{
    std::vector<std::size_t> seen(3, static_cast<std::size_t>(-1));
    std::vector<SweepPoint> points;
    for (std::size_t i = 0; i < 3; ++i) {
        SweepPoint p;
        p.workload = "strided";
        p.config.safety = SafetyModel::atsOnlyIommu;
        p.config.profile = GpuProfile::moderatelyThreaded;
        // Each hook writes only its own slot: race-free by index.
        p.prepare = [&seen](System &, std::size_t index) {
            seen[index] = index;
        };
        points.push_back(std::move(p));
    }
    sweepWithJobs(points, 3, false);
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Sweep, EffectiveJobsResolvesZeroToHardwareConcurrency)
{
    SweepOptions opts;
    opts.jobs = 0;
    EXPECT_GE(SweepEngine(opts).effectiveJobs(), 1u);
    opts.jobs = 7;
    EXPECT_EQ(SweepEngine(opts).effectiveJobs(), 7u);
}

// ---------------------------------------------------------------------
// Satellite: geomean hardening and locale-independent formatting.

TEST(BenchHelpers, GeomeanOfEmptyVectorIsZeroNotNaN)
{
    const double g = bench::geomeanOverhead({});
    EXPECT_EQ(g, 0.0);
    EXPECT_FALSE(std::isnan(g));
}

TEST(BenchHelpers, GeomeanSkipsNonFiniteAndImpossibleEntries)
{
    setLogVerbose(false);
    const double clean = bench::geomeanOverhead({0.10, 0.20});
    // NaN, infinity, and <= -100% entries must not poison the mean.
    const double dirty = bench::geomeanOverhead(
        {0.10, std::nan(""), -1.5, std::numeric_limits<double>::infinity(),
         0.20});
    EXPECT_TRUE(std::isfinite(dirty));
    EXPECT_DOUBLE_EQ(clean, dirty);
}

TEST(BenchHelpers, PctIsLocaleIndependent)
{
    EXPECT_EQ(bench::pct(0.1234), "12.34%");
    EXPECT_EQ(bench::pct(0.0), "0.00%");
    // A comma-decimal locale must not leak into the output. Not every
    // image ships de_DE; skip the locale flip if unavailable.
    const char *applied = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
    if (!applied)
        applied = std::setlocale(LC_NUMERIC, "de_DE");
    EXPECT_EQ(bench::pct(0.1234), "12.34%");
    EXPECT_EQ(bench::formatFixed(3.5, 1), "3.5");
    EXPECT_EQ(bench::formatDouble(2.25), "2.25");
    if (applied)
        std::setlocale(LC_NUMERIC, "C");
}

// ---------------------------------------------------------------------
// Satellite: the LambdaEvent free-list pool.

TEST(LambdaPool, SequentialLambdasReuseOneAllocation)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int i = 0; i < 1000; ++i) {
        eq.scheduleLambda([&fired] { ++fired; }, eq.curTick() + 1);
        eq.run();
    }
    EXPECT_EQ(fired, 1000u);
    // One lambda in flight at a time: the pool should satisfy all but
    // the first schedule without touching the heap.
    EXPECT_EQ(eq.lambdaAllocations(), 1u);
    EXPECT_EQ(eq.lambdaPoolSize(), 1u);
}

TEST(LambdaPool, ChainedLambdasStayNearThePeak)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // Each lambda schedules the next from inside process(): the
    // running event is not yet recycled when the next one is armed.
    std::function<void(std::uint64_t)> chain =
        [&](std::uint64_t remaining) {
            ++fired;
            if (remaining > 0)
                eq.scheduleLambda([&chain, remaining] {
                    chain(remaining - 1);
                }, eq.curTick() + 1);
        };
    eq.scheduleLambda([&chain] { chain(999); }, 1);
    eq.run();
    EXPECT_EQ(fired, 1000u);
    EXPECT_LE(eq.lambdaAllocations(), 2u);
}

TEST(LambdaPool, PoolIsBoundedPastTheHighWaterMark)
{
    EventQueue eq;
    constexpr std::uint64_t batch = 5000; // > the 4096 pool cap
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < batch; ++i)
        eq.scheduleLambda([&fired] { ++fired; }, 10);
    eq.run();
    EXPECT_EQ(fired, batch);
    EXPECT_EQ(eq.lambdaAllocations(), batch);
    EXPECT_LE(eq.lambdaPoolSize(), 4096u);

    // A second burst draws down the pool before allocating anew: only
    // the overflow past the pooled 4096 costs fresh allocations.
    for (std::uint64_t i = 0; i < batch; ++i)
        eq.scheduleLambda([&fired] { ++fired; }, eq.curTick() + 10);
    eq.run();
    EXPECT_EQ(fired, 2 * batch);
    EXPECT_EQ(eq.lambdaAllocations(), batch + (batch - 4096));
}

TEST(LambdaPool, SquashedLambdaEntriesAreRecycledNotLeaked)
{
    // Descheduling squashes heap entries; when the stale entry is
    // popped the queue must still recycle the owned lambda. Covered
    // indirectly: run a workload-sized burst where every lambda fires,
    // then check pool accounting stays consistent.
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 100; ++i)
            eq.scheduleLambda([&fired] { ++fired; },
                              eq.curTick() + 1 + i % 7);
        eq.run();
    }
    EXPECT_EQ(fired, 400u);
    // Pool holds everything that was ever simultaneously in flight.
    EXPECT_EQ(eq.lambdaPoolSize(), eq.lambdaAllocations());
    EXPECT_LE(eq.lambdaAllocations(), 100u);
}
