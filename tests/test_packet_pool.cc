/**
 * @file
 * Unit tests for the PacketPool: field-reset on reuse, heap allocations
 * bounded by the in-flight peak, callback state dropped on release,
 * free-list trimming, and (in sanitized builds) poisoning of parked
 * slots.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/packet_pool.hh"

// Mirror the pool's own ASan detection so the poisoning test only runs
// where the pool actually poisons.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BCTRL_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define BCTRL_TEST_ASAN 1
#endif

#ifdef BCTRL_TEST_ASAN
#include <sanitizer/asan_interface.h>
#endif

using namespace bctrl;

TEST(PacketPool, ReuseResetsEveryField)
{
    PacketPool pool;
    Packet *raw = nullptr;
    {
        PacketPtr pkt = pool.make(MemCmd::Write, 0x1000, 64,
                                  Requestor::accelerator, 7);
        raw = pkt.get();
        // Dirty every field a response path can touch.
        pkt->isVirtual = true;
        pkt->vaddr = 0xdead;
        pkt->issuedAt = 123;
        pkt->denied = true;
        pkt->needsWritable = true;
        pkt->grantedWritable = true;
        pkt->responded = true;
        pkt->responseGateTick = 456;
        pkt->onResponse = [](Packet &) {};
    }
    ASSERT_EQ(pool.poolSize(), 1u);

    PacketPtr pkt = pool.make(MemCmd::Read, 0x2000, 8,
                              Requestor::trustedHw);
    // Same storage, indistinguishable from a fresh packet.
    EXPECT_EQ(pkt.get(), raw);
    EXPECT_EQ(pkt->cmd, MemCmd::Read);
    EXPECT_EQ(pkt->paddr, 0x2000u);
    EXPECT_EQ(pkt->vaddr, 0u);
    EXPECT_FALSE(pkt->isVirtual);
    EXPECT_EQ(pkt->size, 8u);
    EXPECT_EQ(pkt->asid, 0u);
    EXPECT_EQ(pkt->requestor, Requestor::trustedHw);
    EXPECT_EQ(pkt->issuedAt, 0u);
    EXPECT_FALSE(pkt->denied);
    EXPECT_FALSE(pkt->needsWritable);
    EXPECT_FALSE(pkt->grantedWritable);
    EXPECT_FALSE(pkt->responded);
    EXPECT_EQ(pkt->responseGateTick, 0u);
    EXPECT_FALSE(pkt->onResponse);
    EXPECT_EQ(pool.heapAllocations(), 1u);
}

TEST(PacketPool, HeapAllocationsBoundedByInFlightPeak)
{
    PacketPool pool;
    constexpr unsigned burst = 100;
    for (int round = 0; round < 3; ++round) {
        std::vector<PacketPtr> live;
        for (unsigned i = 0; i < burst; ++i)
            live.push_back(pool.make(MemCmd::Read, i * 64, 64,
                                     Requestor::accelerator));
        EXPECT_EQ(pool.inFlight(), burst);
    }
    // Three bursts of 100, but the heap only ever saw the peak.
    EXPECT_EQ(pool.heapAllocations(), burst);
    EXPECT_EQ(pool.peakInFlight(), burst);
    EXPECT_EQ(pool.inFlight(), 0u);
    EXPECT_EQ(pool.poolSize(), burst);
}

TEST(PacketPool, CopySharesOneReference)
{
    PacketPool pool;
    PacketPtr a = pool.make(MemCmd::Read, 0, 64, Requestor::cpu);
    EXPECT_EQ(a.useCount(), 1u);
    {
        PacketPtr b = a;
        EXPECT_EQ(a.useCount(), 2u);
        EXPECT_EQ(pool.inFlight(), 1u); // one packet, two owners
    }
    EXPECT_EQ(a.useCount(), 1u);
    a = nullptr;
    EXPECT_EQ(pool.inFlight(), 0u);
    EXPECT_EQ(pool.poolSize(), 1u);
}

TEST(PacketPool, ReleaseDropsCapturedCallbackState)
{
    PacketPool pool;
    auto token = std::make_shared<int>(42);
    {
        PacketPtr pkt = pool.make(MemCmd::Read, 0, 64, Requestor::cpu);
        pkt->onResponse = [token](Packet &) {};
        EXPECT_EQ(token.use_count(), 2);
    }
    // The parked packet must not keep the capture alive.
    EXPECT_EQ(token.use_count(), 1);
}

TEST(PacketPool, FreeListTrimsAtCap)
{
    PacketPool pool;
    const std::size_t count = PacketPool::maxPoolSize + 32;
    {
        std::vector<PacketPtr> live;
        live.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            live.push_back(
                pool.make(MemCmd::Read, i * 64, 64, Requestor::cpu));
    }
    EXPECT_EQ(pool.heapAllocations(), count);
    EXPECT_EQ(pool.poolSize(), PacketPool::maxPoolSize);
}

TEST(PacketPool, AllocPacketFallsBackWithoutPool)
{
    // Components constructed without a pool (unit tests) still work.
    PacketPtr pkt =
        allocPacket(nullptr, MemCmd::Write, 0x40, 8, Requestor::cpu, 3);
    EXPECT_EQ(pkt->pool, nullptr);
    EXPECT_EQ(pkt->paddr, 0x40u);
    EXPECT_EQ(pkt->asid, 3u);
}

TEST(PacketPool, SpillCounterTracksOversizedCallbacks)
{
    PacketPool pool;
    EXPECT_EQ(pool.callbackSpills(), 0u);
    pool.noteCallbackSpill();
    pool.noteCallbackSpill();
    EXPECT_EQ(pool.callbackSpills(), 2u);
}

#ifdef BCTRL_TEST_ASAN
TEST(PacketPool, ParkedSlotsArePoisonedUnderAsan)
{
    PacketPool pool;
    Packet *raw = nullptr;
    {
        PacketPtr pkt = pool.make(MemCmd::Read, 0, 64, Requestor::cpu);
        raw = pkt.get();
        EXPECT_FALSE(__asan_address_is_poisoned(raw));
    }
    // Parked: the slot is poisoned, so a use-after-release traps.
    EXPECT_TRUE(__asan_address_is_poisoned(raw));
    PacketPtr again = pool.make(MemCmd::Read, 0, 64, Requestor::cpu);
    EXPECT_EQ(again.get(), raw);
    EXPECT_FALSE(__asan_address_is_poisoned(raw));
}
#endif
