/**
 * @file
 * Unit tests for the cache tag store (set indexing, LRU, victims).
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/tags.hh"

using namespace bctrl;

TEST(TagStore, Geometry)
{
    TagStore tags(16 * 1024, 4, 128);
    EXPECT_EQ(tags.numSets(), 32u);
    EXPECT_EQ(tags.assoc(), 4u);
    EXPECT_EQ(tags.blockSize(), 128u);
}

TEST(TagStore, MissOnEmpty)
{
    TagStore tags(4 * 1024, 4, 128);
    EXPECT_EQ(tags.findBlock(0x1000), nullptr);
}

TEST(TagStore, InsertThenFind)
{
    TagStore tags(4 * 1024, 4, 128);
    CacheBlock *victim = tags.findVictim(0x1040);
    tags.insert(victim, 0x1040);
    CacheBlock *blk = tags.findBlock(0x1000);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->addr, 0x1000u); // block aligned
    EXPECT_FALSE(blk->dirty);
    EXPECT_FALSE(blk->writable);
}

TEST(TagStore, SubBlockOffsetsShareTheBlock)
{
    TagStore tags(4 * 1024, 4, 128);
    tags.insert(tags.findVictim(0x2000), 0x2000);
    EXPECT_NE(tags.findBlock(0x2000), nullptr);
    EXPECT_NE(tags.findBlock(0x207f), nullptr);
    EXPECT_EQ(tags.findBlock(0x2080), nullptr);
}

TEST(TagStore, VictimPrefersInvalidSlots)
{
    TagStore tags(1024, 2, 128); // 4 sets x 2 ways
    CacheBlock *v1 = tags.findVictim(0x0);
    tags.insert(v1, 0x0);
    CacheBlock *v2 = tags.findVictim(0x0);
    EXPECT_NE(v1, v2); // second way of the set is still invalid
}

TEST(TagStore, LruVictimWhenSetFull)
{
    TagStore tags(1024, 2, 128); // 4 sets x 2 ways
    // On an empty cache, findVictim returns the first slot of the
    // address's set, which identifies set membership without knowing
    // the hash function.
    const CacheBlock *home = tags.findVictim(0x0);
    std::vector<Addr> same_set{0x0};
    for (Addr a = 128; same_set.size() < 3 && a < (1 << 20); a += 128) {
        if (tags.findVictim(a) == home)
            same_set.push_back(a);
    }
    ASSERT_EQ(same_set.size(), 3u);

    tags.insert(tags.findVictim(same_set[0]), same_set[0]);
    tags.insert(tags.findVictim(same_set[1]), same_set[1]);
    tags.accessBlock(same_set[0]); // becomes MRU
    tags.insert(tags.findVictim(same_set[2]), same_set[2]);

    EXPECT_NE(tags.findBlock(same_set[0]), nullptr); // MRU kept
    EXPECT_EQ(tags.findBlock(same_set[1]), nullptr); // LRU evicted
    EXPECT_NE(tags.findBlock(same_set[2]), nullptr);
}

TEST(TagStore, InvalidateClearsState)
{
    TagStore tags(1024, 2, 128);
    CacheBlock *blk = tags.findVictim(0x80);
    tags.insert(blk, 0x80);
    blk->dirty = true;
    blk->writable = true;
    tags.invalidate(blk);
    EXPECT_FALSE(blk->valid);
    EXPECT_FALSE(blk->dirty);
    EXPECT_FALSE(blk->writable);
    EXPECT_EQ(tags.findBlock(0x80), nullptr);
}

TEST(TagStore, ForEachBlockVisitsOnlyValid)
{
    TagStore tags(2048, 4, 128);
    for (Addr a = 0; a < 5 * 128; a += 128)
        tags.insert(tags.findVictim(a), a);
    unsigned count = 0;
    tags.forEachBlock([&](CacheBlock &) { ++count; });
    EXPECT_EQ(count, 5u);
}

TEST(TagStore, HashedIndexSpreadsPageStridedStreams)
{
    // The regression the hash exists for: blocks at 4 KB stride must
    // not all land in the same set.
    TagStore tags(16 * 1024, 4, 128); // 32 sets
    std::set<const CacheBlock *> victims;
    unsigned conflicts = 0;
    for (unsigned i = 0; i < 32; ++i) {
        Addr addr = Addr(i) * 4096; // same line offset in every page
        CacheBlock *v = tags.findVictim(addr);
        if (v->valid)
            ++conflicts;
        tags.insert(v, addr);
    }
    // With naive modulo indexing all 32 blocks hit one 4-way set and
    // 28 insertions would evict; hashing must keep evictions low.
    EXPECT_LE(conflicts, 8u);
}

TEST(TagStore, CapacityHoldsExactlyItsBlocks)
{
    TagStore tags(4096, 4, 128); // 32 blocks
    for (Addr a = 0; a < 32 * 128; a += 128)
        tags.insert(tags.findVictim(a), a);
    unsigned resident = 0;
    for (Addr a = 0; a < 32 * 128; a += 128) {
        if (tags.findBlock(a))
            ++resident;
    }
    // Hashing may cause a few conflicts, but most blocks must fit.
    EXPECT_GE(resident, 24u);
    EXPECT_LE(resident, 32u);
}
