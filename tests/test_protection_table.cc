/**
 * @file
 * Unit tests for the Protection Table: 2-bit-per-page encoding, lazy
 * merge semantics, zeroing, bounds, and the paper's storage-overhead
 * claims (§3.1.1, §5.2.3).
 */

#include <gtest/gtest.h>

#include "bc/protection_table.hh"

using namespace bctrl;

namespace {

struct ProtectionTableTest : public ::testing::Test {
    BackingStore store{64ULL * 1024 * 1024}; // 64 MB => 16384 pages
    Addr base = 0x100000;
};

} // namespace

TEST_F(ProtectionTableTest, StartsWithNoPermissions)
{
    ProtectionTable table(store, base, store.numPages());
    for (Addr ppn : {Addr(0), Addr(1), Addr(100), Addr(16383)})
        EXPECT_TRUE(table.getPerms(ppn).none());
}

TEST_F(ProtectionTableTest, SetAndGetAllFourEncodings)
{
    ProtectionTable table(store, base, store.numPages());
    table.setPerms(10, Perms::noAccess());
    table.setPerms(11, Perms::readOnly());
    table.setPerms(12, Perms{false, true});
    table.setPerms(13, Perms::readWrite());
    EXPECT_TRUE(table.getPerms(10).none());
    EXPECT_EQ(table.getPerms(11), Perms::readOnly());
    EXPECT_EQ(table.getPerms(12), (Perms{false, true}));
    EXPECT_EQ(table.getPerms(13), Perms::readWrite());
}

TEST_F(ProtectionTableTest, NeighboursInSameByteAreIndependent)
{
    ProtectionTable table(store, base, store.numPages());
    // PPNs 0..3 share one byte (2 bits each).
    table.setPerms(0, Perms::readWrite());
    table.setPerms(1, Perms::readOnly());
    table.setPerms(2, Perms::noAccess());
    table.setPerms(3, Perms::readWrite());
    EXPECT_EQ(table.getPerms(0), Perms::readWrite());
    EXPECT_EQ(table.getPerms(1), Perms::readOnly());
    EXPECT_TRUE(table.getPerms(2).none());
    EXPECT_EQ(table.getPerms(3), Perms::readWrite());
    // Overwriting one neighbour leaves the others alone.
    table.setPerms(1, Perms::noAccess());
    EXPECT_EQ(table.getPerms(0), Perms::readWrite());
    EXPECT_EQ(table.getPerms(3), Perms::readWrite());
}

TEST_F(ProtectionTableTest, MergeIsUnion)
{
    ProtectionTable table(store, base, store.numPages());
    EXPECT_EQ(table.mergePerms(5, Perms::readOnly()), Perms::readOnly());
    // A second process with write-only access: union accumulates
    // (multiprocess accelerators, §3.3).
    EXPECT_EQ(table.mergePerms(5, Perms{false, true}),
              Perms::readWrite());
    // Merging fewer permissions never removes any.
    EXPECT_EQ(table.mergePerms(5, Perms::noAccess()),
              Perms::readWrite());
}

TEST_F(ProtectionTableTest, ZeroAllRevokesEverything)
{
    ProtectionTable table(store, base, store.numPages());
    for (Addr ppn = 0; ppn < 64; ++ppn)
        table.setPerms(ppn, Perms::readWrite());
    table.zeroAll();
    for (Addr ppn = 0; ppn < 64; ++ppn)
        EXPECT_TRUE(table.getPerms(ppn).none());
}

TEST_F(ProtectionTableTest, SizeMatchesTwoBitsPerPage)
{
    ProtectionTable table(store, base, store.numPages());
    EXPECT_EQ(table.sizeBytes(), store.numPages() / 4);
}

TEST_F(ProtectionTableTest, PaperStorageOverheadFigures)
{
    // §3.1.1: ~0.006% of the physical address space per accelerator.
    ProtectionTable table(store, base, store.numPages());
    EXPECT_NEAR(table.overheadFraction(), 0.00006103, 1e-7);

    // A 16 GB system needs a 1 MB table (paper's example)...
    const Addr ppns_16gb = pageNumber(16ULL << 30);
    BackingStore big(1 << 20);
    ProtectionTable sized(big, 0, std::min<Addr>(ppns_16gb, 4 << 20));
    EXPECT_EQ(sized.sizeBytes(), 1ULL << 20);
}

TEST_F(ProtectionTableTest, Table3SizeFor3GbSystem)
{
    // Table 3 lists a 196 KB Protection Table: 3 GB of physical memory
    // at 2 bits per 4 KB page = 196,608 bytes.
    const Addr ppns = pageNumber(3ULL << 30);
    BackingStore mem(1 << 20);
    ProtectionTable table(mem, 0, ppns);
    EXPECT_EQ(table.sizeBytes(), 196'608u);
}

TEST_F(ProtectionTableTest, EntryAddrMapsFourPagesPerByte)
{
    ProtectionTable table(store, base, store.numPages());
    EXPECT_EQ(table.entryAddr(0), base);
    EXPECT_EQ(table.entryAddr(3), base);
    EXPECT_EQ(table.entryAddr(4), base + 1);
    EXPECT_EQ(table.entryAddr(4095), base + 1023);
}

TEST_F(ProtectionTableTest, BoundsRegisterChecks)
{
    ProtectionTable table(store, base, 100);
    EXPECT_TRUE(table.inBounds(99));
    EXPECT_FALSE(table.inBounds(100));
    EXPECT_DEATH(table.getPerms(100), "out of");
    EXPECT_DEATH(table.setPerms(200, Perms::readWrite()), "out of");
}

TEST_F(ProtectionTableTest, TableLivesInSimulatedMemory)
{
    ProtectionTable table(store, base, store.numPages());
    table.setPerms(0, Perms::readWrite());
    // The bits are observable at the table's physical address: a
    // (trusted) agent reading memory sees them.
    EXPECT_EQ(store.read8(base) & 0x3, 0x3);
}
