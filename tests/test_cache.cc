/**
 * @file
 * Unit tests for the non-blocking cache: hits, misses, MSHR
 * coalescing, write policies, eviction writebacks, flushes, and the
 * write-upgrade path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "mem/dram.hh"

using namespace bctrl;

namespace {

/** Records every packet it receives, grants fills per a policy, and
 * responds with a fixed latency. */
class RecordingMemory : public MemDevice
{
  public:
    RecordingMemory(EventQueue &eq, Tick latency = 10'000)
        : eq_(eq), latency_(latency)
    {}

    void
    access(const PacketPtr &pkt) override
    {
        log.push_back(pkt);
        if (pkt->isRead())
            pkt->grantedWritable = pkt->needsWritable;
        respondAt(eq_, pkt, eq_.curTick() + latency_);
    }

    unsigned
    count(MemCmd cmd) const
    {
        unsigned n = 0;
        for (const PacketPtr &p : log) {
            if (p->cmd == cmd)
                ++n;
        }
        return n;
    }

    std::vector<PacketPtr> log;

  private:
    EventQueue &eq_;
    Tick latency_;
};

struct CacheTest : public ::testing::Test {
    EventQueue eq;
    RecordingMemory mem{eq};

    Cache::Params
    smallParams(bool write_through = false)
    {
        Cache::Params p;
        p.size = 4 * 1024;
        p.assoc = 4;
        p.hitLatency = 4;
        p.mshrs = 4;
        p.banks = 1;
        p.writeThrough = write_through;
        p.clockPeriod = 1'000;
        p.side = Requestor::accelerator;
        return p;
    }

    /** Issue a demand access and return completion tick (run to idle). */
    Tick
    doAccess(Cache &c, MemCmd cmd, Addr addr, unsigned size = 64)
    {
        Tick done = 0;
        auto pkt = Packet::make(cmd, addr, size, Requestor::accelerator);
        pkt->issuedAt = eq.curTick();
        pkt->onResponse = [&](Packet &) { done = eq.curTick(); };
        c.access(pkt);
        eq.run();
        return done;
    }
};

} // namespace

TEST_F(CacheTest, ReadMissFetchesWholeBlockThenHits)
{
    Cache c(eq, "c", smallParams(), mem);
    doAccess(c, MemCmd::Read, 0x1000);
    EXPECT_EQ(c.demandMisses(), 1u);
    ASSERT_EQ(mem.log.size(), 1u);
    EXPECT_EQ(mem.log[0]->paddr, 0x1000u);
    EXPECT_EQ(mem.log[0]->size, blockSize);

    doAccess(c, MemCmd::Read, 0x1040); // other half of the line
    EXPECT_EQ(c.demandHits(), 1u);
    EXPECT_EQ(mem.log.size(), 1u); // no new memory traffic
}

TEST_F(CacheTest, HitIsFasterThanMiss)
{
    Cache c(eq, "c", smallParams(), mem);
    Tick start = eq.curTick();
    Tick miss_done = doAccess(c, MemCmd::Read, 0x2000);
    Tick miss_lat = miss_done - start;
    start = eq.curTick();
    Tick hit_done = doAccess(c, MemCmd::Read, 0x2000);
    Tick hit_lat = hit_done - start;
    EXPECT_LT(hit_lat, miss_lat);
    EXPECT_GE(hit_lat, 4u * 1'000u); // at least the hit latency
}

TEST_F(CacheTest, MshrCoalescesSameBlockMisses)
{
    Cache c(eq, "c", smallParams(), mem);
    unsigned responses = 0;
    for (int i = 0; i < 3; ++i) {
        auto pkt = Packet::make(MemCmd::Read, 0x3000 + i * 8, 8,
                                Requestor::accelerator);
        pkt->onResponse = [&](Packet &) { ++responses; };
        c.access(pkt);
    }
    eq.run();
    EXPECT_EQ(responses, 3u);
    EXPECT_EQ(mem.log.size(), 1u); // one fill serves all three
}

TEST_F(CacheTest, WriteMissInWritebackCacheFetchesExclusive)
{
    Cache c(eq, "c", smallParams(), mem);
    doAccess(c, MemCmd::Write, 0x4000);
    ASSERT_EQ(mem.log.size(), 1u);
    EXPECT_TRUE(mem.log[0]->isRead());
    EXPECT_TRUE(mem.log[0]->needsWritable);
    // Subsequent write hits in place, no traffic.
    doAccess(c, MemCmd::Write, 0x4020);
    EXPECT_EQ(mem.log.size(), 1u);
}

TEST_F(CacheTest, DirtyEvictionEmitsWriteback)
{
    Cache::Params p = smallParams();
    p.size = 2 * 128; // two blocks, 1 way each... keep assoc=1
    p.assoc = 1;
    Cache c(eq, "c", p, mem);
    doAccess(c, MemCmd::Write, 0x0);
    // Find a conflicting address: with two 1-way sets, writing many
    // distinct blocks forces evictions.
    for (Addr a = 128; a < 128 * 8; a += 128)
        doAccess(c, MemCmd::Write, a);
    EXPECT_GT(mem.count(MemCmd::Writeback), 0u);
}

TEST_F(CacheTest, CleanEvictionIsSilent)
{
    Cache::Params p = smallParams();
    p.size = 2 * 128;
    p.assoc = 1;
    Cache c(eq, "c", p, mem);
    for (Addr a = 0; a < 128 * 8; a += 128)
        doAccess(c, MemCmd::Read, a);
    EXPECT_EQ(mem.count(MemCmd::Writeback), 0u);
}

TEST_F(CacheTest, WriteThroughForwardsEveryWrite)
{
    Cache c(eq, "c", smallParams(true), mem);
    doAccess(c, MemCmd::Read, 0x5000); // allocate the line
    mem.log.clear();
    doAccess(c, MemCmd::Write, 0x5000, 32);
    doAccess(c, MemCmd::Write, 0x5020, 32);
    EXPECT_EQ(mem.count(MemCmd::Write), 2u);
    // Write-through caches hold no dirty data: flush emits nothing.
    bool flushed = false;
    c.flushAll([&]() { flushed = true; });
    eq.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(mem.count(MemCmd::Writeback), 0u);
}

TEST_F(CacheTest, WriteThroughDoesNotAllocateOnWriteMiss)
{
    Cache c(eq, "c", smallParams(true), mem);
    doAccess(c, MemCmd::Write, 0x6000, 32);
    mem.log.clear();
    doAccess(c, MemCmd::Read, 0x6000); // still a miss
    EXPECT_EQ(mem.count(MemCmd::Read), 1u);
}

TEST_F(CacheTest, FlushAllWritesBackDirtyAndInvalidates)
{
    Cache c(eq, "c", smallParams(), mem);
    doAccess(c, MemCmd::Write, 0x7000);
    doAccess(c, MemCmd::Write, 0x7100);
    doAccess(c, MemCmd::Read, 0x7200);
    mem.log.clear();
    bool flushed = false;
    c.flushAll([&]() { flushed = true; });
    eq.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(mem.count(MemCmd::Writeback), 2u);
    // Everything is invalid now: the next read misses again.
    doAccess(c, MemCmd::Read, 0x7200);
    EXPECT_EQ(mem.count(MemCmd::Read), 1u);
    EXPECT_FALSE(c.busy());
}

TEST_F(CacheTest, FlushPageIsSelective)
{
    Cache c(eq, "c", smallParams(), mem);
    doAccess(c, MemCmd::Write, 0x8000);  // page 8
    doAccess(c, MemCmd::Write, 0x9000);  // page 9
    mem.log.clear();
    bool flushed = false;
    c.flushPage(pageNumber(0x8000), [&]() { flushed = true; });
    eq.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(mem.count(MemCmd::Writeback), 1u);
    EXPECT_EQ(mem.log[0]->paddr, 0x8000u);
    // Page 9's block is still resident and dirty.
    doAccess(c, MemCmd::Read, 0x9000);
    EXPECT_EQ(mem.count(MemCmd::Read), 0u);
}

TEST_F(CacheTest, FlushWaitsForOutstandingMisses)
{
    Cache c(eq, "c", smallParams(), mem);
    bool read_done = false, flush_done = false;
    auto pkt =
        Packet::make(MemCmd::Write, 0xa000, 64, Requestor::accelerator);
    pkt->onResponse = [&](Packet &) { read_done = true; };
    c.access(pkt);
    // The flush is requested while the exclusive fill is in flight: it
    // must wait for the fill, then write the (now dirty) block back.
    c.flushAll([&]() { flush_done = true; });
    eq.run();
    EXPECT_TRUE(read_done);
    EXPECT_TRUE(flush_done);
    EXPECT_EQ(mem.count(MemCmd::Writeback), 1u);
    EXPECT_EQ(c.tags().findBlock(0xa000), nullptr);
}

TEST_F(CacheTest, DeferredAccessesRetryWhenMshrsFree)
{
    Cache::Params p = smallParams();
    p.mshrs = 2;
    Cache c(eq, "c", p, mem);
    unsigned responses = 0;
    for (int i = 0; i < 8; ++i) {
        auto pkt = Packet::make(MemCmd::Read, 0xb000 + i * 128, 64,
                                Requestor::accelerator);
        pkt->onResponse = [&](Packet &) { ++responses; };
        c.access(pkt);
    }
    eq.run();
    EXPECT_EQ(responses, 8u);
    EXPECT_EQ(mem.count(MemCmd::Read), 8u);
}

TEST_F(CacheTest, RecallDirtyBlockWritesBack)
{
    Cache c(eq, "c", smallParams(), mem);
    doAccess(c, MemCmd::Write, 0xc000);
    mem.log.clear();
    EXPECT_TRUE(c.recallBlock(0xc000));
    eq.run();
    EXPECT_EQ(mem.count(MemCmd::Writeback), 1u);
    EXPECT_FALSE(c.recallBlock(0xc000)); // already gone
}

TEST_F(CacheTest, WriteToSharedBlockTriggersUpgrade)
{
    Cache c(eq, "c", smallParams(), mem);
    // Read first: block arrives non-writable (shared).
    doAccess(c, MemCmd::Read, 0xd000);
    mem.log.clear();
    // Writing it requires a second, exclusive fill.
    doAccess(c, MemCmd::Write, 0xd000);
    ASSERT_EQ(mem.log.size(), 1u);
    EXPECT_TRUE(mem.log[0]->isRead());
    EXPECT_TRUE(mem.log[0]->needsWritable);
}

TEST_F(CacheTest, BankConflictsSerializeAccesses)
{
    Cache::Params p = smallParams();
    p.banks = 1;
    Cache c(eq, "c", p, mem);
    // Two hits to the same bank in the same cycle: completions differ.
    doAccess(c, MemCmd::Read, 0xe000);
    doAccess(c, MemCmd::Read, 0xe080);
    std::vector<Tick> done;
    for (Addr a : {Addr(0xe000), Addr(0xe080)}) {
        auto pkt = Packet::make(MemCmd::Read, a, 64,
                                Requestor::accelerator);
        pkt->onResponse = [&](Packet &) { done.push_back(eq.curTick()); };
        c.access(pkt);
    }
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NE(done[0], done[1]);
}
