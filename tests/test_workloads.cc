/**
 * @file
 * Tests for the workload generators: factory coverage, stream
 * determinism, address validity against the process's VMAs, write
 * discipline (writes only to writable regions), and termination.
 * Parameterized across all seven Rodinia proxies.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "os/kernel.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace bctrl;

namespace {

struct WorkloadEnv {
    EventQueue eq;
    BackingStore store{1ULL << 30};
    Kernel kernel{eq, "kernel", store, Kernel::Params{}};
};

/** Pull every item from every wavefront, applying @p fn to mem items. */
template <typename Fn>
std::uint64_t
drain(Workload &wl, unsigned cus, unsigned wfs, Fn &&fn)
{
    std::uint64_t mem_items = 0;
    for (unsigned cu = 0; cu < cus; ++cu) {
        for (unsigned wf = 0; wf < wfs; ++wf) {
            for (;;) {
                WorkItem item = wl.next(cu, wf);
                if (item.kind == WorkItem::Kind::end)
                    break;
                if (item.kind == WorkItem::Kind::mem) {
                    ++mem_items;
                    fn(item);
                }
            }
            // The stream stays ended once ended.
            EXPECT_EQ(wl.next(cu, wf).kind, WorkItem::Kind::end);
        }
    }
    return mem_items;
}

} // namespace

TEST(WorkloadFactory, KnowsAllNames)
{
    for (const auto &name : rodiniaWorkloadNames())
        EXPECT_NE(makeWorkload(name, 1), nullptr) << name;
    for (const char *extra : {"kmeans", "srad", "gaussian"})
        EXPECT_NE(makeWorkload(extra, 1), nullptr) << extra;
    EXPECT_NE(makeWorkload("uniform", 1), nullptr);
    EXPECT_NE(makeWorkload("stream", 1), nullptr);
    EXPECT_NE(makeWorkload("strided", 1), nullptr);
    EXPECT_EQ(makeWorkload("nope", 1), nullptr);
}

TEST(WorkloadFactory, SevenRodiniaProxies)
{
    EXPECT_EQ(rodiniaWorkloadNames().size(), 7u);
}

class RodiniaWorkloadTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(RodiniaWorkloadTest, AllAccessesFallInsideDeclaredRegions)
{
    WorkloadEnv env;
    Process &proc = env.kernel.createProcess();
    auto wl = makeWorkload(GetParam(), 1);
    ASSERT_NE(wl, nullptr);
    wl->setup(proc);
    wl->bind(2, 4);

    std::uint64_t mem_items =
        drain(*wl, 2, 4, [&](const WorkItem &item) {
            const Process::Vma *vma = proc.findVma(item.vaddr);
            ASSERT_NE(vma, nullptr)
                << GetParam() << " touches unmapped 0x" << std::hex
                << item.vaddr;
            ASSERT_NE(proc.findVma(item.vaddr + item.size - 1), nullptr);
            if (item.write) {
                EXPECT_TRUE(vma->perms.write)
                    << GetParam() << " writes a read-only region";
            }
        });
    EXPECT_GT(mem_items, 10'000u) << "workload suspiciously small";
}

TEST_P(RodiniaWorkloadTest, DeterministicAcrossInstances)
{
    WorkloadEnv env1, env2;
    Process &p1 = env1.kernel.createProcess();
    Process &p2 = env2.kernel.createProcess();
    auto a = makeWorkload(GetParam(), 1, 7);
    auto b = makeWorkload(GetParam(), 1, 7);
    a->setup(p1);
    b->setup(p2);
    a->bind(2, 2);
    b->bind(2, 2);
    for (int i = 0; i < 5000; ++i) {
        WorkItem ia = a->next(1, 0);
        WorkItem ib = b->next(1, 0);
        ASSERT_EQ(static_cast<int>(ia.kind), static_cast<int>(ib.kind));
        if (ia.kind == WorkItem::Kind::end)
            break;
        EXPECT_EQ(ia.vaddr, ib.vaddr);
        EXPECT_EQ(ia.write, ib.write);
        EXPECT_EQ(ia.cycles, ib.cycles);
    }
}

TEST_P(RodiniaWorkloadTest, BindPartitionsWorkWithoutLoss)
{
    // The same total memory-item count regardless of machine shape.
    WorkloadEnv env1, env2;
    Process &p1 = env1.kernel.createProcess();
    Process &p2 = env2.kernel.createProcess();
    auto a = makeWorkload(GetParam(), 1);
    auto b = makeWorkload(GetParam(), 1);
    a->setup(p1);
    b->setup(p2);
    a->bind(8, 4);
    b->bind(1, 4);
    auto count_a = drain(*a, 8, 4, [](const WorkItem &) {});
    auto count_b = drain(*b, 1, 4, [](const WorkItem &) {});
    EXPECT_EQ(count_a, count_b);
}

TEST_P(RodiniaWorkloadTest, HasBothReadsAndWrites)
{
    WorkloadEnv env;
    Process &proc = env.kernel.createProcess();
    auto wl = makeWorkload(GetParam(), 1);
    wl->setup(proc);
    wl->bind(2, 4);
    std::uint64_t reads = 0, writes = 0;
    drain(*wl, 2, 4, [&](const WorkItem &item) {
        (item.write ? writes : reads) += 1;
    });
    EXPECT_GT(reads, 0u);
    EXPECT_GT(writes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRodinia, RodiniaWorkloadTest,
    ::testing::Values("backprop", "bfs", "hotspot", "lud", "nn", "nw",
                      "pathfinder",
                      // Rodinia-family extras beyond the paper's seven:
                      "kmeans", "srad", "gaussian"));

TEST(MicroWorkloads, UniformRespectsConfiguredFootprint)
{
    WorkloadEnv env;
    Process &proc = env.kernel.createProcess();
    UniformRandomWorkload wl(1, 3);
    wl.configure(1 << 20, 4096, 0.5);
    wl.setup(proc);
    wl.bind(1, 2);
    std::uint64_t items = drain(wl, 1, 2, [&](const WorkItem &item) {
        ASSERT_NE(proc.findVma(item.vaddr), nullptr);
    });
    EXPECT_EQ(items, 4096u);
}

TEST(MicroWorkloads, StreamCoversFootprintSequentially)
{
    WorkloadEnv env;
    Process &proc = env.kernel.createProcess();
    StreamWorkload wl(1, 3);
    wl.configure(64 * 1024, 1, 0.0);
    wl.setup(proc);
    wl.bind(1, 1);
    Addr last = 0;
    bool first = true;
    drain(wl, 1, 1, [&](const WorkItem &item) {
        if (!first) {
            EXPECT_EQ(item.vaddr, last + 64);
        }
        first = false;
        last = item.vaddr;
    });
}

TEST(MicroWorkloads, StridedTouchesDistinctPages)
{
    WorkloadEnv env;
    Process &proc = env.kernel.createProcess();
    StridedWorkload wl(1, 3);
    wl.configure(1 << 20, pageSize, 256);
    wl.setup(proc);
    wl.bind(1, 1);
    std::set<Addr> pages;
    drain(wl, 1, 1, [&](const WorkItem &item) {
        pages.insert(pageNumber(item.vaddr));
    });
    EXPECT_EQ(pages.size(), 256u);
}
