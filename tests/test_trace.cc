/**
 * @file
 * Tests for the request-lifecycle tracing subsystem: flag parsing and
 * gating, packet-id correlation across components, Chrome-trace JSON
 * well-formedness, and — the load-bearing guarantee — that tracing is
 * purely observational: enabling it changes no simulated result, and
 * with it disabled (the default) a warm System still allocates nothing
 * on the hot path. The TraceOverhead suite backs the ctest
 * `perf_trace_overhead` (label "perf").
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "config/system_builder.hh"
#include "sim/trace.hh"

using namespace bctrl;

namespace {

SystemConfig
tracedConfig(std::uint32_t mask, bool host_profile = false)
{
    SystemConfig cfg;
    cfg.safety = SafetyModel::borderControlBcc;
    cfg.profile = GpuProfile::moderatelyThreaded;
    cfg.workloadScale = 1;
    cfg.traceMask = mask;
    cfg.hostProfile = host_profile;
    return cfg;
}

/**
 * A minimal recursive-descent JSON validator: accepts exactly the
 * RFC 8259 grammar (objects, arrays, strings with escapes, numbers,
 * true/false/null) and rejects everything else — enough to prove the
 * writers emit documents Perfetto's parser will load.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        std::size_t digits = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            ++digits;
        }
        if (digits == 0) {
            pos_ = start;
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return false;
                ++pos_;
                if (!value())
                    return false;
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                if (text_[pos_] != ',')
                    return false;
                ++pos_;
            }
        }
        if (c == '[') {
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                if (text_[pos_] != ',')
                    return false;
                ++pos_;
            }
        }
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

TEST(Trace, ParseFlagsAcceptsNamesAndAll)
{
    std::uint32_t mask = 0;
    EXPECT_TRUE(trace::parseFlags("BCC,ProtTable", mask, nullptr));
    EXPECT_EQ(mask,
              static_cast<std::uint32_t>(trace::Flag::BCC) |
                  static_cast<std::uint32_t>(trace::Flag::ProtTable));

    mask = 0;
    EXPECT_TRUE(trace::parseFlags("all", mask, nullptr));
    EXPECT_EQ(mask, trace::allFlags);

    mask = 0;
    EXPECT_TRUE(trace::parseFlags(" Cache , DRAM ", mask, nullptr));
    EXPECT_EQ(mask,
              static_cast<std::uint32_t>(trace::Flag::Cache) |
                  static_cast<std::uint32_t>(trace::Flag::DRAM));
}

TEST(Trace, ParseFlagsRejectsUnknownNames)
{
    std::uint32_t mask = 0;
    std::string err;
    EXPECT_FALSE(trace::parseFlags("BCC,Bogus", mask, &err));
    EXPECT_NE(err.find("Bogus"), std::string::npos);
    // The error lists the valid names so the CLI message is actionable.
    EXPECT_NE(err.find("ProtTable"), std::string::npos);
}

TEST(Trace, FlagNamesRoundTripThroughParse)
{
    for (trace::Flag f :
         {trace::Flag::BCC, trace::Flag::ProtTable,
          trace::Flag::Coherence, trace::Flag::TLB, trace::Flag::DRAM,
          trace::Flag::Cache, trace::Flag::PacketLife}) {
        std::uint32_t mask = 0;
        ASSERT_TRUE(trace::parseFlags(trace::flagName(f), mask, nullptr))
            << trace::flagName(f);
        EXPECT_EQ(mask, static_cast<std::uint32_t>(f));
    }
}

TEST(Trace, TracerGatesRecordsOnMask)
{
    trace::Tracer tracer(static_cast<std::uint32_t>(trace::Flag::BCC));
    EXPECT_TRUE(tracer.enabled(trace::Flag::BCC));
    EXPECT_FALSE(tracer.enabled(trace::Flag::Cache));

    tracer.record(trace::Flag::BCC, "system.bc", "bccHit", 100, 15);
    tracer.record(trace::Flag::Cache, "system.cache", "hit", 200, 5);
    ASSERT_EQ(tracer.size(), 1u);
    EXPECT_EQ(tracer.records()[0].flag, trace::Flag::BCC);
    EXPECT_STREQ(tracer.records()[0].event, "bccHit");
}

TEST(Trace, EmitIsNoOpWithoutTracer)
{
    EventQueue eq;
    ASSERT_EQ(eq.tracer(), nullptr);
    // Must not crash or record anywhere: the off path is one branch.
    trace::emit(eq, trace::Flag::BCC, "c", "e", 1, 2, 3, 4);
}

TEST(Trace, SystemRunRecordsOnlyMaskedFlags)
{
    System sys(tracedConfig(
        static_cast<std::uint32_t>(trace::Flag::BCC) |
        static_cast<std::uint32_t>(trace::Flag::ProtTable)));
    ASSERT_NE(sys.tracer(), nullptr);
    sys.run("uniform");

    ASSERT_GT(sys.tracer()->size(), 0u);
    bool saw_bcc = false;
    for (const trace::Record &r : sys.tracer()->records()) {
        const bool masked = r.flag == trace::Flag::BCC ||
                            r.flag == trace::Flag::ProtTable;
        ASSERT_TRUE(masked) << "record under unmasked flag "
                            << trace::flagName(r.flag);
        saw_bcc = saw_bcc || r.flag == trace::Flag::BCC;
    }
    EXPECT_TRUE(saw_bcc);
}

TEST(Trace, PacketIdsCorrelateAcrossComponents)
{
    System sys(tracedConfig(trace::allFlags));
    sys.run("uniform");

    // One request's pool-assigned trace id must show up in records from
    // more than one component — that is the whole point of the id.
    std::map<std::uint64_t, std::set<std::string>> components;
    for (const trace::Record &r : sys.tracer()->records())
        if (r.packetId != 0)
            components[r.packetId].insert(r.component);

    ASSERT_FALSE(components.empty());
    std::size_t multi = 0;
    for (const auto &[id, comps] : components)
        if (comps.size() >= 2)
            ++multi;
    EXPECT_GT(multi, 0u)
        << "no packet id was ever seen by two components";
}

TEST(Trace, ChromeTraceIsWellFormedJson)
{
    System sys(tracedConfig(trace::allFlags));
    sys.run("uniform");
    ASSERT_GT(sys.tracer()->size(), 0u);

    std::ostringstream os;
    sys.tracer()->writeChromeTrace(os, 1, "uniform bc-bcc");
    const std::string doc = os.str();

    EXPECT_EQ(doc.rfind("{\"traceEvents\":", 0), 0u);
    JsonValidator v(doc);
    EXPECT_TRUE(v.valid()) << "Chrome-trace output is not valid JSON";
    // Perfetto keys every lane on these metadata records.
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
}

TEST(Trace, ChromeTraceFragmentMergesAcrossRuns)
{
    // The sweep driver merges per-run fragments into one document with
    // a distinct pid per run; the merged result must still parse.
    System a(tracedConfig(
        static_cast<std::uint32_t>(trace::Flag::Cache)));
    System b(tracedConfig(
        static_cast<std::uint32_t>(trace::Flag::DRAM)));
    a.run("uniform");
    b.run("stream");

    std::ostringstream merged;
    merged << "{\"traceEvents\":[";
    a.tracer()->writeChromeTraceEvents(merged, 1, "run a");
    merged << ",";
    b.tracer()->writeChromeTraceEvents(merged, 2, "run b");
    merged << "]}";

    const std::string doc = merged.str();
    JsonValidator v(doc);
    EXPECT_TRUE(v.valid()) << "merged two-run trace is not valid JSON";
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":2"), std::string::npos);
}

TEST(Trace, TextSinkWritesOneLinePerRecord)
{
    trace::Tracer tracer(trace::allFlags);
    tracer.record(trace::Flag::Cache, "system.l2", "miss", 1000, 250,
                  42, 0x1000);
    tracer.record(trace::Flag::DRAM, "system.mem", "read", 1250, 80,
                  42, 0x1000);

    std::ostringstream os;
    tracer.writeText(os);
    const std::string text = os.str();
    std::size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 2u);
    EXPECT_NE(text.find("system.l2"), std::string::npos);
    EXPECT_NE(text.find("pkt=42"), std::string::npos);
}

TEST(Trace, StatsJsonExportIsWellFormed)
{
    System sys(tracedConfig(0));
    sys.run("uniform");
    std::ostringstream os;
    sys.dumpStatsJson(os);
    const std::string doc = os.str();

    JsonValidator v(doc);
    EXPECT_TRUE(v.valid()) << "dumpStatsJson is not valid JSON";
    // The new latency histograms export percentile fields.
    EXPECT_NE(doc.find("\"system.bc.checkLatencyBccHit\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"p99\""), std::string::npos);
}

TEST(Trace, HostProfilerAttributesEventLoopTime)
{
    System sys(tracedConfig(0, /*host_profile=*/true));
    ASSERT_NE(sys.hostProfiler(), nullptr);
    sys.run("uniform");

    const HostProfiler &prof = *sys.hostProfiler();
    // Every processed event passes through the eventLoop slot, so its
    // call count matches the queue's own counter exactly.
    EXPECT_EQ(prof.calls(HostProfiler::Slot::eventLoop),
              sys.eventQueue().eventsProcessed());
    EXPECT_GT(prof.calls(HostProfiler::Slot::borderControl), 0u);
    EXPECT_GT(prof.calls(HostProfiler::Slot::cache), 0u);
    EXPECT_GE(prof.seconds(HostProfiler::Slot::eventLoop), 0.0);
}

// ---------------------------------------------------------------------
// TraceOverhead: the determinism and zero-cost contract behind keeping
// tracing compiled in. Backs the `perf_trace_overhead` ctest.

TEST(TraceOverhead, DisabledRunsAreBitIdentical)
{
    RunResult first;
    std::uint64_t first_events = 0;
    for (int i = 0; i < 2; ++i) {
        System sys(tracedConfig(0));
        RunResult r = sys.run("uniform");
        if (i == 0) {
            first = r;
            first_events = sys.eventQueue().eventsProcessed();
            continue;
        }
        EXPECT_EQ(r.runtimeTicks, first.runtimeTicks);
        EXPECT_EQ(r.gpuCycles, first.gpuCycles);
        EXPECT_EQ(r.memOps, first.memOps);
        EXPECT_EQ(r.translations, first.translations);
        EXPECT_EQ(sys.eventQueue().eventsProcessed(), first_events);
    }
}

TEST(TraceOverhead, EnablingTracingChangesNoSimulatedResult)
{
    System off(tracedConfig(0));
    System on(tracedConfig(trace::allFlags, /*host_profile=*/true));
    RunResult r_off = off.run("uniform");
    RunResult r_on = on.run("uniform");

    ASSERT_GT(on.tracer()->size(), 0u);
    EXPECT_EQ(r_on.runtimeTicks, r_off.runtimeTicks);
    EXPECT_EQ(r_on.gpuCycles, r_off.gpuCycles);
    EXPECT_EQ(r_on.memOps, r_off.memOps);
    EXPECT_EQ(r_on.translations, r_off.translations);
    EXPECT_EQ(r_on.pageWalks, r_off.pageWalks);
    EXPECT_EQ(r_on.borderRequests, r_off.borderRequests);
    EXPECT_EQ(r_on.bccHits, r_off.bccHits);
    EXPECT_EQ(r_on.bccMisses, r_off.bccMisses);
    EXPECT_EQ(r_on.violations, r_off.violations);
    EXPECT_EQ(r_on.dramBytes, r_off.dramBytes);
    EXPECT_EQ(on.eventQueue().eventsProcessed(),
              off.eventQueue().eventsProcessed());
}

TEST(TraceOverhead, DisabledTracingAddsNoAllocations)
{
    // Tracing is compiled into every hot path; with the runtime switch
    // off a warm System must still mint nothing from the heap (the
    // same ceiling AllocationProfile enforces for the seed build).
    System sys(tracedConfig(0));
    auto workload = makeWorkload("uniform", 1, 1);
    ASSERT_NE(workload, nullptr);
    Process &proc = sys.kernel().createProcess();
    workload->setup(proc);

    sys.run(*workload, proc);
    sys.run(*workload, proc);
    const std::uint64_t warm_packets = sys.packetPool().heapAllocations();
    const std::uint64_t warm_lambdas =
        sys.eventQueue().lambdaAllocations();
    const std::uint64_t warm_spills = sys.eventQueue().lambdaSpills() +
                                      sys.packetPool().callbackSpills();

    RunResult r = sys.run(*workload, proc);
    EXPECT_GT(r.memOps, 0u);
    EXPECT_EQ(sys.packetPool().heapAllocations() - warm_packets, 0u);
    EXPECT_EQ(sys.eventQueue().lambdaAllocations() - warm_lambdas, 0u);
    EXPECT_EQ(sys.eventQueue().lambdaSpills() +
                  sys.packetPool().callbackSpills() - warm_spills,
              0u);
}
