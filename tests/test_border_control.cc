/**
 * @file
 * Unit tests for the Border Control unit: the check datapath
 * (Fig. 3c), lazy Protection Table insertion (Fig. 3b), downgrades
 * (Fig. 3d), process completion (Fig. 3e), multiprocess use counts
 * (§3.3), and the parallel-check timing of §3.1.1.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bc/border_control.hh"
#include "mem/dram.hh"

using namespace bctrl;

namespace {

class RecordingMemory : public MemDevice
{
  public:
    explicit RecordingMemory(EventQueue &eq) : eq_(eq) {}

    void
    access(const PacketPtr &pkt) override
    {
        log.push_back(pkt);
        if (pkt->isRead())
            pkt->grantedWritable = pkt->needsWritable;
        respondAt(eq_, pkt, eq_.curTick() + 10'000);
    }

    unsigned
    count(Requestor who) const
    {
        unsigned n = 0;
        for (const PacketPtr &p : log) {
            if (p->requestor == who)
                ++n;
        }
        return n;
    }

    std::vector<PacketPtr> log;

  private:
    EventQueue &eq_;
};

struct BorderControlTest : public ::testing::Test {
    EventQueue eq;
    BackingStore store{64ULL * 1024 * 1024};
    RecordingMemory mem{eq};
    std::unique_ptr<ProtectionTable> table;

    BorderControl::Params
    params(bool use_bcc = true)
    {
        BorderControl::Params p;
        p.useBcc = use_bcc;
        p.bcc.entries = 8;
        p.bcc.pagesPerEntry = 16;
        p.bccLatency = 10;
        p.tableLatency = 100;
        p.clockPeriod = 1'000;
        return p;
    }

    void
    attach(BorderControl &bc)
    {
        table = std::make_unique<ProtectionTable>(store, 0x1000,
                                                  store.numPages());
        bc.attachTable(table.get());
        bc.incrUseCount();
    }

    /** Send one accelerator request; returns (denied, completion). */
    std::pair<bool, Tick>
    send(BorderControl &bc, MemCmd cmd, Addr paddr)
    {
        bool denied = false;
        Tick done = 0;
        auto pkt = Packet::make(cmd, paddr, 64, Requestor::accelerator);
        pkt->issuedAt = eq.curTick();
        pkt->onResponse = [&](Packet &p) {
            denied = p.denied;
            done = eq.curTick();
        };
        bc.access(pkt);
        eq.run();
        return {denied, done};
    }
};

} // namespace

TEST_F(BorderControlTest, DeniesEverythingWithNoTable)
{
    BorderControl bc(eq, "bc", params(), mem);
    auto [denied, when] = send(bc, MemCmd::Read, 0x4000);
    EXPECT_TRUE(denied);
    EXPECT_EQ(mem.count(Requestor::accelerator), 0u);
}

TEST_F(BorderControlTest, LazyTableStartsDenying)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    // No translation has happened: the zeroed table denies (lazy
    // population, §3.2.1).
    auto [denied, when] = send(bc, MemCmd::Read, 0x4000);
    EXPECT_TRUE(denied);
    EXPECT_EQ(bc.violations(), 1u);
}

TEST_F(BorderControlTest, TranslationInsertionEnablesAccess)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x4000), Perms::readOnly(),
                     false);
    auto [rd_denied, t1] = send(bc, MemCmd::Read, 0x4000);
    EXPECT_FALSE(rd_denied);
    // Read permission does not grant writes.
    auto [wr_denied, t2] = send(bc, MemCmd::Write, 0x4000);
    EXPECT_TRUE(wr_denied);
    auto [wb_denied, t3] = send(bc, MemCmd::Writeback, 0x4000);
    EXPECT_TRUE(wb_denied);
    EXPECT_EQ(bc.violations(), 2u);
}

TEST_F(BorderControlTest, WritePermissionAllowsWritebacks)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x8000), Perms::readWrite(),
                     false);
    EXPECT_FALSE(send(bc, MemCmd::Write, 0x8000).first);
    EXPECT_FALSE(send(bc, MemCmd::Writeback, 0x8000).first);
    EXPECT_EQ(bc.violations(), 0u);
}

TEST_F(BorderControlTest, DeniedWritesNeverReachMemory)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    send(bc, MemCmd::Write, 0xdead000);
    for (const PacketPtr &p : mem.log)
        EXPECT_NE(p->requestor, Requestor::accelerator);
}

TEST_F(BorderControlTest, ViolationHandlerIsNotified)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    std::vector<Addr> reported;
    bc.setViolationHandler(
        [&](const Packet &p) { reported.push_back(p.paddr); });
    send(bc, MemCmd::Write, 0x7040);
    ASSERT_EQ(reported.size(), 1u);
    EXPECT_EQ(reported[0], 0x7040u);
}

TEST_F(BorderControlTest, ReadCheckOverlapsMemoryAccess)
{
    // §3.1.1: the table lookup proceeds in parallel with the read.
    // With a BCC hit (10 cycles) the response time is dominated by the
    // 10 us memory, not 10 us + check.
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x4000), Perms::readWrite(),
                     false);
    // Warm the BCC.
    send(bc, MemCmd::Read, 0x4000);
    Tick start = eq.curTick();
    auto [denied, done] = send(bc, MemCmd::Read, 0x4040);
    EXPECT_FALSE(denied);
    EXPECT_LT(done - start, 10'000u + 5'000u); // ~mem latency only
}

TEST_F(BorderControlTest, WriteWaitsForCheck)
{
    BorderControl bc(eq, "bc", params(false), mem); // no BCC
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x4000), Perms::readWrite(),
                     false);
    Tick start = eq.curTick();
    auto [denied, done] = send(bc, MemCmd::Write, 0x4000);
    EXPECT_FALSE(denied);
    // 100-cycle table check (100 us at 1 ns clock ticks... 100 cycles
    // x 1000 ticks) before the write even starts.
    EXPECT_GE(done - start, 100u * 1'000u);
}

TEST_F(BorderControlTest, BccHitAvoidsTableTraffic)
{
    BorderControl bc(eq, "bc", params(true), mem);
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x4000), Perms::readWrite(),
                     false);
    mem.log.clear();
    send(bc, MemCmd::Read, 0x4000); // BCC already filled by insertion
    EXPECT_EQ(bc.bccHits(), 1u);
    // Only the demand read went to memory; no trusted table read.
    EXPECT_EQ(mem.count(Requestor::trustedHw), 0u);
}

TEST_F(BorderControlTest, BccMissFetchesFromTable)
{
    BorderControl bc(eq, "bc", params(true), mem);
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x4000), Perms::readWrite(),
                     false);
    // Push the entry out with fills from distant groups.
    for (unsigned g = 1; g <= 8; ++g)
        bc.onTranslation(1, 0x100 + g, pageNumber(0x4000) + g * 16,
                         Perms::readOnly(), false);
    mem.log.clear();
    auto [denied, done] = send(bc, MemCmd::Read, 0x4000);
    EXPECT_FALSE(denied);
    EXPECT_GE(bc.bccMisses(), 1u);
    EXPECT_GE(mem.count(Requestor::trustedHw), 1u);
}

TEST_F(BorderControlTest, NoBccAlwaysPaysTableAccess)
{
    BorderControl bc(eq, "bc", params(false), mem);
    attach(bc);
    bc.onTranslation(1, 0x99, pageNumber(0x4000), Perms::readWrite(),
                     false);
    mem.log.clear();
    send(bc, MemCmd::Read, 0x4000);
    send(bc, MemCmd::Read, 0x4040);
    EXPECT_EQ(mem.count(Requestor::trustedHw), 2u);
}

TEST_F(BorderControlTest, MultiprocessUnionOfPermissions)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    bc.incrUseCount(); // a second process
    const Addr ppn = pageNumber(0xa000);
    bc.onTranslation(1, 0x10, ppn, Perms::readOnly(), false);
    bc.onTranslation(2, 0x20, ppn, Perms{false, true}, false);
    // §3.3: the permissions used are the union across processes.
    EXPECT_FALSE(send(bc, MemCmd::Read, 0xa000).first);
    EXPECT_FALSE(send(bc, MemCmd::Write, 0xa000).first);
    EXPECT_EQ(bc.decrUseCount(), 1u);
}

TEST_F(BorderControlTest, LargePageInsertionCoversAllPages)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    const Addr base_ppn = 512; // 2 MB aligned
    bc.onTranslation(1, 512, base_ppn, Perms::readWrite(), true);
    // Every 4 KB page under the 2 MB mapping is permitted (§3.4.4).
    for (Addr off : {Addr(0), Addr(5), Addr(511)}) {
        EXPECT_FALSE(
            send(bc, MemCmd::Read, pageBase(base_ppn + off)).first)
            << "page offset " << off;
    }
    EXPECT_TRUE(
        send(bc, MemCmd::Read, pageBase(base_ppn + 512)).first);
}

TEST_F(BorderControlTest, DowngradeRevokesSelectively)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    const Addr ppn = pageNumber(0xb000);
    bc.onTranslation(1, 0x30, ppn, Perms::readWrite(), false);
    bc.downgradePage(ppn, Perms::readOnly());
    EXPECT_FALSE(send(bc, MemCmd::Read, 0xb000).first);
    EXPECT_TRUE(send(bc, MemCmd::Writeback, 0xb000).first);
}

TEST_F(BorderControlTest, ZeroTableRevokesEverything)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    bc.onTranslation(1, 0x10, pageNumber(0xc000), Perms::readWrite(),
                     false);
    bc.zeroTableAndInvalidate();
    EXPECT_TRUE(send(bc, MemCmd::Read, 0xc000).first);
    EXPECT_TRUE(send(bc, MemCmd::Writeback, 0xc000).first);
}

TEST_F(BorderControlTest, OutOfBoundsPhysicalAddressDenied)
{
    BorderControl bc(eq, "bc", params(), mem);
    // Table bounded at 256 pages.
    table = std::make_unique<ProtectionTable>(store, 0x1000, 256);
    bc.attachTable(table.get());
    bc.incrUseCount();
    // §3.2.3: the table is only checked after the bounds register.
    EXPECT_TRUE(send(bc, MemCmd::Read, pageBase(300)).first);
}

TEST_F(BorderControlTest, TrustedTrafficBypassesChecks)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    auto pkt = Packet::make(MemCmd::Read, 0xf000, 8,
                            Requestor::trustedHw);
    bool denied = true;
    pkt->onResponse = [&](Packet &p) { denied = p.denied; };
    bc.access(pkt);
    eq.run();
    EXPECT_FALSE(denied);
    EXPECT_EQ(bc.borderRequests(), 0u);
}

TEST_F(BorderControlTest, DetachRequiresZeroUseCount)
{
    BorderControl bc(eq, "bc", params(), mem);
    attach(bc);
    EXPECT_DEATH(bc.detachTable(), "use count|processes are active");
    bc.decrUseCount();
    bc.detachTable();
    EXPECT_EQ(bc.table(), nullptr);
}
