/**
 * @file
 * Unit tests for the four-level radix page table.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vm/page_table.hh"

using namespace bctrl;

namespace {

/** A trivial bump frame allocator for tests. */
class TestAllocator : public FrameAllocator
{
  public:
    explicit TestAllocator(BackingStore &store) : store_(store) {}

    Addr
    allocFrame() override
    {
        Addr frame = next_;
        next_ += pageSize;
        store_.zero(frame, pageSize);
        ++allocated_;
        return frame;
    }

    void freeFrame(Addr) override { ++freed_; }

    unsigned allocated() const { return allocated_; }
    unsigned freed() const { return freed_; }

  private:
    BackingStore &store_;
    Addr next_ = 0x10000;
    unsigned allocated_ = 0;
    unsigned freed_ = 0;
};

struct PageTableTest : public ::testing::Test {
    BackingStore store{1 << 26};
    TestAllocator alloc{store};
};

} // namespace

TEST_F(PageTableTest, UnmappedWalkIsInvalid)
{
    PageTable pt(store, alloc);
    WalkResult r = pt.walk(0x7000'0000);
    EXPECT_FALSE(r.valid);
    EXPECT_GE(r.pteAddrs.size(), 1u);
}

TEST_F(PageTableTest, MapThenWalkTranslates)
{
    PageTable pt(store, alloc);
    pt.map(0x4000'1000, 0x0020'0000, Perms::readWrite());
    WalkResult r = pt.walk(0x4000'1abc);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.paddr, 0x0020'0abcu);
    EXPECT_TRUE(r.perms.read);
    EXPECT_TRUE(r.perms.write);
    EXPECT_FALSE(r.largePage);
    EXPECT_EQ(r.pteAddrs.size(), PageTable::levels);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST_F(PageTableTest, ReadOnlyPermissionsSurvive)
{
    PageTable pt(store, alloc);
    pt.map(0x1000, 0x5000, Perms::readOnly());
    WalkResult r = pt.walk(0x1000);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(r.perms.read);
    EXPECT_FALSE(r.perms.write);
}

TEST_F(PageTableTest, UnmapRemovesTranslation)
{
    PageTable pt(store, alloc);
    pt.map(0x1000, 0x5000, Perms::readWrite());
    pt.unmap(0x1000);
    EXPECT_FALSE(pt.walk(0x1000).valid);
    EXPECT_EQ(pt.mappedPages(), 0u);
}

TEST_F(PageTableTest, ProtectChangesPermsAndReturnsOld)
{
    PageTable pt(store, alloc);
    pt.map(0x1000, 0x5000, Perms::readWrite());
    Perms old = pt.protect(0x1000, Perms::readOnly());
    EXPECT_TRUE(old.write);
    WalkResult r = pt.walk(0x1000);
    EXPECT_TRUE(r.perms.read);
    EXPECT_FALSE(r.perms.write);
}

TEST_F(PageTableTest, NeighbouringPagesAreIndependent)
{
    PageTable pt(store, alloc);
    pt.map(0x1000, 0xa000, Perms::readOnly());
    pt.map(0x2000, 0xb000, Perms::readWrite());
    EXPECT_EQ(pt.walk(0x1000).paddr, 0xa000u);
    EXPECT_EQ(pt.walk(0x2000).paddr, 0xb000u);
    pt.unmap(0x1000);
    EXPECT_TRUE(pt.walk(0x2000).valid);
}

TEST_F(PageTableTest, DistantAddressesShareNothing)
{
    PageTable pt(store, alloc);
    // Same indices at lower levels, different level-0 index.
    pt.map(0x0000'0000'1000ULL, 0xa000, Perms::readWrite());
    pt.map(0x7f00'0000'1000ULL, 0xb000, Perms::readWrite());
    EXPECT_EQ(pt.walk(0x0000'0000'1000ULL).paddr, 0xa000u);
    EXPECT_EQ(pt.walk(0x7f00'0000'1000ULL).paddr, 0xb000u);
}

TEST_F(PageTableTest, LargePageMapsTwoMegabytes)
{
    PageTable pt(store, alloc);
    pt.mapLarge(0x4000'0000, 0x0080'0000, Perms::readWrite());
    WalkResult r = pt.walk(0x4000'0000 + 0x123456);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(r.largePage);
    EXPECT_EQ(r.paddr, 0x0080'0000u + 0x123456u);
    // The walk stops a level early for large pages.
    EXPECT_EQ(r.pteAddrs.size(), PageTable::levels - 1);
    EXPECT_EQ(pt.mappedPages(), pagesPerLargePage);
}

TEST_F(PageTableTest, LargePageProtect)
{
    PageTable pt(store, alloc);
    pt.mapLarge(0x4000'0000, 0x0080'0000, Perms::readWrite());
    pt.protect(0x4000'0000 + 0x5000, Perms::readOnly());
    WalkResult r = pt.walk(0x4000'0000);
    EXPECT_FALSE(r.perms.write);
}

TEST_F(PageTableTest, TableNodesLiveInSimulatedMemory)
{
    PageTable pt(store, alloc);
    unsigned before = alloc.allocated();
    pt.map(0x1000, 0x5000, Perms::readWrite());
    // Mapping the first page materializes three intermediate levels.
    EXPECT_EQ(alloc.allocated() - before, 3u);
    // A second mapping in the same region reuses them.
    before = alloc.allocated();
    pt.map(0x2000, 0x6000, Perms::readWrite());
    EXPECT_EQ(alloc.allocated() - before, 0u);
}

TEST_F(PageTableTest, DestructorReturnsFrames)
{
    unsigned freed_before = alloc.freed();
    {
        PageTable pt(store, alloc);
        pt.map(0x1000, 0x5000, Perms::readWrite());
    }
    EXPECT_GE(alloc.freed() - freed_before, 4u); // root + 3 levels
}

TEST_F(PageTableTest, WalkRecordsDependentPteChain)
{
    PageTable pt(store, alloc);
    pt.map(0x12345000, 0x7000, Perms::readOnly());
    WalkResult r = pt.walk(0x12345000);
    ASSERT_EQ(r.pteAddrs.size(), 4u);
    // Every recorded PTE must itself contain a valid entry.
    for (Addr pte_addr : r.pteAddrs)
        EXPECT_TRUE(store.read64(pte_addr) & PageTable::pteValid);
}

TEST_F(PageTableTest, ManyMappingsStressRadix)
{
    PageTable pt(store, alloc);
    for (Addr i = 0; i < 512; ++i)
        pt.map(0x1000'0000 + i * pageSize, 0x40'0000 + i * pageSize,
               (i % 3 == 0) ? Perms::readOnly() : Perms::readWrite());
    EXPECT_EQ(pt.mappedPages(), 512u);
    for (Addr i = 0; i < 512; ++i) {
        WalkResult r = pt.walk(0x1000'0000 + i * pageSize);
        ASSERT_TRUE(r.valid);
        EXPECT_EQ(r.paddr, 0x40'0000 + i * pageSize);
        EXPECT_EQ(r.perms.write, i % 3 != 0);
    }
}
