/**
 * @file
 * Unit tests for the OS model: processes, demand paging, frame
 * management, accelerator scheduling (Fig. 3a/3e), and violation
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include "bc/border_control.hh"
#include "mem/dram.hh"
#include "os/kernel.hh"

using namespace bctrl;

namespace {

struct KernelTest : public ::testing::Test {
    EventQueue eq;
    BackingStore store{256ULL * 1024 * 1024};
    Kernel kernel{eq, "kernel", store, Kernel::Params{}};
};

} // namespace

TEST_F(KernelTest, CreateProcessAssignsUniqueAsids)
{
    Process &a = kernel.createProcess();
    Process &b = kernel.createProcess();
    EXPECT_NE(a.asid(), b.asid());
    EXPECT_EQ(kernel.findProcess(a.asid()), &a);
    EXPECT_EQ(kernel.findProcess(b.asid()), &b);
    EXPECT_EQ(kernel.findProcess(9999), nullptr);
}

TEST_F(KernelTest, MmapReservesButDoesNotMap)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(64 * 1024, Perms::readWrite());
    EXPECT_NE(va, 0u);
    EXPECT_FALSE(p.pageTable().walk(va).valid);
    ASSERT_NE(p.findVma(va), nullptr);
    EXPECT_EQ(p.findVma(va + 64 * 1024), nullptr);
}

TEST_F(KernelTest, PopulatedMmapMapsEagerly)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(16 * 1024, Perms::readWrite(), true);
    for (Addr off = 0; off < 16 * 1024; off += pageSize)
        EXPECT_TRUE(p.pageTable().walk(va + off).valid);
}

TEST_F(KernelTest, DemandFaultMapsOnePage)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(64 * 1024, Perms::readWrite());
    EXPECT_TRUE(p.handleFault(va + 0x2345, true));
    WalkResult r = p.pageTable().walk(va + 0x2000);
    EXPECT_TRUE(r.valid);
    EXPECT_TRUE(r.perms.write);
    EXPECT_FALSE(p.pageTable().walk(va + 0x4000).valid);
    EXPECT_EQ(p.faultsServiced(), 1u);
}

TEST_F(KernelTest, FaultOutsideAnyVmaFails)
{
    Process &p = kernel.createProcess();
    EXPECT_FALSE(p.handleFault(0xdead0000, false));
}

TEST_F(KernelTest, WriteFaultOnReadOnlyRegionFails)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(pageSize, Perms::readOnly());
    EXPECT_FALSE(p.handleFault(va, true));
    EXPECT_TRUE(p.handleFault(va, false));
}

TEST_F(KernelTest, LargePageRegionMapsTwoMegabytes)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(largePageSize, Perms::readWrite(), false, true);
    EXPECT_TRUE(p.handleFault(va + 0x12345, true));
    WalkResult r = p.pageTable().walk(va + largePageSize - 1);
    EXPECT_TRUE(r.valid);
    EXPECT_TRUE(r.largePage);
}

TEST_F(KernelTest, ProtectRangeDowngradesWholeVma)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(2 * pageSize, Perms::readWrite(), true);
    p.protectRange(va, 2 * pageSize, Perms::readOnly());
    EXPECT_FALSE(p.pageTable().walk(va).perms.write);
    EXPECT_FALSE(p.pageTable().walk(va + pageSize).perms.write);
    EXPECT_FALSE(p.findVma(va)->perms.write);
}

TEST_F(KernelTest, ProtectPageLeavesVmaAlone)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(2 * pageSize, Perms::readWrite(), true);
    Perms old = p.protectPage(va, Perms::readOnly());
    EXPECT_TRUE(old.write);
    EXPECT_FALSE(p.pageTable().walk(va).perms.write);
    EXPECT_TRUE(p.pageTable().walk(va + pageSize).perms.write);
    EXPECT_TRUE(p.findVma(va)->perms.write);
}

TEST_F(KernelTest, UnmapRangeFreesFrames)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(4 * pageSize, Perms::readWrite(), true);
    p.unmapRange(va, 4 * pageSize);
    EXPECT_FALSE(p.pageTable().walk(va).valid);
    EXPECT_EQ(p.findVma(va), nullptr);
}

TEST_F(KernelTest, FreedFramesAreReusedZeroed)
{
    Addr f1 = kernel.allocFrame();
    store.write64(f1, 0x1234);
    kernel.freeFrame(f1);
    Addr f2 = kernel.allocFrame();
    EXPECT_EQ(f2, f1);
    EXPECT_EQ(store.read64(f2), 0u);
}

TEST_F(KernelTest, ContiguousAllocationIsPageAlignedAndZeroed)
{
    Addr base = kernel.allocContiguous(3 * pageSize + 5);
    EXPECT_EQ(pageOffset(base), 0u);
    EXPECT_EQ(store.read64(base), 0u);
    Addr next = kernel.allocFrame();
    EXPECT_GE(next, base + 4 * pageSize);
}

namespace {

struct BcFixture : public KernelTest {
    Dram dram{eq, "mem", store, Dram::Params{}};
    BorderControl bc{eq, "bc", BorderControl::Params{}, dram};

    void
    SetUp() override
    {
        kernel.attachAccelerator(nullptr, &bc, nullptr);
    }
};

} // namespace

TEST_F(BcFixture, SchedulingFirstProcessSetsUpTable)
{
    Process &p = kernel.createProcess();
    EXPECT_EQ(bc.table(), nullptr);
    kernel.scheduleOnAccelerator(p);
    ASSERT_NE(bc.table(), nullptr);
    EXPECT_EQ(bc.useCount(), 1u);
    EXPECT_TRUE(kernel.accelRunning(p.asid()));
    // Fig. 3a: the table covers all of physical memory and is zeroed.
    EXPECT_EQ(bc.table()->boundPpns(), store.numPages());
    EXPECT_TRUE(bc.table()->getPerms(0).none());
}

TEST_F(BcFixture, SecondProcessSharesTheTable)
{
    Process &a = kernel.createProcess();
    Process &b = kernel.createProcess();
    kernel.scheduleOnAccelerator(a);
    ProtectionTable *table = bc.table();
    kernel.scheduleOnAccelerator(b);
    EXPECT_EQ(bc.table(), table);
    EXPECT_EQ(bc.useCount(), 2u);
}

TEST_F(BcFixture, ReleaseLastProcessTearsDownTable)
{
    Process &p = kernel.createProcess();
    kernel.scheduleOnAccelerator(p);
    bc.onTranslation(p.asid(), 0x10, 50, Perms::readWrite(), false);
    bool released = false;
    kernel.releaseAccelerator(p, [&]() { released = true; });
    eq.run();
    EXPECT_TRUE(released);
    EXPECT_FALSE(kernel.accelRunning(p.asid()));
    EXPECT_EQ(bc.table(), nullptr);
    EXPECT_EQ(bc.useCount(), 0u);
}

TEST_F(BcFixture, ReleaseWithRemainingProcessKeepsTable)
{
    Process &a = kernel.createProcess();
    Process &b = kernel.createProcess();
    kernel.scheduleOnAccelerator(a);
    kernel.scheduleOnAccelerator(b);
    bool released = false;
    kernel.releaseAccelerator(a, [&]() { released = true; });
    eq.run();
    EXPECT_TRUE(released);
    EXPECT_NE(bc.table(), nullptr);
    EXPECT_EQ(bc.useCount(), 1u);
    EXPECT_TRUE(kernel.accelRunning(b.asid()));
}

TEST_F(BcFixture, ViolationsAreRecorded)
{
    Packet pkt;
    pkt.paddr = 0xbad000;
    pkt.cmd = MemCmd::Write;
    kernel.onViolation(pkt);
    ASSERT_EQ(kernel.violations().size(), 1u);
    EXPECT_EQ(kernel.violations()[0].paddr, 0xbad000u);
    EXPECT_TRUE(kernel.violations()[0].wasWrite);
}

TEST_F(BcFixture, PageFaultServiceGoesThroughProcess)
{
    Process &p = kernel.createProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite());
    EXPECT_TRUE(kernel.handlePageFault(p.asid(), va, true));
    EXPECT_FALSE(kernel.handlePageFault(999, va, true));
}

TEST_F(BcFixture, DestroySceduledProcessPanics)
{
    Process &p = kernel.createProcess();
    kernel.scheduleOnAccelerator(p);
    EXPECT_DEATH(kernel.destroyProcess(p), "still scheduled");
}
