/**
 * @file
 * Unit tests for the small shared vocabulary types: permissions,
 * address helpers, packets, and logging formatting.
 */

#include <gtest/gtest.h>

#include "mem/packet.hh"
#include "sim/logging.hh"
#include "vm/perms.hh"

using namespace bctrl;

TEST(Perms, CoversSemantics)
{
    EXPECT_TRUE(Perms::readWrite().covers(Perms::readOnly()));
    EXPECT_TRUE(Perms::readWrite().covers(Perms{false, true}));
    EXPECT_TRUE(Perms::readWrite().covers(Perms::noAccess()));
    EXPECT_FALSE(Perms::readOnly().covers(Perms{false, true}));
    EXPECT_FALSE(Perms::noAccess().covers(Perms::readOnly()));
    EXPECT_TRUE(Perms::noAccess().covers(Perms::noAccess()));
}

TEST(Perms, UnionOperator)
{
    EXPECT_EQ((Perms::readOnly() | Perms{false, true}),
              Perms::readWrite());
    EXPECT_EQ((Perms::noAccess() | Perms::noAccess()),
              Perms::noAccess());
    EXPECT_EQ((Perms::readWrite() | Perms::readOnly()),
              Perms::readWrite());
}

TEST(Perms, BitRoundTrip)
{
    for (std::uint8_t bits = 0; bits < 4; ++bits)
        EXPECT_EQ(Perms::fromBits(bits).toBits(), bits);
    EXPECT_EQ(Perms::readOnly().toBits(), 1);
    EXPECT_EQ((Perms{false, true}).toBits(), 2);
    EXPECT_EQ(Perms::readWrite().toBits(), 3);
}

TEST(AddrHelpers, PageArithmetic)
{
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
    EXPECT_EQ(pageOffset(0x12345), 0x345u);
    EXPECT_EQ(pageNumber(0x12345), 0x12u);
    EXPECT_EQ(blockAlign(0x12345), 0x12300u);
    EXPECT_EQ(roundUp(0x1001, 0x1000), 0x2000u);
    EXPECT_EQ(roundUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(pagesPerLargePage, 512u);
}

TEST(Packet, FactoryAndPredicates)
{
    auto rd = Packet::make(MemCmd::Read, 0x1234, 64,
                           Requestor::accelerator, 7);
    EXPECT_TRUE(rd->isRead());
    EXPECT_FALSE(rd->isWrite());
    EXPECT_EQ(rd->asid, 7);
    EXPECT_EQ(rd->blockAddr(), 0x1200u);
    EXPECT_EQ(rd->pageNum(), 0x1u);

    auto wb = Packet::make(MemCmd::Writeback, 0x2000, 128,
                           Requestor::cpu);
    EXPECT_TRUE(wb->isWrite());
    EXPECT_TRUE(wb->isWriteback());
}

TEST(Packet, ToStringMentionsEssentials)
{
    auto pkt = Packet::make(MemCmd::Write, 0xabcd, 32,
                            Requestor::accelerator, 3);
    pkt->denied = true;
    std::string s = pkt->toString();
    EXPECT_NE(s.find("Write"), std::string::npos);
    EXPECT_NE(s.find("acc"), std::string::npos);
    EXPECT_NE(s.find("abcd"), std::string::npos);
    EXPECT_NE(s.find("DENIED"), std::string::npos);
}

TEST(Logging, FormatString)
{
    EXPECT_EQ(formatString("x=%d s=%s", 42, "yes"), "x=42 s=yes");
    EXPECT_EQ(formatString("plain"), "plain");
}

TEST(Logging, VerbosityToggle)
{
    bool before = logVerbose();
    setLogVerbose(false);
    EXPECT_FALSE(logVerbose());
    setLogVerbose(true);
    EXPECT_TRUE(logVerbose());
    setLogVerbose(before);
}

TEST(Types, FrequencyToPeriod)
{
    EXPECT_EQ(periodFromFrequency(1'000'000'000ULL), 1'000u); // 1 GHz
    EXPECT_EQ(periodFromFrequency(700'000'000ULL), 1'428u);
    EXPECT_EQ(periodFromFrequency(3'000'000'000ULL), 333u);
}
