/**
 * @file
 * The domain-sharded parallel loop's determinism contract: for every
 * safety configuration, a run with config.parallelLoop enabled must be
 * bit-identical to the serial run — same RunResult counters and the
 * same simulated-state stats dump, down to the last component counter
 * that appears in it. The windowed conservative grant protocol
 * guarantees this by construction (DESIGN.md §14); these tests are
 * the executable form of that guarantee. Host-side blocks (allocation
 * profile, queue internals, coordinator counters) are excluded: they
 * describe where the host put things, not what the machine did.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "config/system_builder.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
smallConfig(SafetyModel m, GpuProfile p = GpuProfile::highlyThreaded)
{
    SystemConfig cfg;
    cfg.safety = m;
    cfg.profile = p;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    return cfg;
}

std::string
statsOf(const System &sys)
{
    std::ostringstream os;
    sys.dumpSimStats(os);
    return os.str();
}

/** Run @p workload serial and sharded; expect identical outcomes. */
void
expectBitIdentical(SystemConfig cfg, const std::string &workload)
{
    cfg.parallelLoop = false;
    System serial(cfg);
    const RunResult a = serial.run(workload);

    cfg.parallelLoop = true;
    System sharded(cfg);
    const RunResult b = sharded.run(workload);

    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.gpuCycles, b.gpuCycles);
    EXPECT_EQ(a.memOps, b.memOps);
    EXPECT_EQ(a.borderRequests, b.borderRequests);
    EXPECT_EQ(a.bccHits, b.bccHits);
    EXPECT_EQ(a.bccMisses, b.bccMisses);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.downgrades, b.downgrades);
    EXPECT_EQ(a.pageFaults, b.pageFaults);
    EXPECT_EQ(a.translations, b.translations);
    EXPECT_EQ(a.pageWalks, b.pageWalks);
    // The sim-only stats dump covers every component counter the
    // system exposes; any scheduling divergence shows up here even
    // when the headline RunResult numbers happen to agree.
    EXPECT_EQ(statsOf(serial), statsOf(sharded));
}

} // namespace

class ParallelLoopIdentityTest
    : public ::testing::TestWithParam<SafetyModel>
{};

TEST_P(ParallelLoopIdentityTest, UniformWorkloadBitIdentical)
{
    expectBitIdentical(smallConfig(GetParam()), "uniform");
}

TEST_P(ParallelLoopIdentityTest, StridedWorkloadBitIdentical)
{
    expectBitIdentical(smallConfig(GetParam()), "strided");
}

INSTANTIATE_TEST_SUITE_P(
    Safety, ParallelLoopIdentityTest,
    ::testing::Values(SafetyModel::atsOnlyIommu, SafetyModel::fullIommu,
                      SafetyModel::capiLike,
                      SafetyModel::borderControlNoBcc,
                      SafetyModel::borderControlBcc));

TEST(ParallelLoop, ModerateProfileBitIdentical)
{
    expectBitIdentical(smallConfig(SafetyModel::borderControlBcc,
                                   GpuProfile::moderatelyThreaded),
                       "uniform");
}

TEST(ParallelLoop, ShardedRunExecutesOnEveryDomainQueue)
{
    SystemConfig cfg = smallConfig(SafetyModel::borderControlBcc);
    cfg.parallelLoop = true;
    System sys(cfg);
    const RunResult r = sys.run("uniform");
    EXPECT_GT(r.memOps, 0u);
    ASSERT_NE(sys.parallelLoop(), nullptr);
    // The loop actually dispatched work to every shard (the grant
    // protocol was exercised, not a degenerate single-queue run).
    EXPECT_GT(sys.parallelLoop()->grants(), 0u);
    EXPECT_GT(sys.parallelLoop()->executedIn(Domain::border), 0u);
    EXPECT_GT(sys.parallelLoop()->executedIn(Domain::gpuCluster), 0u);
    EXPECT_GT(sys.parallelLoop()->executedIn(Domain::dram), 0u);
}

TEST(ParallelLoop, RepeatedShardedRunsAreDeterministic)
{
    SystemConfig cfg = smallConfig(SafetyModel::borderControlBcc);
    cfg.parallelLoop = true;
    System a(cfg);
    System b(cfg);
    const RunResult ra = a.run("uniform");
    const RunResult rb = b.run("uniform");
    EXPECT_EQ(ra.runtimeTicks, rb.runtimeTicks);
    EXPECT_EQ(statsOf(a), statsOf(b));
}
