/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace bctrl;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Random, BoundedStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.nextBounded(17), 17u);
        auto v = r.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Random, BoundedOneAlwaysZero)
{
    Random r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Random, DoubleInUnitInterval)
{
    Random r(11);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, BernoulliRoughlyCalibrated)
{
    Random r(13);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (r.nextBool(0.3))
            ++heads;
    }
    EXPECT_NEAR(heads / double(n), 0.3, 0.02);
}

TEST(Random, BernoulliExtremes)
{
    Random r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Random, GeometricRespectsCap)
{
    Random r(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(r.nextGeometric(0.01, 40), 40u);
    EXPECT_EQ(r.nextGeometric(1.0, 40), 0u);
    EXPECT_EQ(r.nextGeometric(0.0, 40), 40u);
}

TEST(Random, BoundedIsRoughlyUniform)
{
    Random r(23);
    const unsigned buckets = 8;
    unsigned counts[buckets] = {0};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[r.nextBounded(buckets)];
    for (unsigned b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b] / double(n), 1.0 / buckets, 0.01);
}
