/**
 * @file
 * Unit tests for the Border Control Cache: subblocked entries, fills
 * from the Protection Table, write-through updates, LRU replacement,
 * and the size/reach arithmetic of §3.1.2 and Fig. 6.
 */

#include <gtest/gtest.h>

#include "bc/bcc.hh"
#include "bc/protection_table.hh"

using namespace bctrl;

namespace {

struct BccTest : public ::testing::Test {
    BackingStore store{256ULL * 1024 * 1024};
    ProtectionTable table{store, 0x10000, store.numPages()};

    BorderControlCache::Params
    params(unsigned entries = 4, unsigned pages_per_entry = 8)
    {
        BorderControlCache::Params p;
        p.entries = entries;
        p.pagesPerEntry = pages_per_entry;
        return p;
    }
};

} // namespace

TEST_F(BccTest, MissOnEmpty)
{
    BorderControlCache bcc(params());
    EXPECT_FALSE(bcc.lookup(5).has_value());
    EXPECT_EQ(bcc.misses(), 1u);
    EXPECT_EQ(bcc.hits(), 0u);
}

TEST_F(BccTest, FillLoadsWholeGroupFromTable)
{
    BorderControlCache bcc(params(4, 8));
    table.setPerms(8, Perms::readOnly());
    table.setPerms(9, Perms::readWrite());
    // Filling for PPN 10 brings in the whole group [8, 16).
    Perms p10 = bcc.fill(10, table);
    EXPECT_TRUE(p10.none());
    EXPECT_EQ(*bcc.lookup(8), Perms::readOnly());
    EXPECT_EQ(*bcc.lookup(9), Perms::readWrite());
    EXPECT_TRUE(bcc.lookup(15)->none());
    EXPECT_FALSE(bcc.lookup(16).has_value()); // next group
}

TEST_F(BccTest, UpdateOnlyTouchesResidentEntries)
{
    BorderControlCache bcc(params(4, 8));
    EXPECT_FALSE(bcc.update(20, Perms::readWrite()));
    bcc.fill(20, table);
    EXPECT_TRUE(bcc.update(20, Perms::readWrite()));
    EXPECT_EQ(*bcc.lookup(20), Perms::readWrite());
}

TEST_F(BccTest, LruReplacementEvictsOldest)
{
    BorderControlCache bcc(params(2, 8)); // 2 entries
    bcc.fill(0, table);   // group 0
    bcc.fill(8, table);   // group 1
    bcc.lookup(0);        // group 0 is now MRU
    bcc.fill(16, table);  // group 2 evicts group 1
    EXPECT_TRUE(bcc.resident(0));
    EXPECT_FALSE(bcc.resident(8));
    EXPECT_TRUE(bcc.resident(16));
}

TEST_F(BccTest, InvalidatePageDropsCoveringEntry)
{
    BorderControlCache bcc(params(4, 8));
    bcc.fill(0, table);
    bcc.invalidatePage(3); // same group as 0
    EXPECT_FALSE(bcc.resident(0));
}

TEST_F(BccTest, InvalidateAllDropsEverything)
{
    BorderControlCache bcc(params(4, 8));
    bcc.fill(0, table);
    bcc.fill(8, table);
    bcc.invalidateAll();
    EXPECT_FALSE(bcc.resident(0));
    EXPECT_FALSE(bcc.resident(8));
}

TEST_F(BccTest, RefillReflectsTableChanges)
{
    BorderControlCache bcc(params(4, 8));
    bcc.fill(0, table);
    EXPECT_TRUE(bcc.lookup(0)->none());
    // Table changes while the entry is resident are not visible until
    // update() or a refill - the BCC is explicitly managed.
    table.setPerms(0, Perms::readWrite());
    EXPECT_TRUE(bcc.lookup(0)->none());
    bcc.invalidateAll();
    bcc.fill(0, table);
    EXPECT_EQ(*bcc.lookup(0), Perms::readWrite());
}

TEST_F(BccTest, PaperDefaultSizeIs8KB)
{
    // 64 entries x 512 pages/entry x 2 bits = 8 KB of payload (the
    // paper's configuration), plus 36-bit tags.
    BorderControlCache::Params p;
    p.entries = 64;
    p.pagesPerEntry = 512;
    p.tagBits = 36;
    BorderControlCache bcc(p);
    EXPECT_EQ(bcc.sizeBits(), 64u * (36 + 1024));
    // Reach: permissions for 32K pages = 128 MB (§3.1.2).
    EXPECT_EQ(bcc.reachPages(), 32u * 1024);
    EXPECT_EQ(bcc.reachPages() * pageSize, 128ULL << 20);
}

TEST_F(BccTest, FillBytesMatchesGroupFootprint)
{
    BorderControlCache::Params p;
    p.entries = 64;
    p.pagesPerEntry = 512;
    BorderControlCache bcc(p);
    EXPECT_EQ(bcc.fillBytes(), 128u); // 512 pages x 2 bits = one block

    BorderControlCache::Params small;
    small.entries = 64;
    small.pagesPerEntry = 1;
    BorderControlCache tiny(small);
    EXPECT_EQ(tiny.fillBytes(), 1u);
}

TEST_F(BccTest, SinglePagePerEntryDegeneratesToPlainCache)
{
    BorderControlCache bcc(params(4, 1));
    table.setPerms(100, Perms::readOnly());
    bcc.fill(100, table);
    EXPECT_EQ(*bcc.lookup(100), Perms::readOnly());
    EXPECT_FALSE(bcc.lookup(101).has_value());
}

TEST_F(BccTest, SpatialLocalityRewardsLargeEntries)
{
    // The Fig. 6 effect in miniature: scanning 64 consecutive pages
    // with 8-page entries misses 8 times; with 1-page entries, 64.
    BorderControlCache wide(params(16, 8));
    BorderControlCache narrow(params(16, 1));
    for (Addr ppn = 0; ppn < 64; ++ppn) {
        if (!wide.lookup(ppn))
            wide.fill(ppn, table);
        if (!narrow.lookup(ppn))
            narrow.fill(ppn, table);
    }
    EXPECT_EQ(wide.misses(), 8u);
    EXPECT_EQ(narrow.misses(), 64u);
}

TEST_F(BccTest, ProbeDoesNotPerturbLruOrStats)
{
    BorderControlCache bcc(params(2, 8));
    bcc.fill(0, table);
    bcc.fill(8, table);
    const auto h = bcc.hits();
    const auto m = bcc.misses();
    bcc.probe(0);
    bcc.probe(99);
    EXPECT_EQ(bcc.hits(), h);
    EXPECT_EQ(bcc.misses(), m);
    // probe(0) must not have refreshed group 0: group 0 is still LRU.
    bcc.fill(16, table);
    EXPECT_FALSE(bcc.resident(0));
}

TEST_F(BccTest, OutOfBoundsPagesFillAsNoAccess)
{
    BackingStore small(1 << 20); // 256 pages
    ProtectionTable t(small, 0, 256);
    BorderControlCache bcc(params(4, 512));
    // Group 0 covers [0, 512) but the table only covers 256 pages.
    Perms p = bcc.fill(300, t);
    EXPECT_TRUE(p.none());
    EXPECT_TRUE(bcc.lookup(511)->none());
}
