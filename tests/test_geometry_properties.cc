/**
 * @file
 * Property-style sweeps (TEST_P) over structure geometries: the cache,
 * BCC, and TLB invariants must hold for every size/associativity/
 * subblocking combination the configuration space allows, not just the
 * defaults.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "bc/bcc.hh"
#include "bc/protection_table.hh"
#include "cache/cache.hh"
#include "mem/dram.hh"
#include "sim/random.hh"

using namespace bctrl;

// --------------------------------------------------------------------
// Cache geometry sweep: (size KB, assoc, write-through?)
// --------------------------------------------------------------------

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 bool>>
{
  protected:
    EventQueue eq;
    BackingStore store{1 << 26};
    Dram dram{eq, "mem", store, Dram::Params{}};

    Cache::Params
    params()
    {
        auto [size_kb, assoc, wt] = GetParam();
        Cache::Params p;
        p.size = Addr(size_kb) * 1024;
        p.assoc = assoc;
        p.clockPeriod = 1'000;
        p.writeThrough = wt;
        p.side = Requestor::accelerator;
        return p;
    }

    void
    access(Cache &c, MemCmd cmd, Addr addr)
    {
        auto pkt =
            Packet::make(cmd, addr, 64, Requestor::accelerator);
        c.access(pkt);
        eq.run();
    }
};

TEST_P(CacheGeometryTest, RepeatedAccessAlwaysHitsSecondTime)
{
    Cache c(eq, "c", params(), dram);
    Random rng(99);
    for (int i = 0; i < 200; ++i) {
        Addr addr = rng.nextBounded(1 << 22) & ~Addr(63);
        access(c, MemCmd::Read, addr);
        const auto hits = c.demandHits();
        access(c, MemCmd::Read, addr); // immediately again: must hit
        EXPECT_EQ(c.demandHits(), hits + 1) << "addr " << addr;
    }
}

TEST_P(CacheGeometryTest, WorkingSetWithinCapacityStaysResident)
{
    Cache c(eq, "c", params(), dram);
    const Addr capacity = params().size;
    // Touch a working set of half the capacity, twice: second pass
    // must be (almost) all hits regardless of geometry. (Hashing can
    // produce a handful of conflicts at high utilization; half
    // capacity keeps every set within its ways.)
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < capacity / 2; a += 128)
            access(c, MemCmd::Read, 0x100000 + a);
    }
    const double hit_rate =
        double(c.demandHits()) /
        double(c.demandHits() + c.demandMisses());
    EXPECT_GT(hit_rate, 0.45);
}

TEST_P(CacheGeometryTest, FlushAlwaysLeavesNothingDirty)
{
    Cache c(eq, "c", params(), dram);
    Random rng(7);
    for (int i = 0; i < 100; ++i) {
        access(c, MemCmd::Write,
               rng.nextBounded(1 << 20) & ~Addr(63));
    }
    bool flushed = false;
    c.flushAll([&]() { flushed = true; });
    eq.run();
    ASSERT_TRUE(flushed);
    unsigned valid = 0;
    c.tags().forEachBlock([&](CacheBlock &) { ++valid; });
    EXPECT_EQ(valid, 0u);
    EXPECT_FALSE(c.busy());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values(4u, 16u, 64u, 256u),
                       ::testing::Values(1u, 4u, 8u),
                       ::testing::Bool()));

// --------------------------------------------------------------------
// BCC geometry sweep: (entries, pages per entry)
// --------------------------------------------------------------------

class BccGeometryTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    BackingStore store{1ULL << 30};
    ProtectionTable table{store, 0, store.numPages()};

    BorderControlCache::Params
    params()
    {
        auto [entries, ppe] = GetParam();
        BorderControlCache::Params p;
        p.entries = entries;
        p.pagesPerEntry = ppe;
        return p;
    }
};

TEST_P(BccGeometryTest, FillThenLookupAlwaysHits)
{
    BorderControlCache bcc(params());
    Random rng(3);
    for (int i = 0; i < 500; ++i) {
        Addr ppn = rng.nextBounded(1 << 18);
        table.setPerms(ppn, Perms::readOnly());
        Perms filled = bcc.fill(ppn, table);
        EXPECT_EQ(filled, Perms::readOnly());
        auto hit = bcc.lookup(ppn);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, Perms::readOnly());
        table.setPerms(ppn, Perms::noAccess()); // keep the table clean
        bcc.update(ppn, Perms::noAccess());
    }
}

TEST_P(BccGeometryTest, ResidencyNeverExceedsEntryCount)
{
    BorderControlCache bcc(params());
    auto [entries, ppe] = GetParam();
    // Fill from more distinct groups than there are entries.
    for (unsigned g = 0; g < entries * 3; ++g)
        bcc.fill(Addr(g) * ppe, table);
    unsigned resident = 0;
    for (unsigned g = 0; g < entries * 3; ++g) {
        if (bcc.resident(Addr(g) * ppe))
            ++resident;
    }
    EXPECT_EQ(resident, entries);
}

TEST_P(BccGeometryTest, ReachAndSizeFormulas)
{
    BorderControlCache bcc(params());
    auto [entries, ppe] = GetParam();
    EXPECT_EQ(bcc.reachPages(), std::uint64_t(entries) * ppe);
    EXPECT_EQ(bcc.sizeBits(),
              std::uint64_t(entries) * (36 + 2ULL * ppe));
    EXPECT_EQ(bcc.fillBytes(), std::max(1u, ppe / 4));
}

TEST_P(BccGeometryTest, InvalidateAllEmptiesEverything)
{
    BorderControlCache bcc(params());
    auto [entries, ppe] = GetParam();
    for (unsigned g = 0; g < entries; ++g)
        bcc.fill(Addr(g) * ppe, table);
    bcc.invalidateAll();
    for (unsigned g = 0; g < entries; ++g)
        EXPECT_FALSE(bcc.resident(Addr(g) * ppe));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BccGeometryTest,
    ::testing::Combine(::testing::Values(1u, 4u, 64u, 256u),
                       ::testing::Values(1u, 2u, 32u, 512u)));
