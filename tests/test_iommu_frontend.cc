/**
 * @file
 * Unit tests for the IOMMU checking front end: translation, denial,
 * port throughput, the own-TLB (CAPI-like) variant, and shootdowns.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "os/kernel.hh"
#include "vm/iommu_frontend.hh"

using namespace bctrl;

namespace {

struct IommuTest : public ::testing::Test {
    EventQueue eq;
    BackingStore store{256ULL * 1024 * 1024};
    Dram dram{eq, "mem", store, Dram::Params{}};
    Kernel kernel{eq, "kernel", store, Kernel::Params{}};
    Ats ats{eq, "ats", Ats::Params{}, dram};

    void
    SetUp() override
    {
        ats.setKernel(&kernel);
        kernel.attachAccelerator(nullptr, nullptr, &ats);
    }

    Process &
    runningProcess()
    {
        Process &p = kernel.createProcess();
        kernel.scheduleOnAccelerator(p);
        return p;
    }

    PacketPtr
    virtualPacket(Asid asid, Addr vaddr, bool write)
    {
        auto pkt = Packet::make(write ? MemCmd::Write : MemCmd::Read, 0,
                                32, Requestor::accelerator, asid);
        pkt->isVirtual = true;
        pkt->vaddr = vaddr;
        return pkt;
    }
};

} // namespace

TEST_F(IommuTest, TranslatesAndForwardsLegitimateRequests)
{
    IommuFrontend fe(eq, "iommu", IommuFrontend::Params{}, ats, dram);
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = p.pageTable().walk(va);

    bool denied = true;
    Addr seen_paddr = 0;
    auto pkt = virtualPacket(p.asid(), va + 0x40, false);
    pkt->onResponse = [&](Packet &r) {
        denied = r.denied;
        seen_paddr = r.paddr;
    };
    fe.access(pkt);
    eq.run();
    EXPECT_FALSE(denied);
    EXPECT_EQ(seen_paddr, w.paddr + 0x40);
    EXPECT_EQ(fe.denials(), 0u);
}

TEST_F(IommuTest, DeniesWritesToReadOnlyPages)
{
    IommuFrontend fe(eq, "iommu", IommuFrontend::Params{}, ats, dram);
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readOnly(), true);

    bool denied = false;
    auto pkt = virtualPacket(p.asid(), va, true);
    pkt->onResponse = [&](Packet &r) { denied = r.denied; };
    fe.access(pkt);
    eq.run();
    EXPECT_TRUE(denied);
    EXPECT_EQ(fe.denials(), 1u);
}

TEST_F(IommuTest, DeniesForeignAsids)
{
    IommuFrontend fe(eq, "iommu", IommuFrontend::Params{}, ats, dram);
    runningProcess();
    bool denied = false;
    bool handler_called = false;
    fe.setViolationHandler(
        [&](const Packet &) { handler_called = true; });
    auto pkt = virtualPacket(4242, 0x10000000, false);
    pkt->onResponse = [&](Packet &r) { denied = r.denied; };
    fe.access(pkt);
    eq.run();
    EXPECT_TRUE(denied);
    EXPECT_TRUE(handler_called);
}

TEST_F(IommuTest, PortWidthThrottlesBursts)
{
    IommuFrontend::Params narrow;
    narrow.requestsPerCycle = 1;
    narrow.clockPeriod = 1'000;
    IommuFrontend fe(eq, "iommu", narrow, ats, dram);
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    // Warm the ATS L2 TLB so only the port gates throughput.
    {
        auto pkt = virtualPacket(p.asid(), va, false);
        fe.access(pkt);
        eq.run();
    }
    std::vector<Tick> done;
    for (int i = 0; i < 16; ++i) {
        auto pkt = virtualPacket(p.asid(), va + i * 32, false);
        pkt->onResponse = [&](Packet &) { done.push_back(eq.curTick()); };
        fe.access(pkt);
    }
    eq.run();
    ASSERT_EQ(done.size(), 16u);
    EXPECT_GE(done.back() - done.front(), 15u * 1'000u);
}

TEST_F(IommuTest, OwnTlbServesRepeatsWithoutAts)
{
    IommuFrontend::Params capi;
    capi.ownTlb = true;
    capi.requestsPerCycle = 8;
    IommuFrontend fe(eq, "capi", capi, ats, dram);
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);

    auto first = virtualPacket(p.asid(), va, false);
    fe.access(first);
    eq.run();
    const auto ats_translations = ats.translations();

    // Repeats hit the unit's own TLB: no further ATS traffic.
    for (int i = 0; i < 8; ++i) {
        auto pkt = virtualPacket(p.asid(), va + i * 32, false);
        fe.access(pkt);
    }
    eq.run();
    EXPECT_EQ(ats.translations(), ats_translations);
    EXPECT_GE(fe.requests(), 9u);
    ASSERT_NE(fe.ownTlb(), nullptr);
    EXPECT_GE(fe.ownTlb()->hits(), 8u);
}

TEST_F(IommuTest, ShootdownInvalidatesOwnTlb)
{
    IommuFrontend::Params capi;
    capi.ownTlb = true;
    IommuFrontend fe(eq, "capi", capi, ats, dram);
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    auto first = virtualPacket(p.asid(), va, false);
    fe.access(first);
    eq.run();
    ASSERT_TRUE(fe.ownTlb()->probe(p.asid(), pageNumber(va))
                    .has_value());
    fe.invalidatePage(p.asid(), pageNumber(va));
    EXPECT_FALSE(fe.ownTlb()->probe(p.asid(), pageNumber(va))
                     .has_value());

    fe.access(virtualPacket(p.asid(), va, false));
    eq.run();
    fe.invalidateAsid(p.asid());
    EXPECT_FALSE(fe.ownTlb()->probe(p.asid(), pageNumber(va))
                     .has_value());
}

TEST_F(IommuTest, RejectsPhysicalPackets)
{
    IommuFrontend fe(eq, "iommu", IommuFrontend::Params{}, ats, dram);
    auto pkt =
        Packet::make(MemCmd::Read, 0x1000, 32, Requestor::accelerator);
    EXPECT_DEATH(fe.access(pkt), "pre-translated");
}
