/**
 * @file
 * Unit tests for the discrete-event queue and clock-domain helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace bctrl;

namespace {

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(std::vector<int> &log, int id,
                           int priority = Event::defaultPriority)
        : Event(priority), log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // namespace

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, EqualTickEventsRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent low(log, 1, Event::statsPriority);
    CountingEvent high(log, 2, Event::coherencePriority);
    eq.schedule(&low, 10);
    eq.schedule(&high, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleSquashesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, RescheduledEventRunsExactlyOnce)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1);
    eq.schedule(&a, 10);
    eq.reschedule(&a, 15);
    eq.reschedule(&a, 25);
    eq.run();
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventQueue, LambdaEventsFireAndAreOwnedByQueue)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda([&fired]() { ++fired; }, 5);
    eq.scheduleLambda([&fired]() { ++fired; }, 7);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 10)
            eq.scheduleLambda(chain, eq.curTick() + 1);
    };
    eq.scheduleLambda(chain, 0);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.curTick(), 9u);
}

TEST(EventQueue, RunWithMaxTickStops)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda([&]() { ++fired; }, 10);
    eq.scheduleLambda([&]() { ++fired; }, 1000);
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleLambda([]() {}, 100);
    eq.run();
    CountingEvent *ev = nullptr;
    std::vector<int> log;
    CountingEvent real(log, 1);
    ev = &real;
    EXPECT_DEATH(eq.schedule(ev, 50), "in the past");
}

TEST(EventQueue, EventsProcessedCountIsAccurate)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.scheduleLambda([]() {}, i * 3);
    eq.run();
    EXPECT_EQ(eq.eventsProcessed(), 25u);
}

TEST(Clocked, CyclesToTicksAndBack)
{
    EventQueue eq;
    Clocked clk(eq, 1'429); // 700 MHz
    EXPECT_EQ(clk.clockPeriod(), 1'429u);
    EXPECT_EQ(clk.cyclesToTicks(10), 14'290u);
    EXPECT_EQ(clk.curCycle(), 0u);
}

TEST(Clocked, NextCycleTickAlignsUp)
{
    EventQueue eq;
    Clocked clk(eq, 1'000);
    eq.scheduleLambda([]() {}, 1'500);
    eq.run();
    EXPECT_EQ(eq.curTick(), 1'500u);
    EXPECT_EQ(clk.nextCycleTick(), 2'000u);
    EXPECT_EQ(clk.clockEdge(3), 5'000u);
}

TEST(Clocked, NextCycleTickOnEdgeStaysPut)
{
    EventQueue eq;
    Clocked clk(eq, 1'000);
    eq.scheduleLambda([]() {}, 2'000);
    eq.run();
    EXPECT_EQ(clk.nextCycleTick(), 2'000u);
}

TEST(EventQueue, DeterministicAcrossRuns)
{
    auto run_once = []() {
        EventQueue eq;
        std::vector<int> log;
        for (int i = 0; i < 100; ++i) {
            eq.scheduleLambda([&log, i]() { log.push_back(i); },
                              (i * 37) % 50);
        }
        eq.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}
