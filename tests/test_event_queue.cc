/**
 * @file
 * Unit tests for the discrete-event queue and clock-domain helpers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"

using namespace bctrl;

namespace {

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(std::vector<int> &log, int id,
                           int priority = Event::defaultPriority)
        : Event(priority), log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // namespace

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, EqualTickEventsRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent low(log, 1, Event::statsPriority);
    CountingEvent high(log, 2, Event::coherencePriority);
    eq.schedule(&low, 10);
    eq.schedule(&high, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleSquashesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, RescheduledEventRunsExactlyOnce)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(log, 1);
    eq.schedule(&a, 10);
    eq.reschedule(&a, 15);
    eq.reschedule(&a, 25);
    eq.run();
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventQueue, LambdaEventsFireAndAreOwnedByQueue)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda([&fired]() { ++fired; }, 5);
    eq.scheduleLambda([&fired]() { ++fired; }, 7);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 10)
            eq.scheduleLambda(chain, eq.curTick() + 1);
    };
    eq.scheduleLambda(chain, 0);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.curTick(), 9u);
}

TEST(EventQueue, RunWithMaxTickStops)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda([&]() { ++fired; }, 10);
    eq.scheduleLambda([&]() { ++fired; }, 1000);
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleLambda([]() {}, 100);
    eq.run();
    CountingEvent *ev = nullptr;
    std::vector<int> log;
    CountingEvent real(log, 1);
    ev = &real;
    EXPECT_DEATH(eq.schedule(ev, 50), "in the past");
}

TEST(EventQueue, EventsProcessedCountIsAccurate)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.scheduleLambda([]() {}, i * 3);
    eq.run();
    EXPECT_EQ(eq.eventsProcessed(), 25u);
}

TEST(Clocked, CyclesToTicksAndBack)
{
    EventQueue eq;
    Clocked clk(eq, 1'429); // 700 MHz
    EXPECT_EQ(clk.clockPeriod(), 1'429u);
    EXPECT_EQ(clk.cyclesToTicks(10), 14'290u);
    EXPECT_EQ(clk.curCycle(), 0u);
}

TEST(Clocked, NextCycleTickAlignsUp)
{
    EventQueue eq;
    Clocked clk(eq, 1'000);
    eq.scheduleLambda([]() {}, 1'500);
    eq.run();
    EXPECT_EQ(eq.curTick(), 1'500u);
    EXPECT_EQ(clk.nextCycleTick(), 2'000u);
    EXPECT_EQ(clk.clockEdge(3), 5'000u);
}

TEST(Clocked, NextCycleTickOnEdgeStaysPut)
{
    EventQueue eq;
    Clocked clk(eq, 1'000);
    eq.scheduleLambda([]() {}, 2'000);
    eq.run();
    EXPECT_EQ(clk.nextCycleTick(), 2'000u);
}

TEST(EventQueue, DeterministicAcrossRuns)
{
    auto run_once = []() {
        EventQueue eq;
        std::vector<int> log;
        for (int i = 0; i < 100; ++i) {
            eq.scheduleLambda([&log, i]() { log.push_back(i); },
                              (i * 37) % 50);
        }
        eq.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}


namespace {

/**
 * Reference model for the ladder property tests: the classic single
 * binary heap with squash-on-pop semantics that the ladder replaced.
 * Keys are (when, priority, sequence), sequences handed out in push
 * order, exactly like EventQueue.
 */
class RefModel
{
  public:
    void
    schedule(int id, Tick when, int priority)
    {
        auto &st = state_[id];
        st.scheduled = true;
        st.seq = nextSeq_++;
        heap_.push(Ref{when, priority, st.seq, id});
    }

    void deschedule(int id) { state_[id].scheduled = false; }

    /** Pop the next live entry; -1 when drained. */
    int
    pop(Tick &when_out)
    {
        while (!heap_.empty()) {
            Ref r = heap_.top();
            heap_.pop();
            auto &st = state_[r.id];
            if (!st.scheduled || st.seq != r.seq)
                continue; // squashed or superseded
            st.scheduled = false;
            when_out = r.when;
            return r.id;
        }
        return -1;
    }

  private:
    struct Ref {
        Tick when;
        int priority;
        std::uint64_t seq;
        int id;
    };
    struct After {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };
    struct State {
        bool scheduled = false;
        std::uint64_t seq = 0;
    };
    std::priority_queue<Ref, std::vector<Ref>, After> heap_;
    std::map<int, State> state_;
    std::uint64_t nextSeq_ = 0;
};

/** Deterministic xorshift generator for the property tests. */
class TestRng
{
  public:
    explicit TestRng(std::uint64_t seed) : x_(seed | 1) {}

    std::uint64_t
    next()
    {
        x_ ^= x_ << 13;
        x_ ^= x_ >> 7;
        x_ ^= x_ << 17;
        return x_;
    }

    std::uint64_t operator()(std::uint64_t bound) { return next() % bound; }

  private:
    std::uint64_t x_;
};

} // namespace

/**
 * The core ladder property: under random schedule / deschedule /
 * reschedule interleavings whose deltas cover the active window, the
 * ladder buckets, and the far-future overflow heap, the ladder fires
 * events in exactly the reference heap's (tick, priority, sequence)
 * order. Runs in lockstep so a divergence pinpoints its op.
 */
TEST(EventQueueLadder, RandomInterleavingsMatchReferenceHeap)
{
    constexpr int numEvents = 48;
    constexpr int numOps = 20000;

    EventQueue eq;
    RefModel ref;
    TestRng rng(0x5eed0123);

    std::vector<int> log;
    std::vector<std::unique_ptr<CountingEvent>> events;
    for (int i = 0; i < numEvents; ++i) {
        // Fixed per-event priorities exercise the intra-tick ordering.
        events.push_back(std::make_unique<CountingEvent>(
            log, i, (i % 3) - 1));
    }

    // Delta spreads: inside the 4096-tick active window, across ladder
    // buckets, and past the ~2.1us ladder span into the overflow heap.
    const Tick spreads[] = {1, 4'096, 300'000, 3'000'000, 40'000'000};

    auto randomDelta = [&]() { return rng(spreads[rng(5)]) + rng(3); };

    for (int op = 0; op < numOps; ++op) {
        const std::uint64_t kind = rng(10);
        const int id = static_cast<int>(rng(numEvents));
        Event *ev = events[id].get();
        if (kind < 4) {
            if (!ev->scheduled()) {
                const Tick when = eq.curTick() + randomDelta();
                eq.schedule(ev, when);
                ref.schedule(id, when, ev->priority());
            }
        } else if (kind < 6) {
            if (ev->scheduled()) {
                eq.deschedule(ev);
                ref.deschedule(id);
            }
        } else if (kind < 7) {
            if (ev->scheduled()) {
                const Tick when = eq.curTick() + randomDelta();
                eq.reschedule(ev, when);
                ref.deschedule(id);
                ref.schedule(id, when, ev->priority());
            }
        } else {
            const std::size_t before = log.size();
            const bool ran = eq.step();
            Tick ref_when = 0;
            const int ref_id = ref.pop(ref_when);
            if (!ran) {
                ASSERT_EQ(ref_id, -1) << "ladder drained early at op "
                                      << op;
            } else {
                ASSERT_EQ(log.size(), before + 1);
                ASSERT_EQ(log.back(), ref_id) << "order diverged at op "
                                              << op;
                ASSERT_EQ(eq.curTick(), ref_when);
            }
        }
    }

    // Drain both completely; the tails must agree too.
    for (;;) {
        const bool ran = eq.step();
        Tick ref_when = 0;
        const int ref_id = ref.pop(ref_when);
        if (!ran) {
            ASSERT_EQ(ref_id, -1);
            break;
        }
        ASSERT_EQ(log.back(), ref_id);
        ASSERT_EQ(eq.curTick(), ref_when);
    }
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEntries(), 0u);
}

/**
 * Same-tick FIFO is load-bearing for bit-identical results: events at
 * one tick run in priority-then-insertion order even when they were
 * inserted across different storage tiers (drain array, overlay,
 * overflow spill) of the ladder.
 */
TEST(EventQueueLadder, SameTickFifoAcrossStorageTiers)
{
    EventQueue eq;
    std::vector<int> log;

    // Far enough ahead to start in the overflow heap, so the entries
    // migrate overflow -> bucket -> drain before firing.
    const Tick t = 3'000'000;
    CountingEvent late(log, 2, Event::statsPriority);
    CountingEvent early(log, 0, Event::coherencePriority);
    CountingEvent mid1(log, 1);
    CountingEvent mid2(log, 10);
    eq.schedule(&late, t);
    eq.schedule(&mid1, t);
    eq.schedule(&mid2, t);
    eq.schedule(&early, t);

    // Same tick again, but scheduled from inside an event at t (lands
    // in the overlay mid-drain).
    eq.scheduleLambda(
        [&eq, &log]() {
            eq.scheduleLambda([&log]() { log.push_back(11); },
                              eq.curTick());
        },
        t);

    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 10, 11, 2}));
}

/**
 * The spill/refill boundary: events right at the ladder horizon go to
 * the overflow heap and must re-enter the ladder in order as the
 * window advances across several full ladder spans.
 */
TEST(EventQueueLadder, FarFutureSpillRefillBoundary)
{
    EventQueue eq;
    std::vector<int> log;

    // One event per region: active window, mid-ladder, exactly at the
    // horizon, one past it, one several spans out, and the maximum
    // spread pair straddling a span multiple.
    const Tick span = Tick(4096) * 512;
    struct Plan {
        int id;
        Tick when;
    };
    const Plan plan[] = {
        {0, 10},          {1, 5'000},        {2, span - 1},
        {3, span},        {4, span + 1},     {5, 3 * span},
        {6, 3 * span + 4096}, {7, 10 * span - 1}, {8, 10 * span},
    };
    std::vector<std::unique_ptr<CountingEvent>> events;
    for (const Plan &p : plan) {
        events.push_back(std::make_unique<CountingEvent>(log, p.id));
        eq.schedule(events.back().get(), p.when);
    }
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(eq.curTick(), 10 * span);
    EXPECT_TRUE(eq.empty());
}

/**
 * The satellite fix: squashed entries die when their bucket is
 * drained (counted by stalePurged) instead of lingering in pending
 * storage until their tick would have come up.
 */
TEST(EventQueueLadder, SquashedEntriesArePurgedAtBucketDrain)
{
    EventQueue eq;
    std::vector<int> log;

    // A batch of future-bucket timers, all but one descheduled — the
    // classic watchdog re-arm pattern.
    constexpr int n = 16;
    std::vector<std::unique_ptr<CountingEvent>> events;
    for (int i = 0; i < n; ++i) {
        events.push_back(std::make_unique<CountingEvent>(log, i));
        eq.schedule(events[i].get(), 100'000 + i);
    }
    for (int i = 1; i < n; ++i)
        eq.deschedule(events[i].get());

    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.pendingEntries(), static_cast<std::uint64_t>(n));

    eq.run();
    EXPECT_EQ(log, std::vector<int>{0});
    EXPECT_EQ(eq.stalePurged(), static_cast<std::uint64_t>(n - 1));
    EXPECT_EQ(eq.pendingEntries(), 0u);
}

/**
 * Batched unbounded dispatch is an optimization, not a semantic: a
 * run() must produce the same firing order as single-stepping the
 * same schedule.
 */
TEST(EventQueueLadder, BatchedRunMatchesSingleStepping)
{
    auto build = [](EventQueue &eq, std::vector<int> &log,
                    std::vector<std::unique_ptr<CountingEvent>> &evs) {
        TestRng rng(0xabcdef01);
        for (int i = 0; i < 200; ++i) {
            evs.push_back(std::make_unique<CountingEvent>(
                log, i, (i % 3) - 1));
            eq.schedule(evs.back().get(), rng(500'000));
        }
    };

    std::vector<int> batched_log;
    {
        EventQueue eq;
        std::vector<std::unique_ptr<CountingEvent>> evs;
        build(eq, batched_log, evs);
        eq.run();
    }
    std::vector<int> stepped_log;
    {
        EventQueue eq;
        std::vector<std::unique_ptr<CountingEvent>> evs;
        build(eq, stepped_log, evs);
        while (eq.step()) {
        }
    }
    EXPECT_EQ(batched_log, stepped_log);
    EXPECT_EQ(batched_log.size(), 200u);
}
