/**
 * @file
 * Tests for the deterministic chaos engine (sim/fault.hh): seeded
 * decision replay, rule gating, the hang watchdog, retry recovery at
 * the ATS and shootdown borders, OS-level kill/quarantine recovery,
 * and the zero-cost contract for the fault hooks. The FaultOverhead
 * suite backs the ctest `perf_fault_overhead` (label "perf").
 */

#include <gtest/gtest.h>

#include <vector>

#include "bc/attack.hh"
#include "bc/border_control.hh"
#include "mem/dram.hh"
#include "os/kernel.hh"
#include "sim/fault.hh"

using namespace bctrl;
using fault::FaultEngine;
using fault::FaultPlan;
using fault::Kind;
using fault::Point;
using fault::Rule;
using fault::Watchdog;

namespace {

SystemConfig
chaosConfig()
{
    SystemConfig cfg;
    cfg.safety = SafetyModel::borderControlBcc;
    cfg.profile = GpuProfile::moderatelyThreaded;
    cfg.workloadScale = 1;
    return cfg;
}

std::vector<Kind>
decisionTrace(FaultEngine &engine, Point point, unsigned n)
{
    std::vector<Kind> kinds;
    kinds.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        kinds.push_back(engine.decide(point, Tick{i} * 1000).kind);
    return kinds;
}

} // namespace

// ---------------------------------------------------------------------
// FaultEngine: seeded, replayable decisions.

TEST(FaultEngine, SameSeedSameDecisions)
{
    FaultPlan plan;
    plan.rules = {Rule{Point::dramResponse, Kind::drop, 0.5}};

    FaultEngine a(plan);
    FaultEngine b(plan);
    EXPECT_EQ(decisionTrace(a, Point::dramResponse, 64),
              decisionTrace(b, Point::dramResponse, 64));
}

TEST(FaultEngine, DifferentSeedDifferentDecisions)
{
    FaultPlan plan;
    plan.rules = {Rule{Point::dramResponse, Kind::drop, 0.5}};
    FaultEngine a(plan);
    plan.seed ^= 0x9e3779b97f4a7c15ULL;
    FaultEngine b(plan);
    // 64 coin flips from independent streams: collision odds 2^-64.
    EXPECT_NE(decisionTrace(a, Point::dramResponse, 64),
              decisionTrace(b, Point::dramResponse, 64));
}

TEST(FaultEngine, PointsAreIndependentlyGated)
{
    FaultPlan plan;
    plan.rules = {Rule{Point::atsResponse, Kind::delay, 1.0, 5'000}};
    FaultEngine engine(plan);

    EXPECT_EQ(engine.decide(Point::dramResponse, 0).kind, Kind::none);
    const fault::Decision d = engine.decide(Point::atsResponse, 0);
    EXPECT_EQ(d.kind, Kind::delay);
    EXPECT_EQ(d.delay, 5'000u);
}

TEST(FaultEngine, WindowAndMaxFiresGate)
{
    FaultPlan plan;
    Rule r{Point::atsResponse, Kind::drop, 1.0};
    r.windowStart = 1'000;
    r.windowEnd = 2'000;
    r.maxFires = 3;
    plan.rules = {r};
    FaultEngine engine(plan);

    EXPECT_EQ(engine.decide(Point::atsResponse, 500).kind, Kind::none);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(engine.decide(Point::atsResponse, 1'500).kind,
                  Kind::drop);
    }
    // maxFires exhausted: the rule is spent even inside the window.
    EXPECT_EQ(engine.decide(Point::atsResponse, 1'500).kind, Kind::none);
    EXPECT_EQ(engine.decide(Point::atsResponse, 2'500).kind, Kind::none);
    EXPECT_EQ(engine.totalInjected(), 3u);
}

TEST(FaultEngine, SuppressorAndDisableBlockInjection)
{
    FaultPlan plan;
    plan.rules = {Rule{Point::gpuRequest, Kind::duplicate, 1.0}};
    FaultEngine engine(plan);

    {
        FaultEngine::Suppressor guard(&engine);
        EXPECT_EQ(engine.decide(Point::gpuRequest, 0).kind, Kind::none);
    }
    EXPECT_EQ(engine.decide(Point::gpuRequest, 0).kind,
              Kind::duplicate);

    engine.setEnabled(false);
    EXPECT_EQ(engine.decide(Point::gpuRequest, 0).kind, Kind::none);
}

TEST(FaultEngine, HeldDropsReleaseOnDemand)
{
    EventQueue eq;
    FaultPlan plan;
    plan.rules = {Rule{Point::dramResponse, Kind::drop, 1.0}};
    FaultEngine engine(plan);

    int delivered = 0;
    engine.holdDropped("dram", 100, [&]() { ++delivered; });
    engine.holdDropped("dram", 250, [&]() { ++delivered; });
    EXPECT_EQ(engine.heldCount(), 2u);
    EXPECT_EQ(engine.oldestHeldTick(), 100u);
    EXPECT_EQ(delivered, 0);

    engine.releaseDropped(eq);
    eq.run();
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(engine.heldCount(), 0u);
    EXPECT_EQ(engine.dropsReleased(), 2u);
}

// ---------------------------------------------------------------------
// Watchdog: simulated-time hang detection.

TEST(Watchdog, DeclaresHangWhenStalledWithOutstandingWork)
{
    EventQueue eq;
    Watchdog wd(eq, nullptr, 1'000);
    wd.setOutstandingProbe([]() { return std::uint64_t{1}; });
    wd.addReporter([]() { return std::string("  stuck: op #7\n"); });
    wd.arm();
    eq.run();

    EXPECT_TRUE(wd.hangDetected());
    EXPECT_EQ(wd.hangTick(), 1'000u);
    EXPECT_TRUE(eq.stopRequested());
    EXPECT_NE(wd.report().find("no forward progress"),
              std::string::npos);
    EXPECT_NE(wd.report().find("stuck: op #7"), std::string::npos);
}

TEST(Watchdog, ProgressKeepsItQuiet)
{
    EventQueue eq;
    bool done = false;
    Watchdog wd(eq, nullptr, 1'000);
    wd.setOutstandingProbe([]() { return std::uint64_t{1}; });
    wd.setDoneProbe([&done]() { return done; });

    // Something completes inside every interval, then the run ends.
    for (Tick t = 500; t <= 4'500; t += 500)
        eq.scheduleLambda([&eq]() { eq.noteProgress(); }, t);
    eq.scheduleLambda([&done]() { done = true; }, 4'600);

    wd.arm();
    eq.run();
    EXPECT_FALSE(wd.hangDetected());
    EXPECT_FALSE(eq.stopRequested());
}

TEST(Watchdog, QuiescentIdleIsNotAHang)
{
    EventQueue eq;
    bool done = false;
    Watchdog wd(eq, nullptr, 1'000);
    // Nothing outstanding: pure-compute phases must not trip it.
    wd.setOutstandingProbe([]() { return std::uint64_t{0}; });
    wd.setDoneProbe([&done]() { return done; });
    eq.scheduleLambda([&done]() { done = true; }, 3'500);

    wd.arm();
    eq.run();
    EXPECT_FALSE(wd.hangDetected());
}

TEST(Watchdog, StandsDownWhenDoneSoTheQueueDrains)
{
    EventQueue eq;
    Watchdog wd(eq, nullptr, 1'000);
    wd.setOutstandingProbe([]() { return std::uint64_t{1}; });
    wd.setDoneProbe([]() { return true; });
    wd.arm();
    // Without the done probe this would either spin forever or declare
    // a bogus hang; with it the first check stands down and run()
    // returns with an empty queue.
    eq.run();
    EXPECT_FALSE(wd.hangDetected());
    EXPECT_EQ(eq.size(), 0u);
}

// ---------------------------------------------------------------------
// Chaos: full-system fault injection, recovery, and quarantine.

TEST(Chaos, WatchdogCatchesInjectedHang)
{
    SystemConfig cfg = chaosConfig();
    Rule drop{Point::dramResponse, Kind::drop, 1.0};
    drop.maxFires = 1;
    cfg.faultPlan.rules = {drop};
    cfg.faultPlan.watchdogInterval = 20'000'000;

    System sys(cfg);
    RunResult r = sys.run("uniform");

    EXPECT_TRUE(r.hung);
    EXPECT_EQ(r.faultsInjected, 1u);
    // The held response was re-delivered after detection so the
    // machine drained (teardown contracts would fire otherwise).
    EXPECT_EQ(r.dropsReleased, 1u);
    ASSERT_NE(sys.watchdog(), nullptr);
    EXPECT_TRUE(sys.watchdog()->hangDetected());
    EXPECT_FALSE(sys.watchdog()->report().empty());
    EXPECT_EQ(sys.packetPool().inFlight(), 0u);
}

TEST(Chaos, AtsRetryRecoversFromDroppedResponses)
{
    SystemConfig cfg = chaosConfig();
    cfg.faultPlan.rules = {Rule{Point::atsResponse, Kind::drop, 0.2}};
    cfg.faultPlan.watchdogInterval = 50'000'000;

    System sys(cfg);
    RunResult r = sys.run("uniform");

    EXPECT_FALSE(r.hung);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.atsRetries, 0u);
    EXPECT_EQ(r.unsafeWrites, 0u);
    EXPECT_EQ(sys.packetPool().inFlight(), 0u);
}

TEST(Chaos, ShootdownRetriesRecoverDroppedAcks)
{
    SystemConfig cfg = chaosConfig();
    cfg.faultPlan.rules = {Rule{Point::shootdownAck, Kind::drop, 0.5}};
    cfg.faultPlan.watchdogInterval = 50'000'000;
    cfg.downgradesPerSecond = 2'000'000.0;

    System sys(cfg);
    RunResult r = sys.run("uniform");

    EXPECT_FALSE(r.hung);
    EXPECT_GT(r.downgrades, 0u);
    EXPECT_GT(r.shootdownRetries, 0u);
    EXPECT_EQ(sys.packetPool().inFlight(), 0u);
}

TEST(Chaos, QuarantineRecoversWithRequestsInFlight)
{
    SystemConfig cfg = chaosConfig();
    cfg.quarantineOnViolation = true;
    // Inactive rules; the watchdog interval installs the engine so the
    // chaos counters land in RunResult.
    cfg.faultPlan.watchdogInterval = 50'000'000;

    System sys(cfg);
    AttackInjector inject(sys);
    // Strike early, while the workload has requests in flight: the
    // violation must quarantine the accelerator without losing any of
    // them.
    inject.scheduleAttackAt(50'000, AttackKind::wildWrite,
                            cfg.physMemBytes - pageSize);
    RunResult r = sys.run("uniform");

    EXPECT_FALSE(r.hung);
    EXPECT_GE(r.violations, 1u);
    EXPECT_GE(r.quarantines, 1u);
    EXPECT_EQ(r.kills, 0u);
    EXPECT_EQ(r.unsafeWrites, 0u);
    EXPECT_EQ(inject.blocked(), 1u);
    EXPECT_EQ(inject.unblocked(), 0u);

    ASSERT_GE(sys.kernel().recoveries().size(), 1u);
    const RecoveryRecord &rec = sys.kernel().recoveries().front();
    EXPECT_EQ(rec.paddr, cfg.physMemBytes - pageSize);
    EXPECT_TRUE(rec.wasWrite);
    EXPECT_GT(rec.end, rec.begin);
    EXPECT_EQ(sys.packetPool().inFlight(), 0u);
}

namespace {

struct KillFixture : public ::testing::Test {
    EventQueue eq;
    BackingStore store{256ULL * 1024 * 1024};
    Kernel kernel{eq, "kernel", store, []() {
                      Kernel::Params p;
                      p.killOnViolation = true;
                      return p;
                  }()};
    Dram dram{eq, "mem", store, Dram::Params{}};
    BorderControl bc{eq, "bc", BorderControl::Params{}, dram};

    void
    SetUp() override
    {
        kernel.attachAccelerator(nullptr, &bc, nullptr);
    }
};

} // namespace

TEST_F(KillFixture, KillOnViolationUnschedulesOnlyTheOffender)
{
    Process &attacker = kernel.createProcess();
    Process &victim = kernel.createProcess();
    kernel.scheduleOnAccelerator(attacker);
    kernel.scheduleOnAccelerator(victim);
    bc.onTranslation(victim.asid(), 0x40, 10, Perms::readWrite(), false);

    Packet pkt;
    pkt.cmd = MemCmd::Write;
    pkt.paddr = 0xbad000;
    pkt.asid = attacker.asid();
    kernel.onViolation(pkt);
    eq.run();

    EXPECT_EQ(kernel.kills(), 1u);
    EXPECT_FALSE(kernel.accelRunning(attacker.asid()));
    EXPECT_TRUE(kernel.accelRunning(victim.asid()));
    // Revocation is whole-table (merged permissions, §3.1.1): the
    // survivor's grants are gone too and refill lazily.
    ASSERT_NE(bc.table(), nullptr);
    EXPECT_TRUE(bc.table()->getPerms(10).none());
    EXPECT_EQ(bc.useCount(), 1u);
}

TEST_F(KillFixture, ReleasingAKilledProcessStillCompletes)
{
    Process &p = kernel.createProcess();
    kernel.scheduleOnAccelerator(p);

    Packet pkt;
    pkt.cmd = MemCmd::Write;
    pkt.paddr = 0xbad000;
    pkt.asid = p.asid();
    kernel.onViolation(pkt);
    EXPECT_FALSE(kernel.accelRunning(p.asid()));
    EXPECT_EQ(bc.table(), nullptr);

    // The workload teardown path still runs: release must not wedge or
    // panic on the already-killed process.
    bool released = false;
    kernel.releaseAccelerator(p, [&]() { released = true; });
    eq.run();
    EXPECT_TRUE(released);
}

TEST_F(KillFixture, WildViolationWithoutAsidKillsNobody)
{
    Process &p = kernel.createProcess();
    kernel.scheduleOnAccelerator(p);

    Packet pkt;
    pkt.cmd = MemCmd::Write;
    pkt.paddr = 0xbad000;
    pkt.asid = 0;
    kernel.onViolation(pkt);

    EXPECT_EQ(kernel.kills(), 0u);
    EXPECT_TRUE(kernel.accelRunning(p.asid()));
    EXPECT_EQ(kernel.violations().size(), 1u);
}

// ---------------------------------------------------------------------
// FaultOverhead: the zero-cost contract behind compiling the hooks in.
// Backs the `perf_fault_overhead` ctest.

TEST(FaultOverhead, InactivePlanRunsAreBitIdentical)
{
    RunResult first;
    std::uint64_t first_events = 0;
    for (int i = 0; i < 2; ++i) {
        System sys(chaosConfig());
        EXPECT_EQ(sys.faultEngine(), nullptr);
        EXPECT_EQ(sys.watchdog(), nullptr);
        RunResult r = sys.run("uniform");
        if (i == 0) {
            first = r;
            first_events = sys.eventQueue().eventsProcessed();
            continue;
        }
        EXPECT_EQ(r.runtimeTicks, first.runtimeTicks);
        EXPECT_EQ(r.gpuCycles, first.gpuCycles);
        EXPECT_EQ(r.memOps, first.memOps);
        EXPECT_EQ(r.translations, first.translations);
        EXPECT_EQ(sys.eventQueue().eventsProcessed(), first_events);
    }
}

TEST(FaultOverhead, ZeroRateEngineChangesNoSimulatedResult)
{
    System off(chaosConfig());

    SystemConfig armed = chaosConfig();
    armed.faultPlan.rules = {Rule{Point::dramResponse, Kind::drop, 0.0}};
    armed.faultPlan.watchdogInterval = 50'000'000;
    System on(armed);
    ASSERT_NE(on.faultEngine(), nullptr);
    ASSERT_NE(on.watchdog(), nullptr);

    RunResult r_off = off.run("uniform");
    RunResult r_on = on.run("uniform");

    // A rate-0 rule draws from the engine's private stream only: every
    // simulated result stays bit-identical to the unhooked run.
    EXPECT_EQ(r_on.runtimeTicks, r_off.runtimeTicks);
    EXPECT_EQ(r_on.memOps, r_off.memOps);
    EXPECT_EQ(r_on.translations, r_off.translations);
    EXPECT_EQ(r_on.pageWalks, r_off.pageWalks);
    EXPECT_EQ(r_on.violations, r_off.violations);
    EXPECT_EQ(r_on.dramBytes, r_off.dramBytes);
    EXPECT_EQ(r_on.faultsInjected, 0u);
    EXPECT_FALSE(r_on.hung);
}
