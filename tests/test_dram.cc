/**
 * @file
 * Unit tests for the DRAM latency/bandwidth model and the bus.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/mem_bus.hh"

using namespace bctrl;

namespace {

struct Fixture {
    EventQueue eq;
    BackingStore store{1 << 24};
    Dram::Params params;

    Fixture()
    {
        params.accessLatency = 50'000;
        params.bytesPerSecond = 180ULL * 1000 * 1000 * 1000;
        params.minBurstBytes = 64;
    }
};

} // namespace

TEST(Dram, SingleReadLatency)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    Tick done = 0;
    auto pkt = Packet::make(MemCmd::Read, 0x1000, 64, Requestor::cpu);
    pkt->onResponse = [&](Packet &) { done = f.eq.curTick(); };
    dram.access(pkt);
    f.eq.run();
    // transfer time for 64 B at 180 GB/s is ~355 ps, plus 50 ns.
    EXPECT_GE(done, 50'000u);
    EXPECT_LT(done, 51'000u);
}

TEST(Dram, WritesAckAtChannelAccept)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    Tick done = 0;
    auto pkt = Packet::make(MemCmd::Write, 0x1000, 64, Requestor::cpu);
    pkt->onResponse = [&](Packet &) { done = f.eq.curTick(); };
    dram.access(pkt);
    f.eq.run();
    EXPECT_LT(done, 1'000u); // no access latency on the ack
}

TEST(Dram, BandwidthQueuesBackToBackRequests)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    std::vector<Tick> completions;
    for (int i = 0; i < 100; ++i) {
        auto pkt = Packet::make(MemCmd::Read, 0x1000 + i * 128, 128,
                                Requestor::cpu);
        pkt->onResponse = [&](Packet &) {
            completions.push_back(f.eq.curTick());
        };
        dram.access(pkt);
    }
    f.eq.run();
    ASSERT_EQ(completions.size(), 100u);
    // 100 x 128 B at 180 GB/s needs ~71 ns of channel time; the last
    // response must be at least that far out.
    EXPECT_GT(completions.back(), completions.front());
    const Tick channel_time = completions.back() - completions.front();
    EXPECT_NEAR(static_cast<double>(channel_time), 99 * 128 * 5.56,
                2'000.0);
}

TEST(Dram, ShortRequestsPayMinimumBurst)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    // Two 8-byte reads: the second is delayed by a full 64 B burst.
    Tick first = 0, second = 0;
    auto p1 = Packet::make(MemCmd::Read, 0x0, 8, Requestor::cpu);
    p1->onResponse = [&](Packet &) { first = f.eq.curTick(); };
    auto p2 = Packet::make(MemCmd::Read, 0x100, 8, Requestor::cpu);
    p2->onResponse = [&](Packet &) { second = f.eq.curTick(); };
    dram.access(p1);
    dram.access(p2);
    f.eq.run();
    EXPECT_GE(second - first, 64 * 5u); // >= one 64 B burst time
}

TEST(Dram, UtilizationAndCountersTrack)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    unsigned responses = 0;
    for (int i = 0; i < 10; ++i) {
        auto rd = Packet::make(MemCmd::Read, i * 128, 128,
                               Requestor::cpu);
        rd->onResponse = [&](Packet &) { ++responses; };
        dram.access(rd);
        auto wb = Packet::make(MemCmd::Writeback, i * 128, 128,
                               Requestor::cpu);
        wb->onResponse = [&](Packet &) { ++responses; };
        dram.access(wb);
    }
    f.eq.run();
    EXPECT_EQ(responses, 20u);
    EXPECT_EQ(dram.bytesTransferred(), 20u * 128u);
    EXPECT_GT(dram.utilization(), 0.0);
    EXPECT_LE(dram.utilization(), 1.0);
}

TEST(MemBus, ForwardsWithLatency)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    MemBus::Params bp;
    bp.latency = 2'000;
    MemBus bus(f.eq, "bus", dram, bp);
    Tick done = 0;
    auto pkt = Packet::make(MemCmd::Read, 0x40, 64, Requestor::cpu);
    pkt->onResponse = [&](Packet &) { done = f.eq.curTick(); };
    bus.access(pkt);
    f.eq.run();
    EXPECT_GE(done, 52'000u); // bus latency + DRAM latency
}

TEST(MemBus, OptionalBandwidthLimitSerializes)
{
    Fixture f;
    Dram dram(f.eq, "mem", f.store, f.params);
    MemBus::Params bp;
    bp.latency = 1'000;
    bp.bytesPerSecond = 10ULL * 1000 * 1000 * 1000; // 10 GB/s
    MemBus bus(f.eq, "bus", dram, bp);
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i) {
        auto pkt = Packet::make(MemCmd::Read, i * 128, 128,
                                Requestor::cpu);
        pkt->onResponse = [&](Packet &) { done.push_back(f.eq.curTick()); };
        bus.access(pkt);
    }
    f.eq.run();
    ASSERT_EQ(done.size(), 4u);
    // 128 B at 10 GB/s = 12.8 ns per packet on the bus.
    EXPECT_GE(done.back() - done.front(), 3 * 12'000u);
}
