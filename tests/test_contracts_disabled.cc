/**
 * @file
 * Verifies the compiled-out form of the contract macros: with
 * BCTRL_CONTRACTS_ENABLED forced to 0 in this translation unit, the
 * condition must be parsed but never evaluated, so contracts on hot
 * paths are free in release builds even when their conditions have
 * side effects or call functions.
 */

#ifdef BCTRL_CONTRACTS_ENABLED
#undef BCTRL_CONTRACTS_ENABLED
#endif
#define BCTRL_CONTRACTS_ENABLED 0

#include "sim/contracts.hh"

#include <gtest/gtest.h>

namespace {

int
mustNotRun(int &calls)
{
    return ++calls;
}

TEST(ContractsDisabledTest, ConditionIsNeverEvaluated)
{
    int calls = 0;
    BCTRL_ASSERT(mustNotRun(calls) == 123);
    BCTRL_ASSERT_MSG(mustNotRun(calls) == 456, "never printed");
    EXPECT_EQ(calls, 0);
}

TEST(ContractsDisabledTest, FalseConditionDoesNotAbort)
{
    BCTRL_ASSERT(false);
    BCTRL_ASSERT_MSG(false, "never printed");
    SUCCEED();
}

} // namespace
