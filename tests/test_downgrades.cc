/**
 * @file
 * Tests for the memory-mapping-update protocol (Fig. 3d, §3.2.4):
 * quiesce, shootdown, conditional cache flush, table/BCC update — in
 * both the full-flush and selective-flush variants — plus the Fig. 7
 * downgrade-injection machinery.
 */

#include <gtest/gtest.h>

#include "config/system_builder.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
cfg(SafetyModel m = SafetyModel::borderControlBcc,
    bool selective = false)
{
    SystemConfig c;
    c.safety = m;
    c.physMemBytes = 512ULL * 1024 * 1024;
    c.selectiveFlush = selective;
    return c;
}

} // namespace

TEST(Downgrades, WritablePageDowngradeFlushesAndZeroes)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = proc.pageTable().walk(va);
    sys.kernel().scheduleOnAccelerator(proc);
    sys.borderControl()->onTranslation(proc.asid(), pageNumber(va),
                                       pageNumber(w.paddr),
                                       Perms::readWrite(), false);
    ASSERT_EQ(sys.borderControl()->table()->getPerms(pageNumber(w.paddr)),
              Perms::readWrite());

    bool done = false;
    sys.kernel().downgradePage(proc, va, Perms::readOnly(),
                               [&]() { done = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(done);
    // Full-flush path: the whole table was zeroed.
    EXPECT_TRUE(sys.borderControl()
                    ->table()
                    ->getPerms(pageNumber(w.paddr))
                    .none());
    // The page table itself holds the new permissions.
    WalkResult after = proc.pageTable().walk(va);
    EXPECT_TRUE(after.perms.read);
    EXPECT_FALSE(after.perms.write);
    EXPECT_EQ(sys.kernel().downgradesPerformed(), 1u);
}

TEST(Downgrades, SelectiveFlushOnlyTouchesThePage)
{
    System sys(cfg(SafetyModel::borderControlBcc, true));
    Process &proc = sys.kernel().createProcess();
    Addr va1 = proc.mmap(pageSize, Perms::readWrite(), true);
    Addr va2 = proc.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w1 = proc.pageTable().walk(va1);
    WalkResult w2 = proc.pageTable().walk(va2);
    sys.kernel().scheduleOnAccelerator(proc);
    auto *bc = sys.borderControl();
    bc->onTranslation(proc.asid(), pageNumber(va1), pageNumber(w1.paddr),
                      Perms::readWrite(), false);
    bc->onTranslation(proc.asid(), pageNumber(va2), pageNumber(w2.paddr),
                      Perms::readWrite(), false);

    bool done = false;
    sys.kernel().downgradePage(proc, va1, Perms::readOnly(),
                               [&]() { done = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(done);
    // §3.2.4 optimization: only the affected page's entry changes.
    EXPECT_EQ(bc->table()->getPerms(pageNumber(w1.paddr)),
              Perms::readOnly());
    EXPECT_EQ(bc->table()->getPerms(pageNumber(w2.paddr)),
              Perms::readWrite());
}

TEST(Downgrades, ReadOnlyPageDowngradeSkipsTheFlush)
{
    // Copy-on-write fast path: a read-only page cannot be dirty in the
    // accelerator caches, so no flush (and no table zeroing) happens.
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va_ro = proc.mmap(pageSize, Perms::readOnly(), true);
    Addr va_rw = proc.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w_ro = proc.pageTable().walk(va_ro);
    WalkResult w_rw = proc.pageTable().walk(va_rw);
    sys.kernel().scheduleOnAccelerator(proc);
    auto *bc = sys.borderControl();
    bc->onTranslation(proc.asid(), pageNumber(va_ro),
                      pageNumber(w_ro.paddr), Perms::readOnly(), false);
    bc->onTranslation(proc.asid(), pageNumber(va_rw),
                      pageNumber(w_rw.paddr), Perms::readWrite(), false);

    bool done = false;
    sys.kernel().downgradePage(proc, va_ro, Perms::noAccess(),
                               [&]() { done = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(done);
    // The unrelated writable page's entry survived: no zeroing.
    EXPECT_EQ(bc->table()->getPerms(pageNumber(w_rw.paddr)),
              Perms::readWrite());
    EXPECT_TRUE(
        bc->table()->getPerms(pageNumber(w_ro.paddr)).none());
}

TEST(Downgrades, DuringKernelExecutionRemainsCorrect)
{
    // Downgrade injection while a workload runs: the run completes
    // with zero violations (the protocol quiesces, flushes, and
    // repopulates lazily).
    SystemConfig c = cfg();
    c.downgradesPerSecond = 50'000; // aggressive, to hit mid-run
    System sys(c);
    RunResult r = sys.run("bfs");
    EXPECT_EQ(r.violations, 0u);
    EXPECT_GT(r.downgrades, 0u);
}

TEST(Downgrades, InjectionAddsRuntimeOverhead)
{
    SystemConfig quiet_cfg = cfg();
    System baseline(quiet_cfg);
    RunResult base = baseline.run("bfs");

    SystemConfig noisy = cfg();
    noisy.downgradesPerSecond = 100'000;
    System stormy(noisy);
    RunResult storm = stormy.run("bfs");

    EXPECT_GT(storm.downgrades, base.downgrades);
    EXPECT_GT(storm.runtimeTicks, base.runtimeTicks);
}

TEST(Downgrades, AtsOnlyPaysLessThanBorderControl)
{
    // Fig. 7: Border Control's downgrades cost roughly 2x the unsafe
    // baseline's (cache flush + table zeroing on top of the common
    // quiesce + shootdown).
    auto overhead = [](SafetyModel m) {
        SystemConfig c0 = cfg(m);
        System s0(c0);
        double base = s0.run("bfs").runtimeTicks;
        SystemConfig c1 = cfg(m);
        c1.downgradesPerSecond = 100'000;
        System s1(c1);
        double noisy = s1.run("bfs").runtimeTicks;
        return noisy / base - 1.0;
    };
    double bc = overhead(SafetyModel::borderControlBcc);
    double ats = overhead(SafetyModel::atsOnlyIommu);
    EXPECT_GT(bc, 0.0);
    EXPECT_GT(ats, 0.0);
    EXPECT_GT(bc, ats * 0.9); // BC pays at least as much
}

TEST(Downgrades, InjectedDowngradeRestoresPermissions)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    sys.kernel().scheduleOnAccelerator(proc);

    bool done = false;
    sys.kernel().injectDowngrade(proc, [&]() { done = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(done);
    // The context-switch-style injection ends with the page table
    // unchanged (permissions restored).
    WalkResult w = proc.pageTable().walk(va);
    ASSERT_TRUE(w.valid);
    EXPECT_TRUE(w.perms.write);
}

TEST(Downgrades, WorkWithoutBorderControlToo)
{
    // The shootdown protocol also runs on the unsafe baseline (it is a
    // TLB-coherence requirement, not a BC feature).
    System sys(cfg(SafetyModel::atsOnlyIommu));
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    sys.kernel().scheduleOnAccelerator(proc);
    bool done = false;
    sys.kernel().downgradePage(proc, va, Perms::readOnly(),
                               [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(proc.pageTable().walk(va).perms.write);
}
