/**
 * @file
 * Unit tests for the GPU model: launch/completion, pause/resume
 * quiescing (the downgrade protocol's prerequisite), cache/TLB
 * control, datapath selection, and fault containment.
 */

#include <gtest/gtest.h>

#include "config/system_builder.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
cfg(SafetyModel m = SafetyModel::borderControlBcc)
{
    SystemConfig c;
    c.safety = m;
    c.physMemBytes = 512ULL * 1024 * 1024;
    return c;
}

} // namespace

TEST(Gpu, LaunchRunsAllWavefrontsToCompletion)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    UniformRandomWorkload wl(1, 3);
    wl.configure(1 << 20, 8192, 0.25);
    wl.setup(proc);
    wl.bind(sys.config().numCus(), sys.config().wfsPerCu());
    sys.kernel().scheduleOnAccelerator(proc);

    bool done = false;
    sys.gpu().launch(wl, proc, [&]() { done = true; });
    EXPECT_TRUE(sys.gpu().running());
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(sys.gpu().running());
    EXPECT_EQ(sys.gpu().memOpsIssued(), 8192u);
    EXPECT_GT(sys.gpu().endTick(), sys.gpu().startTick());
}

TEST(Gpu, PauseQuiescesOutstandingRequests)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    UniformRandomWorkload wl(1, 4);
    wl.configure(1 << 20, 32768, 0.25);
    wl.setup(proc);
    wl.bind(sys.config().numCus(), sys.config().wfsPerCu());
    sys.kernel().scheduleOnAccelerator(proc);

    bool done = false;
    sys.gpu().launch(wl, proc, [&]() { done = true; });

    // Let the kernel get going, then pause mid-flight.
    sys.eventQueue().run(sys.eventQueue().curTick() + 2'000'000);
    ASSERT_FALSE(done);

    bool quiesced = false;
    Tick quiesce_tick = 0;
    sys.gpu().pause([&]() {
        quiesced = true;
        quiesce_tick = sys.eventQueue().curTick();
    });
    // Run a bounded window: the pause must complete, the kernel must
    // not (wavefronts are parked).
    sys.eventQueue().run(sys.eventQueue().curTick() + 50'000'000);
    EXPECT_TRUE(quiesced);
    EXPECT_FALSE(done);

    sys.gpu().resume();
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.gpu().memOpsIssued(), 32768u);
}

TEST(Gpu, FlushCachesWritesBackAllDirtyData)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    UniformRandomWorkload wl(1, 5);
    wl.configure(256 * 1024, 8192, 1.0); // all writes
    wl.setup(proc);
    wl.bind(sys.config().numCus(), sys.config().wfsPerCu());
    sys.kernel().scheduleOnAccelerator(proc);
    bool done = false;
    sys.gpu().launch(wl, proc, [&]() { done = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(done);

    bool flushed = false;
    sys.gpu().flushCaches([&]() { flushed = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(flushed);
    // Nothing dirty remains anywhere in the accelerator hierarchy.
    unsigned dirty = 0;
    sys.gpu().l2Cache()->tags().forEachBlock([&](CacheBlock &blk) {
        if (blk.dirty)
            ++dirty;
    });
    EXPECT_EQ(dirty, 0u);
}

TEST(Gpu, InvalidateTlbsForcesRetranslation)
{
    System sys(cfg());
    RunResult first = sys.run("uniform");
    EXPECT_GT(first.translations, 0u);
    Tlb *tlb = sys.gpu().l1Tlb(0);
    ASSERT_NE(tlb, nullptr);
    sys.gpu().invalidateTlbs();
    // All L1 TLB entries are gone.
    for (Addr vpn = 0; vpn < 1 << 20; vpn += 7) {
        EXPECT_FALSE(tlb->probe(1, vpn).has_value());
        if (vpn > 1 << 16)
            break;
    }
}

TEST(Gpu, IommuDatapathHasNoAcceleratorStructures)
{
    System sys(cfg(SafetyModel::fullIommu));
    EXPECT_EQ(sys.gpu().l2Cache(), nullptr);
    EXPECT_EQ(sys.gpu().l1Cache(0), nullptr);
    EXPECT_EQ(sys.gpu().l1Tlb(0), nullptr);
    RunResult r = sys.run("uniform");
    EXPECT_EQ(r.violations, 0u);
    // Every access was translated at the border (sub-requests, so at
    // least one IOMMU request per op).
    EXPECT_GE(sys.iommuFrontend()->requests(), r.memOps);
}

TEST(Gpu, WavefrontsAbortAfterRepeatedDenials)
{
    // A workload touching memory the process never mapped: every op is
    // denied at translation; wavefronts abort instead of spinning.
    System sys(cfg(SafetyModel::borderControlBcc));
    Process &proc = sys.kernel().createProcess();
    UniformRandomWorkload wl(1, 6);
    wl.configure(1 << 20, 8192, 0.0);
    wl.setup(proc);
    // Sabotage: unmap the region the workload thinks it owns.
    proc.unmapRange(0x1000'0000, 1ULL << 30);
    wl.bind(sys.config().numCus(), sys.config().wfsPerCu());
    sys.kernel().scheduleOnAccelerator(proc);
    bool done = false;
    sys.gpu().launch(wl, proc, [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done); // terminated rather than hung
    EXPECT_GT(sys.gpu().deniedOps(), 0u);
}

TEST(Gpu, ModeratelyThreadedIsSlowerButCorrect)
{
    SystemConfig high = cfg();
    high.profile = GpuProfile::highlyThreaded;
    SystemConfig mod = cfg();
    mod.profile = GpuProfile::moderatelyThreaded;
    System s1(high), s2(mod);
    RunResult r1 = s1.run("uniform");
    RunResult r2 = s2.run("uniform");
    EXPECT_EQ(r1.memOps, r2.memOps); // same work
    EXPECT_GT(r2.runtimeTicks, r1.runtimeTicks);
    EXPECT_EQ(r2.violations, 0u);
}
