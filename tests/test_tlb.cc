/**
 * @file
 * Unit tests for the set-associative, ASID-tagged TLB, including a
 * parameterized sweep over associativities.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "vm/tlb.hh"

using namespace bctrl;

namespace {

TlbEntry
entry(Asid asid, Addr vpn, Addr ppn, Perms perms = Perms::readWrite(),
      bool large = false)
{
    TlbEntry e;
    e.asid = asid;
    e.vpn = vpn;
    e.ppn = ppn;
    e.perms = perms;
    e.largePage = large;
    return e;
}

} // namespace

TEST(Tlb, MissOnEmpty)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{16, 0});
    EXPECT_FALSE(tlb.lookup(1, 0x100).has_value());
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, InsertThenHit)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{16, 0});
    tlb.insert(entry(1, 0x100, 0x8200));
    auto hit = tlb.lookup(1, 0x100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 0x8200u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, AsidsAreIsolated)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{16, 0});
    tlb.insert(entry(1, 0x100, 0xaaaa));
    tlb.insert(entry(2, 0x100, 0xbbbb));
    EXPECT_EQ(tlb.lookup(1, 0x100)->ppn, 0xaaaau);
    EXPECT_EQ(tlb.lookup(2, 0x100)->ppn, 0xbbbbu);
    EXPECT_FALSE(tlb.lookup(3, 0x100).has_value());
}

TEST(Tlb, ReinsertRefreshesInPlace)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{4, 0});
    tlb.insert(entry(1, 0x100, 0x1, Perms::readOnly()));
    tlb.insert(entry(1, 0x100, 0x1, Perms::readWrite()));
    auto hit = tlb.probe(1, 0x100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->perms.write);
}

TEST(Tlb, LruEvictionInFullyAssociative)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{4, 0});
    for (Addr v = 0; v < 4; ++v)
        tlb.insert(entry(1, v, v + 100));
    tlb.lookup(1, 0); // make vpn 0 recently used
    tlb.insert(entry(1, 10, 110));
    EXPECT_TRUE(tlb.probe(1, 0).has_value());  // MRU survives
    EXPECT_FALSE(tlb.probe(1, 1).has_value()); // LRU evicted
}

TEST(Tlb, InvalidatePage)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{16, 0});
    tlb.insert(entry(1, 0x100, 0x1));
    tlb.insert(entry(1, 0x101, 0x2));
    tlb.invalidatePage(1, 0x100);
    EXPECT_FALSE(tlb.probe(1, 0x100).has_value());
    EXPECT_TRUE(tlb.probe(1, 0x101).has_value());
}

TEST(Tlb, InvalidateAsidSparesOtherAsids)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{16, 0});
    tlb.insert(entry(1, 0x100, 0x1));
    tlb.insert(entry(2, 0x200, 0x2));
    tlb.invalidateAsid(1);
    EXPECT_FALSE(tlb.probe(1, 0x100).has_value());
    EXPECT_TRUE(tlb.probe(2, 0x200).has_value());
}

TEST(Tlb, InvalidateAllClearsEverything)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{16, 0});
    for (Addr v = 0; v < 8; ++v)
        tlb.insert(entry(1, v, v));
    tlb.invalidateAll();
    for (Addr v = 0; v < 8; ++v)
        EXPECT_FALSE(tlb.probe(1, v).has_value());
}

TEST(Tlb, LargePageCoversWholeRange)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{64, 8});
    // 2 MB page at VPN 512 (2 MB aligned).
    tlb.insert(entry(1, 512, 1024, Perms::readWrite(), true));
    for (Addr off : {Addr(0), Addr(1), Addr(255), Addr(511)}) {
        auto hit = tlb.lookup(1, 512 + off);
        ASSERT_TRUE(hit.has_value()) << "offset " << off;
        EXPECT_TRUE(hit->largePage);
        EXPECT_EQ(hit->ppn, 1024u);
    }
    EXPECT_FALSE(tlb.lookup(1, 511).has_value());
    EXPECT_FALSE(tlb.lookup(1, 1024).has_value());
}

TEST(Tlb, LargePageInvalidationByAnyCoveredVpn)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{64, 8});
    tlb.insert(entry(1, 512, 1024, Perms::readWrite(), true));
    tlb.invalidatePage(1, 700); // middle of the large page
    EXPECT_FALSE(tlb.probe(1, 512).has_value());
}

class TlbAssocTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TlbAssocTest, FillAndProbeAllEntries)
{
    EventQueue eq;
    const unsigned assoc = GetParam();
    Tlb tlb(eq, "tlb", Tlb::Params{64, assoc});
    // Insert exactly 'assoc' entries per set; all must be resident.
    const unsigned sets = 64 / (assoc == 0 ? 64 : assoc);
    for (Addr v = 0; v < 64; ++v)
        tlb.insert(entry(1, v, v + 1000));
    (void)sets;
    unsigned resident = 0;
    for (Addr v = 0; v < 64; ++v) {
        if (tlb.probe(1, v).has_value())
            ++resident;
    }
    EXPECT_EQ(resident, 64u);
}

TEST_P(TlbAssocTest, CapacityIsRespected)
{
    EventQueue eq;
    const unsigned assoc = GetParam();
    Tlb tlb(eq, "tlb", Tlb::Params{64, assoc});
    for (Addr v = 0; v < 256; ++v)
        tlb.insert(entry(1, v, v));
    unsigned resident = 0;
    for (Addr v = 0; v < 256; ++v) {
        if (tlb.probe(1, v).has_value())
            ++resident;
    }
    EXPECT_EQ(resident, 64u);
}

INSTANTIATE_TEST_SUITE_P(Associativities, TlbAssocTest,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 64u));
