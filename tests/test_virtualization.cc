/**
 * @file
 * Virtualization and self-protection properties (paper §3.4.2).
 *
 * Border Control works unchanged under a trusted VMM because the
 * Protection Table is indexed by bare-metal (host) physical addresses
 * and lives in memory the VMM keeps out of every guest mapping. These
 * tests check the properties that make that work:
 *  - the table functions at an arbitrary host-chosen base;
 *  - the table's own backing pages are self-protecting: an accelerator
 *    can never read or forge it, because the OS/VMM never maps those
 *    pages into any process, so they are never inserted;
 *  - kernel-reserved low memory is likewise unreachable.
 */

#include <gtest/gtest.h>

#include "bc/attack.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
cfg()
{
    SystemConfig c;
    c.safety = SafetyModel::borderControlBcc;
    c.physMemBytes = 512ULL * 1024 * 1024;
    return c;
}

} // namespace

TEST(Virtualization, TableWorksAtArbitraryHostPhysicalBase)
{
    // A "VMM" places the table high in host-physical memory, outside
    // anything a guest could map.
    BackingStore store(512ULL * 1024 * 1024);
    const Addr vmm_base = store.size() - 2 * 1024 * 1024;
    ProtectionTable table(store, vmm_base, store.numPages());
    table.setPerms(42, Perms::readWrite());
    EXPECT_EQ(table.getPerms(42), Perms::readWrite());
    EXPECT_TRUE(table.getPerms(41).none());
    // Indexing is bare-metal physical: entry bytes live at the VMM's
    // base, not anywhere a guest-physical mapping would reach.
    EXPECT_GE(table.entryAddr(0), vmm_base);
}

TEST(Virtualization, ProtectionTableProtectsItself)
{
    // The accelerator tries to read and to forge (write) the
    // Protection Table itself. Those physical pages were never handed
    // out by the ATS, so the table — consulted about itself — denies.
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(proc);
    ASSERT_NE(sys.borderControl()->table(), nullptr);
    const Addr table_base = sys.borderControl()->table()->base();

    AttackInjector inject(sys);
    EXPECT_TRUE(inject.wildPhysicalRead(table_base).blocked);
    EXPECT_TRUE(inject.wildPhysicalWrite(table_base).blocked);
    // Forging one's own permissions by writing table bytes covering a
    // target page also fails.
    const Addr target_entry =
        sys.borderControl()->table()->entryAddr(0x1234);
    EXPECT_TRUE(inject.wildPhysicalWrite(target_entry).blocked);
}

TEST(Virtualization, KernelReservedMemoryUnreachable)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(proc);
    AttackInjector inject(sys);
    // Low memory (frame 0 and the reserved first megabyte).
    EXPECT_TRUE(inject.wildPhysicalRead(0x0).blocked);
    EXPECT_TRUE(inject.wildPhysicalWrite(0x80000).blocked);
}

TEST(Virtualization, PageTablesThemselvesAreUnreachable)
{
    // Page-table frames are kernel allocations never mapped into the
    // process's own address space: the accelerator cannot read PTEs to
    // learn the memory map, nor corrupt them.
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    sys.kernel().scheduleOnAccelerator(proc);
    WalkResult w = proc.pageTable().walk(va);
    ASSERT_GE(w.pteAddrs.size(), 1u);

    AttackInjector inject(sys);
    for (Addr pte_addr : w.pteAddrs) {
        EXPECT_TRUE(inject.wildPhysicalRead(pte_addr).blocked);
        EXPECT_TRUE(inject.wildPhysicalWrite(pte_addr).blocked);
    }
}

TEST(Virtualization, GuestCannotGrantItselfTablePages)
{
    // Even a process that *asks* the ATS to translate addresses near
    // the table gets nothing: no VMA covers them, so translation
    // faults and no insertion happens.
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(proc);
    const Addr table_base = sys.borderControl()->table()->base();

    bool called = false, ok = true;
    sys.ats().translate(proc.asid(), table_base, false,
                        [&](bool success, const TlbEntry &) {
                            called = true;
                            ok = success;
                        });
    sys.eventQueue().run();
    EXPECT_TRUE(called);
    EXPECT_FALSE(ok);

    AttackInjector inject(sys);
    EXPECT_TRUE(inject.wildPhysicalRead(table_base).blocked);
}
