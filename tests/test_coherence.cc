/**
 * @file
 * Tests for the coherence point, focused on the paper's §3.4.3 cache
 * organization invariant: an untrusted cache never gains ownership of
 * a block it only asked to read, and dirty data requested read-only by
 * the accelerator is written back to memory first.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/coherence_point.hh"
#include "mem/dram.hh"

using namespace bctrl;

namespace {

struct CoherenceTest : public ::testing::Test {
    EventQueue eq;
    BackingStore store{1 << 24};
    Dram dram{eq, "mem", store, Dram::Params{}};
    CoherencePoint point{eq, "coh", dram, CoherencePoint::Params{}};

    Cache::Params
    cacheParams(Requestor side)
    {
        Cache::Params p;
        p.size = 4 * 1024;
        p.assoc = 4;
        p.clockPeriod = 1'000;
        p.side = side;
        return p;
    }

    PacketPtr
    fill(Addr addr, Requestor who, bool writable)
    {
        auto pkt = Packet::make(MemCmd::Read, addr, blockSize, who);
        pkt->needsWritable = writable;
        return pkt;
    }

    bool
    runFill(const PacketPtr &pkt)
    {
        bool granted = false;
        pkt->onResponse = [&](Packet &p) { granted = p.grantedWritable; };
        point.access(pkt);
        eq.run();
        return granted;
    }
};

} // namespace

TEST_F(CoherenceTest, ReadOnlyAccelFillNeverGrantedWritable)
{
    // The core §3.4.3 rule: no owned-E responses to read-only
    // accelerator requests.
    EXPECT_FALSE(runFill(fill(0x1000, Requestor::accelerator, false)));
}

TEST_F(CoherenceTest, ExclusiveAccelFillGrantedWritable)
{
    EXPECT_TRUE(runFill(fill(0x2000, Requestor::accelerator, true)));
}

TEST_F(CoherenceTest, TrustedTrafficPassesUntracked)
{
    auto pkt = Packet::make(MemCmd::Read, 0x3000, 8,
                            Requestor::trustedHw);
    bool responded = false;
    pkt->onResponse = [&](Packet &) { responded = true; };
    point.access(pkt);
    eq.run();
    EXPECT_TRUE(responded);
    EXPECT_EQ(point.trackedBlocks(), 0u);
}

TEST_F(CoherenceTest, AccelExclusiveRecallsCpuCopy)
{
    Cache cpu(eq, "cpu", cacheParams(Requestor::cpu), point);
    point.setCpuCache(&cpu);

    // CPU caches the block (dirty).
    auto w = Packet::make(MemCmd::Write, 0x4000, 64, Requestor::cpu);
    cpu.access(w);
    eq.run();
    ASSERT_NE(cpu.tags().findBlock(0x4000), nullptr);

    // Accelerator asks for it exclusively: CPU copy must be recalled.
    EXPECT_TRUE(runFill(fill(0x4000, Requestor::accelerator, true)));
    EXPECT_EQ(cpu.tags().findBlock(0x4000), nullptr);
    EXPECT_GE(point.recalls(), 1u);
}

TEST_F(CoherenceTest, DirtyCpuBlockWrittenBackOnAccelReadOnly)
{
    Cache cpu(eq, "cpu", cacheParams(Requestor::cpu), point);
    point.setCpuCache(&cpu);

    auto w = Packet::make(MemCmd::Write, 0x5000, 64, Requestor::cpu);
    cpu.access(w);
    eq.run();

    const auto wb_before = cpu.writebacksIssued();
    // Read-only accelerator fill of a dirty trusted block: the dirty
    // data is written back so the accelerator only gets a clean shared
    // copy it can never be asked to provide.
    EXPECT_FALSE(runFill(fill(0x5000, Requestor::accelerator, false)));
    EXPECT_EQ(cpu.writebacksIssued(), wb_before + 1);
}

TEST_F(CoherenceTest, CpuExclusiveRecallsAccelCopy)
{
    Cache accel(eq, "acc", cacheParams(Requestor::accelerator), point);
    point.setAccelCache(&accel);

    auto w = Packet::make(MemCmd::Write, 0x6000, 64,
                          Requestor::accelerator);
    accel.access(w);
    eq.run();
    ASSERT_NE(accel.tags().findBlock(0x6000), nullptr);

    EXPECT_TRUE(runFill(fill(0x6000, Requestor::cpu, true)));
    EXPECT_EQ(accel.tags().findBlock(0x6000), nullptr);
}

TEST_F(CoherenceTest, UncachedWriteInvalidatesOtherSide)
{
    Cache accel(eq, "acc", cacheParams(Requestor::accelerator), point);
    point.setAccelCache(&accel);

    auto r = Packet::make(MemCmd::Read, 0x7000, 64,
                          Requestor::accelerator);
    accel.access(r);
    eq.run();
    ASSERT_NE(accel.tags().findBlock(0x7000), nullptr);

    // A CPU-side uncached (sub-block) write must invalidate the
    // accelerator's stale copy.
    auto w = Packet::make(MemCmd::Write, 0x7000, 32, Requestor::cpu);
    point.access(w);
    eq.run();
    EXPECT_EQ(accel.tags().findBlock(0x7000), nullptr);
}

TEST_F(CoherenceTest, WritebackClearsOwnershipState)
{
    Cache accel(eq, "acc", cacheParams(Requestor::accelerator), point);
    point.setAccelCache(&accel);

    auto w = Packet::make(MemCmd::Write, 0x8000, 64,
                          Requestor::accelerator);
    accel.access(w);
    eq.run();

    // The accelerator writes the block back (e.g. on flush).
    bool flushed = false;
    accel.flushAll([&]() { flushed = true; });
    eq.run();
    EXPECT_TRUE(flushed);

    // A subsequent CPU exclusive fill needs no recall.
    const auto recalls_before = point.recalls();
    EXPECT_TRUE(runFill(fill(0x8000, Requestor::cpu, true)));
    EXPECT_EQ(point.recalls(), recalls_before);
}

TEST_F(CoherenceTest, RecallAddsLatency)
{
    Cache cpu(eq, "cpu", cacheParams(Requestor::cpu), point);
    point.setCpuCache(&cpu);

    auto w = Packet::make(MemCmd::Write, 0x9000, 64, Requestor::cpu);
    cpu.access(w);
    eq.run();

    Tick t0 = eq.curTick();
    auto with_recall = fill(0x9000, Requestor::accelerator, true);
    Tick recall_done = 0;
    with_recall->onResponse = [&](Packet &) { recall_done = eq.curTick(); };
    point.access(with_recall);
    eq.run();

    Tick t1 = eq.curTick();
    auto clean = fill(0xa000, Requestor::accelerator, true);
    Tick clean_done = 0;
    clean->onResponse = [&](Packet &) { clean_done = eq.curTick(); };
    point.access(clean);
    eq.run();

    EXPECT_GT(recall_done - t0, clean_done - t1);
}
