/**
 * @file
 * Allocation-ceiling checks: once a System's pools are warm, running
 * another kernel must mint zero new packets or lambda events from the
 * heap, and no hot callback may spill its inline buffer. This is the
 * enforcement side of the zero-allocation request path; the same
 * counters feed the "system.allocprof" stats block and the sweep
 * report's allocationProfile.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "config/system_builder.hh"

using namespace bctrl;

namespace {

SystemConfig
smallConfig(SafetyModel safety)
{
    SystemConfig cfg;
    cfg.safety = safety;
    cfg.profile = GpuProfile::moderatelyThreaded;
    cfg.workloadScale = 1;
    return cfg;
}

struct PoolSnapshot {
    std::uint64_t packetAllocs;
    std::uint64_t lambdaAllocs;
    std::uint64_t spills;
};

PoolSnapshot
snapshot(System &sys)
{
    return PoolSnapshot{
        sys.packetPool().heapAllocations(),
        sys.eventQueue().lambdaAllocations(),
        sys.eventQueue().lambdaSpills() +
            sys.packetPool().callbackSpills(),
    };
}

} // namespace

TEST(AllocationProfile, WarmRunsAllocateNothing)
{
    for (SafetyModel safety : {SafetyModel::borderControlBcc,
                               SafetyModel::atsOnlyIommu,
                               SafetyModel::fullIommu}) {
        System sys(smallConfig(safety));
        // Re-run one process's kernel so the steady state is exact: a
        // fresh process each run would shift the physical page layout
        // and with it the in-flight peak by a handful of packets.
        auto workload = makeWorkload("uniform", 1, 1);
        ASSERT_NE(workload, nullptr);
        Process &proc = sys.kernel().createProcess();
        workload->setup(proc);

        // Two warm-up kernels size both pools to their in-flight peak
        // (the second covers demand-paging cold effects of the first).
        sys.run(*workload, proc);
        sys.run(*workload, proc);
        const PoolSnapshot warm = snapshot(sys);

        RunResult r = sys.run(*workload, proc);
        const PoolSnapshot after = snapshot(sys);

        EXPECT_GT(r.memOps, 0u);
        EXPECT_EQ(after.packetAllocs - warm.packetAllocs, 0u)
            << "steady-state packet heap allocations under "
            << safetyModelName(safety);
        EXPECT_EQ(after.lambdaAllocs - warm.lambdaAllocs, 0u)
            << "steady-state lambda heap allocations under "
            << safetyModelName(safety);
        EXPECT_EQ(after.spills - warm.spills, 0u)
            << "inline-callback heap spills under "
            << safetyModelName(safety);
    }
}

TEST(AllocationProfile, NoCallbackEverSpills)
{
    // Spills are legal but the hot paths are sized never to need them:
    // even the cold first run must not overflow an inline buffer.
    System sys(smallConfig(SafetyModel::borderControlBcc));
    sys.run("stream");
    EXPECT_EQ(sys.packetPool().callbackSpills(), 0u);
    EXPECT_EQ(sys.eventQueue().lambdaSpills(), 0u);
}

TEST(AllocationProfile, RunResultCarriesPoolCounters)
{
    System sys(smallConfig(SafetyModel::borderControlBcc));
    RunResult r = sys.run("uniform");
    EXPECT_GT(r.packetPoolAllocs, 0u);
    EXPECT_GT(r.packetPoolPeak, 0u);
    EXPECT_GE(r.packetPoolAllocs, r.packetPoolPeak);
    EXPECT_GT(r.lambdaPoolAllocs, 0u);
    EXPECT_GT(r.backingStoreMruHitRate, 0.0);
    EXPECT_LE(r.backingStoreMruHitRate, 1.0);
}

TEST(AllocationProfile, StatsDumpIncludesAllocProfBlock)
{
    System sys(smallConfig(SafetyModel::borderControlBcc));
    sys.run("uniform");
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("system.allocprof.packetPoolAllocs"),
              std::string::npos);
    EXPECT_NE(text.find("system.allocprof.callbackHeapSpills"),
              std::string::npos);
    EXPECT_NE(text.find("system.allocprof.backingStoreMruHitRate"),
              std::string::npos);
}
