/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace bctrl::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("test");
    Scalar &s = g.scalar("count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s = 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(Stats, ScalarReset)
{
    StatGroup g("test");
    Scalar &s = g.scalar("count", "a counter");
    s += 10;
    g.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    EXPECT_DOUBLE_EQ(d.sum(), 60.0);
}

TEST(Stats, DistributionWeightedSamples)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    d.sample(5, 4);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Stats, EmptyDistributionIsZero)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Stats, FormulaEvaluatesOnDemand)
{
    StatGroup g("test");
    Scalar &hits = g.scalar("hits", "hits");
    Scalar &misses = g.scalar("misses", "misses");
    Formula &ratio =
        g.formula("missRatio", "miss ratio", [&]() {
            double total = hits.value() + misses.value();
            return total == 0 ? 0.0 : misses.value() / total;
        });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.25);
}

TEST(Stats, FindLocatesByFullName)
{
    StatGroup g("unit");
    g.scalar("alpha", "first");
    const Stat *found = g.find("unit.alpha");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->desc(), "first");
    EXPECT_EQ(g.find("unit.beta"), nullptr);
}

TEST(Stats, FindRecursesIntoChildren)
{
    StatGroup parent("sys");
    StatGroup child("sys.cache");
    child.scalar("hits", "cache hits");
    parent.addChild(&child);
    EXPECT_NE(parent.find("sys.cache.hits"), nullptr);
}

TEST(Stats, PrintProducesOneLinePerScalar)
{
    StatGroup g("p");
    g.scalar("a", "one") += 1;
    g.scalar("b", "two") += 2;
    std::ostringstream os;
    g.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("p.a"), std::string::npos);
    EXPECT_NE(out.find("p.b"), std::string::npos);
    EXPECT_NE(out.find("# one"), std::string::npos);
}

TEST(Stats, ResetRecursesIntoChildren)
{
    StatGroup parent("sys");
    StatGroup child("sys.x");
    Scalar &s = child.scalar("v", "value");
    parent.addChild(&child);
    s += 9;
    parent.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}
