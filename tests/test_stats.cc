/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "config/system_builder.hh"
#include "sim/stats.hh"

using namespace bctrl::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("test");
    Scalar &s = g.scalar("count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s = 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(Stats, ScalarReset)
{
    StatGroup g("test");
    Scalar &s = g.scalar("count", "a counter");
    s += 10;
    g.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    EXPECT_DOUBLE_EQ(d.sum(), 60.0);
}

TEST(Stats, DistributionWeightedSamples)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    d.sample(5, 4);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Stats, EmptyDistributionIsZero)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Stats, FormulaEvaluatesOnDemand)
{
    StatGroup g("test");
    Scalar &hits = g.scalar("hits", "hits");
    Scalar &misses = g.scalar("misses", "misses");
    Formula &ratio =
        g.formula("missRatio", "miss ratio", [&]() {
            double total = hits.value() + misses.value();
            return total == 0 ? 0.0 : misses.value() / total;
        });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.25);
}

TEST(Stats, FindLocatesByFullName)
{
    StatGroup g("unit");
    g.scalar("alpha", "first");
    const Stat *found = g.find("unit.alpha");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->desc(), "first");
    EXPECT_EQ(g.find("unit.beta"), nullptr);
}

TEST(Stats, FindRecursesIntoChildren)
{
    StatGroup parent("sys");
    StatGroup child("sys.cache");
    child.scalar("hits", "cache hits");
    parent.addChild(&child);
    EXPECT_NE(parent.find("sys.cache.hits"), nullptr);
}

TEST(Stats, PrintProducesOneLinePerScalar)
{
    StatGroup g("p");
    g.scalar("a", "one") += 1;
    g.scalar("b", "two") += 2;
    std::ostringstream os;
    g.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("p.a"), std::string::npos);
    EXPECT_NE(out.find("p.b"), std::string::npos);
    EXPECT_NE(out.find("# one"), std::string::npos);
}

TEST(Stats, ResetRecursesIntoChildren)
{
    StatGroup parent("sys");
    StatGroup child("sys.x");
    Scalar &s = child.scalar("v", "value");
    parent.addChild(&child);
    s += 9;
    parent.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionStdev)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    // Classic textbook set: population standard deviation exactly 2.
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_NEAR(d.stdev(), 2.0, 1e-9);
}

TEST(Stats, DistributionStdevDegenerateCases)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", "latencies");
    EXPECT_DOUBLE_EQ(d.stdev(), 0.0); // empty
    d.sample(42);
    EXPECT_DOUBLE_EQ(d.stdev(), 0.0); // one sample
    // A constant stream must not go negative under the sqrt through
    // floating-point cancellation.
    StatGroup g2("test2");
    Distribution &c = g2.distribution("lat", "latencies");
    for (int i = 0; i < 1000; ++i)
        c.sample(1e9 + 0.1);
    EXPECT_NEAR(c.stdev(), 0.0, 1e-3);
}

TEST(Stats, DistributionPrintIncludesStdev)
{
    StatGroup g("p");
    Distribution &d = g.distribution("lat", "latencies");
    d.sample(1);
    d.sample(3);
    std::ostringstream os;
    g.print(os);
    EXPECT_NE(os.str().find("p.lat::stdev"), std::string::npos);
}

TEST(Stats, HistogramBucketEdges)
{
    // Bucket 0 is [0, 1) and absorbs negative samples; bucket i >= 1
    // is [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketOf(-5.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(0.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(0.99), 0u);
    EXPECT_EQ(Histogram::bucketOf(1.0), 1u);
    EXPECT_EQ(Histogram::bucketOf(2.0), 2u);
    EXPECT_EQ(Histogram::bucketOf(3.0), 2u);
    EXPECT_EQ(Histogram::bucketOf(4.0), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023.0), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024.0), 11u);

    EXPECT_DOUBLE_EQ(Histogram::bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(1), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(1), 2.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(11), 1024.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(11), 2048.0);

    // Every bucket's upper edge is the next bucket's lower edge.
    for (unsigned i = 0; i + 1 < Histogram::numBuckets; ++i)
        EXPECT_DOUBLE_EQ(Histogram::bucketHigh(i),
                         Histogram::bucketLow(i + 1));
}

TEST(Stats, HistogramTracksMoments)
{
    StatGroup g("test");
    Histogram &h = g.histogram("lat", "latencies");
    h.sample(10);
    h.sample(20, 2);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 50.0);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 20.0);
    EXPECT_EQ(h.buckets()[Histogram::bucketOf(10)], 1u);
    EXPECT_EQ(h.buckets()[Histogram::bucketOf(20)], 2u);
}

TEST(Stats, HistogramConstantStreamPercentilesAreExact)
{
    StatGroup g("test");
    Histogram &h = g.histogram("lat", "latencies");
    for (int i = 0; i < 100; ++i)
        h.sample(7.0);
    // Interpolation is clamped to [min, max], so a constant stream
    // reports the constant for every percentile.
    EXPECT_DOUBLE_EQ(h.p50(), 7.0);
    EXPECT_DOUBLE_EQ(h.p95(), 7.0);
    EXPECT_DOUBLE_EQ(h.p99(), 7.0);
}

TEST(Stats, HistogramPercentilesAreOrderedAndBracketed)
{
    StatGroup g("test");
    Histogram &h = g.histogram("lat", "latencies");
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.min(), h.p50());
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_LE(h.p99(), h.max());
    // Any percentile is exact to within its landing bucket's width:
    // the true median 500 lands in [256, 512).
    EXPECT_GE(h.p50(), 256.0);
    EXPECT_LT(h.p50(), 512.0);
}

TEST(Stats, HistogramEmptyAndReset)
{
    StatGroup g("test");
    Histogram &h = g.histogram("lat", "latencies");
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
    h.sample(100, 5);
    ASSERT_GT(h.count(), 0u);
    g.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    for (std::uint64_t b : h.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(Stats, FormulaResetIsIntentionallyEmpty)
{
    StatGroup g("test");
    Scalar &in = g.scalar("in", "input");
    Formula &f = g.formula("twice", "2x input",
                           [&]() { return 2.0 * in.value(); });
    in += 3;
    EXPECT_DOUBLE_EQ(f.value(), 6.0);
    // Resetting the group clears the input; the formula has no state
    // of its own and just follows.
    g.reset();
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

TEST(Stats, JsonNumberRendering)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    // JSON has no NaN/Inf; they degrade to 0 rather than poisoning
    // the document.
    EXPECT_EQ(jsonNumber(std::nan("")), "0");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "0");
}

TEST(Stats, JsonQuoteEscapes)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(jsonQuote(std::string("nul\x01", 4)), "\"nul\\u0001\"");
}

namespace {

std::string
fullStatsJson(const bctrl::System &sys)
{
    std::ostringstream os;
    sys.dumpStatsJson(os);
    return os.str();
}

std::string
simStatsJson(const bctrl::System &sys)
{
    std::ostringstream os;
    sys.dumpSimStatsJson(os);
    return os.str();
}

bctrl::SystemConfig
tinyStatsConfig()
{
    bctrl::SystemConfig cfg;
    cfg.safety = bctrl::SafetyModel::borderControlBcc;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Stats, EventQueueInternalsExportedToJson)
{
    bctrl::System sys(tinyStatsConfig());
    sys.run("uniform");
    const std::string doc = fullStatsJson(sys);
    // Every domain queue exports its ladder internals flat.
    for (const char *q : {"border", "gpu", "dram"}) {
        for (const char *stat :
             {"stalePurged", "pendingEntries", "overflowSpills",
              "mailboxOverflows"}) {
            const std::string key = std::string("\"system.eventq.") +
                                    q + "." + stat + "\":";
            EXPECT_NE(doc.find(key), std::string::npos)
                << "missing " << key;
        }
    }
    // Host-side storage diagnostics stay out of the sim-only dump:
    // where entries live differs legitimately between serial and
    // sharded builds of the same run.
    EXPECT_EQ(simStatsJson(sys).find("system.eventq"),
              std::string::npos);
}

TEST(Stats, ParallelGroupExportedOnlyForShardedRuns)
{
    bctrl::SystemConfig cfg = tinyStatsConfig();
    bctrl::System serial(cfg);
    serial.run("uniform");
    EXPECT_EQ(fullStatsJson(serial).find("system.parallel"),
              std::string::npos);

    cfg.parallelLoop = true;
    bctrl::System sharded(cfg);
    sharded.run("uniform");
    const std::string doc = fullStatsJson(sharded);
    for (const char *stat :
         {"grants", "windows", "eventsPerGrant", "lookaheadTicks",
          "coordinatorSyncSeconds", "coordinatorStallSeconds"}) {
        const std::string key =
            std::string("\"system.parallel.") + stat + "\":";
        EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;
    }
    EXPECT_EQ(simStatsJson(sharded).find("system.parallel"),
              std::string::npos);
}

TEST(Stats, PrintJsonEmitsFlatObject)
{
    StatGroup parent("sys");
    StatGroup child("sys.cache");
    parent.scalar("ticks", "ticks") += 5;
    Histogram &h = child.histogram("lat", "latency");
    h.sample(16);
    parent.addChild(&child);

    std::ostringstream os;
    parent.printJson(os);
    const std::string doc = os.str();
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.back(), '}');
    EXPECT_NE(doc.find("\"sys.ticks\":5"), std::string::npos);
    EXPECT_NE(doc.find("\"sys.cache.lat\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"p95\":16"), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\":["), std::string::npos);
    // No trailing comma before a closing brace anywhere.
    EXPECT_EQ(doc.find(",}"), std::string::npos);
    EXPECT_EQ(doc.find(",]"), std::string::npos);
}
