/**
 * @file
 * Death tests for the BCTRL_ASSERT contract macros.
 *
 * Contracts are forced on for this translation unit regardless of the
 * build type: contracts.hh honours a pre-existing definition of
 * BCTRL_CONTRACTS_ENABLED, and the failure handler is always compiled
 * into the library. Only contracts.hh may be included here — pulling in
 * headers with inline functions that use BCTRL_ASSERT would create ODR
 * variants of them.
 */

#ifdef BCTRL_CONTRACTS_ENABLED
#undef BCTRL_CONTRACTS_ENABLED
#endif
#define BCTRL_CONTRACTS_ENABLED 1

#include "sim/contracts.hh"

#include <gtest/gtest.h>

namespace {

class ContractsDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    }
};

TEST(ContractsTest, PassingAssertIsSilent)
{
    BCTRL_ASSERT(1 + 1 == 2);
    BCTRL_ASSERT_MSG(2 * 2 == 4, "never printed %d", 4);
    SUCCEED();
}

TEST(ContractsTest, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    BCTRL_ASSERT(++calls > 0);
    EXPECT_EQ(calls, 1);
}

TEST_F(ContractsDeathTest, FailingAssertAbortsWithExpression)
{
    EXPECT_DEATH(BCTRL_ASSERT(2 + 2 == 5),
                 "contract violated: 2 \\+ 2 == 5");
}

TEST_F(ContractsDeathTest, FailureReportsSourceLocation)
{
    EXPECT_DEATH(BCTRL_ASSERT(false), "test_contracts\\.cc");
}

TEST_F(ContractsDeathTest, MessageIsFormattedIntoReport)
{
    EXPECT_DEATH(
        BCTRL_ASSERT_MSG(false, "ppn 0x%llx diverged (%s)",
                         0x2aULL, "details"),
        "ppn 0x2a diverged \\(details\\)");
}

} // namespace
