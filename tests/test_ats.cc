/**
 * @file
 * Unit tests for the ATS: ASID validation, L2 TLB hits, timed page
 * walks, demand-fault service, and Border Control notification on
 * every translation (Fig. 3b).
 */

#include <gtest/gtest.h>

#include "bc/border_control.hh"
#include "mem/dram.hh"
#include "os/kernel.hh"
#include "vm/ats.hh"

using namespace bctrl;

namespace {

struct AtsTest : public ::testing::Test {
    EventQueue eq;
    BackingStore store{256ULL * 1024 * 1024};
    Dram dram{eq, "mem", store, Dram::Params{}};
    Kernel kernel{eq, "kernel", store, Kernel::Params{}};
    Ats ats{eq, "ats", Ats::Params{}, dram};

    void
    SetUp() override
    {
        ats.setKernel(&kernel);
        kernel.attachAccelerator(nullptr, nullptr, &ats);
    }

    Process &
    runningProcess()
    {
        Process &p = kernel.createProcess();
        kernel.scheduleOnAccelerator(p);
        return p;
    }

    struct Result {
        bool called = false;
        bool ok = false;
        TlbEntry entry;
        Tick when = 0;
    };

    Result
    translate(Asid asid, Addr vaddr, bool write)
    {
        Result res;
        ats.translate(asid, vaddr, write,
                      [&](bool ok, const TlbEntry &e) {
                          res.called = true;
                          res.ok = ok;
                          res.entry = e;
                          res.when = eq.curTick();
                      });
        eq.run();
        return res;
    }
};

} // namespace

TEST_F(AtsTest, RejectsAsidNotOnAccelerator)
{
    Process &p = kernel.createProcess(); // never scheduled
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    Result r = translate(p.asid(), va, false);
    EXPECT_TRUE(r.called);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(ats.translationFaults(), 1u);
}

TEST_F(AtsTest, WalksPageTableForMappedPage)
{
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    WalkResult expect = p.pageTable().walk(va);
    Result r = translate(p.asid(), va, true);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.entry.ppn, pageNumber(expect.paddr));
    EXPECT_EQ(r.entry.vpn, pageNumber(va));
    EXPECT_EQ(ats.walks(), 1u);
}

TEST_F(AtsTest, L2TlbHitSkipsTheWalk)
{
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    translate(p.asid(), va, false);
    const auto walks_before = ats.walks();
    Tick start = eq.curTick();
    Result r = translate(p.asid(), va, false);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(ats.walks(), walks_before);
    // A hit is much faster than a four-PTE walk through DRAM.
    EXPECT_LT(r.when - start, 60'000u);
}

TEST_F(AtsTest, WalkIsSlowerThanHit)
{
    Process &p = runningProcess();
    Addr va = p.mmap(2 * pageSize, Perms::readWrite(), true);
    Tick start = eq.curTick();
    Result walk = translate(p.asid(), va, false);
    Tick walk_latency = walk.when - start;
    start = eq.curTick();
    Result hit = translate(p.asid(), va, false);
    Tick hit_latency = hit.when - start;
    EXPECT_GT(walk_latency, hit_latency);
    // Four dependent PTE reads cost at least 4 x 50 ns DRAM latency.
    EXPECT_GE(walk_latency, 200'000u);
}

TEST_F(AtsTest, DemandFaultAllocatesAndRetries)
{
    Process &p = runningProcess();
    Addr va = p.mmap(64 * pageSize, Perms::readWrite()); // lazy
    Result r = translate(p.asid(), va + 5 * pageSize, true);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(p.faultsServiced(), 1u);
    EXPECT_TRUE(p.pageTable().walk(va + 5 * pageSize).valid);
}

TEST_F(AtsTest, UnmappedAddressFaultsFatally)
{
    Process &p = runningProcess();
    Result r = translate(p.asid(), 0xdddd0000, false);
    EXPECT_FALSE(r.ok);
}

TEST_F(AtsTest, WriteTranslationNeedsWritePermission)
{
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readOnly(), true);
    EXPECT_TRUE(translate(p.asid(), va, false).ok);
    EXPECT_FALSE(translate(p.asid(), va, true).ok);
}

TEST_F(AtsTest, InvalidationForcesRewalk)
{
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    translate(p.asid(), va, false);
    const auto walks_before = ats.walks();
    ats.invalidatePage(p.asid(), pageNumber(va));
    translate(p.asid(), va, false);
    EXPECT_EQ(ats.walks(), walks_before + 1);
}

TEST_F(AtsTest, NotifiesBorderControlOnEveryRequest)
{
    Dram mem2(eq, "mem2", store, Dram::Params{});
    BorderControl bc(eq, "bc", BorderControl::Params{}, mem2);
    ProtectionTable table(store, 0x2000, store.numPages());
    bc.attachTable(&table);
    bc.incrUseCount();
    ats.setBorderControl(&bc);

    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = p.pageTable().walk(va);

    translate(p.asid(), va, false);
    // The walk's translation was mirrored into the Protection Table.
    EXPECT_EQ(table.getPerms(pageNumber(w.paddr)), Perms::readWrite());

    // §3.1.1: the table is updated on every ATS request, even L2 TLB
    // hits (here: after the OS zeroed the table).
    table.zeroAll();
    translate(p.asid(), va, false);
    EXPECT_EQ(table.getPerms(pageNumber(w.paddr)), Perms::readWrite());
}

TEST_F(AtsTest, LargePageTranslationReturnsBaseEntry)
{
    Process &p = runningProcess();
    Addr va = p.mmap(largePageSize, Perms::readWrite(), true, true);
    Result r = translate(p.asid(), va + 0x5000, false);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.entry.largePage);
    EXPECT_EQ(r.entry.vpn % pagesPerLargePage, 0u);
}

TEST_F(AtsTest, PortSerializesBurstsOfTranslations)
{
    Process &p = runningProcess();
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    translate(p.asid(), va, false); // warm the TLB
    std::vector<Tick> completions;
    for (int i = 0; i < 8; ++i) {
        ats.translate(p.asid(), va, false,
                      [&](bool, const TlbEntry &) {
                          completions.push_back(eq.curTick());
                      });
    }
    eq.run();
    ASSERT_EQ(completions.size(), 8u);
    // One translation per cycle: completions spread over >= 7 cycles.
    EXPECT_GE(completions.back() - completions.front(), 7u * 1'429u / 2);
}
