/**
 * @file
 * Unit tests for the CPU core model and CPU-GPU coherence at the
 * system level (the shared-virtual-memory behaviour that motivates
 * tight accelerator integration in the paper's introduction).
 */

#include <gtest/gtest.h>

#include "config/system_builder.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
cfg(SafetyModel m = SafetyModel::borderControlBcc)
{
    SystemConfig c;
    c.safety = m;
    c.physMemBytes = 512ULL * 1024 * 1024;
    return c;
}

std::vector<CpuOp>
sequentialOps(Addr base, unsigned count, bool write,
              unsigned stride = 64)
{
    std::vector<CpuOp> ops;
    for (unsigned i = 0; i < count; ++i)
        ops.push_back(CpuOp{base + i * stride, write, 8, 0});
    return ops;
}

} // namespace

TEST(CpuCore, ExecutesOpsInOrderToCompletion)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(64 * 1024, Perms::readWrite());
    sys.cpu().bindProcess(proc);

    bool done = false;
    sys.cpu().run(sequentialOps(va, 128, false),
                  [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.cpu().opsExecuted(), 128u);
    EXPECT_FALSE(sys.cpu().busy());
}

TEST(CpuCore, DemandPagingThroughKernel)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(16 * pageSize, Perms::readWrite()); // lazy
    sys.cpu().bindProcess(proc);

    bool done = false;
    sys.cpu().run(sequentialOps(va, 16, true, pageSize),
                  [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(proc.faultsServiced(), 16u);
    EXPECT_EQ(sys.cpu().faults(), 0u);
}

TEST(CpuCore, FaultOnUnmappedAddressAbandonsOp)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    sys.cpu().bindProcess(proc);
    bool done = false;
    sys.cpu().run({CpuOp{0xdead0000, false, 8, 0}},
                  [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.cpu().faults(), 1u);
    EXPECT_EQ(sys.cpu().opsExecuted(), 0u);
}

TEST(CpuCore, WriteToReadOnlyRegionFaults)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readOnly(), true);
    sys.cpu().bindProcess(proc);
    bool done = false;
    sys.cpu().run({CpuOp{va, true, 8, 0}}, [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_EQ(sys.cpu().faults(), 1u);
}

TEST(CpuCore, TlbFiltersWalks)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    sys.cpu().bindProcess(proc);
    bool done = false;
    // 32 accesses within one page: one walk, then dTLB hits.
    sys.cpu().run(sequentialOps(va, 32, false, 64),
                  [&]() { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.cpu().tlb().misses(), 1u);
    EXPECT_EQ(sys.cpu().tlb().hits(), 31u);
}

TEST(CpuCore, CachesFilterCpuTraffic)
{
    System sys(cfg());
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(8 * 1024, Perms::readWrite(), true);
    sys.cpu().bindProcess(proc);
    bool done = false;
    sys.cpu().run(sequentialOps(va, 128, false, 64),
                  [&]() { done = true; });
    sys.eventQueue().run();
    // 128 reads over 8 KB = 64 blocks: half the accesses hit the L1.
    EXPECT_GE(sys.cpuL1().demandHits(), 60u);
}

TEST(CpuGpuCoherence, GpuReadsCpuWrittenData)
{
    // Producer-consumer across the border: the CPU dirties a buffer in
    // its caches; the GPU's fills must recall the dirty blocks through
    // the coherence point (and, read-only, never gain ownership).
    System sys(cfg(SafetyModel::borderControlBcc));
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(16 * 1024, Perms::readWrite(), true);
    sys.cpu().bindProcess(proc);

    bool cpu_done = false;
    sys.cpu().run(sequentialOps(va, 64, true, 64),
                  [&]() { cpu_done = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(cpu_done);

    // Now the GPU touches the same physical blocks.
    sys.kernel().scheduleOnAccelerator(proc);
    WalkResult w = proc.pageTable().walk(va);
    sys.borderControl()->onTranslation(proc.asid(), pageNumber(va),
                                       pageNumber(w.paddr),
                                       Perms::readWrite(), false);
    const auto recalls_before = sys.coherencePoint().recalls();
    bool gpu_done = false;
    auto pkt = Packet::make(MemCmd::Read, blockAlign(w.paddr),
                            blockSize, Requestor::accelerator);
    pkt->onResponse = [&](Packet &p) {
        gpu_done = true;
        EXPECT_FALSE(p.denied);
        EXPECT_FALSE(p.grantedWritable); // read-only: never owned
    };
    sys.borderControl()->access(pkt);
    sys.eventQueue().run();
    EXPECT_TRUE(gpu_done);
    EXPECT_GT(sys.coherencePoint().recalls(), recalls_before);
}

TEST(CpuGpuCoherence, CpuRunsConcurrentlyWithGpuKernel)
{
    // The CPU streams over its own buffer while the GPU runs a
    // workload: both finish, nothing violates.
    System sys(cfg(SafetyModel::borderControlBcc));

    Process &cpu_proc = sys.kernel().createProcess();
    Addr cpu_buf = cpu_proc.mmap(64 * 1024, Perms::readWrite(), true);
    sys.cpu().bindProcess(cpu_proc);
    bool cpu_done = false;
    sys.cpu().run(sequentialOps(cpu_buf, 512, true, 64),
                  [&]() { cpu_done = true; });

    RunResult r = sys.run("uniform"); // drives the event loop
    EXPECT_TRUE(cpu_done);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(sys.cpu().opsExecuted(), 512u);
}
