/**
 * @file
 * Unit tests for the sparse functional backing store.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/backing_store.hh"

using namespace bctrl;

TEST(BackingStore, RoundsSizeUpToPage)
{
    BackingStore store(pageSize + 1);
    EXPECT_EQ(store.size(), 2 * pageSize);
    EXPECT_EQ(store.numPages(), 2u);
}

TEST(BackingStore, ReadsZeroFromUntouchedMemory)
{
    BackingStore store(1 << 20);
    EXPECT_EQ(store.read64(0x1234), 0u);
    EXPECT_EQ(store.residentPages(), 0u);
}

TEST(BackingStore, WriteThenReadBack)
{
    BackingStore store(1 << 20);
    store.write64(0x100, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(store.read64(0x100), 0xdeadbeefcafef00dULL);
    store.write8(0x200, 0x5a);
    EXPECT_EQ(store.read8(0x200), 0x5a);
}

TEST(BackingStore, CrossPageTransfer)
{
    BackingStore store(1 << 20);
    std::vector<std::uint8_t> data(3 * pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const Addr base = pageSize - 100; // straddles page boundaries
    store.write(base, data.data(), data.size());

    std::vector<std::uint8_t> out(data.size());
    store.read(base, out.data(), out.size());
    EXPECT_EQ(data, out);
    EXPECT_EQ(store.residentPages(), 4u);
}

TEST(BackingStore, ZeroClearsRange)
{
    BackingStore store(1 << 20);
    store.write64(0x1000, ~0ULL);
    store.write64(0x1008, ~0ULL);
    store.zero(0x1000, 8);
    EXPECT_EQ(store.read64(0x1000), 0u);
    EXPECT_EQ(store.read64(0x1008), ~0ULL);
}

TEST(BackingStore, ZeroOnUntouchedPagesAllocatesNothing)
{
    BackingStore store(1 << 20);
    store.zero(0, 1 << 20);
    EXPECT_EQ(store.residentPages(), 0u);
}

TEST(BackingStore, SparseAllocation)
{
    BackingStore store(1ULL << 32); // 4 GB simulated
    store.write64(3ULL << 30, 1);   // touch one page at 3 GB
    EXPECT_EQ(store.residentPages(), 1u);
    EXPECT_EQ(store.read64(3ULL << 30), 1u);
}

TEST(BackingStore, OutOfRangeAccessPanics)
{
    BackingStore store(1 << 16);
    std::uint8_t byte = 0;
    EXPECT_DEATH(store.read((1 << 16) - 2, &byte, 4), "outside memory");
    EXPECT_DEATH(store.write64(1 << 16, 0), "outside memory");
}
