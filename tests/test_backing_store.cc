/**
 * @file
 * Unit tests for the sparse functional backing store.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/backing_store.hh"

using namespace bctrl;

TEST(BackingStore, RoundsSizeUpToPage)
{
    BackingStore store(pageSize + 1);
    EXPECT_EQ(store.size(), 2 * pageSize);
    EXPECT_EQ(store.numPages(), 2u);
}

TEST(BackingStore, ReadsZeroFromUntouchedMemory)
{
    BackingStore store(1 << 20);
    EXPECT_EQ(store.read64(0x1234), 0u);
    EXPECT_EQ(store.residentPages(), 0u);
}

TEST(BackingStore, WriteThenReadBack)
{
    BackingStore store(1 << 20);
    store.write64(0x100, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(store.read64(0x100), 0xdeadbeefcafef00dULL);
    store.write8(0x200, 0x5a);
    EXPECT_EQ(store.read8(0x200), 0x5a);
}

TEST(BackingStore, CrossPageTransfer)
{
    BackingStore store(1 << 20);
    std::vector<std::uint8_t> data(3 * pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const Addr base = pageSize - 100; // straddles page boundaries
    store.write(base, data.data(), data.size());

    std::vector<std::uint8_t> out(data.size());
    store.read(base, out.data(), out.size());
    EXPECT_EQ(data, out);
    EXPECT_EQ(store.residentPages(), 4u);
}

TEST(BackingStore, ZeroClearsRange)
{
    BackingStore store(1 << 20);
    store.write64(0x1000, ~0ULL);
    store.write64(0x1008, ~0ULL);
    store.zero(0x1000, 8);
    EXPECT_EQ(store.read64(0x1000), 0u);
    EXPECT_EQ(store.read64(0x1008), ~0ULL);
}

TEST(BackingStore, ZeroOnUntouchedPagesAllocatesNothing)
{
    BackingStore store(1 << 20);
    store.zero(0, 1 << 20);
    EXPECT_EQ(store.residentPages(), 0u);
}

TEST(BackingStore, SparseAllocation)
{
    BackingStore store(1ULL << 32); // 4 GB simulated
    store.write64(3ULL << 30, 1);   // touch one page at 3 GB
    EXPECT_EQ(store.residentPages(), 1u);
    EXPECT_EQ(store.read64(3ULL << 30), 1u);
}

TEST(BackingStore, OutOfRangeAccessPanics)
{
    BackingStore store(1 << 16);
    std::uint8_t byte = 0;
    EXPECT_DEATH(store.read((1 << 16) - 2, &byte, 4), "outside memory");
    EXPECT_DEATH(store.write64(1 << 16, 0), "outside memory");
}

TEST(BackingStore, MruCacheServesRepeatedSamePageLookups)
{
    BackingStore store(1 << 20);
    store.write64(0x1000, 1); // allocate the page, prime the MRU slot
    const std::uint64_t lookups_before = store.pageLookups();
    const std::uint64_t hits_before = store.mruHits();
    for (Addr off = 8; off < 256; off += 8)
        store.write64(0x1000 + off, off);
    const std::uint64_t lookups = store.pageLookups() - lookups_before;
    const std::uint64_t hits = store.mruHits() - hits_before;
    EXPECT_EQ(lookups, 31u);
    EXPECT_EQ(hits, lookups); // every one answered by the MRU slot
}

TEST(BackingStore, MruCacheStaysCorrectAcrossPageAlternation)
{
    BackingStore store(1 << 20);
    // Alternate between two pages so every lookup evicts the MRU
    // entry; data must survive the churn.
    for (int i = 0; i < 16; ++i) {
        store.write64(0x1000 + i * 8, 0xA0 + i);
        store.write64(0x2000 + i * 8, 0xB0 + i);
    }
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(store.read64(0x1000 + i * 8), 0xA0u + i);
        EXPECT_EQ(store.read64(0x2000 + i * 8), 0xB0u + i);
    }
}

TEST(BackingStore, MruAbsentEntryRefreshesOnAllocation)
{
    BackingStore store(1 << 20);
    // Read an untouched page: the MRU slot caches "absent" (nullptr).
    EXPECT_EQ(store.read64(0x3000), 0u);
    EXPECT_EQ(store.residentPages(), 0u);
    // Writing the same page allocates it; the MRU refresh must replace
    // the stale absent entry, so the readback sees the new data.
    store.write64(0x3000, 0x1234);
    EXPECT_EQ(store.read64(0x3000), 0x1234u);
    EXPECT_EQ(store.residentPages(), 1u);
}

TEST(BackingStore, MruSurvivesZeroAndCrossPageTransfers)
{
    BackingStore store(1 << 20);
    std::vector<std::uint8_t> data(2 * pageSize, 0x5a);
    const Addr base = pageSize - 64; // straddles a page boundary
    store.write(base, data.data(), data.size());

    // zero() mutates pages in place (never frees them), so a cached
    // MRU pointer stays valid and must observe the cleared bytes.
    EXPECT_EQ(store.read8(base), 0x5a);
    store.zero(base, data.size());
    EXPECT_EQ(store.read8(base), 0x00);
    EXPECT_EQ(store.read8(base + data.size() - 1), 0x00);

    std::vector<std::uint8_t> out(data.size(), 0xff);
    store.read(base, out.data(), out.size());
    for (std::uint8_t b : out)
        ASSERT_EQ(b, 0x00);
}

TEST(BackingStore, PageDataPointerIsStableAndCached)
{
    BackingStore store(1 << 20);
    std::uint8_t *page = store.pageData(0x4000);
    ASSERT_NE(page, nullptr);
    // Touching other pages must not invalidate the pointer.
    store.write64(0x5000, 1);
    store.write64(0x6000, 2);
    EXPECT_EQ(store.pageData(0x4000), page);
    EXPECT_EQ(store.pageDataIfResident(0x4080), page);
    // Untouched pages stay non-resident through the const probe.
    EXPECT_EQ(store.pageDataIfResident(0x7000), nullptr);
    EXPECT_EQ(store.residentPages(), 3u);
}
