// bclint fixture: the same nondeterminism sources, silenced with both
// suppression forms (same-line and preceding-line).

#include <cstdlib>
#include <random>

namespace bctrl {

unsigned
allowedSeed()
{
    std::random_device rd; // bclint:allow(nondeterminism)
    // bclint:allow(nondeterminism)
    return rd() + static_cast<unsigned>(rand());
}

} // namespace bctrl
