// bclint fixture: namespace-exempt code (e.g. a main() entry point)
// silenced with the file-level suppression.
// bclint:allow-file(namespace-bctrl)

int
main()
{
    return 0;
}
