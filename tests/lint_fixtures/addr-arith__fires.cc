// bclint fixture: raw page/block arithmetic instead of the mem/addr.hh
// helpers.

#include <cstdint>

namespace bctrl {

using Addr = std::uint64_t;
extern const unsigned pageShift;
extern const Addr blockMask;

Addr
rawPageNumber(Addr a)
{
    return a >> pageShift;
}

Addr
rawBlockAlign(Addr a)
{
    return a & ~blockMask;
}

} // namespace bctrl
