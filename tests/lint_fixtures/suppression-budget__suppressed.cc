// bclint fixture: the budget finding is itself suppressible — the
// annotation below carries both the budgeted rule's allow and a
// suppression-budget allow on the same line, so nothing fires.

namespace bctrl {

class Event;

template <class Cu>
struct Wavefront {
    Cu &cu_;

    void
    hop(Event *ev)
    {
        // bclint:allow(cross-domain-direct-call, suppression-budget)
        cu_.eventQueue().schedule(ev, 42);
    }
};

} // namespace bctrl
