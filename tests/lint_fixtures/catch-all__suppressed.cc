// bclint fixture: a deliberate catch-all (e.g. a crash-reporting shim)
// may be suppressed.

namespace bctrl {

void simulate();
void reportAndRethrow();

void
crashShim()
{
    try {
        simulate();
    } catch (...) { // bclint:allow(catch-all)
        reportAndRethrow();
        throw;
    }
}

} // namespace bctrl
