// bclint fixture: sanctioned console I/O (an explicitly allowed
// diagnostic) plus the string-formatting calls the rule must NOT
// match: snprintf/sprintf format into buffers, not onto the console,
// and an ostream parameter lets the caller choose the sink.

#include <cstdio>
#include <ostream>

namespace bctrl {

void
quietComponent(std::ostream &os, int misses)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "misses: %d", misses);
    os << buf << "\n";
    std::printf("%s\n", buf); // bclint:allow(raw-console-io)
}

} // namespace bctrl
