// bclint fixture: catch (...) swallows the simulator's panic paths.

namespace bctrl {

void simulate();

void
swallow()
{
    try {
        simulate();
    } catch (...) {
    }
}

} // namespace bctrl
