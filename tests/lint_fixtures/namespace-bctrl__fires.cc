// bclint fixture: simulation code outside namespace bctrl.

int
looseFunction()
{
    static int looseCounter = 0;
    return ++looseCounter;
}
