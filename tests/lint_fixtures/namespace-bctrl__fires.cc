// bclint fixture: simulation code outside namespace bctrl.

int looseGlobal = 0;

int
looseFunction()
{
    return looseGlobal;
}
