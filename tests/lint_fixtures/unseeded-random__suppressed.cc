// Fixture: the suppression comment silences unseeded-random.
#include <random>

namespace bctrl {

unsigned
toleratedDraw()
{
    // bclint:allow(unseeded-random)
    std::mt19937_64 gen(99);
    return static_cast<unsigned>(gen());
}

} // namespace bctrl
