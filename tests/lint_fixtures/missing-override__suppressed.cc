// bclint fixture: the compliant spellings (plus one suppressed
// violation) produce no findings. New pure-virtual interface points in
// a derived class are exempt by design.

#include <string>

namespace bctrl {

class Base
{
  public:
    virtual ~Base();
    virtual void process();
};

class Derived : public Base
{
  public:
    void process() override;
    virtual void extendInterface() = 0;
    // bclint:allow(missing-override)
    virtual std::string name() const;
};

} // namespace bctrl
