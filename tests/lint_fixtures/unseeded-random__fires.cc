// Fixture: std::<random> engines must not appear in simulation code;
// everything draws from the explicitly seeded bctrl::Random.
#include <random>

namespace bctrl {

unsigned
badDraw()
{
    std::mt19937 gen(12345);
    return static_cast<unsigned>(gen());
}

} // namespace bctrl
