// bclint fixture: a header whose guard does not match the canonical
// BCTRL_<PATH>_HH spelling.

#ifndef SOME_OTHER_GUARD_HH
#define SOME_OTHER_GUARD_HH

namespace bctrl {

struct GuardFixture {};

} // namespace bctrl

#endif // SOME_OTHER_GUARD_HH
