// bclint fixture: library code writing straight to the process
// console — under a parallel sweep every System shares one stdout, so
// output interleaves and tests cannot capture it.

#include <cstdio>
#include <iostream>

namespace bctrl {

void
chattyComponent(int misses)
{
    std::printf("misses: %d\n", misses);
    std::fprintf(stderr, "warning: %d misses\n", misses);
    std::cout << "misses: " << misses << "\n";
    std::cerr << "warning\n";
    std::puts("done");
}

} // namespace bctrl
