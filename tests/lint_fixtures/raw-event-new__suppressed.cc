// bclint fixture: an allowed raw Event allocation (e.g. a test that
// exercises queue ownership directly).

namespace bctrl {

class LambdaEvent;

void
ownershipTest()
{
    auto *ev = new LambdaEvent(); // bclint:allow(raw-event-new)
    (void)ev;
}

} // namespace bctrl
