// bclint fixture: a nonconforming guard silenced with the file-level
// suppression form.
// bclint:allow-file(include-guard)

#ifndef LEGACY_GUARD_HH
#define LEGACY_GUARD_HH

namespace bctrl {

struct GuardFixture {};

} // namespace bctrl

#endif // LEGACY_GUARD_HH
