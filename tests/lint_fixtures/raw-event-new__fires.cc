// bclint fixture: heap-allocating Event subclasses outside the
// EventQueue loses the queue's ownership guarantees.

namespace bctrl {

class LambdaEvent;

void
leakyScheduler()
{
    auto *ev = new LambdaEvent();
    (void)ev;
}

} // namespace bctrl
