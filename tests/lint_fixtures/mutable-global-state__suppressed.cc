// bclint fixture: immutable and sanctioned namespace-scope state must
// not fire, and the suppression comment silences a deliberate global.

#include <atomic>

namespace bctrl {

constexpr int kTableWays = 8;

const char *const kBannerText = "border control";

std::atomic<bool> liveFlag{true};

thread_local unsigned scratchDepth = 0;

// A genuinely mutable global, explicitly waived:
// bclint:allow(mutable-global-state)
int waivedCounter = 0;

struct PoolStats {
    unsigned hits = 0; // class scope, not namespace scope
};

inline unsigned
poolDepth()
{
    static unsigned depth = 0; // function-local static: out of scope
    return ++depth;
}

} // namespace bctrl
