// bclint fixture: the mutable-global-state rule must fire on mutable
// namespace-scope variables (concurrent Systems share one process).
// Never compiled, only linted.

namespace bctrl {

int hitCounter = 0;

static double lastLatency;

namespace detail {

unsigned livePackets{0};

} // namespace detail

} // namespace bctrl
