// bclint fixture: pointer-keyed unordered containers iterate in
// allocation order, which differs run to run.

#include <unordered_map>
#include <unordered_set>

namespace bctrl {

struct Packet;

struct Tracker {
    std::unordered_map<Packet *, int> byPacket;
    std::unordered_set<const void *> seen;
};

} // namespace bctrl
