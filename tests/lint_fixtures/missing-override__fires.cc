// bclint fixture: a derived-class virtual that re-declares without
// `override` silently stops overriding when the base signature drifts.

#include <string>

namespace bctrl {

class Base
{
  public:
    virtual ~Base();
    virtual void process();
    virtual std::string name() const;
};

class Derived : public Base
{
  public:
    virtual void process();
    virtual std::string name() const { return "derived"; }
};

} // namespace bctrl
