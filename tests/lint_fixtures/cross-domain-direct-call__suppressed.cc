// bclint fixture: an annotated same-domain reach (the two objects
// share a shard, so the direct call cannot cross domains), plus the
// this->/self-> forms, which are the caller's own queue by definition.

namespace bctrl {

class Event;

template <class Cu>
struct Wavefront {
    Cu &cu_;

    void
    hop(Event *ev)
    {
        // Same GPU-cluster domain as cu_.
        // bclint:allow(cross-domain-direct-call)
        cu_.eventQueue().schedule(ev, 42);
    }

    void
    own(Event *ev)
    {
        this->eventQueue().schedule(ev, 42);
        auto *self = this;
        self->eventQueue().schedule(ev, 43);
    }

    Cu &eventQueue() { return cu_; }
};

} // namespace bctrl
