// bclint fixture: minting Packets directly bypasses the per-System
// pool, so the hot request path allocates on every access.

namespace bctrl {

struct Packet;

void
poolBypassingIssuer()
{
    auto *pkt = new Packet();
    (void)pkt;
}

} // namespace bctrl
