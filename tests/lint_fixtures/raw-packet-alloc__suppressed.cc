// bclint fixture: an allowed direct Packet allocation (e.g. pool
// internals or a test that exercises packet lifetime directly).

namespace bctrl {

struct Packet;

void
packetLifetimeTest()
{
    auto *pkt = new Packet(); // bclint:allow(raw-packet-alloc)
    (void)pkt;
}

} // namespace bctrl
