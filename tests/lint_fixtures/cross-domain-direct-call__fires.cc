// bclint fixture: scheduling through another component's queue
// accessor couples domains synchronously — in the sharded loop that
// is a zero-lookahead cross-domain call.

namespace bctrl {

class Event;

template <class Dram>
void
crossSchedule(Dram &dram, Event *ev)
{
    dram.eventQueue().schedule(ev, 42);
}

} // namespace bctrl
