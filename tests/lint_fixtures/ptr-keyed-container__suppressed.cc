// bclint fixture: a pointer-keyed container whose uses never iterate
// may be suppressed explicitly.

#include <unordered_map>

namespace bctrl {

struct Packet;

struct Tracker {
    // Lookup only, never iterated: order independence is irrelevant.
    // bclint:allow(ptr-keyed-container)
    std::unordered_map<Packet *, int> byPacket;
};

} // namespace bctrl
