// bclint fixture: raw address arithmetic explicitly allowed (the
// helpers themselves, or storage-layout math that is not an address).

#include <cstdint>

namespace bctrl {

using Addr = std::uint64_t;
extern const unsigned pageShift;
extern const Addr blockMask;

Addr
helperPageNumber(Addr a)
{
    return a >> pageShift; // bclint:allow(addr-arith)
}

Addr
helperBlockAlign(Addr a)
{
    // bclint:allow(addr-arith)
    return a & ~blockMask;
}

} // namespace bctrl
