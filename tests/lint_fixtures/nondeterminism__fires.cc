// bclint fixture: the nondeterminism rule must fire on libc PRNG and
// wall-clock time sources. Never compiled, only linted.

#include <chrono>
#include <cstdlib>
#include <random>

namespace bctrl {

unsigned
badSeed()
{
    std::random_device rd;
    return rd() + static_cast<unsigned>(rand());
}

long
badClock()
{
    auto now = std::chrono::steady_clock::now();
    return now.time_since_epoch().count() + time(nullptr);
}

} // namespace bctrl
