// bclint fixture: an allow annotation for a budgeted rule counts
// against the pinned tree-wide inventory; in a budget fixture every
// such annotation is reported, proving the rule fires.

namespace bctrl {

class Event;

template <class Cu>
struct Wavefront {
    Cu &cu_;

    void
    hop(Event *ev)
    {
        // bclint:allow(cross-domain-direct-call)
        cu_.eventQueue().schedule(ev, 42);
    }
};

} // namespace bctrl
