/**
 * @file
 * End-to-end integration tests: full systems in every safety
 * configuration run workloads to completion, with the expected
 * structural and behavioural properties.
 */

#include <gtest/gtest.h>

#include "config/system_builder.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
smallConfig(SafetyModel m,
            GpuProfile p = GpuProfile::highlyThreaded)
{
    SystemConfig cfg;
    cfg.safety = m;
    cfg.profile = p;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    return cfg;
}

} // namespace

class AllConfigsTest : public ::testing::TestWithParam<SafetyModel>
{};

TEST_P(AllConfigsTest, UniformWorkloadRunsCleanly)
{
    System sys(smallConfig(GetParam()));
    RunResult r = sys.run("uniform");
    EXPECT_GT(r.runtimeTicks, 0u);
    EXPECT_GT(r.memOps, 0u);
    // A correct accelerator running a correct workload never violates,
    // in any configuration.
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(sys.gpu().deniedOps(), 0u);
}

TEST_P(AllConfigsTest, StructuralInventoryMatchesTable2)
{
    System sys(smallConfig(GetParam()));
    const SafetyProperties props = safetyProperties(GetParam());
    EXPECT_EQ(sys.borderControl() != nullptr,
              GetParam() == SafetyModel::borderControlNoBcc ||
                  GetParam() == SafetyModel::borderControlBcc);
    EXPECT_EQ(sys.gpu().l2Cache() != nullptr, props.accelL2Cache);
    EXPECT_EQ(sys.gpu().l1Tlb(0) != nullptr, props.accelL1Tlb);
    EXPECT_EQ(sys.capiL2() != nullptr,
              GetParam() == SafetyModel::capiLike);
    if (sys.borderControl() != nullptr) {
        EXPECT_EQ(sys.borderControl()->bcc() != nullptr, props.hasBcc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Safety, AllConfigsTest,
    ::testing::Values(SafetyModel::atsOnlyIommu, SafetyModel::fullIommu,
                      SafetyModel::capiLike,
                      SafetyModel::borderControlNoBcc,
                      SafetyModel::borderControlBcc));

TEST(SystemIntegration, ModeratelyThreadedProfileRuns)
{
    System sys(smallConfig(SafetyModel::borderControlBcc,
                           GpuProfile::moderatelyThreaded));
    RunResult r = sys.run("uniform");
    EXPECT_EQ(r.violations, 0u);
    EXPECT_GT(r.runtimeTicks, 0u);
}

TEST(SystemIntegration, SafeConfigsCostMoreThanBaseline)
{
    double base = 0;
    for (SafetyModel m :
         {SafetyModel::atsOnlyIommu, SafetyModel::fullIommu}) {
        System sys(smallConfig(m));
        RunResult r = sys.run("stream");
        if (m == SafetyModel::atsOnlyIommu)
            base = r.gpuCycles;
        else
            EXPECT_GT(r.gpuCycles, base);
    }
}

TEST(SystemIntegration, BccConfigBeatsNoBcc)
{
    System with(smallConfig(SafetyModel::borderControlBcc));
    System without(smallConfig(SafetyModel::borderControlNoBcc));
    RunResult rw = with.run("uniform");
    RunResult ro = without.run("uniform");
    EXPECT_LE(rw.gpuCycles, ro.gpuCycles * 1.02);
}

TEST(SystemIntegration, BorderControlSeesAllBorderTraffic)
{
    System sys(smallConfig(SafetyModel::borderControlBcc));
    RunResult r = sys.run("uniform");
    EXPECT_GT(r.borderRequests, 0u);
    // Every border request was permission-checked; none violated.
    EXPECT_EQ(sys.borderControl()->violations(), 0u);
    // With lazy insertion, the table now has permissions for the
    // process's touched pages.
    EXPECT_GT(r.translations, 0u);
}

TEST(SystemIntegration, BccMissRatioIsLowWithDefaultGeometry)
{
    System sys(smallConfig(SafetyModel::borderControlBcc));
    RunResult r = sys.run("pathfinder");
    // 64 entries x 512 pages reach 128 MB: essentially no misses.
    EXPECT_LT(r.bccMissRatio, 0.01);
}

TEST(SystemIntegration, ProtectionTableNeverExceedsPageTablePerms)
{
    // The central safety invariant (DESIGN.md #2): after a run, no
    // physical page has more permissions in the Protection Table than
    // some process page table grants.
    SystemConfig cfg = smallConfig(SafetyModel::borderControlBcc);
    System sys(cfg);

    auto workload = makeWorkload("uniform", 1, 5);
    Process &proc = sys.kernel().createProcess();
    workload->setup(proc);

    // Snapshot before release (the table is zeroed afterwards): run
    // manually through the System API.
    RunResult r = sys.run(*workload, proc);
    EXPECT_EQ(r.violations, 0u);
}

TEST(SystemIntegration, LargePageWorkloadRunsCleanly)
{
    // §3.4.4: a 2 MB-backed footprint. One translation covers 512
    // Protection Table entries (a single BCC entry / memory block).
    System sys(smallConfig(SafetyModel::borderControlBcc));
    Process &proc = sys.kernel().createProcess();
    auto wl = std::make_unique<UniformRandomWorkload>(1, 9);
    wl->configure(8 << 20, 32768, 0.3);
    wl->useLargePages();
    wl->setup(proc);
    RunResult r = sys.run(*wl, proc);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_GT(r.memOps, 0u);
    // Far fewer walks than 4 KB paging would need for an 8 MB
    // footprint (2048 small pages vs. 4 large ones).
    EXPECT_LT(r.pageWalks, 256u);
}

TEST(SystemIntegration, RunIsDeterministic)
{
    auto once = []() {
        System sys(smallConfig(SafetyModel::borderControlBcc));
        return sys.run("bfs").runtimeTicks;
    };
    EXPECT_EQ(once(), once());
}

TEST(SystemIntegration, DumpStatsMentionsKeyComponents)
{
    System sys(smallConfig(SafetyModel::borderControlBcc));
    sys.run("uniform");
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("system.mem"), std::string::npos);
    EXPECT_NE(out.find("system.bc"), std::string::npos);
    EXPECT_NE(out.find("system.gpu"), std::string::npos);
    EXPECT_NE(out.find("system.ats"), std::string::npos);
}
