/**
 * @file
 * The threat model of §2.1, executed: wild physical reads/writes,
 * stale writebacks, and forged ASIDs against every configuration.
 * Safe configurations must block every attack; the unsafe ATS-only
 * baseline must demonstrably let them through.
 */

#include <gtest/gtest.h>

#include "bc/attack.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

struct Quiet {
    Quiet() { setLogVerbose(false); }
} quiet;

SystemConfig
cfgFor(SafetyModel m)
{
    SystemConfig cfg;
    cfg.safety = m;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    return cfg;
}

/** A victim "secret": a mapped page belonging to a process that never
 * ran on the accelerator. */
Addr
plantSecret(System &sys)
{
    Process &victim = sys.kernel().createProcess();
    Addr va = victim.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = victim.pageTable().walk(va);
    sys.memory().write64(w.paddr, 0x5ec2375ULL);
    return w.paddr;
}

} // namespace

TEST(Attacks, BorderControlBlocksWildReads)
{
    for (SafetyModel m : {SafetyModel::borderControlBcc,
                          SafetyModel::borderControlNoBcc}) {
        System sys(cfgFor(m));
        Addr secret = plantSecret(sys);
        // A process must be running for the table to exist; schedule
        // one that never translated the victim's page.
        Process &attacker = sys.kernel().createProcess();
        sys.kernel().scheduleOnAccelerator(attacker);

        AttackInjector inject(sys);
        auto outcome = inject.wildPhysicalRead(secret);
        EXPECT_TRUE(outcome.responded);
        EXPECT_TRUE(outcome.blocked) << safetyModelName(m);
        EXPECT_GE(sys.kernel().violations().size(), 1u);
    }
}

TEST(Attacks, BorderControlBlocksWildWrites)
{
    System sys(cfgFor(SafetyModel::borderControlBcc));
    Addr secret = plantSecret(sys);
    Process &attacker = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(attacker);

    const std::uint64_t before = sys.memory().read64(secret);
    AttackInjector inject(sys);
    auto outcome = inject.wildPhysicalWrite(secret);
    EXPECT_TRUE(outcome.blocked);
    // Functional state is untouched: integrity preserved.
    EXPECT_EQ(sys.memory().read64(secret), before);
}

TEST(Attacks, AtsOnlyBaselineIsVulnerable)
{
    System sys(cfgFor(SafetyModel::atsOnlyIommu));
    Addr secret = plantSecret(sys);
    Process &attacker = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(attacker);

    AttackInjector inject(sys);
    // The wild read sails through to DRAM: confidentiality violated.
    auto read = inject.wildPhysicalRead(secret);
    EXPECT_TRUE(read.responded);
    EXPECT_FALSE(read.blocked);
    auto write = inject.wildPhysicalWrite(secret);
    EXPECT_FALSE(write.blocked);
}

TEST(Attacks, FullIommuBlocksForgedVirtualRequests)
{
    System sys(cfgFor(SafetyModel::fullIommu));
    plantSecret(sys);
    AttackInjector inject(sys);
    // ASID 77 is not bound to the accelerator: the ATS refuses.
    auto outcome = inject.forgedAsidRead(77, 0x10000000);
    EXPECT_TRUE(outcome.responded);
    EXPECT_TRUE(outcome.blocked);
}

TEST(Attacks, CapiLikeBlocksForgedVirtualRequests)
{
    System sys(cfgFor(SafetyModel::capiLike));
    plantSecret(sys);
    AttackInjector inject(sys);
    auto outcome = inject.forgedAsidRead(77, 0x10000000);
    EXPECT_TRUE(outcome.blocked);
}

TEST(Attacks, ForgedAsidFailsTranslationInBcConfigs)
{
    System sys(cfgFor(SafetyModel::borderControlBcc));
    Process &attacker = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(attacker);
    AttackInjector inject(sys);
    auto outcome = inject.forgedAsidRead(99, 0x10000000);
    EXPECT_TRUE(outcome.blocked);
}

TEST(Attacks, StaleWritebackAfterDowngradeIsCaught)
{
    // §3.2.4: even if the accelerator ignores the flush request, a
    // writeback with stale (revoked) permissions is caught later.
    System sys(cfgFor(SafetyModel::borderControlBcc));
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = proc.pageTable().walk(va);
    sys.kernel().scheduleOnAccelerator(proc);

    // The accelerator legitimately translated the page for writing...
    sys.borderControl()->onTranslation(proc.asid(), pageNumber(va),
                                       pageNumber(w.paddr),
                                       Perms::readWrite(), false);
    // ...then the OS downgraded it (and the accelerator "forgot" to
    // flush, keeping a stale dirty block).
    bool downgraded = false;
    sys.kernel().downgradePage(proc, va, Perms::readOnly(),
                               [&]() { downgraded = true; });
    sys.eventQueue().run();
    ASSERT_TRUE(downgraded);

    AttackInjector inject(sys);
    auto outcome = inject.staleWriteback(w.paddr);
    EXPECT_TRUE(outcome.blocked);
    EXPECT_GE(sys.kernel().violations().size(), 1u);
}

TEST(Attacks, LegitimateTranslationThenAccessSucceeds)
{
    // Control case: the same "attack" path with a legitimate ATS
    // translation first is allowed through.
    System sys(cfgFor(SafetyModel::borderControlBcc));
    Process &proc = sys.kernel().createProcess();
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = proc.pageTable().walk(va);
    sys.kernel().scheduleOnAccelerator(proc);
    sys.borderControl()->onTranslation(proc.asid(), pageNumber(va),
                                       pageNumber(w.paddr),
                                       Perms::readWrite(), false);
    AttackInjector inject(sys);
    EXPECT_FALSE(inject.wildPhysicalRead(w.paddr).blocked);
    EXPECT_FALSE(inject.wildPhysicalWrite(w.paddr).blocked);
}

TEST(Attacks, OutOfBoundsPhysicalAddressBlocked)
{
    System sys(cfgFor(SafetyModel::borderControlBcc));
    Process &proc = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(proc);
    AttackInjector inject(sys);
    // Beyond the bounds register (past physical memory).
    auto outcome =
        inject.wildPhysicalRead(sys.config().physMemBytes - pageSize);
    // In bounds but never translated: blocked. (True out-of-bounds
    // addresses would fault in the backing store; the bounds register
    // check is exercised in test_border_control.)
    EXPECT_TRUE(outcome.blocked);
}

TEST(Attacks, ExfiltrationViaOtherProcessPageBlocked)
{
    // The §2.1 scenario: read a secret, write it into another process'
    // address space. Both directions must be blocked.
    System sys(cfgFor(SafetyModel::borderControlBcc));
    Addr secret = plantSecret(sys);
    Process &other = sys.kernel().createProcess();
    Addr other_va = other.mmap(pageSize, Perms::readWrite(), true);
    Addr other_pa = other.pageTable().walk(other_va).paddr;

    Process &attacker = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(attacker);
    AttackInjector inject(sys);
    EXPECT_TRUE(inject.wildPhysicalRead(secret).blocked);
    EXPECT_TRUE(inject.wildPhysicalWrite(other_pa).blocked);
    EXPECT_EQ(sys.kernel().violations().size(), 2u);
}
