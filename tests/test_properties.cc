/**
 * @file
 * Property-based tests of Border Control's safety invariants under
 * randomized operation sequences, parameterized over seeds (TEST_P).
 *
 * The central invariant (paper §3.2.1): "no page ever has read or
 * write permission in the Protection Table if it does not have it
 * according to the process page table" — checked after every step of
 * random map / protect / unmap / translate / downgrade interleavings.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bc/border_control.hh"
#include "mem/dram.hh"
#include "os/kernel.hh"
#include "sim/random.hh"

using namespace bctrl;

namespace {

struct Harness {
    EventQueue eq;
    BackingStore store{256ULL * 1024 * 1024};
    Dram dram{eq, "mem", store, Dram::Params{}};
    Kernel kernel{eq, "kernel", store, Kernel::Params{}};
    BorderControl bc{eq, "bc", BorderControl::Params{}, dram};
    ProtectionTable table{store, 0x4000, store.numPages()};

    Harness()
    {
        bc.attachTable(&table);
        bc.incrUseCount();
        // Border Control is driven directly by the harness (the
        // kernel would otherwise allocate its own table on schedule).
        kernel.attachAccelerator(nullptr, nullptr, nullptr);
    }
};

/** Union of page-table permissions for @p ppn across all processes. */
Perms
pageTableUnion(const std::vector<Process *> &procs,
               const std::map<std::pair<Asid, Addr>, Addr> &vpn_to_ppn,
               Addr ppn)
{
    Perms u;
    for (Process *proc : procs) {
        for (const auto &[key, mapped_ppn] : vpn_to_ppn) {
            if (key.first != proc->asid() || mapped_ppn != ppn)
                continue;
            WalkResult w =
                proc->pageTable().walk(pageBase(key.second));
            if (w.valid)
                u = u | w.perms;
        }
    }
    return u;
}

} // namespace

class ProtectionInvariantTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ProtectionInvariantTest, TableNeverExceedsPageTable)
{
    Harness h;
    Random rng(GetParam());

    std::vector<Process *> procs;
    for (int i = 0; i < 2; ++i) {
        Process &p = h.kernel.createProcess();
        h.kernel.scheduleOnAccelerator(p);
        procs.push_back(&p);
    }

    // Bookkeeping of live mappings: (asid, vpn) -> ppn.
    std::map<std::pair<Asid, Addr>, Addr> mappings;
    // Every PPN we ever inserted into the Protection Table.
    std::set<Addr> touched_ppns;

    auto check_invariant = [&]() {
        for (Addr ppn : touched_ppns) {
            Perms table_perms = h.table.getPerms(ppn);
            Perms allowed = pageTableUnion(procs, mappings, ppn);
            // The table may lag behind (fewer permissions are always
            // safe) but must never exceed the page tables' union.
            EXPECT_TRUE(allowed.covers(table_perms))
                << "PPN " << ppn << " table R" << table_perms.read
                << "W" << table_perms.write << " page-table R"
                << allowed.read << "W" << allowed.write;
        }
    };

    for (int step = 0; step < 400; ++step) {
        Process &proc = *procs[rng.nextBounded(procs.size())];
        const Addr vpn = 0x10000 + rng.nextBounded(32);
        const auto key = std::make_pair(proc.asid(), vpn);
        const unsigned op = static_cast<unsigned>(rng.nextBounded(5));

        switch (op) {
          case 0: { // map a fresh page
            if (mappings.count(key))
                break;
            Addr frame = h.kernel.allocFrame();
            Perms perms = rng.nextBool(0.5) ? Perms::readWrite()
                                            : Perms::readOnly();
            proc.pageTable().map(pageBase(vpn), frame, perms);
            mappings[key] = pageNumber(frame);
            break;
          }
          case 1: { // ATS translation: lazy table insertion
            if (!mappings.count(key))
                break;
            WalkResult w = proc.pageTable().walk(pageBase(vpn));
            if (!w.valid)
                break;
            h.bc.onTranslation(proc.asid(), vpn,
                               pageNumber(w.paddr), w.perms, false);
            touched_ppns.insert(pageNumber(w.paddr));
            break;
          }
          case 2: { // permission downgrade with the BC protocol
            if (!mappings.count(key))
                break;
            WalkResult w = proc.pageTable().walk(pageBase(vpn));
            if (!w.valid)
                break;
            proc.pageTable().protect(pageBase(vpn),
                                     Perms::readOnly());
            // Mirror the kernel's downgrade path (no accelerator in
            // this harness, so the flush is vacuous).
            h.bc.downgradePage(pageNumber(w.paddr), Perms::readOnly());
            break;
          }
          case 3: { // unmap + revoke
            if (!mappings.count(key))
                break;
            WalkResult w = proc.pageTable().walk(pageBase(vpn));
            proc.pageTable().unmap(pageBase(vpn));
            if (w.valid)
                h.bc.downgradePage(pageNumber(w.paddr),
                                   Perms::noAccess());
            mappings.erase(key);
            break;
          }
          case 4: { // full zero (context switch style)
            if (rng.nextBool(0.05))
                h.bc.zeroTableAndInvalidate();
            break;
          }
        }
        h.eq.run();
        check_invariant();
    }
}

TEST_P(ProtectionInvariantTest, BccAlwaysConsistentWithTable)
{
    // The BCC is write-through: a resident entry must always agree
    // with the Protection Table it caches.
    Harness h;
    Random rng(GetParam() ^ 0xbccbcc);
    BorderControlCache::Params bp;
    bp.entries = 4;
    bp.pagesPerEntry = 8;
    BorderControlCache bcc(bp);

    std::set<Addr> seen;
    for (int step = 0; step < 2000; ++step) {
        const Addr ppn = rng.nextBounded(256);
        switch (rng.nextBounded(4)) {
          case 0:
            bcc.fill(ppn, h.table);
            break;
          case 1: {
            Perms p = Perms::fromBits(
                static_cast<std::uint8_t>(rng.nextBounded(4)));
            h.table.setPerms(ppn, p);
            bcc.update(ppn, p); // write-through contract
            break;
          }
          case 2:
            bcc.invalidatePage(ppn);
            break;
          case 3:
            if (rng.nextBool(0.02)) {
                h.table.zeroAll();
                bcc.invalidateAll();
            }
            break;
        }
        seen.insert(ppn);
        for (Addr p : seen) {
            auto cached = bcc.probe(p);
            if (cached.has_value()) {
                EXPECT_EQ(*cached, h.table.getPerms(p))
                    << "PPN " << p << " step " << step;
            }
        }
    }
}

TEST_P(ProtectionInvariantTest, RandomRogueRequestsAlwaysDenied)
{
    // Any physical address whose translation was never delivered by
    // the ATS must be denied, whatever the address pattern.
    Harness h;
    Random rng(GetParam() ^ 0xa77ac4);
    Process &p = h.kernel.createProcess();
    h.kernel.scheduleOnAccelerator(p);

    // Grant exactly one page.
    Addr va = p.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = p.pageTable().walk(va);
    const Addr granted_ppn = pageNumber(w.paddr);
    h.bc.onTranslation(p.asid(), pageNumber(va), granted_ppn,
                       Perms::readWrite(), false);

    for (int i = 0; i < 200; ++i) {
        const Addr ppn = rng.nextBounded(h.store.numPages());
        bool denied = false;
        bool responded = false;
        auto pkt = Packet::make(
            rng.nextBool(0.5) ? MemCmd::Read : MemCmd::Write,
            pageBase(ppn) | rng.nextBounded(pageSize / 64) * 64,
            64, Requestor::accelerator);
        pkt->onResponse = [&](Packet &r) {
            responded = true;
            denied = r.denied;
        };
        h.bc.access(pkt);
        h.eq.run();
        ASSERT_TRUE(responded);
        EXPECT_EQ(denied, ppn != granted_ppn)
            << "ppn " << ppn << " granted " << granted_ppn;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtectionInvariantTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u,
                                           0xdeadbeefu));
