/**
 * @file
 * The paper's threat model (§2.1), demonstrated end to end.
 *
 * A "malicious accelerator" issues wild physical reads and writes, a
 * stale writeback after a permission downgrade, and a forged-ASID
 * request — first against the unsafe ATS-only baseline (attacks
 * succeed: confidentiality and integrity of host memory are violated),
 * then against Border Control (every attack is blocked and the OS is
 * notified).
 */

#include <cstdio>

#include "bc/attack.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

SystemConfig
makeConfig(SafetyModel model)
{
    SystemConfig cfg;
    cfg.safety = model;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    return cfg;
}

struct Scenario {
    System sys;
    Addr secretPa = 0;   ///< a victim process's page (never on accel)
    Addr grantedPa = 0;  ///< page legitimately translated for the accel
    Process *attacker = nullptr;

    explicit Scenario(SafetyModel model) : sys(makeConfig(model))
    {
        // The victim: a process holding a secret, never scheduled on
        // the accelerator.
        Process &victim = sys.kernel().createProcess();
        Addr va = victim.mmap(pageSize, Perms::readWrite(), true);
        secretPa = victim.pageTable().walk(va).paddr;
        sys.memory().write64(secretPa, 0x5ec2e7c0de5ec2e7ULL);

        // The attacker: runs on the accelerator, with one page of its
        // own legitimately translated.
        attacker = &sys.kernel().createProcess();
        Addr own = attacker->mmap(pageSize, Perms::readWrite(), true);
        grantedPa = attacker->pageTable().walk(own).paddr;
        sys.kernel().scheduleOnAccelerator(*attacker);
        if (sys.borderControl() != nullptr) {
            sys.borderControl()->onTranslation(
                attacker->asid(), pageNumber(own),
                pageNumber(grantedPa), Perms::readWrite(), false);
        }
    }
};

const char *
verdict(bool blocked)
{
    return blocked ? "BLOCKED at the border" : "went through unchecked";
}

void
attack(const char *label, SafetyModel model)
{
    std::printf("\n--- %s ---\n", label);
    Scenario s(model);
    AttackInjector inject(s.sys);

    auto rd = inject.wildPhysicalRead(s.secretPa);
    std::printf("  wild read of victim secret      : %s\n",
                verdict(rd.blocked));
    auto wr = inject.wildPhysicalWrite(s.secretPa);
    std::printf("  wild write over victim secret   : %s\n",
                verdict(wr.blocked));
    auto forged = inject.forgedAsidRead(1234, 0x10000000);
    std::printf("  forged-ASID virtual request     : %s\n",
                verdict(forged.blocked));
    auto own = inject.wildPhysicalRead(s.grantedPa);
    std::printf("  access to legitimately granted  : %s\n",
                own.blocked ? "blocked (!)"
                            : "allowed, as it should be");
    std::printf("  violations reported to the OS   : %zu\n",
                s.sys.kernel().violations().size());
}

} // namespace

int
main()
{
    setLogVerbose(false);
    std::printf("Border Control sandbox demonstration\n");
    std::printf("=====================================\n");

    attack("Unsafe baseline (ATS-only IOMMU): the paper's threat",
           SafetyModel::atsOnlyIommu);
    attack("Border Control (with BCC): the paper's defense",
           SafetyModel::borderControlBcc);

    // The stale-writeback scenario: a buggy TLB-shootdown
    // implementation holding dirty data past a downgrade (§3.2.4).
    std::printf("\n--- Stale writeback after downgrade (buggy "
                "shootdown) ---\n");
    Scenario s(SafetyModel::borderControlBcc);
    Process &proc = *s.attacker;
    Addr va = proc.mmap(pageSize, Perms::readWrite(), true);
    WalkResult w = proc.pageTable().walk(va);
    s.sys.borderControl()->onTranslation(proc.asid(), pageNumber(va),
                                         pageNumber(w.paddr),
                                         Perms::readWrite(), false);
    bool done = false;
    s.sys.kernel().downgradePage(proc, va, Perms::readOnly(),
                                 [&]() { done = true; });
    s.sys.eventQueue().run();
    AttackInjector inject(s.sys);
    auto stale = inject.staleWriteback(w.paddr);
    std::printf("  downgrade completed             : %s\n",
                done ? "yes" : "no");
    std::printf("  stale dirty writeback           : %s\n",
                verdict(stale.blocked));

    std::printf("\nSummary: the request stream that compromises the "
                "unsafe system is fully\ncontained by Border Control, "
                "with the OS notified of each attempt.\n");
    return 0;
}
