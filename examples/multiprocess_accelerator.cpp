/**
 * @file
 * Multiprocess accelerators (paper §3.3): two processes co-scheduled
 * on the GPU run kernels back to back; Border Control keeps one
 * Protection Table whose permissions are the union across both, and
 * tears everything down when the last process releases the
 * accelerator (Fig. 3e).
 */

#include <cstdio>

#include "config/system_builder.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"

using namespace bctrl;

int
main()
{
    setLogVerbose(false);
    SystemConfig cfg;
    cfg.safety = SafetyModel::borderControlBcc;
    cfg.profile = GpuProfile::highlyThreaded;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    System sys(cfg);

    std::printf("Multiprocess accelerator sharing\n");
    std::printf("================================\n");

    // Two processes, two workloads.
    Process &alice = sys.kernel().createProcess();
    Process &bob = sys.kernel().createProcess();

    UniformRandomWorkload wl_a(1, 11);
    wl_a.configure(2 << 20, 32768, 0.3);
    wl_a.setup(alice);
    StreamWorkload wl_b(1, 12);
    wl_b.configure(4 << 20, 1, 0.25);
    wl_b.setup(bob);

    // Alice's kernel runs first; her process init allocates the table.
    RunResult ra = sys.run(wl_a, alice);
    auto *bc = sys.borderControl();
    std::printf("\nAlice (asid %u): %llu mem ops, %llu border checks, "
                "%llu violations\n",
                alice.asid(), (unsigned long long)ra.memOps,
                (unsigned long long)ra.borderRequests,
                (unsigned long long)ra.violations);
    std::printf("  table freed after her release? %s (use count %u)\n",
                bc->table() == nullptr ? "yes" : "no", bc->useCount());

    // Bob's kernel: a fresh schedule re-allocates the table lazily.
    RunResult rb = sys.run(wl_b, bob);
    std::printf("Bob   (asid %u): %llu mem ops, %llu border checks, "
                "%llu violations\n",
                bob.asid(), (unsigned long long)rb.memOps,
                (unsigned long long)(rb.borderRequests -
                                     ra.borderRequests),
                (unsigned long long)rb.violations);

    // Now co-schedule both and show the union-of-permissions rule on
    // a page each maps with different rights.
    std::printf("\nUnion of permissions across co-scheduled processes "
                "(paper §3.3):\n");
    sys.kernel().scheduleOnAccelerator(alice);
    sys.kernel().scheduleOnAccelerator(bob);

    Addr shared_frame = sys.kernel().allocFrame();
    Addr va_a = alice.mmap(pageSize, Perms::readOnly());
    alice.pageTable().map(va_a, shared_frame, Perms::readOnly());
    Addr va_b = bob.mmap(pageSize, Perms::readWrite());
    bob.pageTable().map(va_b, shared_frame, Perms{false, true});

    bc->onTranslation(alice.asid(), pageNumber(va_a),
                      pageNumber(shared_frame), Perms::readOnly(),
                      false);
    std::printf("  after Alice's R-only translation : table says R%d "
                "W%d\n",
                bc->table()->getPerms(pageNumber(shared_frame)).read,
                bc->table()->getPerms(pageNumber(shared_frame)).write);
    bc->onTranslation(bob.asid(), pageNumber(va_b),
                      pageNumber(shared_frame), Perms{false, true},
                      false);
    Perms merged = bc->table()->getPerms(pageNumber(shared_frame));
    std::printf("  after Bob's W-only translation   : table says R%d "
                "W%d (union)\n",
                merged.read, merged.write);

    // Release both; the table is reclaimed only with the last one.
    bool done_a = false, done_b = false;
    sys.kernel().releaseAccelerator(alice, [&]() { done_a = true; });
    sys.eventQueue().run();
    std::printf("\nAlice released: table still present? %s "
                "(use count %u)\n",
                bc->table() != nullptr ? "yes" : "no", bc->useCount());
    sys.kernel().releaseAccelerator(bob, [&]() { done_b = true; });
    sys.eventQueue().run();
    std::printf("Bob released:   table still present? %s "
                "(use count %u)\n",
                bc->table() != nullptr ? "yes" : "no", bc->useCount());

    const bool ok = done_a && done_b && merged.read && merged.write &&
                    bc->table() == nullptr && ra.violations == 0 &&
                    rb.violations == 0;
    std::printf("\n%s\n", ok ? "OK: one table per accelerator, union "
                               "semantics, reclaimed with last process."
                             : "UNEXPECTED state!");
    return ok ? 0 : 1;
}
