/**
 * @file
 * Permission downgrades under load (paper §3.2.4 / Fig. 7): run a GPU
 * kernel while the OS repeatedly downgrades page permissions
 * (context-switch style), comparing the full-flush protocol against
 * the selective per-page flush optimization, and showing that the
 * kernel still completes with zero violations.
 */

#include <cstdio>

#include "config/system_builder.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

RunResult
runStorm(bool selective, double rate)
{
    SystemConfig cfg;
    cfg.safety = SafetyModel::borderControlBcc;
    cfg.profile = GpuProfile::highlyThreaded;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    cfg.selectiveFlush = selective;
    cfg.downgradesPerSecond = rate;
    cfg.workloadScale = 2;
    System sys(cfg);
    return sys.run("hotspot");
}

} // namespace

int
main()
{
    setLogVerbose(false);
    std::printf("Downgrade storm: TLB shootdowns + Border Control "
                "protocol under load\n");
    std::printf("=================================================="
                "=================\n\n");

    RunResult quiet = runStorm(false, 0);
    std::printf("baseline (no downgrades)     : %8.0f GPU cycles, "
                "%llu violations\n",
                quiet.gpuCycles,
                (unsigned long long)quiet.violations);

    std::printf("\n%-12s %16s %16s %12s %12s\n", "rate(/s)",
                "full-flush(cy)", "selective(cy)", "downgrades",
                "violations");
    for (double rate : {20'000.0, 50'000.0, 100'000.0}) {
        RunResult full = runStorm(false, rate);
        RunResult sel = runStorm(true, rate);
        std::printf("%-12.0f %16.0f %16.0f %12llu %12llu\n", rate,
                    full.gpuCycles, sel.gpuCycles,
                    (unsigned long long)full.downgrades,
                    (unsigned long long)(full.violations +
                                         sel.violations));
        if (full.violations != 0 || sel.violations != 0) {
            std::printf("unexpected violations during downgrades!\n");
            return 1;
        }
    }

    std::printf("\n(Rates far above Fig. 7's 0-1000/s x-axis are used "
                "here so several\ndowngrades land within one short "
                "kernel; bench/fig7_downgrades sweeps\nthe paper's "
                "actual range.)\n");
    std::printf("\nOK: every downgrade quiesced the accelerator, "
                "flushed what could be\ndirty, revoked table entries, "
                "and execution resumed safely.\n");
    return 0;
}
