/**
 * @file
 * Quickstart: build a Border Control system, run one GPU workload,
 * and print what the sandbox saw.
 *
 * This is the smallest end-to-end use of the library's public API:
 *   1. describe the machine with a SystemConfig,
 *   2. construct a System,
 *   3. run a workload,
 *   4. read the RunResult.
 */

#include <cstdio>

#include "config/system_builder.hh"
#include "sim/logging.hh"

using namespace bctrl;

int
main()
{
    setLogVerbose(false);

    SystemConfig config;
    config.safety = SafetyModel::borderControlBcc;
    config.profile = GpuProfile::highlyThreaded;
    config.workloadScale = 1;

    System system(config);
    RunResult result = system.run("pathfinder");

    std::printf("Border Control quickstart\n");
    std::printf("=========================\n");
    std::printf("workload            : %s\n", result.workload.c_str());
    std::printf("safety model        : %s\n",
                safetyModelName(result.safety));
    std::printf("GPU profile         : %s\n",
                gpuProfileName(result.profile));
    std::printf("kernel runtime      : %.3f ms (%.0f GPU cycles)\n",
                result.runtimeTicks / 1e9, result.gpuCycles);
    std::printf("memory ops issued   : %llu\n",
                (unsigned long long)result.memOps);
    std::printf("border requests     : %llu (%.4f per GPU cycle)\n",
                (unsigned long long)result.borderRequests,
                result.borderRequestsPerCycle);
    std::printf("BCC hit ratio       : %.4f%% misses\n",
                100.0 * result.bccMissRatio);
    std::printf("violations blocked  : %llu\n",
                (unsigned long long)result.violations);
    std::printf("page faults serviced: %llu translations, %llu walks\n",
                (unsigned long long)result.translations,
                (unsigned long long)result.pageWalks);
    std::printf("DRAM traffic        : %.1f MB (%.1f%% utilized)\n",
                result.dramBytes / 1e6, 100.0 * result.dramUtilization);

    // A correct workload on a correct accelerator never violates:
    if (result.violations != 0) {
        std::printf("unexpected violations!\n");
        return 1;
    }
    std::printf("\nOK: kernel ran to completion inside the sandbox.\n");
    return 0;
}
