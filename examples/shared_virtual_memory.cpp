/**
 * @file
 * Shared virtual memory between CPU and accelerator — the tight
 * integration the paper's introduction motivates ("pointer-is-a-
 * pointer" semantics, no manual copies) and Border Control makes safe.
 *
 * A producer-consumer pipeline in one address space:
 *   1. the CPU writes an input buffer (dirtying its own caches),
 *   2. a GPU kernel streams the same buffer by virtual address — its
 *      fills recall the CPU's dirty blocks through the coherence
 *      point, and every border crossing is permission-checked,
 *   3. the CPU reads back the GPU-written output buffer.
 */

#include <cstdio>

#include "config/system_builder.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"

using namespace bctrl;

int
main()
{
    setLogVerbose(false);
    SystemConfig cfg;
    cfg.safety = SafetyModel::borderControlBcc;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    System sys(cfg);

    std::printf("Shared virtual memory: CPU -> GPU -> CPU pipeline\n");
    std::printf("=================================================\n\n");

    Process &proc = sys.kernel().createProcess();
    const Addr buf_bytes = 256 * 1024;
    // One region, one pointer, both engines: the GPU will stream the
    // same virtual addresses the CPU wrote.
    const Addr buf = proc.mmap(buf_bytes, Perms::readWrite());
    std::printf("process %u maps a %llu KB shared buffer at 0x%llx\n",
                proc.asid(), (unsigned long long)(buf_bytes / 1024),
                (unsigned long long)buf);

    // Phase 1: CPU produces the input (demand-paging as it goes).
    sys.cpu().bindProcess(proc);
    std::vector<CpuOp> produce;
    for (Addr off = 0; off < buf_bytes; off += 64)
        produce.push_back(CpuOp{buf + off, true, 8, 2});
    bool produced = false;
    sys.cpu().run(std::move(produce), [&]() { produced = true; });
    sys.eventQueue().run();
    std::printf("CPU produced %llu ops (%llu demand faults, dirty "
                "blocks in CPU caches)\n",
                (unsigned long long)sys.cpu().opsExecuted(),
                (unsigned long long)proc.faultsServiced());

    // Phase 2: GPU consumes it. The stream workload walks the same
    // region; because the CPU's copies are dirty, the accelerator's
    // read-only fills force writebacks at the coherence point, and
    // never hand the untrusted cache ownership (paper §3.4.3).
    StreamWorkload kernel(1, 42);
    kernel.configure(buf_bytes, 2, 0.5);
    // Point the kernel at the very region the CPU just wrote: this is
    // the "pointer-is-a-pointer" property of shared virtual memory.
    kernel.useRegion(buf, buf_bytes);
    kernel.setup(proc);
    const auto recalls_before = sys.coherencePoint().recalls();
    RunResult r = sys.run(kernel, proc);
    std::printf("GPU kernel: %llu coalesced accesses, %llu border "
                "checks, %llu violations\n",
                (unsigned long long)r.memOps,
                (unsigned long long)r.borderRequests,
                (unsigned long long)r.violations);

    // Phase 3: the GPU (as a rogue check) and the CPU read back.
    std::vector<CpuOp> consume;
    for (Addr off = 0; off < buf_bytes; off += 4096)
        consume.push_back(CpuOp{buf + off, false, 8, 1});
    bool consumed = false;
    sys.cpu().bindProcess(proc);
    sys.cpu().run(std::move(consume), [&]() { consumed = true; });
    sys.eventQueue().run();

    std::printf("CPU consumed the results (recalls across the border "
                "so far: %llu)\n",
                (unsigned long long)(sys.coherencePoint().recalls() -
                                     recalls_before));

    const bool ok = produced && consumed && r.violations == 0 &&
                    sys.cpu().faults() == 0;
    std::printf("\n%s\n",
                ok ? "OK: one address space, two engines, zero copies "
                     "- and the accelerator\nnever touched a byte the "
                     "OS had not granted."
                   : "UNEXPECTED failure in the pipeline!");
    return ok ? 0 : 1;
}
