/**
 * @file
 * google-benchmark microbenchmarks of the core hardware structures'
 * host-side models: Protection Table lookups/updates, BCC lookups and
 * fills across geometries, TLB lookups, cache tag probes, and the
 * ablation the paper's §4 FAQ motivates — flat-table permission
 * lookup vs. a reverse-translation (walk-based) check.
 */

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "bc/bcc.hh"
#include "bc/protection_table.hh"
#include "cache/tags.hh"
#include "mem/backing_store.hh"
#include "os/kernel.hh"
#include "sim/random.hh"
#include "vm/tlb.hh"

using namespace bctrl;

static void
BM_ProtectionTableLookup(benchmark::State &state)
{
    BackingStore store(1ULL << 31);
    ProtectionTable table(store, 0, store.numPages());
    for (Addr ppn = 0; ppn < 4096; ++ppn)
        table.setPerms(ppn, Perms::readWrite());
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.getPerms(rng.nextBounded(4096)));
    }
}
BENCHMARK(BM_ProtectionTableLookup);

static void
BM_ProtectionTableMerge(benchmark::State &state)
{
    BackingStore store(1ULL << 31);
    ProtectionTable table(store, 0, store.numPages());
    Random rng(2);
    for (auto _ : state) {
        table.mergePerms(rng.nextBounded(65536), Perms::readOnly());
    }
}
BENCHMARK(BM_ProtectionTableMerge);

static void
BM_ProtectionTableZero(benchmark::State &state)
{
    BackingStore store(Addr(state.range(0)) << 20);
    ProtectionTable table(store, 0, store.numPages());
    for (Addr ppn = 0; ppn < store.numPages(); ppn += 64)
        table.setPerms(ppn, Perms::readWrite());
    for (auto _ : state)
        table.zeroAll();
    state.SetBytesProcessed(state.iterations() * table.sizeBytes());
}
BENCHMARK(BM_ProtectionTableZero)->Arg(256)->Arg(1024)->Arg(3072);

static void
BM_BccLookupHit(benchmark::State &state)
{
    BackingStore store(1ULL << 31);
    ProtectionTable table(store, 0, store.numPages());
    BorderControlCache::Params p;
    p.entries = 64;
    p.pagesPerEntry = static_cast<unsigned>(state.range(0));
    BorderControlCache bcc(p);
    bcc.fill(0, table);
    Random rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bcc.lookup(rng.nextBounded(p.pagesPerEntry)));
    }
}
BENCHMARK(BM_BccLookupHit)->Arg(1)->Arg(2)->Arg(32)->Arg(512);

static void
BM_BccFill(benchmark::State &state)
{
    BackingStore store(1ULL << 31);
    ProtectionTable table(store, 0, store.numPages());
    BorderControlCache::Params p;
    p.entries = 64;
    p.pagesPerEntry = static_cast<unsigned>(state.range(0));
    BorderControlCache bcc(p);
    Addr group = 0;
    for (auto _ : state) {
        bcc.fill(group * p.pagesPerEntry, table);
        group = (group + 1) % 4096;
    }
}
BENCHMARK(BM_BccFill)->Arg(1)->Arg(32)->Arg(512);

static void
BM_TlbLookup(benchmark::State &state)
{
    EventQueue eq;
    Tlb tlb(eq, "tlb", Tlb::Params{512, 8});
    for (Addr vpn = 0; vpn < 512; ++vpn) {
        TlbEntry e;
        e.asid = 1;
        e.vpn = vpn;
        e.ppn = vpn + 4096;
        e.perms = Perms::readWrite();
        tlb.insert(e);
    }
    Random rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(1, rng.nextBounded(512)));
}
BENCHMARK(BM_TlbLookup);

static void
BM_CacheTagProbe(benchmark::State &state)
{
    TagStore tags(256 * 1024, 8, 128);
    for (Addr a = 0; a < 256 * 1024; a += 128)
        tags.insert(tags.findVictim(a), a);
    Random rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tags.accessBlock(rng.nextBounded(256 * 1024)));
    }
}
BENCHMARK(BM_CacheTagProbe);

/**
 * Ablation (paper §4, "Why not... do address translation again at the
 * border?"): permission lookup via the flat physically-indexed table
 * vs. reconstructing permissions through a page-table walk over a
 * reverse map. The flat table's single access wins decisively.
 */
static void
BM_Ablation_FlatTableCheck(benchmark::State &state)
{
    BackingStore store(1ULL << 30);
    ProtectionTable table(store, 0, store.numPages());
    Random rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.getPerms(rng.nextBounded(65536)));
    }
}
BENCHMARK(BM_Ablation_FlatTableCheck);

static void
BM_Ablation_ReverseWalkCheck(benchmark::State &state)
{
    EventQueue eq;
    BackingStore store(1ULL << 30);
    Kernel kernel(eq, "k", store, Kernel::Params{});
    Process &proc = kernel.createProcess();
    Addr va = proc.mmap(16384 * pageSize, Perms::readWrite(), true);
    // Reverse map: ppn -> vaddr (what an OS rmap provides).
    std::unordered_map<Addr, Addr> rmap;
    for (Addr i = 0; i < 16384; ++i) {
        WalkResult w = proc.pageTable().walk(va + i * pageSize);
        rmap[pageNumber(w.paddr)] = va + i * pageSize;
    }
    std::vector<Addr> ppns;
    for (const auto &[ppn, vaddr] : rmap)
        ppns.push_back(ppn);
    Random rng(7);
    for (auto _ : state) {
        Addr ppn = ppns[rng.nextBounded(ppns.size())];
        // The reverse check: find the vaddr, then re-walk the page
        // table (four dependent PTE reads) to fetch permissions.
        WalkResult w = proc.pageTable().walk(rmap[ppn]);
        benchmark::DoNotOptimize(w.perms);
    }
}
BENCHMARK(BM_Ablation_ReverseWalkCheck);

BENCHMARK_MAIN();
