/**
 * @file
 * Table 2: the structures present in each evaluated configuration,
 * read off the constructed systems rather than hard-coded.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

const char *
mark(bool present)
{
    return present ? "yes" : "--";
}

} // namespace

int
main()
{
    bctrl::bench::banner(
        "Table 2: Comparison of configurations under study", "Table 2");
    setLogVerbose(false);

    std::printf("%-22s %6s %6s %8s %6s %6s\n", "configuration", "safe?",
                "L1 $", "L1 TLB", "L2 $", "BCC");

    const SafetyModel models[] = {
        SafetyModel::atsOnlyIommu, SafetyModel::fullIommu,
        SafetyModel::capiLike, SafetyModel::borderControlNoBcc,
        SafetyModel::borderControlBcc};

    bool ok = true;
    for (SafetyModel m : models) {
        SystemConfig cfg;
        cfg.safety = m;
        cfg.physMemBytes = 512ULL * 1024 * 1024;
        System sys(cfg);

        const bool safe = m != SafetyModel::atsOnlyIommu;
        const bool l1 = sys.gpu().l1Cache(0) != nullptr;
        const bool l1tlb = sys.gpu().l1Tlb(0) != nullptr;
        const bool l2 =
            sys.gpu().l2Cache() != nullptr || sys.capiL2() != nullptr;
        const bool bcc = sys.borderControl() != nullptr &&
                         sys.borderControl()->bcc() != nullptr;

        const char *bcc_cell =
            sys.borderControl() == nullptr ? "n/a" : mark(bcc);
        std::printf("%-22s %6s %6s %8s %6s %6s\n", safetyModelName(m),
                    mark(safe), mark(l1), mark(l1tlb), mark(l2),
                    bcc_cell);

        // Validate against the paper's matrix.
        const SafetyProperties p = safetyProperties(m);
        ok = ok && l1 == p.accelL1Cache && l1tlb == p.accelL1Tlb;
        if (m == SafetyModel::capiLike)
            ok = ok && sys.capiL2() != nullptr &&
                 sys.gpu().l2Cache() == nullptr;
        if (m == SafetyModel::fullIommu)
            ok = ok && !l2;
    }

    std::printf("\n(The CAPI-like L2 exists but lives on the trusted "
                "side of the border,\nmodeled with extra access "
                "latency, per paper §5.1.)\n");
    std::printf("Reproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
