/**
 * @file
 * Ablations of Border Control's design choices (beyond the paper's
 * own sweeps):
 *
 *  1. Overlapped vs. serialized read checks — the §3.1.1 insight that
 *     the flat table's single-access lookup can proceed in parallel
 *     with the read. Serializing exposes the full check latency on
 *     every miss path.
 *  2. Full-flush+zero vs. selective per-page flush on permission
 *     downgrades (§3.2.4's optimization), under a downgrade storm.
 *
 * Both sections run their configuration pairs concurrently on the
 * sweep engine.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace bctrl;
using namespace bctrl::bench;

int
main()
{
    banner("Ablation: Border Control design choices",
           "design decisions of sections 3.1.1 and 3.2.4");

    const GpuProfile profiles[] = {GpuProfile::highlyThreaded,
                                   GpuProfile::moderatelyThreaded};

    std::printf("1) Read-check overlap (BC-noBCC, where every check "
                "pays the table latency)\n");
    std::printf("%-11s %-22s %14s %14s %10s\n", "workload", "profile",
                "overlapped(cy)", "serialized(cy)", "penalty");
    {
        const std::vector<std::string> workloads = {"bfs", "lud",
                                                    "pathfinder"};
        // Pairs of (overlapped, serialized) per (profile, workload).
        std::vector<SweepPoint> points;
        for (GpuProfile profile : profiles) {
            for (const std::string &wl : workloads) {
                SweepPoint p;
                p.workload = wl;
                p.config.safety = SafetyModel::borderControlNoBcc;
                p.config.profile = profile;
                points.push_back(p);
                p.config.bcSerializeReadChecks = true;
                points.push_back(std::move(p));
            }
        }
        const std::vector<SweepOutcome> outcomes = sweep(points);
        std::size_t idx = 0;
        for (GpuProfile profile : profiles) {
            for (const std::string &wl : workloads) {
                const RunResult &overlap = outcomes[idx++].result;
                const RunResult &serial = outcomes[idx++].result;
                std::printf("%-11s %-22s %14.0f %14.0f %9.2f%%\n",
                            wl.c_str(), gpuProfileName(profile),
                            overlap.gpuCycles, serial.gpuCycles,
                            100.0 * (serial.gpuCycles /
                                         overlap.gpuCycles -
                                     1.0));
            }
        }
    }

    std::printf("\n2) Downgrade flush policy under a downgrade storm "
                "(hotspot, 50k/s)\n");
    std::printf("%-22s %16s %16s\n", "profile", "full+zero(cy)",
                "selective(cy)");
    {
        // Pairs of (full flush, selective flush) per profile.
        std::vector<SweepPoint> points;
        for (GpuProfile profile : profiles) {
            SweepPoint p;
            p.workload = "hotspot";
            p.config.safety = SafetyModel::borderControlBcc;
            p.config.profile = profile;
            p.config.downgradesPerSecond = 50'000;
            p.config.workloadScale = 2;
            points.push_back(p);
            p.config.selectiveFlush = true;
            points.push_back(std::move(p));
        }
        const std::vector<SweepOutcome> outcomes = sweep(points);
        std::size_t idx = 0;
        for (GpuProfile profile : profiles) {
            const RunResult &r_full = outcomes[idx++].result;
            const RunResult &r_sel = outcomes[idx++].result;
            std::printf("%-22s %16.0f %16.0f  (%llu downgrades)\n",
                        gpuProfileName(profile), r_full.gpuCycles,
                        r_sel.gpuCycles,
                        (unsigned long long)r_full.downgrades);
        }
    }

    std::printf("\nExpectations: serializing read checks costs "
                "noticeably more than the\npaper's overlapped design, "
                "and the selective flush is at least as fast as\nthe "
                "full flush+zero under frequent downgrades.\n");
    return 0;
}
