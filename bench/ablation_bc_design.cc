/**
 * @file
 * Ablations of Border Control's design choices (beyond the paper's
 * own sweeps):
 *
 *  1. Overlapped vs. serialized read checks — the §3.1.1 insight that
 *     the flat table's single-access lookup can proceed in parallel
 *     with the read. Serializing exposes the full check latency on
 *     every miss path.
 *  2. Full-flush+zero vs. selective per-page flush on permission
 *     downgrades (§3.2.4's optimization), under a downgrade storm.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace bctrl;
using namespace bctrl::bench;

int
main()
{
    banner("Ablation: Border Control design choices",
           "design decisions of sections 3.1.1 and 3.2.4");

    std::printf("1) Read-check overlap (BC-noBCC, where every check "
                "pays the table latency)\n");
    std::printf("%-11s %-22s %14s %14s %10s\n", "workload", "profile",
                "overlapped(cy)", "serialized(cy)", "penalty");
    for (GpuProfile profile : {GpuProfile::highlyThreaded,
                               GpuProfile::moderatelyThreaded}) {
        for (const std::string wl : {"bfs", "lud", "pathfinder"}) {
            SystemConfig base;
            base.safety = SafetyModel::borderControlNoBcc;
            base.profile = profile;
            RunResult overlap =
                runOne(wl, SafetyModel::borderControlNoBcc, profile,
                       base);
            SystemConfig ser = base;
            ser.bcSerializeReadChecks = true;
            RunResult serial = runOne(
                wl, SafetyModel::borderControlNoBcc, profile, ser);
            std::printf("%-11s %-22s %14.0f %14.0f %9.2f%%\n",
                        wl.c_str(), gpuProfileName(profile),
                        overlap.gpuCycles, serial.gpuCycles,
                        100.0 * (serial.gpuCycles / overlap.gpuCycles -
                                 1.0));
            std::fflush(stdout);
        }
    }

    std::printf("\n2) Downgrade flush policy under a downgrade storm "
                "(hotspot, 50k/s)\n");
    std::printf("%-22s %16s %16s\n", "profile", "full+zero(cy)",
                "selective(cy)");
    for (GpuProfile profile : {GpuProfile::highlyThreaded,
                               GpuProfile::moderatelyThreaded}) {
        SystemConfig full;
        full.profile = profile;
        full.downgradesPerSecond = 50'000;
        full.workloadScale = 2;
        RunResult r_full = runOne(
            "hotspot", SafetyModel::borderControlBcc, profile, full);
        SystemConfig sel = full;
        sel.selectiveFlush = true;
        RunResult r_sel = runOne("hotspot",
                                 SafetyModel::borderControlBcc,
                                 profile, sel);
        std::printf("%-22s %16.0f %16.0f  (%llu downgrades)\n",
                    gpuProfileName(profile), r_full.gpuCycles,
                    r_sel.gpuCycles,
                    (unsigned long long)r_full.downgrades);
        std::fflush(stdout);
    }

    std::printf("\nExpectations: serializing read checks costs "
                "noticeably more than the\npaper's overlapped design, "
                "and the selective flush is at least as fast as\nthe "
                "full flush+zero under frequent downgrades.\n");
    return 0;
}
