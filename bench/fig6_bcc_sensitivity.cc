/**
 * @file
 * Figure 6: BCC miss ratio as BCC size grows, for 1 / 2 / 32 / 512
 * pages per entry (2 / 4 / 64 / 1024 payload bits plus a 36-bit tag
 * per entry), averaged over the seven workloads.
 *
 * Expected shape (paper §5.2.2): larger (subblocked) entries win
 * decisively; at 512 pages/entry a ~1 KB BCC already has a miss ratio
 * below 0.1%.
 *
 * Method: capture each workload's border-crossing PPN trace from one
 * full-system run (via BorderControl's trace hook), then replay the
 * traces through standalone BCC models of every geometry — the same
 * trace-driven methodology architects use for cache sweeps. The seven
 * capture runs execute concurrently on the sweep engine; each run's
 * prepare hook appends only to its own per-index trace slot.
 */

#include <cstdio>
#include <vector>

#include "bc/bcc.hh"
#include "bc/protection_table.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

using namespace bctrl;
using namespace bctrl::bench;

namespace {

/** Replay @p trace through a BCC geometry; @return the miss ratio. */
double
replay(const std::vector<Addr> &trace, unsigned entries,
       unsigned pages_per_entry, const ProtectionTable &table)
{
    BorderControlCache::Params p;
    p.entries = entries;
    p.pagesPerEntry = pages_per_entry;
    BorderControlCache bcc(p);
    for (Addr ppn : trace) {
        if (!bcc.lookup(ppn))
            bcc.fill(ppn, table);
    }
    const double total =
        static_cast<double>(bcc.hits() + bcc.misses());
    return total == 0 ? 0.0 : bcc.misses() / total;
}

} // namespace

int
main()
{
    banner("Figure 6: BCC miss ratio vs. BCC size and pages per entry",
           "Figure 6");
    setLogVerbose(false);

    // Capture border traces once per workload, in parallel. Each
    // point's hook writes into its own trace slot, so the sweep
    // workers never share mutable state.
    const std::vector<std::string> &workloads = rodiniaWorkloadNames();
    std::vector<std::vector<Addr>> traces(workloads.size());
    std::vector<SweepPoint> points =
        matrixPoints(workloads, {SafetyModel::borderControlBcc},
                     {GpuProfile::highlyThreaded});
    for (SweepPoint &p : points) {
        p.prepare = [&traces](System &sys, std::size_t index) {
            sys.borderControl()->setCheckTraceHook(
                [&traces, index](Addr ppn) {
                    traces[index].push_back(ppn);
                });
        };
    }
    const std::vector<SweepOutcome> outcomes = sweep(points);
    for (const SweepOutcome &o : outcomes)
        std::printf("captured %-11s: %zu border requests\n",
                    o.workload.c_str(), traces[o.index].size());

    BackingStore store(1ULL << 31);
    ProtectionTable table(store, 0, store.numPages());

    const unsigned pages_per_entry[] = {1, 2, 32, 512};
    const unsigned tag_bits = 36;
    const unsigned sizes[] = {64, 128, 192, 256, 384, 512, 768, 1024};

    std::printf("\n%-12s", "size(B)");
    for (unsigned ppe : pages_per_entry)
        std::printf("  %8u pg/e", ppe);
    std::printf("\n");

    double best_at_1k = 1.0;
    for (unsigned size : sizes) {
        std::printf("%-12u", size);
        for (unsigned ppe : pages_per_entry) {
            const unsigned bits_per_entry = tag_bits + 2 * ppe;
            const unsigned entries = (size * 8) / bits_per_entry;
            if (entries == 0) {
                std::printf("  %13s", "-");
                continue;
            }
            double sum = 0;
            for (const auto &trace : traces)
                sum += replay(trace, entries, ppe, table);
            const double avg = sum / traces.size();
            if (size == 1024 && ppe == 512)
                best_at_1k = avg;
            std::printf("  %12.4f%%", 100.0 * avg);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\nPaper: with 512 pages/entry, a ~1 KB BCC averages "
                "<0.1%% misses;\nsmall pages/entry leave the miss "
                "ratio high at every size shown.\n");
    std::printf("Measured at 1 KB / 512 pages/entry: %.4f%%\n",
                100.0 * best_at_1k);
    const bool ok = best_at_1k < 0.01;
    std::printf("Reproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
