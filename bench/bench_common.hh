/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: run a
 * (workload, safety model, profile) combination, compute overheads
 * against the unsafe baseline, and print aligned rows.
 */

#ifndef BCTRL_BENCH_BENCH_COMMON_HH
#define BCTRL_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "config/system_builder.hh"

namespace bctrl {
namespace bench {

/** Run one configuration of one workload on a fresh system. */
RunResult runOne(const std::string &workload, SafetyModel safety,
                 GpuProfile profile, const SystemConfig &base = {});

/** Geometric mean of (1 + overhead) values, returned as overhead. */
double geomeanOverhead(const std::vector<double> &overheads);

/** Print a banner for a table/figure. */
void banner(const std::string &title, const std::string &paper_ref);

/** Format an overhead as a percentage string. */
std::string pct(double overhead);

} // namespace bench
} // namespace bctrl

#endif // BCTRL_BENCH_BENCH_COMMON_HH
