/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: run a
 * (workload, safety model, profile) combination — or a whole sweep of
 * them across the parallel sweep engine — compute overheads against
 * the unsafe baseline, and print aligned rows.
 */

#ifndef BCTRL_BENCH_BENCH_COMMON_HH
#define BCTRL_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "config/system_builder.hh"
#include "sim/sweep.hh"

namespace bctrl {
namespace bench {

/** Run one configuration of one workload on a fresh system. */
RunResult runOne(const std::string &workload, SafetyModel safety,
                 GpuProfile profile, const SystemConfig &base = {});

/**
 * Build the cross product of profiles × workloads × safety models (in
 * that nesting order, safety innermost) as sweep points over @p base.
 * The index of (p, w, s) is
 *   ((p * |workloads|) + w) * |safeties| + s.
 */
std::vector<SweepPoint>
matrixPoints(const std::vector<std::string> &workloads,
             const std::vector<SafetyModel> &safeties,
             const std::vector<GpuProfile> &profiles,
             const SystemConfig &base = {});

/**
 * Worker count for bench sweeps: $BCTRL_SWEEP_JOBS if set, otherwise
 * one per hardware thread.
 */
unsigned sweepJobs();

/**
 * Run @p points through the parallel sweep engine. @p jobs == 0 uses
 * sweepJobs(). Outcomes come back ordered by sweep index regardless of
 * completion order, and are bit-identical to a serial (jobs = 1) run.
 */
std::vector<SweepOutcome> sweep(const std::vector<SweepPoint> &points,
                                unsigned jobs = 0);

/**
 * Geometric mean of (1 + overhead) values, returned as overhead.
 * An empty vector yields 0.0 (not NaN); non-finite entries and
 * overheads at or below -100% (whose log1p is undefined) are skipped
 * with a warning rather than poisoning the mean.
 */
double geomeanOverhead(const std::vector<double> &overheads);

/** Print a banner for a table/figure. */
void banner(const std::string &title, const std::string &paper_ref);

/**
 * Format an overhead as a percentage string. Locale-independent: the
 * decimal separator is always '.', whatever LC_NUMERIC says.
 */
std::string pct(double overhead);

/** Locale-independent fixed-point formatting ('.' separator always). */
std::string formatFixed(double v, int decimals);

/**
 * Locale-independent shortest-round-trip formatting, suitable for JSON
 * number output (non-finite values degrade to "0").
 */
std::string formatDouble(double v);

} // namespace bench
} // namespace bctrl

#endif // BCTRL_BENCH_BENCH_COMMON_HH
