#include "bench_common.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace bctrl {
namespace bench {

RunResult
runOne(const std::string &workload, SafetyModel safety,
       GpuProfile profile, const SystemConfig &base)
{
    setLogVerbose(false);
    SystemConfig cfg = base;
    cfg.safety = safety;
    cfg.profile = profile;
    System sys(cfg);
    return sys.run(workload);
}

double
geomeanOverhead(const std::vector<double> &overheads)
{
    if (overheads.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double o : overheads)
        log_sum += std::log(1.0 + o);
    return std::exp(log_sum / static_cast<double>(overheads.size())) -
           1.0;
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("=");
    std::printf("\n(reproduces %s of Olson et al., \"Border Control: "
                "Sandboxing Accelerators\", MICRO-48, 2015)\n\n",
                paper_ref.c_str());
}

std::string
pct(double overhead)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", 100.0 * overhead);
    return buf;
}

} // namespace bench
} // namespace bctrl
