#include "bench_common.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/logging.hh"

namespace bctrl {
namespace bench {

RunResult
runOne(const std::string &workload, SafetyModel safety,
       GpuProfile profile, const SystemConfig &base)
{
    setLogVerbose(false);
    SystemConfig cfg = base;
    cfg.safety = safety;
    cfg.profile = profile;
    System sys(cfg);
    return sys.run(workload);
}

std::vector<SweepPoint>
matrixPoints(const std::vector<std::string> &workloads,
             const std::vector<SafetyModel> &safeties,
             const std::vector<GpuProfile> &profiles,
             const SystemConfig &base)
{
    std::vector<SweepPoint> points;
    points.reserve(workloads.size() * safeties.size() * profiles.size());
    for (GpuProfile profile : profiles) {
        for (const std::string &wl : workloads) {
            for (SafetyModel safety : safeties) {
                SweepPoint p;
                p.workload = wl;
                p.config = base;
                p.config.safety = safety;
                p.config.profile = profile;
                points.push_back(std::move(p));
            }
        }
    }
    return points;
}

unsigned
sweepJobs()
{
    if (const char *env = std::getenv("BCTRL_SWEEP_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<SweepOutcome>
sweep(const std::vector<SweepPoint> &points, unsigned jobs)
{
    setLogVerbose(false);
    SweepOptions opts;
    opts.jobs = jobs != 0 ? jobs : sweepJobs();
    return runSweep(points, opts);
}

double
geomeanOverhead(const std::vector<double> &overheads)
{
    double log_sum = 0.0;
    std::size_t used = 0;
    for (double o : overheads) {
        if (!std::isfinite(o) || o <= -1.0) {
            warn("geomeanOverhead: skipping degenerate overhead %f", o);
            continue;
        }
        log_sum += std::log1p(o);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::expm1(log_sum / static_cast<double>(used));
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("=");
    std::printf("\n(reproduces %s of Olson et al., \"Border Control: "
                "Sandboxing Accelerators\", MICRO-48, 2015)\n\n",
                paper_ref.c_str());
}

std::string
formatFixed(double v, int decimals)
{
    if (!std::isfinite(v))
        return std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
    char buf[64];
    // std::to_chars never consults the locale, unlike snprintf("%f").
    const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                   std::chars_format::fixed, decimals);
    if (res.ec != std::errc())
        return "0";
    return std::string(buf, res.ptr);
}

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no representation for inf/nan
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    if (res.ec != std::errc())
        return "0";
    return std::string(buf, res.ptr);
}

std::string
pct(double overhead)
{
    return formatFixed(100.0 * overhead, 2) + "%";
}

} // namespace bench
} // namespace bctrl
