/**
 * @file
 * Storage overheads (paper §3.1.1 and §5.2.3): the Protection Table
 * costs 0.006% of physical memory per active accelerator (1 MB for a
 * 16 GB system; 196 KB for the evaluated 3 GB system), and the BCC is
 * 8 KB of SRAM with a 128 MB reach.
 */

#include <algorithm>
#include <cstdio>

#include "bc/bcc.hh"
#include "bc/protection_table.hh"
#include "bench_common.hh"

using namespace bctrl;

int
main()
{
    bctrl::bench::banner(
        "Storage overheads of Border Control structures",
        "paper sections 3.1.1 and 5.2.3");

    std::printf("%-14s %16s %18s\n", "phys. memory", "table size",
                "fraction of memory");
    bool ok = true;
    BackingStore host(1 << 20);
    for (Addr gb : {Addr(2), Addr(3), Addr(4), Addr(8), Addr(16),
                    Addr(64)}) {
        const Addr ppns = pageNumber(gb << 30);
        ProtectionTable table(host, 0, std::min<Addr>(ppns, 2048));
        // Size is analytic; construct a small table and scale the
        // formula (2 bits per page).
        const Addr bytes = ppns / ProtectionTable::pagesPerByte;
        const double frac =
            static_cast<double>(bytes) / double(gb << 30);
        std::printf("%10lluGB %13lluKB %17.4f%%\n",
                    (unsigned long long)gb,
                    (unsigned long long)(bytes / 1024), 100.0 * frac);
        ok = ok && frac < 0.0001; // "0.006%"
    }

    const Addr ppns_16gb = pageNumber(16ULL << 30);
    const Addr bytes_16gb = ppns_16gb / 4;
    std::printf("\n16 GB system -> %llu MB table (paper: 1 MB)\n",
                (unsigned long long)(bytes_16gb >> 20));
    ok = ok && bytes_16gb == (1ULL << 20);

    BorderControlCache::Params p;
    p.entries = 64;
    p.pagesPerEntry = 512;
    p.tagBits = 36;
    BorderControlCache bcc(p);
    std::printf("\nBCC: %u entries x %u pages/entry\n", p.entries,
                p.pagesPerEntry);
    std::printf("  payload           %llu KB (paper: 8 KB)\n",
                (unsigned long long)(std::uint64_t(p.entries) *
                                     p.pagesPerEntry * 2 / 8 / 1024));
    std::printf("  total with tags   %llu bytes\n",
                (unsigned long long)bcc.sizeBytes());
    std::printf("  reach             %llu pages = %llu MB "
                "(paper: 128 MB)\n",
                (unsigned long long)bcc.reachPages(),
                (unsigned long long)(bcc.reachPages() * pageSize >>
                                     20));
    ok = ok && bcc.reachPages() * pageSize == (128ULL << 20);

    std::printf("\nReproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
