/**
 * @file
 * Figure 7: runtime overhead as the page-permission downgrade rate
 * varies from 0 to 1000 per second, for Border Control-BCC and the
 * unsafe ATS-only baseline, on both GPU profiles.
 *
 * All 24 (series × rate) runs execute concurrently on the sweep
 * engine; the table is assembled from results by sweep index.
 *
 * Expected shape (paper §5.2.4): overhead stays small (fractions of a
 * percent) across the whole range — including the 10-200/s band of
 * today's context-switch rates — and Border Control pays roughly
 * twice the baseline's cost per downgrade (the extra accelerator
 * cache flush and Protection Table zeroing).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace bctrl;
using namespace bctrl::bench;

int
main()
{
    banner("Figure 7: Runtime overhead vs. permission downgrade rate",
           "Figure 7");

    const double rates[] = {0, 200, 400, 600, 800, 1000};
    constexpr std::size_t num_rates = std::size(rates);

    struct Series {
        SafetyModel model;
        GpuProfile profile;
        const char *label;
    } series[] = {
        {SafetyModel::borderControlBcc, GpuProfile::highlyThreaded,
         "BC-BCC highly threaded"},
        {SafetyModel::borderControlBcc, GpuProfile::moderatelyThreaded,
         "BC-BCC moderately threaded"},
        {SafetyModel::atsOnlyIommu, GpuProfile::highlyThreaded,
         "ATS-only highly threaded"},
        {SafetyModel::atsOnlyIommu, GpuProfile::moderatelyThreaded,
         "ATS-only moderately threaded"},
    };

    // Point (s, r) lives at sweep index s * num_rates + r.
    std::vector<SweepPoint> points;
    for (const Series &s : series) {
        for (double r : rates) {
            SweepPoint p;
            p.workload = "hotspot";
            p.config.safety = s.model;
            p.config.profile = s.profile;
            // Lengthen the run so several downgrades land within it.
            p.config.workloadScale =
                s.profile == GpuProfile::highlyThreaded ? 32 : 8;
            p.config.downgradesPerSecond = r;
            points.push_back(std::move(p));
        }
    }
    const std::vector<SweepOutcome> outcomes = sweep(points);

    std::printf("%-30s", "downgrades/sec");
    for (double r : rates)
        std::printf(" %9.0f", r);
    std::printf("\n");

    double bc_max = 0, ats_max = 0;
    for (std::size_t si = 0; si < std::size(series); ++si) {
        const Series &s = series[si];
        std::printf("%-30s", s.label);
        const double base = static_cast<double>(
            outcomes[si * num_rates].result.runtimeTicks);
        for (std::size_t ri = 0; ri < num_rates; ++ri) {
            const double rt = static_cast<double>(
                outcomes[si * num_rates + ri].result.runtimeTicks);
            if (ri == 0) {
                std::printf(" %8.2f%%", 0.0);
                continue;
            }
            const double overhead = rt / base - 1.0;
            std::printf(" %8.2f%%", 100.0 * overhead);
            if (rates[ri] == 1000) {
                if (s.model == SafetyModel::borderControlBcc)
                    bc_max = std::max(bc_max, overhead);
                else
                    ats_max = std::max(ats_max, overhead);
            }
        }
        std::printf("\n");
    }

    std::printf("\nPaper: <=~0.5%% at 1000 downgrades/s; ~0.02%% at "
                "context-switch rates\n(10-200/s); Border Control "
                "costs roughly 2x the unsafe baseline.\n");
    std::printf("Measured at 1000/s: BC-BCC max %.3f%%, ATS-only max "
                "%.3f%%\n",
                100.0 * bc_max, 100.0 * ats_max);
    const bool ok = bc_max < 0.05 && bc_max >= ats_max * 0.8;
    std::printf("Reproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
