/**
 * @file
 * Figure 7: runtime overhead as the page-permission downgrade rate
 * varies from 0 to 1000 per second, for Border Control-BCC and the
 * unsafe ATS-only baseline, on both GPU profiles.
 *
 * Expected shape (paper §5.2.4): overhead stays small (fractions of a
 * percent) across the whole range — including the 10-200/s band of
 * today's context-switch rates — and Border Control pays roughly
 * twice the baseline's cost per downgrade (the extra accelerator
 * cache flush and Protection Table zeroing).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace bctrl;
using namespace bctrl::bench;

namespace {

double
runtimeWithRate(SafetyModel model, GpuProfile profile, double rate)
{
    SystemConfig cfg;
    cfg.safety = model;
    cfg.profile = profile;
    // Lengthen the run so several downgrades land within it.
    cfg.workloadScale =
        profile == GpuProfile::highlyThreaded ? 32 : 8;
    cfg.downgradesPerSecond = rate;
    System sys(cfg);
    return static_cast<double>(sys.run("hotspot").runtimeTicks);
}

} // namespace

int
main()
{
    banner("Figure 7: Runtime overhead vs. permission downgrade rate",
           "Figure 7");

    const double rates[] = {0, 200, 400, 600, 800, 1000};

    struct Series {
        SafetyModel model;
        GpuProfile profile;
        const char *label;
        double base = 0;
    } series[] = {
        {SafetyModel::borderControlBcc, GpuProfile::highlyThreaded,
         "BC-BCC highly threaded"},
        {SafetyModel::borderControlBcc, GpuProfile::moderatelyThreaded,
         "BC-BCC moderately threaded"},
        {SafetyModel::atsOnlyIommu, GpuProfile::highlyThreaded,
         "ATS-only highly threaded"},
        {SafetyModel::atsOnlyIommu, GpuProfile::moderatelyThreaded,
         "ATS-only moderately threaded"},
    };

    std::printf("%-30s", "downgrades/sec");
    for (double r : rates)
        std::printf(" %9.0f", r);
    std::printf("\n");

    double bc_max = 0, ats_max = 0;
    for (Series &s : series) {
        std::printf("%-30s", s.label);
        for (double r : rates) {
            double rt = runtimeWithRate(s.model, s.profile, r);
            if (r == 0) {
                s.base = rt;
                std::printf(" %8.2f%%", 0.0);
            } else {
                double overhead = rt / s.base - 1.0;
                std::printf(" %8.2f%%", 100.0 * overhead);
                if (r == 1000) {
                    if (s.model == SafetyModel::borderControlBcc)
                        bc_max = std::max(bc_max, overhead);
                    else
                        ats_max = std::max(ats_max, overhead);
                }
            }
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\nPaper: <=~0.5%% at 1000 downgrades/s; ~0.02%% at "
                "context-switch rates\n(10-200/s); Border Control "
                "costs roughly 2x the unsafe baseline.\n");
    std::printf("Measured at 1000/s: BC-BCC max %.3f%%, ATS-only max "
                "%.3f%%\n",
                100.0 * bc_max, 100.0 * ats_max);
    const bool ok = bc_max < 0.05 && bc_max >= ats_max * 0.8;
    std::printf("Reproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
