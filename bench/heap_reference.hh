/**
 * @file
 * A faithful replica of the pre-ladder EventQueue (the binary-heap
 * design this repo's first six PRs ran on; see git history of
 * sim/event_queue.{hh,cc}), kept as the micro_eventloop oracle.
 *
 * Same entry layout (40 bytes: tick, priority, sequence, event
 * pointer, owned flag), same three-field heap comparator, same
 * per-event bookkeeping (no-double-schedule and time-ran-backwards
 * checks, scheduled/squashed flags, live/processed counters, virtual
 * dispatch). The only thing the benchmark varies between this and the
 * production queue is the container + dispatch strategy, so the
 * measured ratio is the ladder's doing, not harness skew.
 *
 * Deliberately not the production class: it must stay frozen as the
 * baseline while sim/event_queue.hh keeps evolving.
 */

#ifndef BCTRL_BENCH_HEAP_REFERENCE_HH
#define BCTRL_BENCH_HEAP_REFERENCE_HH

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace benchref {

using bctrl::Tick;
using bctrl::tickNever;

class HeapQueue;

/** The seed Event base: same fields, same friend-queue access. */
class Event
{
  public:
    explicit Event(int priority = 0) : priority_(priority) {}
    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    virtual void process() = 0;
    virtual std::string name() const { return "event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class HeapQueue;

    int priority_;
    bool scheduled_ = false;
    bool squashed_ = false;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
};

/** The seed queue: one std::priority_queue over 40-byte entries. */
class HeapQueue
{
  public:
    HeapQueue()
    {
        std::vector<Entry> storage;
        storage.reserve(1024);
        heap_ = std::priority_queue<Entry, std::vector<Entry>,
                                    EntryCompare>(EntryCompare{},
                                                  std::move(storage));
    }

    Tick curTick() const { return curTick_; }
    std::uint64_t eventsProcessed() const { return processed_; }
    bool empty() const { return liveEvents_ == 0; }

    void
    schedule(Event *ev, Tick when)
    {
        panic_if(ev->scheduled_, "event '%s' is already scheduled",
                 ev->name().c_str());
        panic_if(when < curTick_,
                 "scheduling event '%s' in the past (%llu < %llu)",
                 ev->name().c_str(), (unsigned long long)when,
                 (unsigned long long)curTick_);
        ev->scheduled_ = true;
        ev->squashed_ = false;
        ev->when_ = when;
        ev->sequence_ = nextSequence_++;
        heap_.push(Entry{when, ev->priority(), ev->sequence_, ev,
                         false});
        ++liveEvents_;
    }

    void
    deschedule(Event *ev)
    {
        panic_if(!ev->scheduled_, "descheduling unscheduled event '%s'",
                 ev->name().c_str());
        ev->scheduled_ = false;
        ev->squashed_ = true;
        --liveEvents_;
    }

    bool
    step()
    {
        while (!heap_.empty()) {
            const Entry e = heap_.top();
            heap_.pop();
            Event *ev = e.event;
            if (ev->squashed_ && ev->sequence_ == e.sequence) {
                ev->squashed_ = false;
                continue;
            }
            if (!ev->scheduled_ || ev->sequence_ != e.sequence)
                continue; // superseded by a reschedule
            panic_if(e.when < curTick_, "event time ran backwards");
            curTick_ = e.when;
            ev->scheduled_ = false;
            --liveEvents_;
            ++processed_;
            ev->process();
            return true;
        }
        return false;
    }

    Tick
    run()
    {
        while (step()) {
        }
        return curTick_;
    }

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
        /** Always false here (the bench never schedules lambdas);
         * kept so the entry is the seed's exact 40-byte layout. */
        bool ownedLambda;
    };

    struct EntryCompare {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace benchref

#endif // BCTRL_BENCH_HEAP_REFERENCE_HH
