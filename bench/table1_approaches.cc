/**
 * @file
 * Table 1: comparison of Border Control with other commercial
 * approaches — protection for the OS, protection between processes,
 * and direct access to physical memory.
 *
 * Rather than hard-coding the matrix, each column is *demonstrated*
 * against the live implementation: attacks are injected into a
 * constructed system of each kind and the observed outcomes fill the
 * table (TrustZone is the one row reproduced descriptively, since it
 * is out of this library's scope).
 */

#include <cstdio>

#include "bc/attack.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

using namespace bctrl;
using namespace bctrl::bench;

namespace {

struct Row {
    const char *name;
    bool protectsOs;
    bool protectsProcesses;
    bool directPhysical;
};

/** Empirically determine the protection columns for a safety model. */
Row
probeModel(const char *name, SafetyModel model)
{
    setLogVerbose(false);
    SystemConfig cfg;
    cfg.safety = model;
    cfg.physMemBytes = 512ULL * 1024 * 1024;
    System sys(cfg);

    // "OS memory": a kernel-reserved frame no process mapped.
    const Addr os_frame = sys.kernel().allocFrame();
    // "Other process memory": a page of a process never scheduled on
    // the accelerator.
    Process &victim = sys.kernel().createProcess();
    Addr victim_va = victim.mmap(pageSize, Perms::readWrite(), true);
    Addr victim_pa = victim.pageTable().walk(victim_va).paddr;

    Process &attacker = sys.kernel().createProcess();
    sys.kernel().scheduleOnAccelerator(attacker);

    AttackInjector inject(sys);
    bool protects_os, protects_procs;
    const SafetyProperties props = safetyProperties(model);
    if (props.directPhysical && props.safe) {
        protects_os = inject.wildPhysicalWrite(os_frame).blocked;
        protects_procs = inject.wildPhysicalWrite(victim_pa).blocked;
    } else if (!props.safe) {
        protects_os = inject.wildPhysicalWrite(os_frame).blocked;
        protects_procs = inject.wildPhysicalWrite(victim_pa).blocked;
    } else {
        // Translate-at-border designs: physical attacks cannot even be
        // expressed; forged virtual requests are the attack surface.
        protects_os =
            inject.forgedAsidRead(victim.asid(), victim_va).blocked;
        protects_procs = protects_os;
    }
    return Row{name, protects_os, protects_procs,
               props.directPhysical};
}

const char *
mark(bool yes)
{
    return yes ? "yes" : " no";
}

} // namespace

int
main()
{
    banner("Table 1: Comparison of Border Control with other approaches",
           "Table 1");

    std::printf("%-22s %12s %12s %14s\n", "", "Protection", "Protection",
                "Direct access");
    std::printf("%-22s %12s %12s %14s\n", "", "for OS",
                "btw. processes", "to phys. mem");

    // ATS-only IOMMU: translation service only, no checking.
    Row ats = probeModel("ATS-only IOMMU", SafetyModel::atsOnlyIommu);
    std::printf("%-22s %12s %12s %14s\n", ats.name,
                mark(ats.protectsOs), mark(ats.protectsProcesses),
                mark(ats.directPhysical));

    Row full = probeModel("Full IOMMU", SafetyModel::fullIommu);
    std::printf("%-22s %12s %12s %14s\n", full.name,
                mark(full.protectsOs), mark(full.protectsProcesses),
                mark(full.directPhysical));

    Row capi = probeModel("IBM CAPI (-like)", SafetyModel::capiLike);
    std::printf("%-22s %12s %12s %14s\n", capi.name,
                mark(capi.protectsOs), mark(capi.protectsProcesses),
                mark(capi.directPhysical));

    // ARM TrustZone is outside this library's scope (two-world
    // partitioning): reproduced descriptively from the paper.
    std::printf("%-22s %12s %12s %14s   (descriptive)\n",
                "ARM TrustZone", "yes", " no", "yes");

    Row bc = probeModel("Border Control",
                        SafetyModel::borderControlBcc);
    std::printf("%-22s %12s %12s %14s\n", bc.name, mark(bc.protectsOs),
                mark(bc.protectsProcesses), mark(bc.directPhysical));

    std::printf("\nPaper's Table 1 expectation: only Border Control "
                "combines both protections\nwith direct physical "
                "access from the accelerator.\n");

    const bool match = !ats.protectsOs && !ats.protectsProcesses &&
                       ats.directPhysical && full.protectsOs &&
                       !full.directPhysical && bc.protectsOs &&
                       bc.protectsProcesses && bc.directPhysical;
    std::printf("Reproduction %s\n", match ? "MATCHES" : "DIFFERS");
    return match ? 0 : 1;
}
