/**
 * @file
 * Table 3: the simulated system parameters, printed from the live
 * default SystemConfig (so the table can never drift from the code).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace bctrl;

int
main()
{
    bctrl::bench::banner("Table 3: Simulation configuration details",
                         "Table 3");
    SystemConfig cfg;

    std::printf("CPU\n");
    std::printf("  CPU frequency                 %.0f GHz\n",
                cfg.cpuFreqHz / 1e9);
    std::printf("GPU\n");
    std::printf("  Cores (highly threaded)       %u\n",
                cfg.highlyThreadedCus);
    std::printf("  Cores (moderately threaded)   %u\n",
                cfg.moderatelyThreadedCus);
    std::printf("  Caches (highly threaded)      %lluKB L1, shared "
                "%lluKB L2\n",
                (unsigned long long)(cfg.gpuL1Size / 1024),
                (unsigned long long)(cfg.highlyThreadedL2Size / 1024));
    std::printf("  Caches (moderately threaded)  %lluKB L1, shared "
                "%lluKB L2\n",
                (unsigned long long)(cfg.gpuL1Size / 1024),
                (unsigned long long)(cfg.moderatelyThreadedL2Size /
                                     1024));
    std::printf("  L1 TLB                        %u entries\n",
                cfg.l1TlbEntries);
    std::printf("  Shared L2 TLB (trusted)       %u entries\n",
                cfg.l2TlbEntries);
    std::printf("  GPU frequency                 %.0f MHz\n",
                cfg.gpuFreqHz / 1e6);
    std::printf("Memory system\n");
    std::printf("  Peak memory bandwidth         %.0f GB/s\n",
                cfg.memBandwidthBytesPerSec / 1e9);
    std::printf("  Physical memory               %.0f GB\n",
                double(cfg.physMemBytes) / (1 << 30));
    std::printf("Border Control\n");
    const std::uint64_t bcc_bytes =
        std::uint64_t(cfg.bccEntries) * cfg.bccPagesPerEntry * 2 / 8;
    std::printf("  BCC size                      %lluKB "
                "(%u entries x %u pages)\n",
                (unsigned long long)(bcc_bytes / 1024), cfg.bccEntries,
                cfg.bccPagesPerEntry);
    std::printf("  BCC access latency            %llu cycles\n",
                (unsigned long long)cfg.bccLatencyCycles);
    const std::uint64_t table_bytes =
        pageNumber(cfg.physMemBytes) / 4;
    std::printf("  Protection Table size         %lluKB\n",
                (unsigned long long)(table_bytes / 1024));
    std::printf("  Protection Table latency      %llu cycles\n",
                (unsigned long long)cfg.tableLatencyCycles);

    // Paper values: 8KB BCC, 10 cycles, 196KB table, 100 cycles,
    // 180 GB/s, 700 MHz, 64/512-entry TLBs.
    bool ok = bcc_bytes == 8 * 1024 && cfg.bccLatencyCycles == 10 &&
              table_bytes == 196'608 && cfg.tableLatencyCycles == 100 &&
              cfg.l1TlbEntries == 64 && cfg.l2TlbEntries == 512 &&
              cfg.gpuFreqHz == 700'000'000ULL;
    std::printf("\nReproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
