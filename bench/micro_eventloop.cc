/**
 * @file
 * Event-loop throughput microbenchmark: how many events per second
 * the queue core can dispatch when events are nearly free, isolating
 * scheduler cost from component simulation cost.
 *
 * Four modes, one synthetic workload (self-rescheduling event chains
 * whose tick deltas follow the simulator's measured mix: mostly a few
 * GPU cycles ahead, a tail of long timers):
 *
 *   serial_heap    - the pre-ladder binary-heap EventQueue, replicated
 *                    in heap_reference.hh and driven through the same
 *                    Event API (virtual dispatch, schedule checks), as
 *                    the oracle for both order and throughput
 *   ladder         - EventQueue via the bounded run() path (per-event
 *                    horizon compare, no batching)
 *   ladder_batched - EventQueue via run() unbounded, the production
 *                    System::run() path
 *   sharded        - three EventQueue shards + ParallelLoop, chains
 *                    round-robined across domains so every hop
 *                    crosses a mailbox
 *
 * Every mode must visit exactly the same (tick, chain) trajectory;
 * the harness cross-checks a running checksum so a future queue
 * change that reorders events fails here before it fails a sweep.
 * Results go to stdout and optionally a JSON trajectory file
 * (BENCH_eventloop.json in the repo root records the committed run).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "heap_reference.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_loop.hh"

using namespace bctrl;
using bench::formatDouble;

namespace {

/** Deterministic xorshift, shared by every mode. */
struct Rng {
    std::uint64_t x;
    explicit Rng(std::uint64_t seed) : x(seed | 1) {}
    std::uint64_t
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    }
};

/**
 * The simulator's delta mix (ticks are picoseconds, GPU cycle 1429):
 * mostly short in-window and few-bucket hops, occasionally a long
 * timer that spills to the overflow heap / far calendar buckets.
 */
Tick
nextDelta(Rng &rng)
{
    const std::uint64_t r = rng.next();
    const std::uint64_t pick = r % 100;
    if (pick < 45)
        return 1'429 + r % 2'858; // 1-3 GPU cycles
    if (pick < 85)
        return 4'000 + r % 25'000; // a few buckets ahead
    if (pick < 98)
        return 30'000 + r % 250'000; // deep in the ladder
    return 2'000'000 + r % 3'000'000; // past the ladder span
}

struct ChurnSpec {
    int chains = 256;
    std::uint64_t hopsPerChain = 40'000;
    std::uint64_t totalEvents() const
    {
        return static_cast<std::uint64_t>(chains) * hopsPerChain;
    }
};

/** Order-sensitive checksum over the (tick, chain) visit sequence. */
struct Check {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    void
    visit(Tick when, int chain)
    {
        h ^= when + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h ^= static_cast<std::uint64_t>(chain);
    }
};

struct Result {
    double seconds = 0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    double
    eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0;
    }
};

// Host-side wall-clock measurement (never feeds simulated state).
// bclint:allow(nondeterminism)
using BenchClock = std::chrono::steady_clock;

/**
 * A self-rescheduling chain event. Each hop schedules the next one
 * into the next queue of @p queues (one queue in the serial modes;
 * the three domain shards in sharded mode, so every hop crosses a
 * mailbox). Templated over the queue/event types so the identical
 * workload — rng advance, checksum, virtual dispatch — runs through
 * both the production EventQueue and the benchref::HeapQueue oracle.
 */
template <class Queue, class EventBase>
class ChainEventT : public EventBase
{
  public:
    ChainEventT(Queue *const *queues, std::size_t nqueues, Rng rng,
                std::uint64_t hops, int chain, Check &check)
        : queues_(queues), nqueues_(nqueues), slot_(chain % nqueues),
          rng_(rng), hopsLeft_(hops), chain_(chain), check_(check)
    {}

    /** The queue the first hop belongs to. */
    Queue &homeQueue() { return *queues_[slot_]; }

    void
    process() override
    {
        Queue &cur = *queues_[slot_];
        check_.visit(cur.curTick(), chain_);
        if (--hopsLeft_ > 0) {
            slot_ = (slot_ + 1) % nqueues_;
            queues_[slot_]->schedule(this,
                                     cur.curTick() + nextDelta(rng_));
        }
    }

    std::string name() const override { return "chain-event"; }

  private:
    Queue *const *queues_;
    std::size_t nqueues_;
    std::size_t slot_;
    Rng rng_;
    std::uint64_t hopsLeft_;
    int chain_;
    Check &check_;
};

using ChainEvent = ChainEventT<EventQueue, Event>;
using RefChainEvent = ChainEventT<benchref::HeapQueue, benchref::Event>;

/** Reference mode: the pre-ladder heap design (heap_reference.hh). */
Result
runHeapReference(const ChurnSpec &w)
{
    benchref::HeapQueue hq;
    benchref::HeapQueue *queues[1] = {&hq};
    Check check;
    std::vector<std::unique_ptr<RefChainEvent>> chains;
    for (int c = 0; c < w.chains; ++c) {
        Rng rng(0x1000 + c);
        const Tick first = nextDelta(rng);
        chains.push_back(std::make_unique<RefChainEvent>(
            queues, 1, rng, w.hopsPerChain, c, check));
        hq.schedule(chains.back().get(), first);
    }

    Result res;
    const auto start = BenchClock::now();
    hq.run();
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    res.events = hq.eventsProcessed();
    res.checksum = check.h;
    return res;
}

/**
 * EventQueue modes. @p batched picks run() unbounded (the batched
 * production path) vs. a bounded run (per-event horizon compares).
 */
Result
runLadder(const ChurnSpec &w, bool batched)
{
    EventQueue eq;
    EventQueue *queues[1] = {&eq};
    Check check;
    std::vector<std::unique_ptr<ChainEvent>> chains;
    for (int c = 0; c < w.chains; ++c) {
        Rng rng(0x1000 + c);
        const Tick first = nextDelta(rng);
        chains.push_back(std::make_unique<ChainEvent>(
            queues, 1, rng, w.hopsPerChain, c, check));
        eq.schedule(chains.back().get(), first);
    }

    Result res;
    const auto start = BenchClock::now();
    if (batched) {
        eq.run();
    } else {
        // step() dispatches one event per call: the full peek/pop
        // path with no batched bucket drain.
        while (eq.step()) {
        }
    }
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    res.events = eq.eventsProcessed();
    res.checksum = check.h;
    return res;
}

/**
 * Sharded mode: the same chains spread round-robin over the three
 * domain queues of a ParallelLoop group, so chain hops constantly
 * cross shard boundaries through the coordinator's grant protocol.
 */
Result
runSharded(const ChurnSpec &w)
{
    EventQueue border(Domain::border);
    EventQueue gpu(Domain::gpuCluster);
    EventQueue dram(Domain::dram);
    ParallelLoop loop(border, gpu, dram);
    EventQueue *queues[numDomains] = {&border, &gpu, &dram};

    Check check;
    std::vector<std::unique_ptr<ChainEvent>> chains;
    for (int c = 0; c < w.chains; ++c) {
        Rng rng(0x1000 + c);
        const Tick first = nextDelta(rng);
        chains.push_back(std::make_unique<ChainEvent>(
            queues, numDomains, rng, w.hopsPerChain, c, check));
        chains.back()->homeQueue().schedule(chains.back().get(),
                                            first);
    }

    Result res;
    const auto start = BenchClock::now();
    loop.run();
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    res.events = border.eventsProcessed();
    res.checksum = check.h;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    ChurnSpec w;
    std::string out_path;
    int repeat = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--chains" && i + 1 < argc) {
            w.chains = std::atoi(argv[++i]);
        } else if (arg == "--hops" && i + 1 < argc) {
            w.hopsPerChain = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--best" && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--chains N] [--hops N] "
                         "[--best N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (repeat < 1)
        repeat = 1;

    // Best-of-N wall clock: the box may be shared, and the fastest
    // repeat is the closest estimate of uncontended throughput. A
    // repeat whose trajectory diverges is kept so the oracle check
    // below reports it.
    const auto bestOf = [repeat](auto fn) {
        Result best = fn();
        for (int i = 1; i < repeat; ++i) {
            const Result r = fn();
            if (r.checksum != best.checksum || r.events != best.events)
                return r;
            if (r.seconds < best.seconds)
                best = r;
        }
        return best;
    };

    struct Mode {
        const char *name;
        Result r;
    };
    Mode modes[] = {
        {"serial_heap", bestOf([&] { return runHeapReference(w); })},
        {"ladder", bestOf([&] { return runLadder(w, false); })},
        {"ladder_batched", bestOf([&] { return runLadder(w, true); })},
        {"sharded", bestOf([&] { return runSharded(w); })},
    };

    // The ladder modes must visit the identical trajectory the heap
    // oracle does. (The sharded trajectory is also identical: the
    // strict-order grant protocol reproduces the serial order.)
    const std::uint64_t want = modes[0].r.checksum;
    for (const Mode &m : modes) {
        if (m.r.checksum != want || m.r.events != w.totalEvents()) {
            std::fprintf(stderr,
                         "FAIL: mode %s diverged from the heap oracle "
                         "(events %llu/%llu, checksum %llx vs %llx)\n",
                         m.name, (unsigned long long)m.r.events,
                         (unsigned long long)w.totalEvents(),
                         (unsigned long long)m.r.checksum,
                         (unsigned long long)want);
            return 1;
        }
    }

    const double heap_rate = modes[0].r.eventsPerSec();
    std::printf("%-15s %12s %12s %9s\n", "mode", "events", "events/s",
                "vs heap");
    for (const Mode &m : modes) {
        std::printf("%-15s %12llu %12.0f %8.2fx\n", m.name,
                    (unsigned long long)m.r.events, m.r.eventsPerSec(),
                    heap_rate > 0 ? m.r.eventsPerSec() / heap_rate : 0);
    }

    if (!out_path.empty()) {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"schema\": \"bctrl-eventloop-v1\",\n");
        std::fprintf(f, "  \"chains\": %d,\n  \"hops\": %llu,\n",
                     w.chains, (unsigned long long)w.hopsPerChain);
        std::fprintf(f, "  \"modes\": {\n");
        for (std::size_t i = 0; i < 4; ++i) {
            const Mode &m = modes[i];
            std::fprintf(
                f,
                "    \"%s\": {\"events\": %llu, \"seconds\": %s, "
                "\"events_per_sec\": %s}%s\n",
                m.name, (unsigned long long)m.r.events,
                formatDouble(m.r.seconds).c_str(),
                formatDouble(m.r.eventsPerSec()).c_str(),
                i + 1 < 4 ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
    return 0;
}
