/**
 * @file
 * Event-loop throughput microbenchmark: how many events per second
 * the queue core can dispatch when events are nearly free, isolating
 * scheduler cost from component simulation cost.
 *
 * Two workloads, five modes:
 *
 * Solo workload (one queue, self-rescheduling chains whose deltas
 * follow the simulator's measured mix):
 *
 *   serial_heap    - the pre-ladder binary-heap EventQueue, replicated
 *                    in heap_reference.hh and driven through the same
 *                    Event API (virtual dispatch, schedule checks), as
 *                    the oracle for both order and throughput
 *   ladder         - EventQueue via the bounded step() path (per-event
 *                    horizon compare, no batching)
 *   ladder_batched - EventQueue via run() unbounded, the production
 *                    System::run() path
 *
 * Cross-domain workload (three domain queues; chains live in one
 * domain and hop to the next every ~10-16 events through an owned
 * lambda carrying the cross-domain lookahead — the same traffic shape
 * the real system's border crossings produce):
 *
 *   sharded_serial - the three queues joined by formSerialGroup() and
 *                    run on the leader: the bit-identical oracle
 *   sharded        - the same queues under ParallelLoop's windowed
 *                    conservative grants, one worker per domain
 *
 * Every solo mode must visit exactly the same (tick, chain)
 * trajectory; the two cross modes must visit the same per-domain
 * trajectories. The harness cross-checks order-sensitive checksums so
 * a future queue change that reorders events fails here before it
 * fails a sweep. Results go to stdout and optionally a JSON file
 * (BENCH_eventloop.json in the repo root records the committed run);
 * --check compares against a committed JSON and fails on regression,
 * which is what the perf_regression ctest runs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "heap_reference.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_loop.hh"

using namespace bctrl;
using bench::formatDouble;

namespace {

/** Deterministic xorshift, shared by every mode. */
struct Rng {
    std::uint64_t x;
    explicit Rng(std::uint64_t seed) : x(seed | 1) {}
    std::uint64_t
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    }
};

/**
 * The simulator's delta mix (ticks are picoseconds, GPU cycle 1429):
 * mostly short in-window and few-bucket hops, occasionally a long
 * timer that spills to the overflow heap / far calendar buckets.
 */
Tick
nextDelta(Rng &rng)
{
    const std::uint64_t r = rng.next();
    const std::uint64_t pick = r % 100;
    if (pick < 45)
        return 1'429 + r % 2'858; // 1-3 GPU cycles
    if (pick < 85)
        return 4'000 + r % 25'000; // a few buckets ahead
    if (pick < 98)
        return 30'000 + r % 250'000; // deep in the ladder
    return 2'000'000 + r % 3'000'000; // past the ladder span
}

struct ChurnSpec {
    int chains = 256;
    std::uint64_t hopsPerChain = 40'000;
    std::uint64_t totalEvents() const
    {
        return static_cast<std::uint64_t>(chains) * hopsPerChain;
    }
};

/**
 * The cross-domain workload: per-domain chains that mostly advance a
 * few GPU cycles at a time and hop to the next domain every 10-16
 * events. The lookahead is generous relative to the deltas (a window
 * admits ~17 hops per chain), mirroring the real system where the
 * cross-domain latency dwarfs the per-event step.
 */
struct CrossSpec {
    int chainsPerDomain = 256;
    std::uint64_t hopsPerChain = 13'000;
    Tick lookahead = 50'000;
    int chains() const { return chainsPerDomain * numDomains; }
    std::uint64_t totalEvents() const
    {
        return static_cast<std::uint64_t>(chains()) * hopsPerChain;
    }
};

/** Cross-workload delta mix: mostly 1-3 GPU cycles, 10% mid hops. */
Tick
crossDelta(std::uint64_t r)
{
    if (r % 10 != 0)
        return 1'429 + r % 2'858;
    return 30'000 + r % 120'000;
}

/** Order-sensitive checksum over the (tick, chain) visit sequence. */
struct Check {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    void
    visit(Tick when, int chain)
    {
        h ^= when + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h ^= static_cast<std::uint64_t>(chain);
    }
};

struct Result {
    double seconds = 0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    /** Per-domain checksums (cross modes only; zero otherwise). */
    std::uint64_t domainChecksum[numDomains] = {};
    double
    eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0;
    }
};

// Host-side wall-clock measurement (never feeds simulated state).
// bclint:allow(nondeterminism)
using BenchClock = std::chrono::steady_clock;

/**
 * A self-rescheduling chain event for the solo workload. Templated
 * over the queue/event types so the identical workload — rng advance,
 * checksum, virtual dispatch — runs through both the production
 * EventQueue and the benchref::HeapQueue oracle.
 */
template <class Queue, class EventBase>
class ChainEventT : public EventBase
{
  public:
    ChainEventT(Queue &queue, Rng rng, std::uint64_t hops, int chain,
                Check &check)
        : queue_(queue), rng_(rng), hopsLeft_(hops), chain_(chain),
          check_(check)
    {}

    void
    process() override
    {
        check_.visit(queue_.curTick(), chain_);
        if (--hopsLeft_ > 0)
            queue_.schedule(this, queue_.curTick() + nextDelta(rng_));
    }

    std::string name() const override { return "chain-event"; }

  private:
    Queue &queue_;
    Rng rng_;
    std::uint64_t hopsLeft_;
    int chain_;
    Check &check_;
};

using ChainEvent = ChainEventT<EventQueue, Event>;
using RefChainEvent = ChainEventT<benchref::HeapQueue, benchref::Event>;

/** Reference mode: the pre-ladder heap design (heap_reference.hh). */
Result
runHeapReference(const ChurnSpec &w)
{
    benchref::HeapQueue hq;
    Check check;
    std::vector<std::unique_ptr<RefChainEvent>> chains;
    for (int c = 0; c < w.chains; ++c) {
        Rng rng(0x1000 + c);
        const Tick first = nextDelta(rng);
        chains.push_back(std::make_unique<RefChainEvent>(
            hq, rng, w.hopsPerChain, c, check));
        hq.schedule(chains.back().get(), first);
    }

    Result res;
    const auto start = BenchClock::now();
    hq.run();
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    res.events = hq.eventsProcessed();
    res.checksum = check.h;
    return res;
}

/**
 * EventQueue solo modes. @p batched picks run() unbounded (the
 * batched production path) vs. step() (per-event peek/pop).
 */
Result
runLadder(const ChurnSpec &w, bool batched)
{
    EventQueue eq;
    Check check;
    std::vector<std::unique_ptr<ChainEvent>> chains;
    for (int c = 0; c < w.chains; ++c) {
        Rng rng(0x1000 + c);
        const Tick first = nextDelta(rng);
        chains.push_back(std::make_unique<ChainEvent>(
            eq, rng, w.hopsPerChain, c, check));
        eq.schedule(chains.back().get(), first);
    }

    Result res;
    const auto start = BenchClock::now();
    if (batched) {
        eq.run();
    } else {
        // step() dispatches one event per call: the full peek/pop
        // path with no batched bucket drain.
        while (eq.step()) {
        }
    }
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    res.events = eq.eventsProcessed();
    res.checksum = check.h;
    return res;
}

/**
 * A chain event for the cross-domain workload. Hops are domain-local
 * Event schedules except every 10-16th, which crosses to the next
 * domain as a queue-owned lambda at +lookahead (plain Events may not
 * cross shard borders — their owner could deschedule them while the
 * entry is in a mailbox). One object serves both cross modes: the
 * serial facade group and the shard group stamp identical keys.
 */
class CrossChainEvent : public Event
{
  public:
    CrossChainEvent(EventQueue *const *queues, Tick lookahead, Rng rng,
                    std::uint64_t hops, int chain, Check *checks)
        : queues_(queues), lookahead_(lookahead), rng_(rng),
          hopsLeft_(hops), chain_(chain), checks_(checks),
          slot_(chain % numDomains),
          crossIn_(10 + static_cast<int>(rng_.next() % 7))
    {}

    std::size_t homeSlot() const { return slot_; }

    void
    process() override
    {
        EventQueue &cur = *queues_[slot_];
        checks_[slot_].visit(cur.curTick(), chain_);
        if (--hopsLeft_ == 0)
            return;
        const std::uint64_t r = rng_.next();
        const Tick delta = crossDelta(r);
        if (--crossIn_ > 0) {
            cur.schedule(this, cur.curTick() + delta);
            return;
        }
        crossIn_ = 10 + static_cast<int>(r % 7);
        slot_ = (slot_ + 1) % numDomains;
        CrossChainEvent *self = this;
        // The lambda runs on the target queue's thread; by then the
        // chain's state is safely published by the window barrier.
        queues_[slot_]->scheduleLambda(
            [self] { self->process(); },
            cur.curTick() + lookahead_ + delta);
    }

    std::string name() const override { return "cross-chain-event"; }

  private:
    EventQueue *const *queues_;
    const Tick lookahead_;
    Rng rng_;
    std::uint64_t hopsLeft_;
    const int chain_;
    Check *checks_;
    std::size_t slot_;
    int crossIn_;
};

/** Build and schedule the cross-domain chains (both cross modes). */
std::vector<std::unique_ptr<CrossChainEvent>>
makeCrossChains(const CrossSpec &w, EventQueue *const queues[],
                Check checks[])
{
    std::vector<std::unique_ptr<CrossChainEvent>> chains;
    for (int c = 0; c < w.chains(); ++c) {
        Rng rng(0x2000 + c);
        chains.push_back(std::make_unique<CrossChainEvent>(
            queues, w.lookahead, rng, w.hopsPerChain, c, checks));
        CrossChainEvent *ev = chains.back().get();
        // First hop is domain-local: scheduled from outside any event,
        // the home queue stamps itself as sender.
        queues[ev->homeSlot()]->schedule(
            ev, crossDelta(Rng(0x9000 + c).next()));
    }
    return chains;
}

void
finishCross(Result &res, const Check checks[], std::uint64_t events)
{
    res.events = events;
    // Fold the per-domain checksums into one order-sensitive word for
    // the best-of comparison; the oracle check compares per domain.
    std::uint64_t h = 0x100001b3ULL;
    for (std::size_t d = 0; d < numDomains; ++d) {
        res.domainChecksum[d] = checks[d].h;
        h ^= checks[d].h + (h << 6) + (h >> 2);
    }
    res.checksum = h;
}

/**
 * Cross-domain oracle: the three domain queues joined as a serial
 * facade group and run single-threaded on the leader.
 */
Result
runShardedSerial(const CrossSpec &w)
{
    EventQueue border(Domain::border);
    EventQueue gpu(Domain::gpuCluster);
    EventQueue dram(Domain::dram);
    border.formSerialGroup(gpu, dram, w.lookahead);
    EventQueue *queues[numDomains] = {&border, &gpu, &dram};

    Check checks[numDomains];
    auto chains = makeCrossChains(w, queues, checks);

    Result res;
    const auto start = BenchClock::now();
    border.run();
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    finishCross(res, checks, border.eventsProcessed());
    return res;
}

/**
 * Sharded mode: the same chains under ParallelLoop's windowed
 * conservative grants, one worker thread per domain.
 */
Result
runSharded(const CrossSpec &w)
{
    EventQueue border(Domain::border);
    EventQueue gpu(Domain::gpuCluster);
    EventQueue dram(Domain::dram);
    ParallelLoop loop(border, gpu, dram, w.lookahead);
    EventQueue *queues[numDomains] = {&border, &gpu, &dram};

    Check checks[numDomains];
    auto chains = makeCrossChains(w, queues, checks);

    Result res;
    const auto start = BenchClock::now();
    loop.run();
    const std::chrono::duration<double> el = BenchClock::now() - start;
    res.seconds = el.count();
    finishCross(res, checks, border.eventsProcessed());
    return res;
}

/**
 * Extract modes.NAME.events_per_sec from a committed JSON file with a
 * string scan (the schema is flat and written by this harness; a full
 * parser would be overkill for a perf gate).
 */
bool
committedRate(const std::string &json, const char *mode, double *rate)
{
    std::string key = "\"";
    key += mode;
    key += "\":";
    const std::size_t at = json.find(key);
    if (at == std::string::npos)
        return false;
    const std::string field = "\"events_per_sec\":";
    const std::size_t f = json.find(field, at);
    if (f == std::string::npos)
        return false;
    *rate = std::strtod(json.c_str() + f + field.size(), nullptr);
    return *rate > 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ChurnSpec w;
    CrossSpec x;
    std::string out_path;
    std::string check_path;
    double tolerance = 0.20;
    int repeat = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            check_path = argv[++i];
        } else if (arg == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else if (arg == "--chains" && i + 1 < argc) {
            w.chains = std::atoi(argv[++i]);
        } else if (arg == "--hops" && i + 1 < argc) {
            w.hopsPerChain = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--cross-chains" && i + 1 < argc) {
            x.chainsPerDomain = std::atoi(argv[++i]);
        } else if (arg == "--cross-hops" && i + 1 < argc) {
            x.hopsPerChain = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--best" && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--chains N] [--hops N] "
                         "[--cross-chains N] [--cross-hops N] "
                         "[--best N] [--out FILE] "
                         "[--check FILE [--tolerance F]]\n",
                         argv[0]);
            return 2;
        }
    }
    if (repeat < 1)
        repeat = 1;

    // Best-of-N wall clock: the box may be shared, and the fastest
    // repeat is the closest estimate of uncontended throughput. A
    // repeat whose trajectory diverges is kept so the oracle check
    // below reports it.
    const auto bestOf = [repeat](auto fn) {
        Result best = fn();
        for (int i = 1; i < repeat; ++i) {
            const Result r = fn();
            if (r.checksum != best.checksum || r.events != best.events)
                return r;
            if (r.seconds < best.seconds)
                best = r;
        }
        return best;
    };

    struct Mode {
        const char *name;
        Result r;
    };
    Mode modes[] = {
        {"serial_heap", bestOf([&] { return runHeapReference(w); })},
        {"ladder", bestOf([&] { return runLadder(w, false); })},
        {"ladder_batched", bestOf([&] { return runLadder(w, true); })},
        {"sharded_serial", bestOf([&] { return runShardedSerial(x); })},
        {"sharded", bestOf([&] { return runSharded(x); })},
    };
    constexpr std::size_t numModes = sizeof(modes) / sizeof(modes[0]);

    // The ladder modes must visit the identical trajectory the heap
    // oracle does.
    const std::uint64_t want = modes[0].r.checksum;
    for (std::size_t i = 0; i < 3; ++i) {
        const Mode &m = modes[i];
        if (m.r.checksum != want || m.r.events != w.totalEvents()) {
            std::fprintf(stderr,
                         "FAIL: mode %s diverged from the heap oracle "
                         "(events %llu/%llu, checksum %llx vs %llx)\n",
                         m.name, (unsigned long long)m.r.events,
                         (unsigned long long)w.totalEvents(),
                         (unsigned long long)m.r.checksum,
                         (unsigned long long)want);
            return 1;
        }
    }
    // The sharded run must visit the identical per-domain trajectories
    // the serial facade group does: this is the same bit-identity the
    // windowed grant protocol promises the full system.
    const Result &xs = modes[3].r;
    const Result &xp = modes[4].r;
    if (xs.events != x.totalEvents() || xp.events != x.totalEvents()) {
        std::fprintf(stderr,
                     "FAIL: cross modes dropped events (%llu / %llu, "
                     "expected %llu)\n",
                     (unsigned long long)xs.events,
                     (unsigned long long)xp.events,
                     (unsigned long long)x.totalEvents());
        return 1;
    }
    for (std::size_t d = 0; d < numDomains; ++d) {
        if (xs.domainChecksum[d] != xp.domainChecksum[d]) {
            std::fprintf(stderr,
                         "FAIL: sharded domain %zu diverged from the "
                         "serial group (checksum %llx vs %llx)\n",
                         d, (unsigned long long)xp.domainChecksum[d],
                         (unsigned long long)xs.domainChecksum[d]);
            return 1;
        }
    }

    const double heap_rate = modes[0].r.eventsPerSec();
    const double cross_rate = modes[3].r.eventsPerSec();
    std::printf("%-15s %12s %12s %9s\n", "mode", "events", "events/s",
                "vs base");
    for (std::size_t i = 0; i < numModes; ++i) {
        const Mode &m = modes[i];
        // Base = serial_heap for the solo workload, sharded_serial for
        // the cross-domain workload (they are different workloads).
        const double base = i < 3 ? heap_rate : cross_rate;
        std::printf("%-15s %12llu %12.0f %8.2fx\n", m.name,
                    (unsigned long long)m.r.events, m.r.eventsPerSec(),
                    base > 0 ? m.r.eventsPerSec() / base : 0);
    }

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", check_path.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string json = buf.str();
        bool regressed = false;
        for (const Mode &m : modes) {
            double committed = 0;
            if (!committedRate(json, m.name, &committed)) {
                std::fprintf(stderr,
                             "check: mode %s missing from %s, skipped\n",
                             m.name, check_path.c_str());
                continue;
            }
            const double floor = committed * (1.0 - tolerance);
            const bool bad = m.r.eventsPerSec() < floor;
            regressed = regressed || bad;
            std::fprintf(stderr,
                         "check: %-15s committed %12.0f ev/s, "
                         "now %12.0f ev/s%s\n",
                         m.name, committed, m.r.eventsPerSec(),
                         bad ? "  REGRESSED" : "");
        }
        if (regressed) {
            std::fprintf(stderr,
                         "FAIL: throughput regressed more than %.0f%% "
                         "vs %s\n",
                         tolerance * 100, check_path.c_str());
            return 1;
        }
    }

    if (!out_path.empty()) {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"schema\": \"bctrl-eventloop-v2\",\n");
        std::fprintf(f, "  \"host_cores\": %u,\n",
                     std::thread::hardware_concurrency());
        std::fprintf(f, "  \"chains\": %d,\n  \"hops\": %llu,\n",
                     w.chains, (unsigned long long)w.hopsPerChain);
        std::fprintf(f,
                     "  \"cross_chains\": %d,\n  \"cross_hops\": %llu,\n"
                     "  \"lookahead\": %llu,\n",
                     x.chains(), (unsigned long long)x.hopsPerChain,
                     (unsigned long long)x.lookahead);
        std::fprintf(f, "  \"modes\": {\n");
        for (std::size_t i = 0; i < numModes; ++i) {
            const Mode &m = modes[i];
            std::fprintf(
                f,
                "    \"%s\": {\"events\": %llu, \"seconds\": %s, "
                "\"events_per_sec\": %s}%s\n",
                m.name, (unsigned long long)m.r.events,
                formatDouble(m.r.seconds).c_str(),
                formatDouble(m.r.eventsPerSec()).c_str(),
                i + 1 < numModes ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
    return 0;
}
