/**
 * @file
 * Figure 5: requests per cycle checked by Border Control for the
 * highly threaded GPU. Paper: ~0.025 (backprop) to ~0.29 (bfs),
 * average ~0.11 — demonstrating that Border Control bandwidth is not
 * a bottleneck because the private accelerator caches filter traffic.
 *
 * The seven workload runs execute concurrently on the sweep engine.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace bctrl;
using namespace bctrl::bench;

int
main()
{
    banner("Figure 5: Requests per cycle checked by Border Control",
           "Figure 5");

    std::printf("%-11s %14s %12s %14s\n", "workload", "border reqs",
                "GPU cycles", "reqs/cycle");

    const std::vector<SweepOutcome> outcomes = sweep(matrixPoints(
        rodiniaWorkloadNames(), {SafetyModel::borderControlBcc},
        {GpuProfile::highlyThreaded}));

    double sum = 0;
    double min_rate = 1e9, max_rate = 0;
    std::string min_wl, max_wl;
    for (const SweepOutcome &o : outcomes) {
        const RunResult &r = o.result;
        std::printf("%-11s %14llu %12.0f %14.4f\n", o.workload.c_str(),
                    (unsigned long long)r.borderRequests, r.gpuCycles,
                    r.borderRequestsPerCycle);
        sum += r.borderRequestsPerCycle;
        if (r.borderRequestsPerCycle < min_rate) {
            min_rate = r.borderRequestsPerCycle;
            min_wl = o.workload;
        }
        if (r.borderRequestsPerCycle > max_rate) {
            max_rate = r.borderRequestsPerCycle;
            max_wl = o.workload;
        }
    }
    const double avg = sum / outcomes.size();
    std::printf("%-11s %14s %12s %14.4f\n", "AVG", "", "", avg);

    std::printf("\nPaper: min backprop ~0.025, max bfs ~0.29, avg "
                "~0.11.\n");
    std::printf("Measured: min %s %.3f, max %s %.3f, avg %.3f\n",
                min_wl.c_str(), min_rate, max_wl.c_str(), max_rate,
                avg);

    // Shape check: same extremes, average well below one request per
    // cycle (Border Control bandwidth is not a bottleneck).
    const bool ok = min_wl == "backprop" && max_wl == "bfs" && avg < 0.5;
    std::printf("Reproduction %s\n", ok ? "MATCHES" : "DIFFERS");
    return ok ? 0 : 1;
}
