/**
 * @file
 * Figure 4: runtime overhead of each safety approach relative to the
 * unsafe ATS-only IOMMU baseline, for the highly threaded (4a) and
 * moderately threaded (4b) GPU profiles, across the seven Rodinia
 * proxy workloads.
 *
 * All 70 (profile × workload × safety) simulations run through the
 * parallel sweep engine; results are read back by sweep index, so the
 * printed table is identical whatever the worker count.
 *
 * Expected shape (paper §5.2): Full IOMMU >> CAPI-like >
 * BC-noBCC > BC-BCC ~= 0; the full IOMMU is far worse on the highly
 * threaded GPU (DRAM overwhelmed without the caches), while the
 * CAPI-like and BC-noBCC penalties bite hardest on the latency-
 * sensitive moderately threaded GPU. Paper geomeans: 374%/3.81%/
 * 2.04%/0.15% (highly) and 85%/16.5%/7.26%/0.84% (moderately).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace bctrl;
using namespace bctrl::bench;

int
main()
{
    banner("Figure 4: Runtime overhead vs. ATS-only IOMMU",
           "Figure 4(a)/(b)");

    // Baseline first: within each (profile, workload) group the five
    // outcomes are indexed in this order.
    const std::vector<SafetyModel> models = {
        SafetyModel::atsOnlyIommu, SafetyModel::fullIommu,
        SafetyModel::capiLike, SafetyModel::borderControlNoBcc,
        SafetyModel::borderControlBcc};
    const std::vector<GpuProfile> profiles = {
        GpuProfile::highlyThreaded, GpuProfile::moderatelyThreaded};
    const std::vector<std::string> &workloads = rodiniaWorkloadNames();

    const std::vector<SweepOutcome> outcomes =
        sweep(matrixPoints(workloads, models, profiles));

    std::size_t idx = 0;
    for (GpuProfile profile : profiles) {
        std::printf("--- Figure 4%s: %s GPU ---\n",
                    profile == GpuProfile::highlyThreaded ? "a" : "b",
                    gpuProfileName(profile));
        std::printf("%-11s %12s %12s %12s %12s %12s\n", "workload",
                    "baseline(cy)", "Full IOMMU", "CAPI-like",
                    "BC-noBCC", "BC-BCC");

        std::vector<double> overheads[4];
        for (const auto &wl : workloads) {
            const RunResult &base = outcomes[idx++].result;
            std::printf("%-11s %12.0f", wl.c_str(), base.gpuCycles);
            for (int i = 0; i < 4; ++i) {
                const RunResult &r = outcomes[idx++].result;
                double overhead = r.gpuCycles / base.gpuCycles - 1.0;
                overheads[i].push_back(overhead);
                std::printf(" %12s", pct(overhead).c_str());
            }
            std::printf("\n");
        }

        std::printf("%-11s %12s", "geomean", "");
        for (int i = 0; i < 4; ++i)
            std::printf(" %12s",
                        pct(geomeanOverhead(overheads[i])).c_str());
        std::printf("\n");

        const char *paper = profile == GpuProfile::highlyThreaded
                                ? "374%         3.81%        2.04%"
                                  "        0.15%"
                                : "85%          16.5%        7.26%"
                                  "        0.84%";
        std::printf("%-11s %12s %s\n\n", "paper", "", paper);
    }

    std::printf("Shape checks: ordering IOMMU > CAPI > noBCC > BCC,\n"
                "full-IOMMU worst on the highly threaded GPU, CAPI and "
                "noBCC worst on the\nmoderately threaded GPU, BC-BCC "
                "near zero everywhere.\n");
    return 0;
}
