/**
 * @file
 * The IOMMU checking front end: translation at the border.
 *
 * Used by two of the evaluated configurations:
 *  - Full IOMMU: every accelerator memory request arrives here as a
 *    virtual address, is translated and permission-checked, and only
 *    then forwarded to memory (downstream = the memory system). The
 *    accelerator keeps no caches or TLBs.
 *  - CAPI-like: same per-request translation and check, but downstream
 *    is a trusted shared L2 cache implemented on the host side of the
 *    border, reached with extra latency.
 */

#ifndef BCTRL_VM_IOMMU_FRONTEND_HH
#define BCTRL_VM_IOMMU_FRONTEND_HH

#include "mem/mem_device.hh"
#include "sim/sim_object.hh"
#include "vm/ats.hh"

namespace bctrl {

class IommuFrontend : public SimObject, public MemDevice
{
  public:
    struct Params {
        /** Extra one-way latency to reach this trusted unit. */
        Tick frontLatency = 0;
        /**
         * Requests accepted per cycle. The full IOMMU is a shared,
         * single-ported unit; a CAPI-like interface is dedicated
         * hardware with a wider port.
         */
        unsigned requestsPerCycle = 1;
        /** Clock period used for the port model. */
        Tick clockPeriod = 1'429;
        /**
         * Keep a TLB inside this unit (the CAPI-like design implements
         * the accelerator's TLB in trusted hardware). When false, all
         * translations go to the shared ATS, whose port is narrow.
         */
        bool ownTlb = false;
        Tlb::Params tlb{512, 8};
        /** Own-TLB hit latency, in cycles. */
        Cycles tlbLatency = 4;
    };

    IommuFrontend(EventQueue &eq, const std::string &name,
                  const Params &params, Ats &ats, MemDevice &downstream);

    /**
     * Accept a virtual-addressed packet from the accelerator,
     * translate and check it, and forward the now-physical packet.
     */
    void access(const PacketPtr &pkt) override;

    /** Register the OS handler for denied accesses. */
    void setViolationHandler(std::function<void(const Packet &)> handler)
    {
        violationHandler_ = std::move(handler);
    }

    std::uint64_t requests() const
    {
        return static_cast<std::uint64_t>(requests_.value());
    }
    std::uint64_t denials() const
    {
        return static_cast<std::uint64_t>(denials_.value());
    }

    /** The unit's own TLB (CAPI-like only); null otherwise. */
    Tlb *ownTlb() { return ownTlb_.get(); }

    /** Shootdown support for the own-TLB variant. */
    void invalidatePage(Asid asid, Addr vpn);
    void invalidateAsid(Asid asid);

  private:
    /** Charge port occupancy; @return the service start tick. */
    Tick acquireSlot();

    /** Translation resolved: check permissions and forward or deny. */
    void finish(const PacketPtr &pkt, bool ok, const TlbEntry &entry);

    Params params_;
    Ats &ats_;
    MemDevice &downstream_;
    std::function<void(const Packet &)> violationHandler_;
    std::unique_ptr<Tlb> ownTlb_;
    Tick slotBusyUntil_ = 0;

    stats::Scalar &requests_;
    stats::Scalar &denials_;
    stats::Scalar &ownTlbHits_;
};

} // namespace bctrl

#endif // BCTRL_VM_IOMMU_FRONTEND_HH
