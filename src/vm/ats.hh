/**
 * @file
 * The Address Translation Service (ATS), the translation half of the
 * IOMMU (paper §2.3).
 *
 * Accelerators cannot walk page tables themselves; on an accelerator
 * TLB miss they ask the ATS, which checks that the ASID belongs to a
 * process scheduled on the accelerator, consults its trusted shared L2
 * TLB, walks the process page table in simulated memory on a miss
 * (four dependent PTE reads), services demand-paging faults through
 * the kernel, and mirrors every successful translation to Border
 * Control so the Protection Table stays lazily up to date (Fig. 3b).
 */

#ifndef BCTRL_VM_ATS_HH
#define BCTRL_VM_ATS_HH

#include <functional>
#include <memory>

#include "mem/mem_device.hh"
#include "sim/sim_object.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace bctrl {

class Kernel;
class BorderControl;

class Ats : public SimObject
{
  public:
    struct Params {
        Tlb::Params l2Tlb{512, 8};
        /** L2 TLB lookup latency, in ATS clock cycles. */
        Cycles l2TlbLatency = 20;
        /** ATS clock period in ticks. */
        Tick clockPeriod = 1'429; // matches the accelerator clock
        /**
         * Translations accepted per cycle. The IOMMU's translation
         * service is a shared, single-ported unit.
         */
        unsigned translationsPerCycle = 1;
        /**
         * Lost-response recovery (chaos runs): how many times a
         * translation is re-issued when its response is dropped, and
         * the first re-issue delay (doubled per attempt). Zero-fault
         * runs never consult either.
         */
        unsigned maxRetries = 8;
        Tick retryBackoff = 20'000;
    };

    /** Completion callback: success flag plus the filled entry. */
    using Callback = std::function<void(bool ok, const TlbEntry &entry)>;

    /**
     * @param walk_path trusted path to memory for PTE reads
     * @param pool packet pool for PTE read packets; null = heap
     */
    Ats(EventQueue &eq, const std::string &name, const Params &params,
        MemDevice &walk_path, PacketPool *pool = nullptr);

    /** The kernel provides ASID validation, page tables, and faults. */
    void setKernel(Kernel *kernel) { kernel_ = kernel; }

    /** Optional: Border Control to notify on each translation. */
    void setBorderControl(BorderControl *bc) { borderControl_ = bc; }

    /**
     * Translate (@p asid, @p vaddr); @p need_write requests write
     * permission. @p cb runs when the translation (including any page
     * walk and fault service) completes.
     */
    void translate(Asid asid, Addr vaddr, bool need_write, Callback cb);

    /** @name Shootdown interface */
    /// @{
    void invalidatePage(Asid asid, Addr vpn);
    void invalidateAsid(Asid asid);
    void invalidateAll();
    /// @}

    Tlb &l2Tlb() { return l2Tlb_; }

    std::uint64_t translations() const
    {
        return static_cast<std::uint64_t>(translations_.value());
    }
    std::uint64_t walks() const
    {
        return static_cast<std::uint64_t>(walks_.value());
    }
    std::uint64_t translationFaults() const
    {
        return static_cast<std::uint64_t>(failures_.value());
    }
    /** Translations re-issued after a dropped response (chaos runs). */
    std::uint64_t retries() const
    {
        return static_cast<std::uint64_t>(retries_.value());
    }

  private:
    Tick clockEdge(Cycles cycles = 0) const;

    /** Charge the request-port occupancy; @return service start tick. */
    Tick acquireSlot();

    /**
     * One translation attempt. @p attempt counts re-issues after a
     * dropped response; attempt 0 is the behavior-identical path
     * translate() always took.
     */
    void translateAttempt(Asid asid, Addr vaddr, bool need_write,
                          Callback cb, unsigned attempt);

    /** Begin a page walk for (@p asid, @p vaddr). */
    void startWalk(Asid asid, Addr vaddr, bool need_write, Callback cb,
                   bool after_fault, unsigned attempt);

    /**
     * Consult the fault engine at the response-delivery border. May
     * mutate @p entry (corrupt/stuck payloads). @return true when the
     * fault consumed the delivery (retry scheduled, delayed delivery
     * queued, or the translation abandoned); the caller then must not
     * deliver @p cb itself.
     */
    bool deliverFaulted(Asid asid, Addr vaddr, bool need_write,
                        unsigned attempt, TlbEntry &entry, Callback &cb);

    /** Issue the next PTE read of an in-flight walk (or finish it). */
    void issueNextPte(const std::shared_ptr<void> &state);

    /** Complete a walk: success, fault-and-retry, or failure. */
    void walkDone(const std::shared_ptr<void> &state);

    /** Deliver a successful translation: TLB fill, BC notify, cb. */
    void finishTranslation(Asid asid, Addr vaddr,
                           const WalkResult &result, Tick when,
                           Callback cb, unsigned attempt,
                           bool need_write);

    void fail(Callback cb, Tick when);

    Params params_;
    MemDevice &walkPath_;
    PacketPool *pool_;
    Kernel *kernel_ = nullptr;
    BorderControl *borderControl_ = nullptr;
    Tlb l2Tlb_;
    Tick slotBusyUntil_ = 0;

    /** Stuck-at fault payload: the first delivered entry, replayed. */
    TlbEntry stuckEntry_{};
    bool stuckValid_ = false;

    stats::Scalar &translations_;
    stats::Scalar &walks_;
    stats::Scalar &faultsServiced_;
    stats::Scalar &failures_;
    stats::Scalar &retries_;
    stats::Scalar &retriesExhausted_;
};

} // namespace bctrl

#endif // BCTRL_VM_ATS_HH
