#include "vm/ats.hh"

#include <algorithm>
#include <memory>

#include "bc/border_control.hh"
#include "os/kernel.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"

namespace bctrl {

namespace {

/** In-flight page-walk bookkeeping, shared across the PTE-read chain. */
struct WalkState {
    Asid asid = 0;
    Addr vaddr = 0;
    bool needWrite = false;
    bool afterFault = false;
    WalkResult result;
    Ats::Callback cb;
    std::size_t next = 0;
};

} // namespace

Ats::Ats(EventQueue &eq, const std::string &name, const Params &params,
         MemDevice &walk_path, PacketPool *pool)
    : SimObject(eq, name),
      params_(params),
      walkPath_(walk_path),
      pool_(pool),
      l2Tlb_(eq, name + ".l2tlb", params.l2Tlb),
      translations_(statGroup().scalar("translations",
                                       "translation requests serviced")),
      walks_(statGroup().scalar("walks", "page table walks performed")),
      faultsServiced_(statGroup().scalar(
          "faultsServiced", "demand-paging faults taken during walks")),
      failures_(statGroup().scalar("failures",
                                   "translations that faulted fatally"))
{
    statGroup().addChild(&l2Tlb_.statGroup());
    panic_if(params_.clockPeriod == 0, "ATS clock period is zero");
    panic_if(params_.translationsPerCycle == 0,
             "ATS must accept at least one translation per cycle");
}

Tick
Ats::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % params_.clockPeriod;
    Tick edge = rem == 0 ? now : now + (params_.clockPeriod - rem);
    return edge + cycles * params_.clockPeriod;
}

Tick
Ats::acquireSlot()
{
    const Tick slot_time =
        params_.clockPeriod / params_.translationsPerCycle;
    Tick start = std::max(clockEdge(), slotBusyUntil_);
    slotBusyUntil_ = start + std::max<Tick>(1, slot_time);
    return start;
}

void
Ats::fail(Callback cb, Tick when)
{
    ++failures_;
    eventQueue().scheduleLambda(
        [cb = std::move(cb)]() { cb(false, TlbEntry{}); }, when);
}

void
Ats::translate(Asid asid, Addr vaddr, bool need_write, Callback cb)
{
    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::ats);

    ++translations_;
    const Tick start = acquireSlot();
    const Tick lookup_done =
        start + params_.l2TlbLatency * params_.clockPeriod;

    // The ATS checks that the ASID corresponds to a process running on
    // the accelerator (§3.2.2).
    if (kernel_ == nullptr || !kernel_->accelRunning(asid)) {
        fail(std::move(cb), lookup_done);
        return;
    }

    eventQueue().scheduleLambda(
        [this, asid, vaddr, need_write, cb = std::move(cb)]() mutable {
            const Addr vpn = pageNumber(vaddr);
            if (auto entry = l2Tlb_.lookup(asid, vpn)) {
                if (!need_write || entry->perms.write) {
                    // Even on an L2 TLB hit Border Control is notified:
                    // the Protection Table is updated on *every*
                    // accelerator request to the ATS (§3.1.1).
                    if (borderControl_ != nullptr) {
                        borderControl_->onTranslation(
                            asid, entry->vpn, entry->ppn, entry->perms,
                            entry->largePage);
                    }
                    cb(true, *entry);
                    return;
                }
                // Cached entry lacks write permission: re-walk; the PTE
                // may have been upgraded since.
            }
            startWalk(asid, vaddr, need_write, std::move(cb), false);
        },
        lookup_done);
}

void
Ats::startWalk(Asid asid, Addr vaddr, bool need_write, Callback cb,
               bool after_fault)
{
    Process *proc = kernel_->findProcess(asid);
    if (proc == nullptr) {
        fail(std::move(cb), clockEdge(1));
        return;
    }

    ++walks_;
    auto state = std::make_shared<WalkState>();
    state->asid = asid;
    state->vaddr = vaddr;
    state->needWrite = need_write;
    state->afterFault = after_fault;
    state->result = proc->pageTable().walk(vaddr);
    state->cb = std::move(cb);

    // Issue the chain of dependent PTE reads through the trusted path;
    // each response triggers the next read, then walkDone.
    issueNextPte(state);
}

void
Ats::issueNextPte(const std::shared_ptr<void> &opaque)
{
    auto state = std::static_pointer_cast<WalkState>(opaque);
    if (state->next >= state->result.pteAddrs.size()) {
        walkDone(opaque);
        return;
    }
    const Addr pte_addr = state->result.pteAddrs[state->next++];
    auto pkt =
        allocPacket(pool_, MemCmd::Read, pte_addr, 8, Requestor::trustedHw);
    pkt->issuedAt = curTick();
    pkt->onResponse = [this, opaque](Packet &) { issueNextPte(opaque); };
    walkPath_.access(pkt);
}

void
Ats::walkDone(const std::shared_ptr<void> &opaque)
{
    auto state = std::static_pointer_cast<WalkState>(opaque);
    const WalkResult &r = state->result;
    const bool ok =
        r.valid && (state->needWrite ? r.perms.write : r.perms.read);

    if (ok) {
        finishTranslation(state->asid, state->vaddr, r, curTick(),
                          std::move(state->cb));
        return;
    }

    if (!state->afterFault &&
        kernel_->handlePageFault(state->asid, state->vaddr,
                                 state->needWrite)) {
        ++faultsServiced_;
        // Charge the OS fault-service latency, then re-walk with the
        // now-installed mapping.
        Asid asid = state->asid;
        Addr vaddr = state->vaddr;
        bool need_write = state->needWrite;
        Callback cb = std::move(state->cb);
        eventQueue().scheduleLambda(
            [this, asid, vaddr, need_write, cb = std::move(cb)]() mutable {
                startWalk(asid, vaddr, need_write, std::move(cb), true);
            },
            curTick() + kernel_->pageFaultLatency());
        return;
    }

    fail(std::move(state->cb), clockEdge(1));
}

void
Ats::finishTranslation(Asid asid, Addr vaddr, const WalkResult &result,
                       Tick when, Callback cb)
{
    TlbEntry entry;
    entry.asid = asid;
    entry.largePage = result.largePage;
    if (result.largePage) {
        entry.vpn = pageNumber(vaddr) & ~(pagesPerLargePage - 1);
        entry.ppn = pageNumber(result.paddr) & ~(pagesPerLargePage - 1);
    } else {
        entry.vpn = pageNumber(vaddr);
        entry.ppn = pageNumber(result.paddr);
    }
    entry.perms = result.perms;

    l2Tlb_.insert(entry);
    if (borderControl_ != nullptr) {
        borderControl_->onTranslation(asid, entry.vpn, entry.ppn,
                                      entry.perms, entry.largePage);
    }
    eventQueue().scheduleLambda(
        [cb = std::move(cb), entry]() { cb(true, entry); }, when);
}

void
Ats::invalidatePage(Asid asid, Addr vpn)
{
    l2Tlb_.invalidatePage(asid, vpn);
}

void
Ats::invalidateAsid(Asid asid)
{
    l2Tlb_.invalidateAsid(asid);
}

void
Ats::invalidateAll()
{
    l2Tlb_.invalidateAll();
}

} // namespace bctrl
