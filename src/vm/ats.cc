#include "vm/ats.hh"

#include <algorithm>
#include <memory>

#include "bc/border_control.hh"
#include "os/kernel.hh"
#include "sim/fault.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace bctrl {

namespace {

/** In-flight page-walk bookkeeping, shared across the PTE-read chain. */
struct WalkState {
    Asid asid = 0;
    Addr vaddr = 0;
    bool needWrite = false;
    bool afterFault = false;
    unsigned attempt = 0;
    WalkResult result;
    Ats::Callback cb;
    std::size_t next = 0;
};

} // namespace

Ats::Ats(EventQueue &eq, const std::string &name, const Params &params,
         MemDevice &walk_path, PacketPool *pool)
    : SimObject(eq, name),
      params_(params),
      walkPath_(walk_path),
      pool_(pool),
      l2Tlb_(eq, name + ".l2tlb", params.l2Tlb),
      translations_(statGroup().scalar("translations",
                                       "translation requests serviced")),
      walks_(statGroup().scalar("walks", "page table walks performed")),
      faultsServiced_(statGroup().scalar(
          "faultsServiced", "demand-paging faults taken during walks")),
      failures_(statGroup().scalar("failures",
                                   "translations that faulted fatally")),
      retries_(statGroup().scalar(
          "retries", "translations re-issued after a dropped response")),
      retriesExhausted_(statGroup().scalar(
          "retriesExhausted",
          "translations abandoned after exhausting retries"))
{
    statGroup().addChild(&l2Tlb_.statGroup());
    panic_if(params_.clockPeriod == 0, "ATS clock period is zero");
    panic_if(params_.translationsPerCycle == 0,
             "ATS must accept at least one translation per cycle");
}

Tick
Ats::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % params_.clockPeriod;
    Tick edge = rem == 0 ? now : now + (params_.clockPeriod - rem);
    return edge + cycles * params_.clockPeriod;
}

Tick
Ats::acquireSlot()
{
    const Tick slot_time =
        params_.clockPeriod / params_.translationsPerCycle;
    Tick start = std::max(clockEdge(), slotBusyUntil_);
    slotBusyUntil_ = start + std::max<Tick>(1, slot_time);
    return start;
}

void
Ats::fail(Callback cb, Tick when)
{
    ++failures_;
    eventQueue().scheduleLambda(
        [cb = std::move(cb)]() { cb(false, TlbEntry{}); }, when);
}

void
Ats::translate(Asid asid, Addr vaddr, bool need_write, Callback cb)
{
    translateAttempt(asid, vaddr, need_write, std::move(cb), 0);
}

bool
Ats::deliverFaulted(Asid asid, Addr vaddr, bool need_write,
                    unsigned attempt, TlbEntry &entry, Callback &cb)
{
    fault::FaultEngine *fe = eventQueue().faultEngine();
    if (fe == nullptr)
        return false;
    const fault::Decision fd =
        fe->decide(fault::Point::atsResponse, curTick());
    switch (fd.kind) {
      case fault::Kind::drop: {
        // The response is lost on the link. The requester's timeout
        // re-issues the translation with exponential backoff; after
        // maxRetries the op is abandoned as a translation fault so the
        // wavefront can make (degraded) progress instead of hanging.
        if (attempt < params_.maxRetries) {
            ++retries_;
            trace::emit(eventQueue(), trace::Flag::Os, name().c_str(),
                        "atsRetry", curTick(), 0, 0, vaddr);
            const Tick backoff = params_.retryBackoff << attempt;
            Callback again = std::move(cb);
            eventQueue().scheduleLambda(
                [this, asid, vaddr, need_write, attempt,
                 again = std::move(again)]() mutable {
                    translateAttempt(asid, vaddr, need_write,
                                     std::move(again), attempt + 1);
                },
                curTick() + backoff);
        } else {
            ++retriesExhausted_;
            fail(std::move(cb), clockEdge(1));
        }
        return true;
      }
      case fault::Kind::delay: {
        TlbEntry delayed = entry;
        Callback held = std::move(cb);
        eventQueue().scheduleLambda(
            [held = std::move(held), delayed]() mutable {
                held(true, delayed);
            },
            curTick() + fd.delay);
        return true;
      }
      case fault::Kind::duplicate:
        // The response arrives twice. Its side effects (TLB fill, BC
        // notification) are idempotent and simply happen again; the
        // requester consumes one delivery.
        l2Tlb_.insert(entry);
        if (borderControl_ != nullptr) {
            borderControl_->onTranslation(asid, entry.vpn, entry.ppn,
                                          entry.perms, entry.largePage);
        }
        return false;
      case fault::Kind::corruptPerms:
        // Permission bits flip in the copy handed to the requester.
        // Border Control has already been notified with the true
        // perms, so under a BC config the upgraded access still dies
        // at the border; the engine records the frames the corruption
        // pretends to grant so DRAM can audit what escapes.
        if (!entry.perms.write) {
            const unsigned pages =
                entry.largePage ? pagesPerLargePage : 1;
            for (unsigned i = 0; i < pages; ++i)
                fe->notePoisonedPage(entry.ppn + i);
        }
        entry.perms = Perms::readWrite();
        return false;
      case fault::Kind::stuckAt:
        // The response payload wedges at the first value delivered:
        // later responses carry the stale frame and perms under the
        // requested tag (so the address stays in physical bounds).
        if (stuckValid_) {
            entry.ppn = stuckEntry_.ppn;
            entry.perms = stuckEntry_.perms;
            entry.largePage = false;
        } else {
            stuckValid_ = true;
            stuckEntry_ = entry;
        }
        return false;
      default:
        return false;
    }
}

void
Ats::translateAttempt(Asid asid, Addr vaddr, bool need_write,
                      Callback cb, unsigned attempt)
{
    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::ats);

    ++translations_;
    const Tick start = acquireSlot();
    const Tick lookup_done =
        start + params_.l2TlbLatency * params_.clockPeriod;

    // The ATS checks that the ASID corresponds to a process running on
    // the accelerator (§3.2.2).
    if (kernel_ == nullptr || !kernel_->accelRunning(asid)) {
        fail(std::move(cb), lookup_done);
        return;
    }

    eventQueue().scheduleLambda(
        [this, asid, vaddr, need_write, attempt,
         cb = std::move(cb)]() mutable {
            const Addr vpn = pageNumber(vaddr);
            if (auto entry = l2Tlb_.lookup(asid, vpn)) {
                if (!need_write || entry->perms.write) {
                    // Even on an L2 TLB hit Border Control is notified:
                    // the Protection Table is updated on *every*
                    // accelerator request to the ATS (§3.1.1).
                    if (borderControl_ != nullptr) {
                        borderControl_->onTranslation(
                            asid, entry->vpn, entry->ppn, entry->perms,
                            entry->largePage);
                    }
                    // Injection point: the translation response
                    // crossing back to the requester.
                    TlbEntry delivered = *entry;
                    if (deliverFaulted(asid, vaddr, need_write, attempt,
                                       delivered, cb))
                        return;
                    cb(true, delivered);
                    return;
                }
                // Cached entry lacks write permission: re-walk; the PTE
                // may have been upgraded since.
            }
            startWalk(asid, vaddr, need_write, std::move(cb), false,
                      attempt);
        },
        lookup_done);
}

void
Ats::startWalk(Asid asid, Addr vaddr, bool need_write, Callback cb,
               bool after_fault, unsigned attempt)
{
    Process *proc = kernel_->findProcess(asid);
    if (proc == nullptr) {
        fail(std::move(cb), clockEdge(1));
        return;
    }

    ++walks_;
    auto state = std::make_shared<WalkState>();
    state->asid = asid;
    state->vaddr = vaddr;
    state->needWrite = need_write;
    state->afterFault = after_fault;
    state->attempt = attempt;
    state->result = proc->pageTable().walk(vaddr);
    state->cb = std::move(cb);

    // Issue the chain of dependent PTE reads through the trusted path;
    // each response triggers the next read, then walkDone.
    issueNextPte(state);
}

void
Ats::issueNextPte(const std::shared_ptr<void> &opaque)
{
    auto state = std::static_pointer_cast<WalkState>(opaque);
    if (state->next >= state->result.pteAddrs.size()) {
        walkDone(opaque);
        return;
    }
    const Addr pte_addr = state->result.pteAddrs[state->next++];
    auto pkt =
        allocPacket(pool_, MemCmd::Read, pte_addr, 8, Requestor::trustedHw);
    pkt->issuedAt = curTick();
    pkt->onResponse = [this, opaque](Packet &) { issueNextPte(opaque); };
    walkPath_.access(pkt);
}

void
Ats::walkDone(const std::shared_ptr<void> &opaque)
{
    auto state = std::static_pointer_cast<WalkState>(opaque);
    const WalkResult &r = state->result;
    const bool ok =
        r.valid && (state->needWrite ? r.perms.write : r.perms.read);

    if (ok) {
        finishTranslation(state->asid, state->vaddr, r, curTick(),
                          std::move(state->cb), state->attempt,
                          state->needWrite);
        return;
    }

    if (!state->afterFault &&
        kernel_->handlePageFault(state->asid, state->vaddr,
                                 state->needWrite)) {
        ++faultsServiced_;
        // Charge the OS fault-service latency, then re-walk with the
        // now-installed mapping.
        Asid asid = state->asid;
        Addr vaddr = state->vaddr;
        bool need_write = state->needWrite;
        unsigned attempt = state->attempt;
        Callback cb = std::move(state->cb);
        eventQueue().scheduleLambda(
            [this, asid, vaddr, need_write, attempt,
             cb = std::move(cb)]() mutable {
                startWalk(asid, vaddr, need_write, std::move(cb), true,
                          attempt);
            },
            curTick() + kernel_->pageFaultLatency());
        return;
    }

    fail(std::move(state->cb), clockEdge(1));
}

void
Ats::finishTranslation(Asid asid, Addr vaddr, const WalkResult &result,
                       Tick when, Callback cb, unsigned attempt,
                       bool need_write)
{
    TlbEntry entry;
    entry.asid = asid;
    entry.largePage = result.largePage;
    if (result.largePage) {
        entry.vpn = pageNumber(vaddr) & ~(pagesPerLargePage - 1);
        entry.ppn = pageNumber(result.paddr) & ~(pagesPerLargePage - 1);
    } else {
        entry.vpn = pageNumber(vaddr);
        entry.ppn = pageNumber(result.paddr);
    }
    entry.perms = result.perms;

    l2Tlb_.insert(entry);
    if (borderControl_ != nullptr) {
        borderControl_->onTranslation(asid, entry.vpn, entry.ppn,
                                      entry.perms, entry.largePage);
    }
    // Injection point: the walk-completed response crossing back to
    // the requester. The trusted structures above already hold the
    // true translation; only the delivered copy can be perturbed.
    if (deliverFaulted(asid, vaddr, need_write, attempt, entry, cb))
        return;
    eventQueue().scheduleLambda(
        [cb = std::move(cb), entry]() { cb(true, entry); }, when);
}

void
Ats::invalidatePage(Asid asid, Addr vpn)
{
    l2Tlb_.invalidatePage(asid, vpn);
}

void
Ats::invalidateAsid(Asid asid)
{
    l2Tlb_.invalidateAsid(asid);
}

void
Ats::invalidateAll()
{
    l2Tlb_.invalidateAll();
}

} // namespace bctrl
