#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace bctrl {

PageTable::PageTable(BackingStore &store, FrameAllocator &alloc)
    : store_(store), alloc_(alloc)
{
    root_ = alloc_.allocFrame();
    ownedFrames_.push_back(root_);
}

PageTable::~PageTable()
{
    for (Addr frame : ownedFrames_)
        alloc_.freeFrame(frame);
}

Addr
PageTable::pteSlot(Addr vaddr, bool create, unsigned stop_level)
{
    Addr table = root_;
    for (unsigned level = 0;; ++level) {
        Addr slot = table + 8ULL * indexAt(vaddr, level);
        if (level == stop_level)
            return slot;
        std::uint64_t pte = store_.read64(slot);
        if (!(pte & pteValid)) {
            if (!create)
                return 0;
            Addr frame = alloc_.allocFrame();
            ownedFrames_.push_back(frame);
            store_.write64(slot, (frame & pteAddrMask) | pteValid);
            table = frame;
        } else {
            panic_if(pte & pteLarge,
                     "walking through a large-page PTE at level %u",
                     level);
            table = pte & pteAddrMask;
        }
    }
}

void
PageTable::map(Addr vaddr, Addr paddr, Perms perms)
{
    panic_if(pageOffset(paddr) != 0, "mapping unaligned frame 0x%llx",
             (unsigned long long)paddr);
    Addr slot = pteSlot(vaddr, true, levels - 1);
    std::uint64_t old = store_.read64(slot);
    if (!(old & pteValid))
        ++mappedPages_;
    std::uint64_t pte = (paddr & pteAddrMask) | pteValid;
    if (perms.read)
        pte |= pteRead;
    if (perms.write)
        pte |= pteWrite;
    store_.write64(slot, pte);
}

void
PageTable::mapLarge(Addr vaddr, Addr paddr, Perms perms)
{
    panic_if((vaddr & (largePageSize - 1)) != 0 ||
                 (paddr & (largePageSize - 1)) != 0,
             "mapLarge with unaligned addresses");
    Addr slot = pteSlot(vaddr, true, levels - 2);
    std::uint64_t old = store_.read64(slot);
    if (!(old & pteValid))
        mappedPages_ += pagesPerLargePage;
    std::uint64_t pte = (paddr & pteAddrMask) | pteValid | pteLarge;
    if (perms.read)
        pte |= pteRead;
    if (perms.write)
        pte |= pteWrite;
    store_.write64(slot, pte);
}

void
PageTable::unmap(Addr vaddr)
{
    Addr slot = pteSlot(vaddr, false, levels - 1);
    if (slot == 0)
        return;
    std::uint64_t pte = store_.read64(slot);
    if (pte & pteValid)
        --mappedPages_;
    store_.write64(slot, 0);
}

Perms
PageTable::protect(Addr vaddr, Perms perms)
{
    WalkResult before = walk(vaddr);
    panic_if(!before.valid, "protect() of unmapped vaddr 0x%llx",
             (unsigned long long)vaddr);
    unsigned stop = before.largePage ? levels - 2 : levels - 1;
    Addr slot = pteSlot(vaddr, false, stop);
    std::uint64_t pte = store_.read64(slot);
    pte &= ~(pteRead | pteWrite);
    if (perms.read)
        pte |= pteRead;
    if (perms.write)
        pte |= pteWrite;
    store_.write64(slot, pte);
    return before.perms;
}

WalkResult
PageTable::walk(Addr vaddr) const
{
    WalkResult res;
    Addr table = root_;
    for (unsigned level = 0; level < levels; ++level) {
        Addr slot = table + 8ULL * indexAt(vaddr, level);
        res.pteAddrs.push_back(slot);
        std::uint64_t pte = store_.read64(slot);
        if (!(pte & pteValid))
            return res;
        if (level == levels - 1) {
            res.valid = true;
            res.paddr = (pte & pteAddrMask) | pageOffset(vaddr);
            res.perms = Perms{(pte & pteRead) != 0, (pte & pteWrite) != 0};
            return res;
        }
        if (pte & pteLarge) {
            panic_if(level != levels - 2,
                     "large-page PTE at unexpected level %u", level);
            res.valid = true;
            res.largePage = true;
            res.paddr =
                (pte & pteAddrMask) | (vaddr & (largePageSize - 1));
            res.perms = Perms{(pte & pteRead) != 0, (pte & pteWrite) != 0};
            return res;
        }
        table = pte & pteAddrMask;
    }
    return res;
}

} // namespace bctrl
