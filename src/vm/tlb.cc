#include "vm/tlb.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace bctrl {

Tlb::Tlb(EventQueue &eq, const std::string &name, const Params &params)
    : SimObject(eq, name),
      params_(params),
      hits_(statGroup().scalar("hits", "TLB hits")),
      misses_(statGroup().scalar("misses", "TLB misses")),
      insertions_(statGroup().scalar("insertions", "TLB fills")),
      invalidations_(statGroup().scalar("invalidations",
                                        "entries invalidated"))
{
    panic_if(params_.entries == 0, "TLB with zero entries");
    assoc_ = params_.assoc == 0 ? params_.entries : params_.assoc;
    panic_if(params_.entries % assoc_ != 0,
             "TLB entries (%u) not divisible by associativity (%u)",
             params_.entries, assoc_);
    numSets_ = params_.entries / assoc_;
    slots_.resize(params_.entries);
}

unsigned
Tlb::setIndex(Addr vpn) const
{
    // Large pages are indexed by their base VPN so that a single entry
    // covers the whole range; lookups for any covered VPN therefore
    // also probe the large page's home set (see lookup()).
    return static_cast<unsigned>(vpn % numSets_);
}

bool
Tlb::covers(const Slot &slot, Asid asid, Addr vpn)
{
    if (!slot.valid || slot.entry.asid != asid)
        return false;
    if (!slot.entry.largePage)
        return slot.entry.vpn == vpn;
    Addr base = slot.entry.vpn & ~(pagesPerLargePage - 1);
    return vpn >= base && vpn < base + pagesPerLargePage;
}

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Addr vpn)
{
    // Probe the natural set, then (for large pages) the set of the
    // 2 MB-aligned base VPN.
    const Addr large_base = vpn & ~(pagesPerLargePage - 1);
    for (Addr probe_vpn : {vpn, large_base}) {
        unsigned set = setIndex(probe_vpn);
        for (unsigned way = 0; way < assoc_; ++way) {
            Slot &slot = slots_[set * assoc_ + way];
            if (covers(slot, asid, vpn)) {
                slot.lastUse = ++useCounter_;
                ++hits_;
                trace::emit(eventQueue(), trace::Flag::TLB,
                            name().c_str(), "hit", curTick(), 0, 0,
                            vpn * pageSize);
                return slot.entry;
            }
        }
        if (probe_vpn == large_base)
            break; // both probes identical when vpn is already aligned
    }
    ++misses_;
    trace::emit(eventQueue(), trace::Flag::TLB, name().c_str(), "miss",
                curTick(), 0, 0, vpn * pageSize);
    return std::nullopt;
}

std::optional<TlbEntry>
Tlb::probe(Asid asid, Addr vpn) const
{
    const Addr large_base = vpn & ~(pagesPerLargePage - 1);
    for (Addr probe_vpn : {vpn, large_base}) {
        unsigned set = setIndex(probe_vpn);
        for (unsigned way = 0; way < assoc_; ++way) {
            const Slot &slot = slots_[set * assoc_ + way];
            if (covers(slot, asid, vpn))
                return slot.entry;
        }
        if (probe_vpn == large_base)
            break;
    }
    return std::nullopt;
}

void
Tlb::insert(const TlbEntry &entry)
{
    Addr home_vpn = entry.largePage
                        ? (entry.vpn & ~(pagesPerLargePage - 1))
                        : entry.vpn;
    unsigned set = setIndex(home_vpn);
    Slot *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        Slot &slot = slots_[set * assoc_ + way];
        if (covers(slot, entry.asid, entry.vpn)) {
            victim = &slot; // refresh in place
            break;
        }
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
        } else if (!victim ||
                   (victim->valid && slot.lastUse < victim->lastUse)) {
            victim = &slot;
        }
    }
    victim->valid = true;
    victim->entry = entry;
    if (victim->entry.largePage)
        victim->entry.vpn = home_vpn;
    victim->lastUse = ++useCounter_;
    ++insertions_;
}

void
Tlb::invalidatePage(Asid asid, Addr vpn)
{
    for (Slot &slot : slots_) {
        if (covers(slot, asid, vpn)) {
            slot.valid = false;
            ++invalidations_;
        }
    }
}

void
Tlb::invalidateAsid(Asid asid)
{
    for (Slot &slot : slots_) {
        if (slot.valid && slot.entry.asid == asid) {
            slot.valid = false;
            ++invalidations_;
        }
    }
}

void
Tlb::invalidateAll()
{
    for (Slot &slot : slots_) {
        if (slot.valid) {
            slot.valid = false;
            ++invalidations_;
        }
    }
}

} // namespace bctrl
