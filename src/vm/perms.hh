/**
 * @file
 * Page access permissions, as stored in process page tables, TLBs, and
 * Border Control's Protection Table (which keeps exactly these two bits
 * per physical page — execute permission is deliberately absent, see
 * paper §3.1.1).
 */

#ifndef BCTRL_VM_PERMS_HH
#define BCTRL_VM_PERMS_HH

#include <cstdint>

namespace bctrl {

struct Perms {
    bool read = false;
    bool write = false;

    constexpr bool any() const { return read || write; }
    constexpr bool none() const { return !read && !write; }

    /** True if these permissions include everything @p need needs. */
    constexpr bool
    covers(Perms need) const
    {
        return (!need.read || read) && (!need.write || write);
    }

    /** Union of two permission sets (multiprocess accelerators, §3.3). */
    constexpr Perms
    operator|(Perms other) const
    {
        return Perms{read || other.read, write || other.write};
    }

    constexpr bool
    operator==(const Perms &other) const
    {
        return read == other.read && write == other.write;
    }

    /** Pack to the Protection Table's 2-bit encoding (bit0=R, bit1=W). */
    constexpr std::uint8_t
    toBits() const
    {
        return static_cast<std::uint8_t>((read ? 1 : 0) |
                                         (write ? 2 : 0));
    }

    static constexpr Perms
    fromBits(std::uint8_t bits)
    {
        return Perms{(bits & 1) != 0, (bits & 2) != 0};
    }

    static constexpr Perms readOnly() { return Perms{true, false}; }
    static constexpr Perms readWrite() { return Perms{true, true}; }
    static constexpr Perms noAccess() { return Perms{false, false}; }
};

} // namespace bctrl

#endif // BCTRL_VM_PERMS_HH
