/**
 * @file
 * A four-level radix page table resident in simulated physical memory.
 *
 * The layout mirrors x86-64: 9 index bits per level over 4 KB pages,
 * with 2 MB large pages expressible one level up. Because the table
 * lives in the BackingStore, page walks performed by the ATS cost real
 * simulated memory accesses, and tests can corrupt or inspect PTEs the
 * way a buggy agent would see them.
 */

#ifndef BCTRL_VM_PAGE_TABLE_HH
#define BCTRL_VM_PAGE_TABLE_HH

#include <vector>

#include "mem/backing_store.hh"
#include "vm/perms.hh"

namespace bctrl {

/** Allocates 4 KB physical frames for page-table nodes and data pages. */
class FrameAllocator
{
  public:
    virtual ~FrameAllocator() = default;
    /** @return the physical address of a zeroed 4 KB frame. */
    virtual Addr allocFrame() = 0;
    /** Return a frame to the pool. */
    virtual void freeFrame(Addr paddr) = 0;
};

/** Outcome of a page-table walk. */
struct WalkResult {
    bool valid = false;
    Addr paddr = 0;     ///< translated physical address
    Perms perms;        ///< page permissions
    bool largePage = false;
    /** Physical addresses of every PTE read, for timing/traffic. */
    std::vector<Addr> pteAddrs;
};

class PageTable
{
  public:
    static constexpr unsigned levels = 4;
    static constexpr unsigned bitsPerLevel = 9;
    static constexpr std::uint64_t pteValid = 1ULL << 0;
    static constexpr std::uint64_t pteRead = 1ULL << 1;
    static constexpr std::uint64_t pteWrite = 1ULL << 2;
    static constexpr std::uint64_t pteLarge = 1ULL << 3;
    static constexpr std::uint64_t pteAddrMask = ~0xfffULL;

    PageTable(BackingStore &store, FrameAllocator &alloc);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Physical address of the root table (what a CR3 would hold). */
    Addr root() const { return root_; }

    /** Map the 4 KB page containing @p vaddr to frame @p paddr. */
    void map(Addr vaddr, Addr paddr, Perms perms);

    /** Map a 2 MB large page (both addresses 2 MB aligned). */
    void mapLarge(Addr vaddr, Addr paddr, Perms perms);

    /** Remove the mapping for the page containing @p vaddr. */
    void unmap(Addr vaddr);

    /**
     * Change the permissions of an existing mapping.
     * @return the previous permissions.
     */
    Perms protect(Addr vaddr, Perms perms);

    /** Walk the table for @p vaddr, recording every PTE touched. */
    WalkResult walk(Addr vaddr) const;

    /** Functional translate; invalid result if unmapped. */
    WalkResult translate(Addr vaddr) const { return walk(vaddr); }

    /** Number of leaf mappings currently installed. */
    std::uint64_t mappedPages() const { return mappedPages_; }

  private:
    static unsigned
    indexAt(Addr vaddr, unsigned level)
    {
        // level 0 is the root; leaf indices come from the lowest 9 bits
        // group just above the page offset.
        unsigned shift =
            pageShift + bitsPerLevel * (levels - 1 - level);
        return static_cast<unsigned>((vaddr >> shift) & 0x1ff);
    }

    /**
     * Find (optionally creating) the leaf PTE slot for @p vaddr.
     * @param stop_level levels-1 for 4 KB leaves, levels-2 for 2 MB.
     * @return physical address of the PTE slot, or 0 if absent and
     *         @p create is false.
     */
    Addr pteSlot(Addr vaddr, bool create, unsigned stop_level);

    BackingStore &store_;
    FrameAllocator &alloc_;
    Addr root_;
    std::vector<Addr> ownedFrames_;
    std::uint64_t mappedPages_ = 0;
};

} // namespace bctrl

#endif // BCTRL_VM_PAGE_TABLE_HH
