/**
 * @file
 * A set-associative, ASID-tagged TLB with LRU replacement.
 *
 * Used for the accelerator's per-CU L1 TLBs and the trusted shared L2
 * TLB inside the ATS/IOMMU. Supports the shootdown operations the OS
 * model needs: single-page invalidation, per-ASID flush, and full
 * flush. Large (2 MB) pages occupy one entry and match any 4 KB page
 * they cover.
 */

#ifndef BCTRL_VM_TLB_HH
#define BCTRL_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "sim/sim_object.hh"
#include "vm/perms.hh"

namespace bctrl {

struct TlbEntry {
    Asid asid = 0;
    Addr vpn = 0;  ///< virtual page number (4 KB granularity)
    Addr ppn = 0;  ///< physical page number
    Perms perms;
    bool largePage = false;
};

class Tlb : public SimObject
{
  public:
    struct Params {
        unsigned entries = 64;
        unsigned assoc = 0; ///< 0 means fully associative
    };

    Tlb(EventQueue &eq, const std::string &name, const Params &params);

    /**
     * Look up the translation for @p vpn in address space @p asid.
     * Updates LRU and hit/miss statistics.
     */
    std::optional<TlbEntry> lookup(Asid asid, Addr vpn);

    /** Probe without touching LRU or statistics (for tests). */
    std::optional<TlbEntry> probe(Asid asid, Addr vpn) const;

    /** Insert a translation, evicting the set's LRU entry if needed. */
    void insert(const TlbEntry &entry);

    /** Invalidate the entry covering (@p asid, @p vpn), if present. */
    void invalidatePage(Asid asid, Addr vpn);

    /** Invalidate every entry belonging to @p asid. */
    void invalidateAsid(Asid asid);

    /** Invalidate everything. */
    void invalidateAll();

    unsigned numEntries() const { return params_.entries; }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }

  private:
    struct Slot {
        bool valid = false;
        TlbEntry entry;
        std::uint64_t lastUse = 0;
    };

    /** Index of the set @p vpn maps to. */
    unsigned setIndex(Addr vpn) const;

    /** True if @p slot covers (@p asid, @p vpn). */
    static bool covers(const Slot &slot, Asid asid, Addr vpn);

    Params params_;
    unsigned numSets_;
    unsigned assoc_;
    std::vector<Slot> slots_;
    std::uint64_t useCounter_ = 0;

    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &insertions_;
    stats::Scalar &invalidations_;
};

} // namespace bctrl

#endif // BCTRL_VM_TLB_HH
