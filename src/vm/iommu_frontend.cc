#include "vm/iommu_frontend.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bctrl {

IommuFrontend::IommuFrontend(EventQueue &eq, const std::string &name,
                             const Params &params, Ats &ats,
                             MemDevice &downstream)
    : SimObject(eq, name),
      params_(params),
      ats_(ats),
      downstream_(downstream),
      requests_(statGroup().scalar("requests",
                                   "requests translated and checked")),
      denials_(statGroup().scalar("denials",
                                  "requests denied at the IOMMU")),
      ownTlbHits_(statGroup().scalar("ownTlbHits",
                                     "hits in the unit's own TLB"))
{
    panic_if(params_.clockPeriod == 0, "IOMMU front-end clock is zero");
    panic_if(params_.requestsPerCycle == 0,
             "IOMMU front end must accept at least one request/cycle");
    if (params_.ownTlb) {
        ownTlb_ = std::make_unique<Tlb>(eq, name + ".tlb", params_.tlb);
        statGroup().addChild(&ownTlb_->statGroup());
    }
}

Tick
IommuFrontend::acquireSlot()
{
    const Tick slot_time = std::max<Tick>(
        1, params_.clockPeriod / params_.requestsPerCycle);
    Tick now = curTick();
    Tick start = std::max(now, slotBusyUntil_);
    slotBusyUntil_ = start + slot_time;
    return start;
}

void
IommuFrontend::finish(const PacketPtr &pkt, bool ok,
                      const TlbEntry &entry)
{
    const Perms need{pkt->isRead(), pkt->isWrite()};
    if (!ok || !entry.perms.covers(need)) {
        ++denials_;
        pkt->denied = true;
        respondAt(eventQueue(), pkt, curTick());
        if (violationHandler_)
            violationHandler_(*pkt);
        return;
    }
    const Addr vpn_offset = pageNumber(pkt->vaddr) - entry.vpn;
    pkt->paddr = pageBase(entry.ppn + vpn_offset) |
                 pageOffset(pkt->vaddr);
    pkt->isVirtual = false;
    downstream_.access(pkt);
}

void
IommuFrontend::access(const PacketPtr &pkt)
{
    panic_if(!pkt->isVirtual,
             "IOMMU front end received a pre-translated packet %s",
             pkt->toString().c_str());
    ++requests_;

    const Tick start = acquireSlot() + params_.frontLatency;

    PacketPtr held = pkt;
    eventQueue().scheduleLambda(
        [this, held]() {
            if (ownTlb_) {
                const Addr vpn = pageNumber(held->vaddr);
                if (auto entry = ownTlb_->lookup(held->asid, vpn)) {
                    ++ownTlbHits_;
                    TlbEntry e = *entry;
                    eventQueue().scheduleLambda(
                        [this, held, e]() { finish(held, true, e); },
                        curTick() +
                            params_.tlbLatency * params_.clockPeriod);
                    return;
                }
            }
            ats_.translate(held->asid, held->vaddr, held->isWrite(),
                           [this, held](bool ok, const TlbEntry &entry) {
                               if (ok && ownTlb_)
                                   ownTlb_->insert(entry);
                               finish(held, ok, entry);
                           });
        },
        start);
}

void
IommuFrontend::invalidatePage(Asid asid, Addr vpn)
{
    if (ownTlb_)
        ownTlb_->invalidatePage(asid, vpn);
}

void
IommuFrontend::invalidateAsid(Asid asid)
{
    if (ownTlb_)
        ownTlb_->invalidateAsid(asid);
}

} // namespace bctrl
