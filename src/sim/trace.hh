/**
 * @file
 * Runtime-gated request-lifecycle tracing, in the gem5 DPRINTF spirit.
 *
 * Components emit timestamped records under a per-component trace flag
 * (BCC, ProtTable, Coherence, TLB, DRAM, Cache, PacketLife); records
 * carry the packet's pool-assigned trace id so one request's
 * L1→L2→BC→BCC/PT→DRAM journey can be correlated across components.
 * The sink renders either human-readable text or Chrome-trace JSON
 * (the `{"traceEvents": [...]}` format Perfetto and chrome://tracing
 * load directly).
 *
 * Cost model: tracing is always compiled in but runtime-off by
 * default. The off path is a single branch — the EventQueue holds a
 * Tracer pointer that is null unless the System was configured with a
 * nonzero traceMask, and trace::emit() returns immediately on null.
 * Recording never mutates simulated state, so enabling tracing is
 * bit-identical on every RunResult (enforced by the TraceOverhead
 * tests and the perf_trace_overhead ctest).
 */

#ifndef BCTRL_SIM_TRACE_HH
#define BCTRL_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace bctrl {
namespace trace {

/** One bit per traceable subsystem; a Tracer's mask selects a set. */
enum class Flag : std::uint32_t {
    BCC = 1u << 0,        ///< Border Control Cache hits/misses/denials
    ProtTable = 1u << 1,  ///< Protection Table walks, inserts, downgrades
    Coherence = 1u << 2,  ///< coherence-point requests and recalls
    TLB = 1u << 3,        ///< TLB hits and misses
    DRAM = 1u << 4,       ///< DRAM channel occupancy
    Cache = 1u << 5,      ///< cache hits, misses, and fills
    PacketLife = 1u << 6, ///< packet issue/retire lifecycle markers
    Os = 1u << 7,         ///< kernel violation handling and recovery
};

constexpr std::uint32_t allFlags = (1u << 8) - 1;

/** Short stable name of one flag ("BCC", "ProtTable", ...). */
const char *flagName(Flag flag);

/**
 * Parse a comma-separated flag list ("BCC,ProtTable" or "all") into a
 * mask. @return false (and an explanation in @p err, if non-null) on
 * an unknown flag name.
 */
bool parseFlags(const std::string &list, std::uint32_t &mask,
                std::string *err = nullptr);

/**
 * One trace record. The component and event strings are borrowed, not
 * owned: `component` is a SimObject's name().c_str() (stable for the
 * System's lifetime) and `event` is a string literal. Records must
 * therefore be written out before the System that produced them is
 * destroyed.
 */
struct Record {
    Tick start = 0;      ///< tick the traced action began
    Tick duration = 0;   ///< ticks it spans (0 = instantaneous marker)
    Flag flag{};         ///< the flag it was recorded under
    const char *component = nullptr; ///< emitting SimObject's name
    const char *event = nullptr;     ///< event label (string literal)
    std::uint64_t packetId = 0;      ///< pool trace id; 0 = no packet
    Addr addr = 0;                   ///< address involved, if any
};

/**
 * The per-System trace sink. Owned by the System; components reach it
 * through the EventQueue's tracer pointer (null when tracing is off).
 */
class Tracer
{
  public:
    explicit Tracer(std::uint32_t mask) : mask_(mask)
    {
        records_.reserve(initialCapacity);
    }

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    std::uint32_t mask() const { return mask_; }

    bool
    enabled(Flag flag) const
    {
        return (mask_ & static_cast<std::uint32_t>(flag)) != 0;
    }

    /** Append a record if @p flag is enabled in the mask. */
    void
    record(Flag flag, const char *component, const char *event,
           Tick start, Tick duration = 0, std::uint64_t packet_id = 0,
           Addr addr = 0)
    {
        if (!enabled(flag))
            return;
        records_.push_back(Record{start, duration, flag, component,
                                  event, packet_id, addr});
    }

    const std::vector<Record> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** One line per record, for eyeballing and text diffing. */
    void writeText(std::ostream &os) const;

    /**
     * A complete Chrome-trace document: {"traceEvents": [...]}. Loads
     * in Perfetto (ui.perfetto.dev) and chrome://tracing. Ticks are
     * picoseconds; trace timestamps are microseconds.
     */
    void writeChromeTrace(std::ostream &os, int pid = 1,
                          const std::string &process_name = "bctrl") const;

    /**
     * Only the comma-separated event objects (no surrounding
     * brackets), so a multi-run driver can merge several runs into one
     * document with a distinct pid per run. Always emits at least the
     * process_name metadata event, so the fragment is never empty.
     */
    void writeChromeTraceEvents(std::ostream &os, int pid,
                                const std::string &process_name) const;

  private:
    static constexpr std::size_t initialCapacity = 1024;

    std::uint32_t mask_;
    std::vector<Record> records_;
};

/**
 * Component-side emit helper. The off path — no tracer configured —
 * costs exactly one pointer load and branch; the mask test only runs
 * once a tracer exists.
 */
inline void
emit(EventQueue &eq, Flag flag, const char *component, const char *event,
     Tick start, Tick duration = 0, std::uint64_t packet_id = 0,
     Addr addr = 0)
{
    Tracer *tracer = eq.tracer();
    if (tracer == nullptr)
        return;
    tracer->record(flag, component, event, start, duration, packet_id,
                   addr);
}

} // namespace trace
} // namespace bctrl

#endif // BCTRL_SIM_TRACE_HH
