/**
 * @file
 * Domain-sharded parallel event loop (windowed conservative PDES).
 *
 * Components are partitioned into Domain shards (GPU cluster, border
 * host, DRAM), each with its own EventQueue bound to its own worker
 * thread. Every cross-domain interaction is an asynchronous message
 * carrying at least the configured cross-domain latency L (the
 * lookahead), posted through SPSC mailboxes instead of touching a
 * foreign ladder directly — the simulated machine's own interconnect
 * latencies, made load-bearing.
 *
 * The coordinator runs the classic conservative window protocol
 * (YAWNS/CMB-style): each round it computes the global minimum head
 * tick m over all shards, then releases every shard whose head lies
 * below the uniform bound m + L to execute freely up to (strictly
 * below) that bound. Any message a shard posts during the window
 * fires at or after its current tick plus L >= m + L, i.e. at or
 * beyond the bound — so no shard can ever receive a message for a
 * tick it has already passed, and mailboxes only need draining once
 * per window, at the barrier, by the coordinator. One synchronization
 * round therefore covers thousands of events instead of one.
 *
 * Determinism: order keys are stamped from per-sender-domain counters
 * (see EventQueue::Entry), so a shard executes exactly the same
 * events with exactly the same keys in the same per-domain order as
 * the serial-group oracle; only the host interleaving across domains
 * differs, and no simulated state is shared across domains except by
 * message. The serial ladder path stays bit-identical and is checked
 * by `bctrl_sweep --compare-serial`. DESIGN.md §14 has the proof
 * sketch.
 *
 * Handoffs are sequence-numbered atomic spins (release/acquire), not
 * mutex/condvar: a window barrier costs microseconds of wakeup under
 * a condvar, which at 20M+ events/s would dominate. Workers back off
 * to yield/sleep when idle between runs.
 */

#ifndef BCTRL_SIM_PARALLEL_LOOP_HH
#define BCTRL_SIM_PARALLEL_LOOP_HH

#include <atomic>
#include <cstdint>
#include <thread>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace bctrl {

class HostProfiler;

/**
 * Coordinator for one shard group. Construct with the three domain
 * queues immediately after they exist (before any component schedules
 * into them); worker threads start lazily on the first run().
 */
class ParallelLoop
{
  public:
    /**
     * Form the shard group. All three queues must be empty.
     * @param lookahead the minimum cross-domain latency L in ticks
     *        (must be > 0; every cross-domain schedule must carry at
     *        least this much, which EventQueue asserts).
     */
    ParallelLoop(EventQueue &border, EventQueue &gpu, EventQueue &dram,
                 Tick lookahead);
    ~ParallelLoop();

    ParallelLoop(const ParallelLoop &) = delete;
    ParallelLoop &operator=(const ParallelLoop &) = delete;

    /**
     * Run until every shard drains (or a stop is requested).
     * Mirrors EventQueue::run(tickNever) observable behavior; on
     * return every shard's clock is re-synchronized to the global
     * maximum, matching the serial oracle's final tick.
     * @return the final global tick.
     */
    Tick run();

    /** The conservative window width L in ticks. */
    Tick lookahead() const { return lookahead_; }

    /** Worker releases issued since construction (shards granted a
     * window; at most numDomains per window). */
    std::uint64_t grants() const { return grants_; }

    /** Synchronization rounds (windows) since construction. */
    std::uint64_t windows() const { return windows_; }

    /** Events executed inside grants, per domain shard. */
    std::uint64_t
    executedIn(Domain d) const
    {
        return workers_[static_cast<std::size_t>(d)].executed;
    }

    /** Wall nanoseconds the coordinator spent in serialized window
     * work: draining mailboxes and scanning shard heads. */
    std::uint64_t coordinatorSyncNanos() const { return syncNanos_; }

    /** Wall nanoseconds the coordinator spent stalled waiting for
     * released workers to reach the window barrier. */
    std::uint64_t coordinatorStallNanos() const { return stallNanos_; }

    /**
     * Attach the host profiler (coordinator thread only; worker
     * threads never touch it). run() charges its whole duration to
     * the eventLoop slot — the events/s denominator — and the
     * serialized barrier work to the coordinator slot.
     */
    void setProfiler(HostProfiler *profiler) { profiler_ = profiler; }

  private:
    /**
     * Per-shard worker handoff block. go/done are sequence numbers:
     * the coordinator publishes bound and bumps go (release); the
     * worker spins on go (acquire), runs its window, and echoes the
     * sequence into done (release), which the coordinator awaits
     * (acquire). All shard state crosses threads through this pair,
     * so the group is race-free by construction (TSan-checked).
     */
    struct alignas(64) Worker {
        std::thread thread;
        std::atomic<std::uint64_t> go{0};
        std::atomic<std::uint64_t> done{0};
        std::atomic<bool> quit{false};
        /** Window bound; written before the go release-store. */
        Tick bound = 0;
        /** Events executed; read after the done acquire-load. */
        std::uint64_t executed = 0;
    };

    void ensureThreads();
    void workerMain(std::size_t idx);

    EventQueue *queues_[numDomains];
    Worker workers_[numDomains];
    Tick lookahead_;
    bool threadsStarted_ = false;
    std::uint64_t grants_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t syncNanos_ = 0;
    std::uint64_t stallNanos_ = 0;
    HostProfiler *profiler_ = nullptr;
};

} // namespace bctrl

#endif // BCTRL_SIM_PARALLEL_LOOP_HH
