/**
 * @file
 * Domain-sharded parallel event loop (conservative PDES coordinator).
 *
 * Components are partitioned into Domain shards (GPU cluster, border
 * host, DRAM), each with its own EventQueue bound to its own worker
 * thread. The queues form a shard group: they share the primary's
 * global clock, sequence counter, and counters (see EventQueue), and
 * cross-domain schedules travel through SPSC mailboxes instead of
 * touching a foreign ladder directly.
 *
 * This implements the strict-order variant of conservative PDES: the
 * coordinator repeatedly grants the shard holding the globally minimal
 * (tick, priority, sequence) key the right to run, bounded by the
 * minimal head key of every other shard; a worker additionally stops
 * at the smallest key it cross-posted mid-grant, since that post may
 * be the true global next event. Because keys are unique, the events
 * execute in exactly the serial order, and — the counters being
 * delegated to the primary — every RunResult is bit-identical to the
 * serial loop's by induction over events.
 *
 * The strict bound means grants do not yet overlap in wall-time: the
 * effective lookahead between domains is zero because components make
 * synchronous same-tick cross-domain calls (a GPU L2 miss invokes the
 * bus and Border Control inline). DESIGN.md §14 spells out the
 * contract: overlap is unlocked per call site by converting those
 * synchronous calls to mailbox-scheduled events, which the bclint
 * rule `cross-domain-direct-call` inventories. The thread structure,
 * mailboxes, and determinism proof are exactly the ones the
 * overlapping schedule will use.
 */

#ifndef BCTRL_SIM_PARALLEL_LOOP_HH
#define BCTRL_SIM_PARALLEL_LOOP_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace bctrl {

/**
 * Coordinator for one shard group. Construct with the three domain
 * queues immediately after they exist (before any component schedules
 * into them); worker threads start lazily on the first run().
 */
class ParallelLoop
{
  public:
    /**
     * Form the shard group. @p border becomes the primary (global
     * clock and counter owner); all three queues must be empty.
     */
    ParallelLoop(EventQueue &border, EventQueue &gpu, EventQueue &dram);
    ~ParallelLoop();

    ParallelLoop(const ParallelLoop &) = delete;
    ParallelLoop &operator=(const ParallelLoop &) = delete;

    /**
     * Run until every shard drains (or the watchdog requests a stop).
     * Mirrors EventQueue::run(tickNever) observable behavior.
     * @return the final global tick.
     */
    Tick run();

    /** Grants issued since construction (one handoff round each). */
    std::uint64_t grants() const { return grants_; }

    /** Events executed inside grants, per domain shard. */
    std::uint64_t
    executedIn(Domain d) const
    {
        return workers_[static_cast<std::size_t>(d)].executed;
    }

  private:
    /**
     * Per-shard worker-thread handoff block. The mutex/condvar pair
     * sequences every coordinator->worker grant and worker->
     * coordinator completion, so at most one thread ever touches
     * simulated state at a time and the group is race-free by
     * construction (TSan-checkable, not just asserted).
     */
    struct Worker {
        enum class Cmd { none, go, quit };

        std::thread thread;
        std::mutex mutex;
        std::condition_variable cv;
        Cmd cmd = Cmd::none;
        bool done = false;
        EventQueue::OrderKey bound;
        std::uint64_t executed = 0;
    };

    void ensureThreads();
    void workerMain(std::size_t idx);

    /** Issue one grant to shard @p idx and wait for completion. */
    void grant(std::size_t idx, const EventQueue::OrderKey &bound);

    EventQueue *queues_[numDomains];
    Worker workers_[numDomains];
    bool threadsStarted_ = false;
    std::uint64_t grants_ = 0;
};

} // namespace bctrl

#endif // BCTRL_SIM_PARALLEL_LOOP_HH
