#include "sim/sweep.hh"

#include <atomic>
#include <chrono> // bclint:allow-file(nondeterminism) -- host-side wall-clock throughput measurement only; simulated results never read it
#include <sstream>
#include <thread>

#include "sim/logging.hh"

namespace bctrl {

SweepEngine::SweepEngine(SweepOptions options) : options_(options) {}

unsigned
SweepEngine::effectiveJobs() const
{
    if (options_.jobs != 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

SweepOutcome
SweepEngine::runPoint(const SweepPoint &point, std::size_t index,
                      bool capture_stats, bool capture_stats_json,
                      bool capture_sim_stats)
{
    SweepOutcome out;
    out.index = index;
    out.workload = point.workload;

    const auto host_start = std::chrono::steady_clock::now();

    System sys(point.config);
    if (point.prepare)
        point.prepare(sys, index);
    out.result = sys.run(point.workload);
    out.hostEvents = sys.eventQueue().eventsProcessed();
    if (capture_stats) {
        std::ostringstream os;
        sys.dumpStats(os);
        out.statsDump = os.str();
    }
    if (capture_stats_json) {
        std::ostringstream os;
        sys.dumpStatsJson(os);
        out.statsJson = os.str();
    }
    if (capture_sim_stats) {
        std::ostringstream os;
        sys.dumpSimStats(os);
        out.simStatsDump = os.str();
    }
    if (trace::Tracer *tracer = sys.tracer()) {
        // One Chrome-trace process per run: pid = index + 1, named so
        // Perfetto shows which point each lane set belongs to.
        std::ostringstream os;
        const std::string process_name =
            point.workload + " " +
            safetyModelName(point.config.safety) + " " +
            gpuProfileName(point.config.profile);
        tracer->writeChromeTraceEvents(
            os, static_cast<int>(index) + 1, process_name);
        out.traceJson = os.str();
    }
    if (HostProfiler *prof = sys.hostProfiler()) {
        out.profileSeconds.reserve(HostProfiler::numSlots);
        out.profileCalls.reserve(HostProfiler::numSlots);
        for (std::size_t s = 0; s < HostProfiler::numSlots; ++s) {
            const auto slot = static_cast<HostProfiler::Slot>(s);
            out.profileSeconds.push_back(prof->seconds(slot));
            out.profileCalls.push_back(prof->calls(slot));
        }
    }

    const std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;
    out.hostSeconds = host_elapsed.count();
    out.hostEventsPerSec =
        out.hostSeconds > 0
            ? static_cast<double>(out.hostEvents) / out.hostSeconds
            : 0.0;
    return out;
}

std::vector<SweepOutcome>
SweepEngine::run(const std::vector<SweepPoint> &points)
{
    std::vector<SweepOutcome> outcomes(points.size());
    if (points.empty())
        return outcomes;

    const unsigned jobs = static_cast<unsigned>(
        std::min<std::size_t>(effectiveJobs(), points.size()));

    if (jobs <= 1) {
        // Serial reference path: no threads at all, so a jobs=1 sweep
        // is usable even where std::thread is unavailable or under
        // close instrumentation.
        for (std::size_t i = 0; i < points.size(); ++i)
            outcomes[i] = runPoint(points[i], i, options_.captureStats,
                                   options_.captureStatsJson,
                                   options_.captureSimStats);
        return outcomes;
    }

    // Work-stealing by atomic counter: each worker claims the next
    // unstarted index and writes only its own outcome slot, so the
    // only shared mutable state is the counter itself.
    std::atomic<std::size_t> next{0};
    const bool capture = options_.captureStats;
    const bool capture_json = options_.captureStatsJson;
    const bool capture_sim = options_.captureSimStats;
    auto worker = [&points, &outcomes, &next, capture, capture_json,
                   capture_sim]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            outcomes[i] = runPoint(points[i], i, capture, capture_json,
                                   capture_sim);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
    return outcomes;
}

std::vector<SweepOutcome>
runSweep(const std::vector<SweepPoint> &points, SweepOptions options)
{
    return SweepEngine(options).run(points);
}

} // namespace bctrl
