#include "sim/contracts.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace bctrl {

void
contractFailure(const char *file, int line, const char *expr,
                const char *fmt, ...)
{
    std::fflush(stdout);
    std::fprintf(stderr, "contract violated: %s\n  at %s:%d\n", expr, file,
                 line);
    if (fmt != nullptr) {
        std::va_list args;
        va_start(args, fmt);
        std::fprintf(stderr, "  ");
        std::vfprintf(stderr, fmt, args);
        std::fprintf(stderr, "\n");
        va_end(args);
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace bctrl
