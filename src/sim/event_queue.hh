/**
 * @file
 * A global-order event queue for discrete-event simulation.
 *
 * Events are ordered by (tick, priority, insertion sequence); equal-tick
 * events therefore execute in a deterministic order, which keeps every
 * simulation reproducible for a given seed and configuration.
 */

#ifndef BCTRL_SIM_EVENT_QUEUE_HH
#define BCTRL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bctrl {

class EventQueue;
class HostProfiler;

namespace trace {
class Tracer;
} // namespace trace

namespace fault {
class FaultEngine;
class Watchdog;
} // namespace fault

/**
 * Inline capacity of queue-owned lambda callbacks. Sized for the
 * measured worst-case hot capture: the GPU TLB-hit issue path stores a
 * proceed closure (this + cu + WorkItem + std::function done) plus a
 * TlbEntry, ~120 bytes. Larger captures still work but heap-spill,
 * which lambdaSpills() counts and the allocation profile surfaces.
 */
constexpr std::size_t lambdaCallbackCapacity = 160;

/** The queue's callback type: no heap for captures that fit. */
using LambdaFn = InlineFunction<void(), lambdaCallbackCapacity>;

/**
 * Base class for all schedulable events.
 *
 * An Event is owned by whoever constructed it. The queue never deletes
 * events; descheduling is implemented by squashing so the heap does not
 * need random removal.
 */
class Event
{
  public:
    /** Events with lower priority values run first at equal ticks. */
    enum Priority : int {
        coherencePriority = -10,
        defaultPriority = 0,
        statsPriority = 10,
    };

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback executed when the event's tick is reached. */
    virtual void process() = 0;

    /** @return a short description for debugging. */
    virtual std::string name() const { return "event"; }

    /** @return true if this event is currently in a queue. */
    bool scheduled() const { return scheduled_; }

    /** @return the tick at which this event will fire (if scheduled). */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  protected:
    /**
     * Re-prioritize an event that is not currently scheduled (the
     * LambdaEvent pool recycles events across priorities).
     */
    void
    setPriority(int priority)
    {
        priority_ = priority;
    }

  private:
    friend class EventQueue;

    int priority_;
    bool scheduled_ = false;
    bool squashed_ = false;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
};

/**
 * An Event wrapping an inline callable, for one-off callbacks.
 *
 * Unlike plain Event the queue owns a LambdaEvent: after it fires (or
 * when a squashed instance is popped) the queue recycles it through a
 * free-list pool, so callers can schedule and forget without paying a
 * heap allocation per callback on the simulation's hottest path. The
 * callback itself is a fixed-capacity LambdaFn, so captures that fit
 * lambdaCallbackCapacity never touch the heap either.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(LambdaFn fn, int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }
    std::string name() const override { return "lambda-event"; }

  private:
    friend class EventQueue;

    /** Re-arm a pooled event with a new callback and priority. */
    void
    rearm(LambdaFn fn, int priority)
    {
        fn_ = std::move(fn);
        setPriority(priority);
    }

    /** Drop the callback (releases captured state while pooled). */
    void disarm() { fn_ = nullptr; }

    LambdaFn fn_;
};

/**
 * The discrete-event queue. One instance drives an entire simulated
 * system; components hold a reference to it.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue without executing it. */
    void deschedule(Event *ev);

    /** Move an already-scheduled event to a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callback owned by the queue.
     * @param fn callback to run
     * @param when absolute tick
     * @param priority intra-tick ordering
     */
    void scheduleLambda(LambdaFn fn, Tick when,
                        int priority = Event::defaultPriority);

    /** @return true if no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live (non-squashed) events. */
    std::uint64_t size() const { return liveEvents_; }

    /**
     * Run until the queue drains or @p maxTick passes.
     * @return the tick of the last event processed.
     */
    Tick run(Tick maxTick = tickNever);

    /**
     * Execute at most one event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Total events processed since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /**
     * LambdaEvents heap-allocated since construction. With the
     * free-list pool this stays near the peak number of in-flight
     * lambdas rather than growing with every scheduleLambda() call.
     */
    std::uint64_t lambdaAllocations() const { return lambdaAllocs_; }

    /** LambdaEvents currently parked in the free-list pool. */
    std::size_t lambdaPoolSize() const { return lambdaPool_.size(); }

    /**
     * Lambda callbacks whose capture exceeded lambdaCallbackCapacity
     * and spilled to the heap. Zero on the steady-state request path.
     */
    std::uint64_t lambdaSpills() const { return lambdaSpills_; }

    /**
     * @name Observability hooks
     * Both pointers are null unless the owning System enabled the
     * facility, so the disabled cost at every emit/profile site is a
     * single pointer-load-and-branch. Neither facility ever mutates
     * simulated state: enabling them is bit-identical on RunResults.
     */
    /// @{
    trace::Tracer *tracer() const { return tracer_; }
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }
    HostProfiler *profiler() const { return profiler_; }
    void setProfiler(HostProfiler *profiler) { profiler_ = profiler; }
    /// @}

    /**
     * @name Chaos hooks
     * Fault engine and watchdog follow the tracer contract: null
     * unless the System's FaultPlan is active, so every injection
     * site's disabled cost is one pointer-load-and-branch and the
     * zero-fault path is bit-identical.
     */
    /// @{
    fault::FaultEngine *faultEngine() const { return faultEngine_; }
    void setFaultEngine(fault::FaultEngine *engine)
    {
        faultEngine_ = engine;
    }
    fault::Watchdog *watchdog() const { return watchdog_; }
    void setWatchdog(fault::Watchdog *watchdog) { watchdog_ = watchdog; }

    /**
     * Forward-progress food for the watchdog: response delivery and
     * memory-op retirement call this unconditionally (a bare counter
     * increment; no simulated state is touched).
     */
    void noteProgress() { ++progressMarks_; }
    std::uint64_t progressMarks() const { return progressMarks_; }

    /**
     * Ask run() to return after the current event. Cleared on the next
     * run() entry; used by the watchdog to fail fast on a hang.
     */
    void requestStop() { stopRequested_ = true; }
    bool stopRequested() const { return stopRequested_; }
    /// @}

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
        bool ownedLambda;
    };

    struct EntryCompare {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    void push(Event *ev, Tick when, bool owned_lambda);

    /**
     * Pop and execute the next runnable event at or before @p maxTick,
     * discarding stale (squashed / superseded) entries along the way.
     * @return true if an event was executed.
     */
    bool serviceOne(Tick maxTick);

    /** Take a LambdaEvent from the pool (or allocate one) and arm it. */
    LambdaEvent *acquireLambda(LambdaFn fn, int priority);

    /** Return a fired or squashed queue-owned lambda to the pool. */
    void recycleLambda(Event *ev);

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t processed_ = 0;
    std::vector<LambdaEvent *> lambdaPool_;
    std::uint64_t lambdaAllocs_ = 0;
    std::uint64_t lambdaSpills_ = 0;
    trace::Tracer *tracer_ = nullptr;
    HostProfiler *profiler_ = nullptr;
    fault::FaultEngine *faultEngine_ = nullptr;
    fault::Watchdog *watchdog_ = nullptr;
    std::uint64_t progressMarks_ = 0;
    bool stopRequested_ = false;
};

/**
 * A component with its own clock domain, layered over the global
 * picosecond tick. Provides cycle<->tick conversion and cycle-aligned
 * scheduling helpers.
 */
class Clocked
{
  public:
    /**
     * @param eq the global event queue
     * @param period_ticks clock period in ticks (picoseconds)
     */
    Clocked(EventQueue &eq, Tick period_ticks)
        : eventq_(eq), period_(period_ticks)
    {
        panic_if(period_ == 0, "clock period must be nonzero");
    }

    Tick clockPeriod() const { return period_; }

    /** Current time, in this domain's cycles (rounded down). */
    Cycles curCycle() const { return eventq_.curTick() / period_; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** The next tick aligned to this clock edge at or after now. */
    Tick
    nextCycleTick() const
    {
        Tick now = eventq_.curTick();
        Tick rem = now % period_;
        return rem == 0 ? now : now + (period_ - rem);
    }

    /** Absolute tick @p cycles clock edges from now. */
    Tick
    clockEdge(Cycles cycles) const
    {
        return nextCycleTick() + cycles * period_;
    }

    EventQueue &eventQueue() const { return eventq_; }

  private:
    EventQueue &eventq_;
    Tick period_;
};

} // namespace bctrl

#endif // BCTRL_SIM_EVENT_QUEUE_HH
