/**
 * @file
 * A global-order event queue for discrete-event simulation.
 *
 * Events are ordered by (tick, priority, insertion sequence); equal-tick
 * events therefore execute in a deterministic order, which keeps every
 * simulation reproducible for a given seed and configuration.
 *
 * Storage is a tick-bucketed ladder (calendar) queue rather than a
 * single binary heap: the near-horizon ticks that dominate simulation
 * traffic get O(1) amortized insert and batched, comparison-free
 * dispatch, while far-future events (watchdog timers, attack
 * injectors) spill to a small fallback heap. See DESIGN.md §14 for the
 * bucket geometry and the proof sketch that the ladder preserves the
 * exact (tick, priority, sequence) order of the classic heap.
 *
 * In the domain-sharded parallel loop (sim/parallel_loop.hh) several
 * EventQueues form a shard group: each holds its own ladder but
 * delegates the global clock, sequence counter, and bookkeeping to a
 * primary queue, and cross-thread schedules travel through SPSC
 * mailboxes. A solo queue pays one predictable branch for this hook.
 */

#ifndef BCTRL_SIM_EVENT_QUEUE_HH
#define BCTRL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/mailbox.hh"
#include "sim/types.hh"

namespace bctrl {

class EventQueue;
class HostProfiler;
class ParallelLoop;

namespace trace {
class Tracer;
} // namespace trace

namespace fault {
class FaultEngine;
class Watchdog;
} // namespace fault

/**
 * Inline capacity of queue-owned lambda callbacks. Sized for the
 * measured worst-case hot capture: the GPU TLB-hit issue path stores a
 * proceed closure (this + cu + WorkItem + std::function done) plus a
 * TlbEntry, ~120 bytes. Larger captures still work but heap-spill,
 * which lambdaSpills() counts and the allocation profile surfaces.
 */
constexpr std::size_t lambdaCallbackCapacity = 160;

/** The queue's callback type: no heap for captures that fit. */
using LambdaFn = InlineFunction<void(), lambdaCallbackCapacity>;

/**
 * Base class for all schedulable events.
 *
 * An Event is owned by whoever constructed it. The queue never deletes
 * events; descheduling is implemented by squashing so the ladder does
 * not need random removal.
 */
class Event
{
  public:
    /** Events with lower priority values run first at equal ticks. */
    enum Priority : int {
        coherencePriority = -10,
        defaultPriority = 0,
        statsPriority = 10,
    };

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback executed when the event's tick is reached. */
    virtual void process() = 0;

    /** @return a short description for debugging. */
    virtual std::string name() const { return "event"; }

    /** @return true if this event is currently in a queue. */
    bool scheduled() const { return scheduled_; }

    /** @return the tick at which this event will fire (if scheduled). */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  protected:
    /**
     * Re-prioritize an event that is not currently scheduled (the
     * LambdaEvent pool recycles events across priorities).
     */
    void
    setPriority(int priority)
    {
        priority_ = priority;
    }

  private:
    friend class EventQueue;

    int priority_;
    bool scheduled_ = false;
    bool squashed_ = false;
    Tick when_ = 0;
    /** Packed (priority, sequence, owned) word of the current
     * incarnation's ladder entry; see EventQueue::Entry. */
    std::uint64_t sequence_ = 0;
};

/**
 * An Event wrapping an inline callable, for one-off callbacks.
 *
 * Unlike plain Event the queue owns a LambdaEvent: after it fires the
 * queue recycles it through a free-list pool, so callers can schedule
 * and forget without paying a heap allocation per callback on the
 * simulation's hottest path. The callback itself is a fixed-capacity
 * LambdaFn, so captures that fit lambdaCallbackCapacity never touch
 * the heap either.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(LambdaFn fn, int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }
    std::string name() const override { return "lambda-event"; }

  private:
    friend class EventQueue;

    /** Re-arm a pooled event with a new callback and priority. */
    void
    rearm(LambdaFn fn, int priority)
    {
        fn_ = std::move(fn);
        setPriority(priority);
    }

    /** Drop the callback (releases captured state while pooled). */
    void disarm() { fn_ = nullptr; }

    LambdaFn fn_;
};

/**
 * The discrete-event queue. One instance drives an entire simulated
 * system (serial mode), or one component domain of it (shard mode;
 * see sim/parallel_loop.hh); components hold a reference to it.
 */
class EventQueue
{
  public:
    /**
     * Global execution order of a scheduled entry: (tick, packed
     * priority+sequence). Keys are unique (the sequence number is
     * never reused), so they impose a total order across every shard
     * of a group. The default-constructed key is the +infinity
     * sentinel (sorts after every real key).
     */
    struct OrderKey {
        Tick when = tickNever;
        std::uint64_t prioSeq = ~std::uint64_t(0);

        bool
        operator<(const OrderKey &o) const
        {
            if (when != o.when)
                return when < o.when;
            return prioSeq < o.prioSeq;
        }
    };

    explicit EventQueue(Domain domain = Domain::border);
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The component domain this queue drives (border when solo). */
    Domain domain() const { return domain_; }

    /** Current simulated time in ticks (group-global in shard mode). */
    Tick curTick() const { return primary_->curTick_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue without executing it. */
    void deschedule(Event *ev);

    /** Move an already-scheduled event to a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callback owned by the queue.
     * @param fn callback to run
     * @param when absolute tick
     * @param priority intra-tick ordering
     */
    void scheduleLambda(LambdaFn fn, Tick when,
                        int priority = Event::defaultPriority);

    /** @return true if no runnable events remain (group-global). */
    bool empty() const { return primary_->liveEvents_ == 0; }

    /** Number of live (non-squashed) events (group-global). */
    std::uint64_t size() const { return primary_->liveEvents_; }

    /**
     * Run until the queue drains or @p maxTick passes.
     * @return the tick of the last event processed.
     */
    Tick run(Tick maxTick = tickNever);

    /**
     * Execute at most one event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Total events processed since construction (group-global). */
    std::uint64_t eventsProcessed() const { return primary_->processed_; }

    /**
     * LambdaEvents heap-allocated since construction. With the
     * free-list pool this stays near the peak number of in-flight
     * lambdas rather than growing with every scheduleLambda() call.
     */
    std::uint64_t lambdaAllocations() const
    {
        return primary_->lambdaAllocs_;
    }

    /** LambdaEvents currently parked in the free-list pool. */
    std::size_t lambdaPoolSize() const
    {
        return primary_->lambdaPool_.size();
    }

    /**
     * Lambda callbacks whose capture exceeded lambdaCallbackCapacity
     * and spilled to the heap. Zero on the steady-state request path.
     */
    std::uint64_t lambdaSpills() const { return primary_->lambdaSpills_; }

    /**
     * Stale (squashed or superseded) entries discarded when their
     * ladder bucket was drained, before ever reaching the head of the
     * queue. Without bucket-time purging these would linger until
     * popped, inflating pending-entry storage on long runs.
     */
    std::uint64_t stalePurged() const { return stalePurged_; }

    /**
     * Entries currently stored in this queue's ladder, including stale
     * ones not yet purged. Always >= the queue's share of size().
     */
    std::uint64_t pendingEntries() const { return totalEntries_; }

    /**
     * @name Observability hooks
     * Both pointers are null unless the owning System enabled the
     * facility, so the disabled cost at every emit/profile site is a
     * single pointer-load-and-branch. Neither facility ever mutates
     * simulated state: enabling them is bit-identical on RunResults.
     */
    /// @{
    trace::Tracer *tracer() const { return primary_->tracer_; }
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }
    HostProfiler *profiler() const { return primary_->profiler_; }
    void setProfiler(HostProfiler *profiler) { profiler_ = profiler; }
    /// @}

    /**
     * @name Chaos hooks
     * Fault engine and watchdog follow the tracer contract: null
     * unless the System's FaultPlan is active, so every injection
     * site's disabled cost is one pointer-load-and-branch and the
     * zero-fault path is bit-identical.
     */
    /// @{
    fault::FaultEngine *faultEngine() const
    {
        return primary_->faultEngine_;
    }
    void setFaultEngine(fault::FaultEngine *engine)
    {
        faultEngine_ = engine;
    }
    fault::Watchdog *watchdog() const { return primary_->watchdog_; }
    void setWatchdog(fault::Watchdog *watchdog) { watchdog_ = watchdog; }

    /**
     * Forward-progress food for the watchdog: response delivery and
     * memory-op retirement call this unconditionally (a bare counter
     * increment; no simulated state is touched).
     */
    void noteProgress() { ++primary_->progressMarks_; }
    std::uint64_t progressMarks() const
    {
        return primary_->progressMarks_;
    }

    /**
     * Ask run() to return after the current event. Cleared on the next
     * run() entry; used by the watchdog to fail fast on a hang.
     */
    void requestStop() { primary_->stopRequested_ = true; }
    bool stopRequested() const { return primary_->stopRequested_; }
    /// @}

  private:
    friend class ParallelLoop;

    /**
     * A ladder entry: 24 bytes, so bucket traffic stays light. The
     * intra-tick order (priority, then insertion sequence) and the
     * queue-owns-this-lambda flag are packed into one 64-bit word:
     *
     *   [63:48] priority biased by +2^15 (unsigned compare == the
     *           signed priority order)
     *   [47:1]  insertion sequence (unique; 2^47 schedules)
     *   [0]     ownedLambda
     *
     * Because the sequence bits are unique per entry, comparing the
     * packed word orders by (priority, sequence) and the flag bit
     * never decides. The event's sequence_ stores the same packed
     * word, so the is-this-entry-current check is one compare.
     */
    struct Entry {
        Tick when;
        std::uint64_t prioSeq;
        Event *event;

        bool ownedLambda() const { return (prioSeq & 1) != 0; }
        OrderKey key() const { return OrderKey{when, prioSeq}; }
    };

    static std::uint64_t
    packPrioSeq(int priority, std::uint64_t sequence, bool owned_lambda)
    {
        return (static_cast<std::uint64_t>(priority + (1 << 15)) << 48) |
               (sequence << 1) | (owned_lambda ? 1 : 0);
    }

    /** "a after b" ordering, so heaps keep the minimum key on top. */
    struct EntryAfter {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.prioSeq > b.prioSeq;
        }
    };

    /** "a before b" ordering for sorting a drained bucket. */
    struct EntryBefore {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when < b.when;
            return a.prioSeq < b.prioSeq;
        }
    };

    /**
     * @name Ladder geometry
     * Buckets are bucketWidth ticks wide (2^bucketBits; ~3 cycles of
     * the 700 MHz GPU clock) and the ladder spans numBuckets of them
     * (~2.1 us of simulated time), which covers every steady-state
     * component latency; only long timers spill to the overflow heap.
     */
    /// @{
    static constexpr unsigned bucketBits = 12;
    static constexpr Tick bucketWidth = Tick(1) << bucketBits;
    static constexpr std::size_t numBuckets = 512;
    static constexpr Tick ladderSpan = bucketWidth * numBuckets;
    /// @}

    static std::size_t
    bucketIndexOf(Tick when)
    {
        return static_cast<std::size_t>(when >> bucketBits) &
               (numBuckets - 1);
    }

    void push(Event *ev, Tick when, bool owned_lambda);

    /** Place a fully formed entry into ladder storage (this thread). */
    void insertEntry(const Entry &e);

    /** Route a schedule from a foreign shard thread into the mailbox. */
    void postCross(const Entry &e);

    /** Move all mailbox posts into ladder storage (owner thread only). */
    void drainMailboxes();

    /**
     * Load the active bucket into the sorted drain array, discarding
     * stale (squashed / superseded) entries wholesale.
     */
    void loadBucket(std::vector<Entry> &bucket);

    /**
     * Advance the active window until a nonempty bucket is loaded.
     * @return false if no entries remain anywhere in this queue.
     */
    bool advanceWindow();

    /**
     * Make the head entry (globally minimal live entry of this queue)
     * available, discarding stale entries on the way.
     * @return nullptr if this queue holds no live entries.
     */
    const Entry *peekHead();

    /** Remove the current head (after peekHead() returned non-null). */
    void popHead();

    /** Execute entry @p e (curTick update, profiler wrap, recycle). */
    void execute(const Entry &e);

    /**
     * Pop and execute the next runnable event at or before @p maxTick.
     * @return true if an event was executed.
     */
    bool serviceOne(Tick maxTick);

    /**
     * The head's global order key, draining mailboxes first. Used by
     * the parallel-loop coordinator; structural only (never executes).
     * @return false if this queue holds no live entries.
     */
    bool headKey(OrderKey &out);

    /**
     * Execute events in global-key order while the head stays below
     * both @p bound and the smallest key this thread cross-posted to
     * another shard during the grant (the conservative rule: a posted
     * event may be the true global next). Parallel-loop workers only.
     * @return events executed.
     */
    std::uint64_t runGranted(const OrderKey &bound);

    /** Join this queue to @p primary's shard group (empty queues only). */
    void joinShardGroup(EventQueue *primary);

    /** Take a LambdaEvent from the pool (or allocate one) and arm it. */
    LambdaEvent *acquireLambda(LambdaFn fn, int priority);

    /** Return a fired queue-owned lambda to the pool. */
    void recycleLambda(Event *ev);

    /**
     * Discard a stale entry: clear the squash mark (and count the
     * purge) when this entry is the event's current incarnation;
     * silently drop superseded ones.
     */
    void discardStale(const Entry &e);

    Domain domain_;

    /**
     * Shard-group delegate. Solo queues point at themselves; shard
     * members point at the group primary, which owns the global clock,
     * sequence counter, live/processed counts, lambda pool, and the
     * observability/chaos hook pointers — so a sharded run's counter
     * trajectory is bit-identical to a serial run's.
     */
    EventQueue *primary_;

    /**
     * Cross-thread schedule mailboxes, one SPSC ring per producer
     * domain; allocated only in shard mode. A schedule() arriving from
     * a foreign shard's worker thread is posted here (already
     * sequenced) and folded into the ladder by the owner.
     */
    struct Mailboxes {
        SpscRing<Entry, crossMailboxCapacity> fromDomain[numDomains];
    };
    std::unique_ptr<Mailboxes> mailboxes_;

    /** @name Ladder storage (always per-queue, never delegated) */
    /// @{
    /**
     * Sorted entries of the active bucket, drained by index. Entries
     * that arrive inside the active window mid-drain (same-tick
     * follow-ups, response gates) are merged into the pending tail by
     * binary-search insertion: the tail is small (a bucket holds a few
     * events), so one memmove beats maintaining a separate heap, and
     * the dispatch path stays a straight array walk.
     */
    std::vector<Entry> drain_;
    std::size_t drainPos_ = 0;
    /** Future buckets; entries are appended unordered. */
    std::vector<std::vector<Entry>> buckets_;
    /** Entries currently stored in buckets_ (not drain/overlay). */
    std::uint64_t ladderCount_ = 0;
    /** End tick (exclusive) of the active window. */
    Tick activeEnd_ = bucketWidth;
    /** Index of the active bucket. */
    std::size_t activeIdx_ = 0;
    /** Ladder coverage limit: entries at/after this tick overflow. */
    Tick horizon_ = ladderSpan;
    /** Far-future fallback heap (watchdogs, attack timers). */
    std::priority_queue<Entry, std::vector<Entry>, EntryAfter> overflow_;
    /// @}

    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t totalEntries_ = 0;
    std::uint64_t stalePurged_ = 0;
    std::vector<LambdaEvent *> lambdaPool_;
    std::uint64_t lambdaAllocs_ = 0;
    std::uint64_t lambdaSpills_ = 0;
    trace::Tracer *tracer_ = nullptr;
    HostProfiler *profiler_ = nullptr;
    fault::FaultEngine *faultEngine_ = nullptr;
    fault::Watchdog *watchdog_ = nullptr;
    std::uint64_t progressMarks_ = 0;
    bool stopRequested_ = false;
};

/**
 * A component with its own clock domain, layered over the global
 * picosecond tick. Provides cycle<->tick conversion and cycle-aligned
 * scheduling helpers.
 */
class Clocked
{
  public:
    /**
     * @param eq the global event queue
     * @param period_ticks clock period in ticks (picoseconds)
     */
    Clocked(EventQueue &eq, Tick period_ticks)
        : eventq_(eq), period_(period_ticks)
    {
        panic_if(period_ == 0, "clock period must be nonzero");
    }

    Tick clockPeriod() const { return period_; }

    /** Current time, in this domain's cycles (rounded down). */
    Cycles curCycle() const { return eventq_.curTick() / period_; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** The next tick aligned to this clock edge at or after now. */
    Tick
    nextCycleTick() const
    {
        Tick now = eventq_.curTick();
        Tick rem = now % period_;
        return rem == 0 ? now : now + (period_ - rem);
    }

    /** Absolute tick @p cycles clock edges from now. */
    Tick
    clockEdge(Cycles cycles) const
    {
        return nextCycleTick() + cycles * period_;
    }

    EventQueue &eventQueue() const { return eventq_; }

  private:
    EventQueue &eventq_;
    Tick period_;
};

} // namespace bctrl

#endif // BCTRL_SIM_EVENT_QUEUE_HH
