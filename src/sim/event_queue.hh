/**
 * @file
 * A global-order event queue for discrete-event simulation.
 *
 * Events are ordered by (tick, priority, sender domain, insertion
 * sequence); equal-tick events therefore execute in a deterministic
 * order, which keeps every simulation reproducible for a given seed
 * and configuration.
 *
 * Storage is a tick-bucketed ladder (calendar) queue rather than a
 * single binary heap: the near-horizon ticks that dominate simulation
 * traffic get O(1) amortized insert and batched, comparison-free
 * dispatch, while far-future events (watchdog timers, attack
 * injectors) spill to a small fallback heap. See DESIGN.md §14 for the
 * bucket geometry and the proof sketch that the ladder preserves the
 * exact order of the classic heap.
 *
 * Queues group in one of two ways (always one queue per component
 * domain, see Domain in sim/types.hh):
 *
 *  - Serial group (formSerialGroup): the group leader owns all
 *    storage and the single global clock; the other members are thin
 *    facades that stamp their own (sender domain, sequence) order
 *    bits. This is the bit-identical oracle for the sharded loop.
 *
 *  - Shard group (formShardGroup, built by sim/parallel_loop.hh):
 *    every member owns its storage, clock, and counters, and runs on
 *    its own worker thread. Cross-domain schedules must carry at
 *    least the group's cross-domain latency of lookahead and travel
 *    through SPSC mailboxes drained at window barriers.
 *
 * Because an event's order key is stamped from per-sender-domain
 * counters in both modes, a queue executes the same events with the
 * same keys in the same order either way; only the host-thread
 * interleaving differs. A solo queue is its own one-member group and
 * pays a predictable branch for the hooks.
 */

#ifndef BCTRL_SIM_EVENT_QUEUE_HH
#define BCTRL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/mailbox.hh"
#include "sim/types.hh"

namespace bctrl {

class EventQueue;
class HostProfiler;
class ParallelLoop;

namespace trace {
class Tracer;
} // namespace trace

namespace fault {
class FaultEngine;
class Watchdog;
} // namespace fault

/**
 * Inline capacity of queue-owned lambda callbacks. Sized for the
 * measured worst-case hot capture: the GPU TLB-hit issue path stores a
 * proceed closure (this + cu + WorkItem + std::function done) plus a
 * TlbEntry, ~120 bytes. Larger captures still work but heap-spill,
 * which lambdaSpills() counts and the allocation profile surfaces.
 */
constexpr std::size_t lambdaCallbackCapacity = 160;

/** The queue's callback type: no heap for captures that fit. */
using LambdaFn = InlineFunction<void(), lambdaCallbackCapacity>;

/**
 * Base class for all schedulable events.
 *
 * An Event is owned by whoever constructed it. The queue never deletes
 * events; descheduling is implemented by squashing so the ladder does
 * not need random removal.
 */
class Event
{
  public:
    /** Events with lower priority values run first at equal ticks. */
    enum Priority : int {
        coherencePriority = -10,
        defaultPriority = 0,
        statsPriority = 10,
    };

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback executed when the event's tick is reached. */
    virtual void process() = 0;

    /** @return a short description for debugging. */
    virtual std::string name() const { return "event"; }

    /** @return true if this event is currently in a queue. */
    bool scheduled() const { return scheduled_; }

    /** @return the tick at which this event will fire (if scheduled). */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  protected:
    /**
     * Re-prioritize an event that is not currently scheduled (the
     * LambdaEvent pool recycles events across priorities).
     */
    void
    setPriority(int priority)
    {
        priority_ = priority;
    }

  private:
    friend class EventQueue;

    int priority_;
    bool scheduled_ = false;
    bool squashed_ = false;
    Tick when_ = 0;
    /** Packed order word of the current incarnation's ladder entry;
     * see EventQueue::Entry. */
    std::uint64_t sequence_ = 0;
};

/**
 * An Event wrapping an inline callable, for one-off callbacks.
 *
 * Unlike plain Event the queue owns a LambdaEvent: after it fires the
 * queue recycles it through a free-list pool, so callers can schedule
 * and forget without paying a heap allocation per callback on the
 * simulation's hottest path. The callback itself is a fixed-capacity
 * LambdaFn, so captures that fit lambdaCallbackCapacity never touch
 * the heap either.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(LambdaFn fn, int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }
    std::string name() const override { return "lambda-event"; }

  private:
    friend class EventQueue;

    /** Re-arm a pooled event with a new callback and priority. */
    void
    rearm(LambdaFn fn, int priority)
    {
        fn_ = std::move(fn);
        setPriority(priority);
    }

    /** Drop the callback (releases captured state while pooled). */
    void disarm() { fn_ = nullptr; }

    LambdaFn fn_;
};

/**
 * The discrete-event queue. One instance drives an entire simulated
 * system (solo mode), or one component domain of a grouped system
 * (serial facade or shard mode); components hold a reference to it.
 */
class EventQueue
{
  public:
    /**
     * Global execution order of a scheduled entry: (tick, packed
     * order word). Keys are unique (per-sender sequence numbers are
     * never reused and the sender domain is part of the word), so
     * they impose a total order across every member of a group. The
     * default-constructed key is the +infinity sentinel (sorts after
     * every real key).
     */
    struct OrderKey {
        Tick when = tickNever;
        std::uint64_t prioSeq = ~std::uint64_t(0);

        bool
        operator<(const OrderKey &o) const
        {
            if (when != o.when)
                return when < o.when;
            return prioSeq < o.prioSeq;
        }
    };

    explicit EventQueue(Domain domain = Domain::border);
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The component domain this queue drives (border when solo). */
    Domain domain() const { return domain_; }

    /**
     * Current simulated time in ticks. Group-global in serial/solo
     * mode; per-domain while a sharded run is in flight (the parallel
     * loop re-synchronizes every member to the global maximum when a
     * run completes, so quiescent reads agree in both modes).
     */
    Tick curTick() const { return primary_->curTick_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue without executing it. */
    void deschedule(Event *ev);

    /** Move an already-scheduled event to a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callback owned by the queue.
     * @param fn callback to run
     * @param when absolute tick
     * @param priority intra-tick ordering
     */
    void scheduleLambda(LambdaFn fn, Tick when,
                        int priority = Event::defaultPriority);

    /**
     * @return true if no runnable events remain anywhere in the
     * group. In shard mode this is a quiescent-only probe (between
     * runs / at barriers); it reads every member's counters.
     */
    bool empty() const { return size() == 0; }

    /** Number of live (non-squashed) events in the group (quiescent
     * probe in shard mode, like empty()). */
    std::uint64_t
    size() const
    {
        return groupSum([](const EventQueue &q) { return q.liveEvents_; });
    }

    /**
     * Run until the queue drains or @p maxTick passes. Only valid on
     * a solo queue or a serial group's leader; sharded groups are
     * driven by ParallelLoop.
     * @return the tick of the last event processed.
     */
    Tick run(Tick maxTick = tickNever);

    /**
     * Execute at most one event (solo / serial leader only).
     * @return false if the queue was empty.
     */
    bool step();

    /** Total events processed by the group since construction. */
    std::uint64_t
    eventsProcessed() const
    {
        return groupSum([](const EventQueue &q) { return q.processed_; });
    }

    /**
     * LambdaEvents heap-allocated since construction (group total).
     * With the free-list pools this stays near the peak number of
     * in-flight lambdas rather than growing with every
     * scheduleLambda() call.
     */
    std::uint64_t
    lambdaAllocations() const
    {
        return groupSum([](const EventQueue &q) { return q.lambdaAllocs_; });
    }

    /** LambdaEvents currently parked in the group's free-list pools. */
    std::size_t
    lambdaPoolSize() const
    {
        return groupSum(
            [](const EventQueue &q) { return q.lambdaPool_.size(); });
    }

    /**
     * Lambda callbacks whose capture exceeded lambdaCallbackCapacity
     * and spilled to the heap. Zero on the steady-state request path.
     */
    std::uint64_t
    lambdaSpills() const
    {
        return groupSum([](const EventQueue &q) { return q.lambdaSpills_; });
    }

    /**
     * Stale (squashed or superseded) entries discarded when their
     * ladder bucket was drained, before ever reaching the head of the
     * queue. Without bucket-time purging these would linger until
     * popped, inflating pending-entry storage on long runs.
     */
    std::uint64_t stalePurged() const { return stalePurged_; }

    /**
     * Entries currently stored in this queue's ladder, including stale
     * ones not yet purged. Always >= the queue's share of size().
     */
    std::uint64_t pendingEntries() const { return totalEntries_; }

    /**
     * Entries that arrived beyond the ladder horizon and spilled to
     * the overflow heap (far-future timers, idle-gap rebases). High
     * rates mean the ladder span no longer covers steady-state
     * latencies.
     */
    std::uint64_t overflowSpills() const { return overflowSpills_; }

    /**
     * Cross-domain posts that found their mailbox ring full and fell
     * back to the locked overflow list (shard mode only). Nonzero is
     * correct but slow; it means a single event posted a burst larger
     * than crossMailboxCapacity.
     */
    std::uint64_t mailboxOverflows() const { return mailboxOverflows_; }

    /**
     * The minimum latency every cross-domain schedule must carry (the
     * conservative-PDES lookahead). Zero for solo queues; set by
     * formSerialGroup / formShardGroup on every member.
     */
    Tick crossLatency() const { return crossLatency_; }

    /**
     * Form a serial group: this queue (the leader, border domain)
     * keeps all event storage and the global clock; @p gpu and
     * @p dram become stamping facades. All three queues must be
     * empty. @p cross_latency is the minimum tick distance every
     * cross-domain schedule must carry — the same contract the
     * sharded loop needs, enforced here (under BCTRL_CONTRACTS) so
     * the deterministic oracle catches violations first.
     */
    void formSerialGroup(EventQueue &gpu, EventQueue &dram,
                         Tick cross_latency);

    /**
     * @name Observability hooks
     * Both pointers are null unless the owning System enabled the
     * facility, so the disabled cost at every emit/profile site is a
     * single pointer-load-and-branch. Neither facility ever mutates
     * simulated state: enabling them is bit-identical on RunResults.
     */
    /// @{
    trace::Tracer *tracer() const { return primary_->tracer_; }
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }
    HostProfiler *profiler() const { return primary_->profiler_; }
    void setProfiler(HostProfiler *profiler) { profiler_ = profiler; }
    /// @}

    /**
     * @name Chaos hooks
     * Fault engine and watchdog follow the tracer contract: null
     * unless the System's FaultPlan is active, so every injection
     * site's disabled cost is one pointer-load-and-branch and the
     * zero-fault path is bit-identical.
     */
    /// @{
    fault::FaultEngine *faultEngine() const
    {
        return primary_->faultEngine_;
    }
    void setFaultEngine(fault::FaultEngine *engine)
    {
        faultEngine_ = engine;
    }
    fault::Watchdog *watchdog() const { return primary_->watchdog_; }
    void setWatchdog(fault::Watchdog *watchdog) { watchdog_ = watchdog; }

    /**
     * Forward-progress food for the watchdog: response delivery and
     * memory-op retirement call this unconditionally (a bare counter
     * increment on the calling queue; no simulated state is touched).
     */
    void noteProgress() { ++progressMarks_; }
    std::uint64_t
    progressMarks() const
    {
        return groupSum(
            [](const EventQueue &q) { return q.progressMarks_; });
    }

    /**
     * Ask run() to return after the current event (next window in
     * shard mode). Cleared on the next run() entry; used by the
     * watchdog to fail fast on a hang.
     */
    void requestStop() { primary_->stopRequested_ = true; }
    bool stopRequested() const { return primary_->stopRequested_; }
    /// @}

  private:
    friend class ParallelLoop;

    /**
     * A ladder entry: 24 bytes, so bucket traffic stays light. The
     * intra-tick order and the queue-owns-this-lambda flag are packed
     * into one 64-bit word:
     *
     *   [63:48] priority biased by +2^15 (unsigned compare == the
     *           signed priority order)
     *   [47:46] sender domain (the queue whose counter stamped this)
     *   [45:3]  per-sender insertion sequence (unique; 2^43
     *           schedules per sender domain)
     *   [2:1]   target domain (the queue this entry executes on)
     *   [0]     ownedLambda
     *
     * Because (sender, sequence) is unique per entry, comparing the
     * packed word orders by (priority, sender, sequence) and the low
     * bits never decide. Sender-relative sequences are what make a
     * serial and a sharded run stamp identical keys: each sender
     * executes its own events in the same order in both modes, so
     * its counter trajectory is identical. The event's sequence_
     * stores the same packed word, so the is-this-entry-current
     * check is one compare.
     */
    struct Entry {
        Tick when;
        std::uint64_t prioSeq;
        Event *event;

        bool ownedLambda() const { return (prioSeq & 1) != 0; }
        std::size_t
        targetDomainIndex() const
        {
            return static_cast<std::size_t>((prioSeq >> 1) & 3);
        }
        OrderKey key() const { return OrderKey{when, prioSeq}; }
    };

    static std::uint64_t
    packPrioSeq(int priority, Domain sender, std::uint64_t sequence,
                Domain target, bool owned_lambda)
    {
        return (static_cast<std::uint64_t>(priority + (1 << 15)) << 48) |
               (static_cast<std::uint64_t>(sender) << 46) |
               (sequence << 3) |
               (static_cast<std::uint64_t>(target) << 1) |
               (owned_lambda ? 1 : 0);
    }

    /** "a after b" ordering, so heaps keep the minimum key on top. */
    struct EntryAfter {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.prioSeq > b.prioSeq;
        }
    };

    /** "a before b" ordering for sorting a drained bucket. */
    struct EntryBefore {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when < b.when;
            return a.prioSeq < b.prioSeq;
        }
    };

    /**
     * @name Ladder geometry
     * Buckets are bucketWidth ticks wide (2^bucketBits; ~3 cycles of
     * the 700 MHz GPU clock) and the ladder spans numBuckets of them
     * (~2.1 us of simulated time), which covers every steady-state
     * component latency; only long timers spill to the overflow heap.
     */
    /// @{
    static constexpr unsigned bucketBits = 12;
    static constexpr Tick bucketWidth = Tick(1) << bucketBits;
    static constexpr std::size_t numBuckets = 512;
    static constexpr Tick ladderSpan = bucketWidth * numBuckets;
    /// @}

    static std::size_t
    bucketIndexOf(Tick when)
    {
        return static_cast<std::size_t>(when >> bucketBits) &
               (numBuckets - 1);
    }

    /** Sum @p f over the distinct members of this queue's group (a
     * solo queue lists itself three times; count it once). */
    template <typename F>
    std::uint64_t
    groupSum(F f) const
    {
        std::uint64_t sum = 0;
        for (std::size_t d = 0; d < numDomains; ++d) {
            const EventQueue *q = group_[d];
            bool seen = false;
            for (std::size_t e = 0; e < d; ++e)
                seen = seen || group_[e] == q;
            if (!seen)
                sum += f(*q);
        }
        return sum;
    }

    void push(Event *ev, Tick when, bool owned_lambda);

    /** Place a fully formed entry into ladder storage (this thread). */
    void insertEntry(const Entry &e);

    /** Route a schedule from a foreign shard thread into the mailbox. */
    void postCross(EventQueue *sender, const Entry &e);

    /** Merge all mailbox posts into ladder storage. Shard mode only;
     * called by the coordinator at window barriers (workers parked). */
    void drainCrossPosts();

    /**
     * Load the active bucket into the sorted drain array, discarding
     * stale (squashed / superseded) entries wholesale.
     */
    void loadBucket(std::vector<Entry> &bucket);

    /**
     * Advance the active window until a nonempty bucket is loaded.
     * @return false if no entries remain anywhere in this queue.
     */
    bool advanceWindow();

    /**
     * Make the head entry (minimal live entry of this queue)
     * available, discarding stale entries on the way.
     * @return nullptr if this queue holds no live entries.
     */
    const Entry *peekHead();

    /** Remove the current head (after peekHead() returned non-null). */
    void popHead();

    /** Execute entry @p e (curTick update, profiler wrap, recycle). */
    void execute(const Entry &e);

    /**
     * Pop and execute the next runnable event at or before @p maxTick.
     * @return true if an event was executed.
     */
    bool serviceOne(Tick maxTick);

    /**
     * The tick of this queue's next live event, or tickNever if it is
     * drained. Coordinator-side probe for window computation;
     * structural only (never executes).
     */
    Tick nextEventTick();

    /**
     * Execute this shard's events in key order while their tick stays
     * strictly below @p bound (the coordinator's window limit).
     * Cross-domain schedules made during the window land in
     * mailboxes; the lookahead contract guarantees they fall at or
     * beyond the bound, so none can be missed. Worker threads only.
     * @return events executed.
     */
    std::uint64_t runGranted(Tick bound);

    /** Form a shard group from the three domain queues (all empty). */
    static void formShardGroup(EventQueue &border, EventQueue &gpu,
                               EventQueue &dram, Tick cross_latency);

    /**
     * Even out the shards' parked-lambda free lists. Cross-domain
     * posts acquire from the sender's pool but recycle into the
     * receiver's, so a one-way flow (GPU -> border) would drain the
     * sender into endless heap allocation. The coordinator calls this
     * at window barriers (workers parked, single-threaded).
     */
    static void rebalanceLambdaPools(EventQueue *const queues[]);

    /** Take a LambdaEvent from a pool (or allocate one) and arm it. */
    LambdaEvent *acquireLambda(LambdaFn fn, int priority);

    /** Return a fired queue-owned lambda to this queue's pool. Only
     * invoked on storage owners (the executing thread's queue). */
    void recycleLambda(Event *ev);

    /**
     * Discard a stale entry: clear the squash mark (and count the
     * purge) when this entry is the event's current incarnation;
     * silently drop superseded ones.
     */
    void discardStale(const Entry &e);

    Domain domain_;

    /**
     * Clock/bookkeeping delegate. Solo queues and shard members point
     * at themselves; serial-group facades point at the group leader,
     * which owns the storage, the global clock, and the live-event
     * count.
     */
    EventQueue *primary_;

    /**
     * The queues of this group indexed by Domain, for routing an
     * entry's target-domain bits to its queue and for group-sum
     * accessors. A solo queue lists itself in every slot.
     */
    EventQueue *group_[numDomains];

    /** True in shard mode: per-queue clocks, mailboxes, own thread. */
    bool sharded_ = false;

    /** Minimum cross-domain schedule distance (0 for solo queues). */
    Tick crossLatency_ = 0;

    /**
     * Serial mode: the queue whose event is currently executing (set
     * by execute() from the entry's target bits, null outside
     * event context). push() uses it as the stamping sender, the
     * serial counterpart of the shard worker's thread-local.
     * Meaningful on storage owners only.
     */
    EventQueue *currentExec_ = nullptr;

    /**
     * Cross-thread schedule mailboxes, one SPSC ring per producer
     * domain; allocated only in shard mode. A schedule() arriving
     * from a foreign shard's worker thread is posted here (already
     * sequenced by its sender) and folded into the ladder by the
     * coordinator at the next window barrier. Ring overflow (a
     * single event posting a burst beyond the ring capacity) falls
     * back to the locked crossOverflow_ list.
     */
    struct Mailboxes {
        SpscRing<Entry, crossMailboxCapacity> fromDomain[numDomains];
    };
    std::unique_ptr<Mailboxes> mailboxes_;
    std::mutex crossOverflowMutex_;
    std::vector<Entry> crossOverflow_;

    /** @name Ladder storage (always per-queue, never delegated) */
    /// @{
    /**
     * Sorted entries of the active bucket, drained by index. Entries
     * that arrive inside the active window mid-drain (same-tick
     * follow-ups, response gates) are merged into the pending tail by
     * binary-search insertion: the tail is small (a bucket holds a few
     * events), so one memmove beats maintaining a separate heap, and
     * the dispatch path stays a straight array walk.
     */
    std::vector<Entry> drain_;
    std::size_t drainPos_ = 0;
    /** Future buckets; entries are appended unordered. */
    std::vector<std::vector<Entry>> buckets_;
    /** Entries currently stored in buckets_ (not drain/overlay). */
    std::uint64_t ladderCount_ = 0;
    /** End tick (exclusive) of the active window. */
    Tick activeEnd_ = bucketWidth;
    /** Index of the active bucket. */
    std::size_t activeIdx_ = 0;
    /** Ladder coverage limit: entries at/after this tick overflow. */
    Tick horizon_ = ladderSpan;
    /** Far-future fallback heap (watchdogs, attack timers). */
    std::priority_queue<Entry, std::vector<Entry>, EntryAfter> overflow_;
    /// @}

    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t totalEntries_ = 0;
    std::uint64_t stalePurged_ = 0;
    std::uint64_t overflowSpills_ = 0;
    std::uint64_t mailboxOverflows_ = 0;
    std::vector<LambdaEvent *> lambdaPool_;
    std::uint64_t lambdaAllocs_ = 0;
    std::uint64_t lambdaSpills_ = 0;
    trace::Tracer *tracer_ = nullptr;
    HostProfiler *profiler_ = nullptr;
    fault::FaultEngine *faultEngine_ = nullptr;
    fault::Watchdog *watchdog_ = nullptr;
    std::uint64_t progressMarks_ = 0;
    bool stopRequested_ = false;
};

/**
 * A component with its own clock domain, layered over the global
 * picosecond tick. Provides cycle<->tick conversion and cycle-aligned
 * scheduling helpers.
 */
class Clocked
{
  public:
    /**
     * @param eq the global event queue
     * @param period_ticks clock period in ticks (picoseconds)
     */
    Clocked(EventQueue &eq, Tick period_ticks)
        : eventq_(eq), period_(period_ticks)
    {
        panic_if(period_ == 0, "clock period must be nonzero");
    }

    Tick clockPeriod() const { return period_; }

    /** Current time, in this domain's cycles (rounded down). */
    Cycles curCycle() const { return eventq_.curTick() / period_; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** The next tick aligned to this clock edge at or after now. */
    Tick
    nextCycleTick() const
    {
        Tick now = eventq_.curTick();
        Tick rem = now % period_;
        return rem == 0 ? now : now + (period_ - rem);
    }

    /** Absolute tick @p cycles clock edges from now. */
    Tick
    clockEdge(Cycles cycles) const
    {
        return nextCycleTick() + cycles * period_;
    }

    EventQueue &eventQueue() const { return eventq_; }

  private:
    EventQueue &eventq_;
    Tick period_;
};

} // namespace bctrl

#endif // BCTRL_SIM_EVENT_QUEUE_HH
