#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bctrl {

namespace {
// The one sanctioned process-wide mutable: an atomic so concurrent
// sweep workers may consult (and tests may toggle) verbosity without a
// data race. Everything else simulation-visible lives per-System.
std::atomic<bool> verboseFlag{true};
} // namespace

void
setLogVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
logVerbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

std::string
vformatString(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
formatString(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformatString(fmt, args);
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (!logVerbose())
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (!logVerbose())
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace bctrl
