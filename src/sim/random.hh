/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xoshiro256** implementation so results do not depend on the
 * standard library's unspecified distributions; every workload run with
 * the same seed produces the same address trace on any platform.
 */

#ifndef BCTRL_SIM_RANDOM_HH
#define BCTRL_SIM_RANDOM_HH

#include <cstdint>

namespace bctrl {

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x5eedbc01deadbeefULL);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Geometric-ish draw: number of failures before a success with
     * probability @p p, capped at @p cap. Used for compute-gap lengths.
     */
    std::uint64_t nextGeometric(double p, std::uint64_t cap);

  private:
    std::uint64_t state_[4];
};

} // namespace bctrl

#endif // BCTRL_SIM_RANDOM_HH
