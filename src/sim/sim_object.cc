#include "sim/sim_object.hh"

namespace bctrl {

SimObject::SimObject(EventQueue &eq, std::string name)
    : eventq_(eq), name_(std::move(name)), statGroup_(name_)
{
}

} // namespace bctrl
