/**
 * @file
 * A fixed-capacity single-producer / single-consumer ring buffer, the
 * cross-domain event mailbox of the sharded parallel loop.
 *
 * Each shard EventQueue owns one ring per producer domain, so every
 * ring has exactly one producer (the foreign domain's worker thread)
 * and one consumer (the owning domain's worker, or the coordinator
 * between grants). Producer and consumer indices are synchronized with
 * acquire/release atomics; under the strict-order grant protocol the
 * coordinator's handoff mutex additionally sequences every push before
 * the matching pop, so the ring is data-race-free under TSan and the
 * drain order is deterministic.
 *
 * Capacity is a hard bound, not a heuristic: a producer can only post
 * while its grant bound allows it to run, and every cross-post shrinks
 * that bound to the posted key, so the number of undrained posts per
 * grant is bounded by the events schedulable below one cross-domain
 * latency. push() panics on overflow rather than silently growing,
 * because growth would not be safe against a concurrent consumer.
 */

#ifndef BCTRL_SIM_MAILBOX_HH
#define BCTRL_SIM_MAILBOX_HH

#include <atomic>
#include <cstddef>

#include "sim/logging.hh"

namespace bctrl {

/** Entries a cross-domain mailbox can hold before push() panics. */
constexpr std::size_t crossMailboxCapacity = 1024;

template <typename T, std::size_t Capacity>
class SpscRing
{
    static_assert((Capacity & (Capacity - 1)) == 0,
                  "SpscRing capacity must be a power of two");

  public:
    /** Producer side: append @p v; panics if the ring is full. */
    void
    push(const T &v)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        const std::size_t tail =
            tail_.load(std::memory_order_acquire);
        panic_if(head - tail >= Capacity,
                 "SPSC mailbox overflow (%zu entries): a grant "
                 "cross-posted more events than one lookahead window "
                 "can hold",
                 Capacity);
        slots_[head & (Capacity - 1)] = v;
        head_.store(head + 1, std::memory_order_release);
    }

    /**
     * Consumer side: remove the oldest entry into @p out.
     * @return false if the ring is empty.
     */
    bool
    pop(T &out)
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t head =
            head_.load(std::memory_order_acquire);
        if (tail == head)
            return false;
        out = slots_[tail & (Capacity - 1)];
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side emptiness probe. */
    bool
    empty() const
    {
        return tail_.load(std::memory_order_relaxed) ==
               head_.load(std::memory_order_acquire);
    }

  private:
    T slots_[Capacity] = {};
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
};

} // namespace bctrl

#endif // BCTRL_SIM_MAILBOX_HH
