/**
 * @file
 * A fixed-capacity single-producer / single-consumer ring buffer, the
 * cross-domain event mailbox of the sharded parallel loop.
 *
 * Each shard EventQueue owns one ring per producer domain, so every
 * ring has exactly one producer (the foreign domain's worker thread)
 * and one consumer (the coordinator, which drains all mailboxes at a
 * window barrier while every worker is parked). Producer and consumer
 * indices are synchronized with acquire/release atomics, so the ring
 * is data-race-free under TSan; the drain order (per ring FIFO, rings
 * visited in domain order) is deterministic because entries are merged
 * into the ladder by their total-order key, not their arrival order.
 *
 * Capacity is sized for the worst single-event burst observed (a full
 * accelerator-L2 flush posts one writeback per line, up to 4096 for
 * the largest configured cache). tryPush() reports overflow instead of
 * panicking so the poster can fall back to a locked overflow list:
 * growth in place would not be safe against a concurrent consumer.
 */

#ifndef BCTRL_SIM_MAILBOX_HH
#define BCTRL_SIM_MAILBOX_HH

#include <atomic>
#include <cstddef>

#include "sim/logging.hh"

namespace bctrl {

/** Entries a cross-domain mailbox ring holds before posts overflow. */
constexpr std::size_t crossMailboxCapacity = 8192;

template <typename T, std::size_t Capacity>
class SpscRing
{
    static_assert((Capacity & (Capacity - 1)) == 0,
                  "SpscRing capacity must be a power of two");

  public:
    /**
     * Producer side: append @p v.
     * @return false if the ring is full (nothing was written).
     */
    bool
    tryPush(const T &v)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        const std::size_t tail =
            tail_.load(std::memory_order_acquire);
        if (head - tail >= Capacity)
            return false;
        slots_[head & (Capacity - 1)] = v;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Producer side: append @p v; panics if the ring is full. */
    void
    push(const T &v)
    {
        panic_if(!tryPush(v),
                 "SPSC mailbox overflow (%zu entries)", Capacity);
    }

    /**
     * Consumer side: remove the oldest entry into @p out.
     * @return false if the ring is empty.
     */
    bool
    pop(T &out)
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t head =
            head_.load(std::memory_order_acquire);
        if (tail == head)
            return false;
        out = slots_[tail & (Capacity - 1)];
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side emptiness probe. */
    bool
    empty() const
    {
        return tail_.load(std::memory_order_relaxed) ==
               head_.load(std::memory_order_acquire);
    }

  private:
    T slots_[Capacity] = {};
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
};

} // namespace bctrl

#endif // BCTRL_SIM_MAILBOX_HH
