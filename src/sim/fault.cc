#include "sim/fault.hh"

#include <sstream>

#include "sim/logging.hh"

namespace bctrl {
namespace fault {

namespace {

const char *const kPointNames[numPoints] = {
    "gpuRequest", "atsResponse", "bccFill",
    "shootdownAck", "dramResponse", "coherenceMsg",
};

const char *const kKindNames[] = {
    "none", "drop", "delay", "duplicate", "corruptPerms", "stuckAt",
};

} // namespace

const char *
pointName(Point p)
{
    const auto i = static_cast<unsigned>(p);
    return i < numPoints ? kPointNames[i] : "unknown";
}

const char *
kindName(Kind k)
{
    const auto i = static_cast<unsigned>(k);
    return i < sizeof(kKindNames) / sizeof(kKindNames[0])
               ? kKindNames[i]
               : "unknown";
}

bool
parsePoint(const std::string &s, Point &out)
{
    for (unsigned i = 0; i < numPoints; ++i) {
        if (s == kPointNames[i]) {
            out = static_cast<Point>(i);
            return true;
        }
    }
    return false;
}

bool
parseKind(const std::string &s, Kind &out)
{
    constexpr unsigned n = sizeof(kKindNames) / sizeof(kKindNames[0]);
    for (unsigned i = 0; i < n; ++i) {
        if (s == kKindNames[i]) {
            out = static_cast<Kind>(i);
            return true;
        }
    }
    return false;
}

FaultEngine::FaultEngine(const FaultPlan &plan)
    : plan_(plan),
      rng_(plan.seed),
      fires_(plan.rules.size(), 0),
      stats_("system.fault"),
      dropsHeld_(stats_.scalar("dropsHeld",
                               "messages currently held as dropped")),
      dropsReleased_(stats_.scalar(
          "dropsReleased", "held messages re-delivered at recovery")),
      poisonedPages_(stats_.scalar(
          "poisonedPages", "frames reachable through corrupted perms")),
      unsafeWrites_(stats_.scalar(
          "unsafeWrites",
          "accelerator writes to poisoned frames that reached DRAM"))
{
    for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
        const Rule &r = plan_.rules[i];
        const auto p = static_cast<unsigned>(r.point);
        panic_if(p >= numPoints, "fault rule %zu has a bad point", i);
        rulesByPoint_[p].push_back(i);
    }
    for (unsigned i = 0; i < numPoints; ++i) {
        injectedByPoint_[i] = &stats_.scalar(
            std::string("injected.") + kPointNames[i],
            std::string("faults injected at ") + kPointNames[i]);
    }
}

Decision
FaultEngine::decide(Point point, Tick now)
{
    if (!enabled_ || suppress_ != 0)
        return Decision{};
    const auto p = static_cast<unsigned>(point);
    for (std::size_t idx : rulesByPoint_[p]) {
        const Rule &r = plan_.rules[idx];
        if (now < r.windowStart || now > r.windowEnd)
            continue;
        if (fires_[idx] >= r.maxFires)
            continue;
        // The draw itself is part of the deterministic schedule: every
        // in-window crossing consumes exactly one Bernoulli sample.
        if (!rng_.nextBool(r.rate))
            continue;
        ++fires_[idx];
        ++(*injectedByPoint_[p]);
        return Decision{r.kind, r.delayTicks};
    }
    return Decision{};
}

void
FaultEngine::holdDropped(const char *site, Tick now,
                         std::function<void()> deliver)
{
    held_.push_back(Held{site, now, std::move(deliver)});
    ++dropsHeld_;
}

Tick
FaultEngine::oldestHeldTick() const
{
    Tick oldest = tickNever;
    for (const Held &h : held_)
        oldest = std::min(oldest, h.heldAt);
    return oldest;
}

void
FaultEngine::releaseDropped(EventQueue &eq)
{
    // Deliver outside the loop body via the queue so a released thunk
    // that itself re-crosses a border cannot invalidate the iterator;
    // the engine is expected to be disabled by the caller first.
    std::vector<Held> pending;
    pending.swap(held_);
    dropsHeld_ = 0;
    for (Held &h : pending) {
        dropsReleased_ += 1;
        eq.scheduleLambda(
            [deliver = std::move(h.deliver)]() { deliver(); },
            eq.curTick());
    }
}

std::string
FaultEngine::describeHeld() const
{
    std::ostringstream os;
    for (const Held &h : held_) {
        os << "  held: " << h.site << " since tick " << h.heldAt
           << "\n";
    }
    return os.str();
}

void
FaultEngine::notePoisonedPage(Addr ppn)
{
    if (poisoned_.insert(ppn).second)
        ++poisonedPages_;
}

void
FaultEngine::noteUnsafeWrite()
{
    ++unsafeWrites_;
}

bool
FaultEngine::stickAddr(Point point, Addr &addr)
{
    const auto p = static_cast<unsigned>(point);
    if (!stuckValid_[p]) {
        stuckValid_[p] = true;
        stuckValue_[p] = addr;
        return false;
    }
    addr = stuckValue_[p];
    return true;
}

std::uint64_t
FaultEngine::injected(Point point) const
{
    const auto p = static_cast<unsigned>(point);
    return static_cast<std::uint64_t>(injectedByPoint_[p]->value());
}

std::uint64_t
FaultEngine::totalInjected() const
{
    std::uint64_t total = 0;
    for (unsigned i = 0; i < numPoints; ++i)
        total += static_cast<std::uint64_t>(injectedByPoint_[i]->value());
    return total;
}

Watchdog::Watchdog(EventQueue &eq, FaultEngine *engine, Tick interval)
    : Event(Event::statsPriority), eq_(eq), engine_(engine),
      interval_(interval)
{
    panic_if(interval_ == 0, "watchdog interval must be nonzero");
}

void
Watchdog::arm()
{
    lastProgress_ = eq_.progressMarks();
    if (!scheduled())
        eq_.schedule(this, eq_.curTick() + interval_);
}

void
Watchdog::disarm()
{
    if (scheduled())
        eq_.deschedule(this);
}

void
Watchdog::process()
{
    // The workload completed: stand down (do not reschedule) so the
    // queue can drain and System::run can return.
    if (doneProbe_ && doneProbe_())
        return;

    const std::uint64_t marks = eq_.progressMarks();
    const bool stalled = marks == lastProgress_;
    const std::uint64_t outstanding =
        outstandingProbe_ ? outstandingProbe_() : 0;
    const Tick oldestHeld =
        engine_ != nullptr ? engine_->oldestHeldTick() : tickNever;
    const bool heldTooLong = oldestHeld != tickNever &&
                             eq_.curTick() - oldestHeld >= interval_;

    // A quiescent phase with nothing outstanding (pure compute, or the
    // inter-kernel gap) is not a hang; keep watching.
    if (!(stalled && outstanding > 0) && !heldTooLong) {
        lastProgress_ = marks;
        eq_.schedule(this, eq_.curTick() + interval_);
        return;
    }

    hangDetected_ = true;
    hangTick_ = eq_.curTick();

    std::ostringstream os;
    os << "watchdog: no forward progress at tick " << hangTick_
       << " (interval " << interval_ << ")\n"
       << "  progress marks: " << marks << " (unchanged: " << stalled
       << ")\n"
       << "  outstanding requests: " << outstanding << "\n"
       << "  live events queued: " << eq_.size() << "\n"
       << "  events processed: " << eq_.eventsProcessed() << "\n";
    if (engine_ != nullptr) {
        os << "  faults injected: " << engine_->totalInjected() << "\n"
           << "  dropped messages held: " << engine_->heldCount()
           << "\n"
           << engine_->describeHeld();
    }
    for (const auto &reporter : reporters_)
        os << reporter();
    report_ = os.str();

    // Fail fast: stop the loop so the harness can report and recover
    // (release held drops, drain, collect) instead of spinning.
    eq_.requestStop();
}

} // namespace fault
} // namespace bctrl
