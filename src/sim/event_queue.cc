#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/contracts.hh"
#include "sim/host_profiler.hh"

namespace bctrl {

namespace {
/**
 * Initial reservations. A typical run keeps a few hundred events in
 * flight; reserving up front avoids the first several doublings of the
 * drain/overflow vectors on every System construction.
 */
constexpr std::size_t initialDrainCapacity = 1024;
constexpr std::size_t initialOverflowCapacity = 256;

/**
 * Free-list pools larger than this are trimmed by deleting returned
 * events instead of parking them, bounding idle memory after a burst.
 */
constexpr std::size_t maxLambdaPool = 4096;

/**
 * The shard whose window is executing on this thread (null on the
 * coordinator and in serial mode). push() consults it to resolve the
 * stamping sender and to decide between a direct ladder insert and a
 * cross-domain mailbox post. Function-local so there is no
 * namespace-scope mutable state.
 */
EventQueue *&
tlsActiveShard()
{
    static thread_local EventQueue *shard = nullptr;
    return shard;
}
} // namespace

EventQueue::EventQueue(Domain domain)
    : domain_(domain), primary_(this), group_{this, this, this}
{
    drain_.reserve(initialDrainCapacity);
    buckets_.resize(numBuckets);
    std::vector<Entry> storage;
    storage.reserve(initialOverflowCapacity);
    overflow_ = std::priority_queue<Entry, std::vector<Entry>,
                                    EntryAfter>(EntryAfter{},
                                                std::move(storage));
}

EventQueue::~EventQueue()
{
    // Drain every storage tier, deleting queue-owned lambda events that
    // never fired. Externally owned events are left to their owners.
    // Owned lambdas are deleted directly (never recycled) because a
    // group member's pool may already be gone when another member is
    // destroyed.
    auto destroyEntry = [](const Entry &e) {
        if (e.ownedLambda())
            delete e.event;
    };
    for (std::size_t i = drainPos_; i < drain_.size(); ++i)
        destroyEntry(drain_[i]);
    for (const std::vector<Entry> &bucket : buckets_)
        for (const Entry &e : bucket)
            destroyEntry(e);
    while (!overflow_.empty()) {
        destroyEntry(overflow_.top());
        overflow_.pop();
    }
    if (mailboxes_ != nullptr) {
        // A run aborted by the watchdog can leave undrained posts.
        Entry e;
        for (std::size_t d = 0; d < numDomains; ++d)
            while (mailboxes_->fromDomain[d].pop(e))
                destroyEntry(e);
        for (const Entry &o : crossOverflow_)
            destroyEntry(o);
    }
    for (LambdaEvent *ev : lambdaPool_)
        delete ev;
}

void
EventQueue::formSerialGroup(EventQueue &gpu, EventQueue &dram,
                            Tick cross_latency)
{
    panic_if(domain_ != Domain::border ||
                 gpu.domain_ != Domain::gpuCluster ||
                 dram.domain_ != Domain::dram,
             "serial group queues must be (border, gpuCluster, dram)");
    panic_if(sharded_ || gpu.sharded_ || dram.sharded_,
             "queue is already in a shard group");
    panic_if(liveEvents_ + gpu.liveEvents_ + dram.liveEvents_ != 0 ||
                 totalEntries_ + gpu.totalEntries_ +
                         dram.totalEntries_ !=
                     0,
             "queues joined a serial group while holding events");
    group_[0] = this;
    group_[1] = &gpu;
    group_[2] = &dram;
    for (EventQueue *q : group_) {
        q->group_[0] = this;
        q->group_[1] = &gpu;
        q->group_[2] = &dram;
        q->primary_ = this;
        q->crossLatency_ = cross_latency;
    }
}

void
EventQueue::formShardGroup(EventQueue &border, EventQueue &gpu,
                           EventQueue &dram, Tick cross_latency)
{
    panic_if(border.domain_ != Domain::border ||
                 gpu.domain_ != Domain::gpuCluster ||
                 dram.domain_ != Domain::dram,
             "shard group queues must be (border, gpuCluster, dram)");
    // Zero lookahead would let a cross post land at the sender's
    // current tick, inside the window the target may already have
    // executed past: the windowed protocol is only conservative for
    // strictly positive cross-domain latency.
    panic_if(cross_latency == 0,
             "shard group needs nonzero cross-domain lookahead");
    EventQueue *members[numDomains] = {&border, &gpu, &dram};
    for (EventQueue *q : members) {
        panic_if(q->primary_ != q || q->sharded_,
                 "queue is already grouped");
        panic_if(q->liveEvents_ != 0 || q->totalEntries_ != 0,
                 "queue joined a shard group while holding events");
        q->sharded_ = true;
        q->crossLatency_ = cross_latency;
        q->group_[0] = &border;
        q->group_[1] = &gpu;
        q->group_[2] = &dram;
        q->mailboxes_ = std::make_unique<Mailboxes>();
    }
}

void
EventQueue::rebalanceLambdaPools(EventQueue *const queues[])
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < numDomains; ++i)
        total += queues[i]->lambdaPool_.size();
    const std::size_t target = total / numDomains;
    if (target == 0)
        return;
    // One donor pass, one receiver pass: steady state moves about as
    // many pointers per window as cross-domain posts happened in it.
    std::vector<LambdaEvent *> surplus;
    for (std::size_t i = 0; i < numDomains; ++i) {
        auto &pool = queues[i]->lambdaPool_;
        while (pool.size() > target) {
            surplus.push_back(pool.back());
            pool.pop_back();
        }
    }
    for (std::size_t i = 0; i < numDomains && !surplus.empty(); ++i) {
        auto &pool = queues[i]->lambdaPool_;
        while (pool.size() < target && !surplus.empty()) {
            pool.push_back(surplus.back());
            surplus.pop_back();
        }
    }
    // Rounding leftovers (< numDomains of them) go to the first pool.
    for (LambdaEvent *ev : surplus)
        queues[0]->lambdaPool_.push_back(ev);
}

LambdaEvent *
EventQueue::acquireLambda(LambdaFn fn, int priority)
{
    // The pool belongs to the thread doing the scheduling: the sender
    // shard's in shard mode (a cross-domain schedule must not touch
    // the target's free list from a foreign thread), the group
    // leader's otherwise. Events recycle into the executing queue's
    // pool, so pooled events migrate between members; the free lists
    // are interchangeable.
    EventQueue *pool;
    if (sharded_) {
        EventQueue *active = tlsActiveShard();
        pool = active != nullptr ? active : this;
    } else {
        pool = primary_;
    }
    if (fn.spilled())
        ++pool->lambdaSpills_;
    if (pool->lambdaPool_.empty()) {
        ++pool->lambdaAllocs_;
        return new LambdaEvent(std::move(fn), priority);
    }
    LambdaEvent *ev = pool->lambdaPool_.back();
    pool->lambdaPool_.pop_back();
    ev->rearm(std::move(fn), priority);
    return ev;
}

void
EventQueue::recycleLambda(Event *ev)
{
    // Only invoked on storage owners from their own thread (execute /
    // stale purge), so the pool touched here is always thread-local.
    auto *lev = static_cast<LambdaEvent *>(ev);
    if (lambdaPool_.size() >= maxLambdaPool) {
        delete lev;
        return;
    }
    // Release captured state (shared_ptrs, references) now, not at the
    // next reuse; callers rely on callback destruction after firing.
    lev->disarm();
    lambdaPool_.push_back(lev);
}

void
EventQueue::discardStale(const Entry &e)
{
    Event *ev = e.event;
    ++stalePurged_;
    // When this entry is the event's current (squashed) incarnation,
    // clear the mark so the event can be scheduled again. Superseded
    // entries (a reschedule minted a newer sequence) drop silently.
    if (ev->squashed_ && ev->sequence_ == e.prioSeq) {
        ev->squashed_ = false;
        if (e.ownedLambda())
            recycleLambda(ev);
    }
}

void
EventQueue::push(Event *ev, Tick when, bool owned_lambda)
{
    // Resolve the stamping sender: the queue whose event is executing
    // on this thread (shard worker context or the serial leader's
    // currentExec_), or the target itself for pushes from outside any
    // event (setup, between runs). Sender-relative stamps are what
    // keep serial and sharded key trajectories identical.
    EventQueue *sender;
    if (sharded_) {
        EventQueue *active = tlsActiveShard();
        sender = active != nullptr ? active : this;
    } else {
        EventQueue *exec = primary_->currentExec_;
        sender = exec != nullptr ? exec : this;
    }
    // The past-check must read the sender's clock: in shard mode the
    // target's clock belongs to another running thread.
    const Tick now = sharded_ ? sender->curTick_ : primary_->curTick_;
    panic_if(when < now,
             "scheduling event '%s' in the past (%llu < %llu)",
             ev->name().c_str(), (unsigned long long)when,
             (unsigned long long)now);
    // Lookahead contract: a schedule crossing a domain border must
    // carry at least the group's cross-domain latency. The serial
    // oracle enforces the same bound the windowed loop relies on, so
    // violations surface deterministically first.
    BCTRL_ASSERT_MSG(sender == this || when >= now + crossLatency_,
                     "cross-domain schedule for '%s' at tick %llu "
                     "carries less than the %llu-tick lookahead "
                     "(sender at %llu)",
                     ev->name().c_str(), (unsigned long long)when,
                     (unsigned long long)crossLatency_,
                     (unsigned long long)now);
    // No-double-schedule: every caller must have descheduled (or never
    // scheduled) the event; a second live ladder entry for the same
    // event would fire its callback twice.
    BCTRL_ASSERT_MSG(!ev->scheduled_,
                     "event '%s' pushed while already scheduled",
                     ev->name().c_str());
    // The packed word needs the priority to fit its 16-bit field and
    // the sequence its 43 bits; both hold by construction (priorities
    // are small enum-scale ints, 2^43 schedules per sender is out of
    // reach).
    BCTRL_ASSERT(ev->priority() >= -(1 << 15) &&
                 ev->priority() < (1 << 15));
    ev->scheduled_ = true;
    ev->squashed_ = false;
    ev->when_ = when;
    ev->sequence_ = packPrioSeq(ev->priority(), sender->domain_,
                                sender->nextSequence_++, domain_,
                                owned_lambda);
    const Entry e{when, ev->sequence_, ev};
    if (sharded_) {
        if (sender != this) {
            // Foreign worker thread: the entry travels by mailbox and
            // is folded in (and counted live) at the next barrier.
            postCross(sender, e);
            return;
        }
        ++liveEvents_;
        insertEntry(e);
        return;
    }
    ++primary_->liveEvents_;
    primary_->insertEntry(e);
}

void
EventQueue::insertEntry(const Entry &e)
{
    ++totalEntries_;
    if (e.when < activeEnd_) {
        // Inside (or before) the active window: merge into the sorted
        // pending tail of the drain array. The tail is a handful of
        // entries, so the shift is cheaper than heap maintenance and
        // dispatch stays a branch-free array walk. An entry keyed
        // before the current head (same tick, lower priority value)
        // lands at drainPos_ and correctly runs next.
        const auto it = std::upper_bound(drain_.begin() + drainPos_,
                                         drain_.end(), e, EntryBefore{});
        drain_.insert(it, e);
    } else if (e.when < horizon_) {
        buckets_[bucketIndexOf(e.when)].push_back(e);
        ++ladderCount_;
    } else {
        ++overflowSpills_;
        overflow_.push(e);
    }
}

void
EventQueue::postCross(EventQueue *sender, const Entry &e)
{
    // Only queue-owned one-shot lambdas may cross shard borders: a
    // plain Event could be descheduled or rescheduled by its owner
    // while the entry is still in flight, racing the target thread.
    BCTRL_ASSERT_MSG(e.ownedLambda(),
                     "plain Events cannot be scheduled across shards");
    auto &ring =
        mailboxes_->fromDomain[static_cast<std::size_t>(sender->domain_)];
    if (!ring.tryPush(e)) {
        // A single event posted a burst beyond the ring capacity
        // (e.g. a full-cache flush). Correct but slow; counted so the
        // stats surface it.
        std::lock_guard<std::mutex> guard(crossOverflowMutex_);
        crossOverflow_.push_back(e);
        ++mailboxOverflows_;
    }
}

void
EventQueue::drainCrossPosts()
{
    BCTRL_ASSERT(mailboxes_ != nullptr);
    Entry e;
    for (std::size_t d = 0; d < numDomains; ++d) {
        while (mailboxes_->fromDomain[d].pop(e)) {
            BCTRL_ASSERT(e.when >= curTick_);
            ++liveEvents_;
            insertEntry(e);
        }
    }
    if (!crossOverflow_.empty()) {
        std::vector<Entry> spilled;
        {
            std::lock_guard<std::mutex> guard(crossOverflowMutex_);
            spilled.swap(crossOverflow_);
        }
        // Arrival order is irrelevant: insertEntry files every entry
        // by its total-order key.
        for (const Entry &o : spilled) {
            BCTRL_ASSERT(o.when >= curTick_);
            ++liveEvents_;
            insertEntry(o);
        }
    }
}

void
EventQueue::loadBucket(std::vector<Entry> &bucket)
{
    // Swap storage so vector capacities circulate between the drain
    // array and the buckets instead of reallocating every window.
    drain_.clear();
    drainPos_ = 0;
    drain_.swap(bucket);
    ladderCount_ -= drain_.size();
    // Purge stale entries wholesale before sorting: squashed timers
    // (watchdog re-arms, retried requests) die here instead of
    // lingering in pending storage until their tick comes up.
    std::size_t live = 0;
    for (const Entry &e : drain_) {
        Event *ev = e.event;
        if (ev->scheduled_ && ev->sequence_ == e.prioSeq) {
            drain_[live++] = e;
        } else {
            discardStale(e);
            --totalEntries_;
        }
    }
    drain_.resize(live);
    std::sort(drain_.begin(), drain_.end(), EntryBefore{});
}

bool
EventQueue::advanceWindow()
{
    BCTRL_ASSERT(drainPos_ >= drain_.size());
    drain_.clear();
    drainPos_ = 0;
    for (;;) {
        if (ladderCount_ == 0) {
            if (overflow_.empty())
                return false;
            // The ladder is empty: rebase the window directly at the
            // next overflow tick instead of stepping bucket by bucket
            // across a potentially huge gap (watchdog-only idle).
            const Tick w = overflow_.top().when;
            const Tick window_start = (w >> bucketBits) << bucketBits;
            activeIdx_ = bucketIndexOf(w);
            activeEnd_ = window_start + bucketWidth;
            horizon_ = window_start + ladderSpan;
        } else {
            activeIdx_ = (activeIdx_ + 1) & (numBuckets - 1);
            activeEnd_ += bucketWidth;
            horizon_ += bucketWidth;
        }
        // Refill: overflow entries that fell under the advancing
        // horizon belong in the just-freed tail buckets.
        while (!overflow_.empty() && overflow_.top().when < horizon_) {
            const Entry &e = overflow_.top();
            buckets_[bucketIndexOf(e.when)].push_back(e);
            ++ladderCount_;
            overflow_.pop();
        }
        std::vector<Entry> &bucket = buckets_[activeIdx_];
        if (!bucket.empty()) {
            loadBucket(bucket);
            if (drainPos_ < drain_.size())
                return true;
            // Every entry in the bucket was stale; keep advancing.
        }
    }
}

const EventQueue::Entry *
EventQueue::peekHead()
{
    for (;;) {
        if (drainPos_ < drain_.size()) {
            const Entry &d = drain_[drainPos_];
            Event *ev = d.event;
            if (ev->scheduled_ && ev->sequence_ == d.prioSeq)
                return &drain_[drainPos_];
            discardStale(d);
            ++drainPos_;
            --totalEntries_;
            continue;
        }
        if (!advanceWindow())
            return nullptr;
    }
}

void
EventQueue::popHead()
{
    // peekHead() left the head at the drain cursor.
    BCTRL_ASSERT(drainPos_ < drain_.size());
    ++drainPos_;
    --totalEntries_;
}

void
EventQueue::execute(const Entry &e)
{
    // Only ever invoked on storage owners (the serial leader or a
    // shard), so this queue's clock and live count are authoritative.
    Event *ev = e.event;
    panic_if(e.when < curTick_, "event time ran backwards");
    // Monotonic-tick contract: the entry about to execute carries the
    // event's current schedule, never a stale earlier one.
    BCTRL_ASSERT_MSG(ev->when_ == e.when && ev->when_ >= curTick_,
                     "event '%s' fired at tick %llu but is "
                     "scheduled for %llu",
                     ev->name().c_str(), (unsigned long long)e.when,
                     (unsigned long long)ev->when_);
    BCTRL_ASSERT(liveEvents_ > 0);
    EventQueue *target = sharded_ ? this : group_[e.targetDomainIndex()];
    curTick_ = e.when;
    ev->scheduled_ = false;
    --liveEvents_;
    ++target->processed_;
    if (!sharded_)
        currentExec_ = target;
    if (profiler_ != nullptr) {
        // The eventLoop slot wraps every callback: it is the
        // denominator for events/sec and the 100% reference the
        // per-component inclusive slots are read against.
        HostProfiler::Scope scope(profiler_,
                                  HostProfiler::Slot::eventLoop);
        ev->process();
    } else {
        ev->process();
    }
    if (!sharded_)
        currentExec_ = nullptr;
    if (e.ownedLambda())
        recycleLambda(ev);
}

bool
EventQueue::serviceOne(Tick maxTick)
{
    const Entry *head = peekHead();
    if (head == nullptr || head->when > maxTick)
        return false;
    // Copy before popping: process() may grow drain_ and invalidate
    // the pointer.
    const Entry e = *head;
    popHead();
    execute(e);
    return true;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev->scheduled_, "event '%s' is already scheduled",
             ev->name().c_str());
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(!ev->scheduled_, "descheduling unscheduled event '%s'",
             ev->name().c_str());
    // In shard mode descheduling is a strictly domain-local affair:
    // the squash mark and live count belong to the queue whose ladder
    // holds the entry, and only its thread (or a quiescent caller)
    // may touch them.
    BCTRL_ASSERT_MSG(
        !sharded_ ||
            (((ev->sequence_ >> 1) & 3) ==
                 static_cast<std::uint64_t>(domain_) &&
             (tlsActiveShard() == nullptr || tlsActiveShard() == this)),
        "cross-shard deschedule of event '%s'", ev->name().c_str());
    // The ladder entry stays behind; mark the event squashed so the
    // entry is purged when its bucket drains (or discarded at peek).
    ev->scheduled_ = false;
    ev->squashed_ = true;
    if (sharded_)
        --liveEvents_;
    else
        --primary_->liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    push(ev, when, false);
}

void
EventQueue::scheduleLambda(LambdaFn fn, Tick when, int priority)
{
    push(acquireLambda(std::move(fn), priority), when, true);
}

bool
EventQueue::step()
{
    panic_if(sharded_ || primary_ != this,
             "step() must be called on a solo queue or serial leader");
    return serviceOne(tickNever);
}

Tick
EventQueue::run(Tick maxTick)
{
    panic_if(sharded_,
             "sharded queues are driven by ParallelLoop, not run()");
    panic_if(primary_ != this,
             "run() must be called on the serial group's leader");
    stopRequested_ = false;
    if (maxTick == tickNever) {
        // Batched dispatch: System::run() always runs unbounded, so
        // the common case skips the per-event maxTick compare and
        // dispatches straight off the sorted drain array — no
        // comparisons against other storage tiers at all.
        while (!stopRequested_) {
            if (drainPos_ < drain_.size()) {
                const Entry e = drain_[drainPos_++];
                --totalEntries_;
                Event *ev = e.event;
                if (ev->scheduled_ && ev->sequence_ == e.prioSeq)
                    execute(e);
                else
                    discardStale(e);
                continue;
            }
            if (!advanceWindow())
                break;
        }
    } else {
        while (!stopRequested_ && serviceOne(maxTick)) {
        }
    }
    return curTick_;
}

Tick
EventQueue::nextEventTick()
{
    const Entry *head = peekHead();
    return head != nullptr ? head->when : tickNever;
}

std::uint64_t
EventQueue::runGranted(Tick bound)
{
    BCTRL_ASSERT(sharded_);
    tlsActiveShard() = this;
    std::uint64_t executed = 0;
    for (;;) {
        const Entry *head = peekHead();
        if (head == nullptr || head->when >= bound)
            break;
        const Entry e = *head;
        popHead();
        execute(e);
        ++executed;
    }
    tlsActiveShard() = nullptr;
    return executed;
}

} // namespace bctrl
