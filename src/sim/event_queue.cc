#include "sim/event_queue.hh"

#include "sim/contracts.hh"
#include "sim/host_profiler.hh"

namespace bctrl {

namespace {
/**
 * Initial heap reservation. A typical run keeps a few hundred events
 * in flight; reserving up front avoids the first several doublings of
 * the underlying vector on every System construction.
 */
constexpr std::size_t initialHeapCapacity = 1024;

/**
 * Free-list pools larger than this are trimmed by deleting returned
 * events instead of parking them, bounding idle memory after a burst.
 */
constexpr std::size_t maxLambdaPool = 4096;
} // namespace

EventQueue::EventQueue()
{
    std::vector<Entry> storage;
    storage.reserve(initialHeapCapacity);
    heap_ = std::priority_queue<Entry, std::vector<Entry>, EntryCompare>(
        EntryCompare{}, std::move(storage));
}

EventQueue::~EventQueue()
{
    // Drain the heap, deleting any queue-owned lambda events that never
    // fired. Externally owned events are left to their owners.
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (e.ownedLambda)
            delete e.event;
    }
    for (LambdaEvent *ev : lambdaPool_)
        delete ev;
}

LambdaEvent *
EventQueue::acquireLambda(LambdaFn fn, int priority)
{
    if (fn.spilled())
        ++lambdaSpills_;
    if (lambdaPool_.empty()) {
        ++lambdaAllocs_;
        return new LambdaEvent(std::move(fn), priority);
    }
    LambdaEvent *ev = lambdaPool_.back();
    lambdaPool_.pop_back();
    ev->rearm(std::move(fn), priority);
    return ev;
}

void
EventQueue::recycleLambda(Event *ev)
{
    auto *lev = static_cast<LambdaEvent *>(ev);
    if (lambdaPool_.size() >= maxLambdaPool) {
        delete lev;
        return;
    }
    // Release captured state (shared_ptrs, references) now, not at the
    // next reuse; callers rely on callback destruction after firing.
    lev->disarm();
    lambdaPool_.push_back(lev);
}

void
EventQueue::push(Event *ev, Tick when, bool owned_lambda)
{
    panic_if(when < curTick_,
             "scheduling event '%s' in the past (%llu < %llu)",
             ev->name().c_str(), (unsigned long long)when,
             (unsigned long long)curTick_);
    // No-double-schedule: every caller must have descheduled (or never
    // scheduled) the event; a second live heap entry for the same event
    // would fire its callback twice.
    BCTRL_ASSERT_MSG(!ev->scheduled_,
                     "event '%s' pushed while already scheduled",
                     ev->name().c_str());
    ev->scheduled_ = true;
    ev->squashed_ = false;
    ev->when_ = when;
    ev->sequence_ = nextSequence_++;
    heap_.push(Entry{when, ev->priority(), ev->sequence_, ev,
                     owned_lambda});
    ++liveEvents_;
    // Stale (squashed or superseded) entries linger in the heap, so the
    // heap can only ever be at least as large as the live-event count.
    BCTRL_ASSERT(liveEvents_ <= heap_.size());
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev->scheduled_, "event '%s' is already scheduled",
             ev->name().c_str());
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(!ev->scheduled_, "descheduling unscheduled event '%s'",
             ev->name().c_str());
    // The heap entry stays behind; mark the event squashed so the entry
    // is discarded when popped.
    ev->scheduled_ = false;
    ev->squashed_ = true;
    --liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    push(ev, when, false);
}

void
EventQueue::scheduleLambda(LambdaFn fn, Tick when,
                           int priority)
{
    push(acquireLambda(std::move(fn), priority), when, true);
}

bool
EventQueue::serviceOne(Tick maxTick)
{
    while (!heap_.empty()) {
        // One top() comparison decides both "past maxTick" and "what
        // runs next"; run() then loops here without re-inspecting the
        // heap between events.
        if (heap_.top().when > maxTick)
            return false;
        Entry e = heap_.top();
        heap_.pop();
        Event *ev = e.event;
        // A stale entry: the event was descheduled (and possibly
        // rescheduled, in which case a newer entry exists with a newer
        // sequence number).
        if (ev->squashed_ && ev->sequence_ == e.sequence) {
            ev->squashed_ = false;
            if (e.ownedLambda)
                recycleLambda(ev);
            continue;
        }
        if (!ev->scheduled_ || ev->sequence_ != e.sequence) {
            // Superseded by a reschedule; drop silently.
            continue;
        }
        panic_if(e.when < curTick_, "event time ran backwards");
        // Monotonic-tick contract: the entry about to execute carries
        // the event's current schedule, never a stale earlier one.
        BCTRL_ASSERT_MSG(ev->when_ == e.when && ev->when_ >= curTick_,
                         "event '%s' fired at tick %llu but is "
                         "scheduled for %llu",
                         ev->name().c_str(), (unsigned long long)e.when,
                         (unsigned long long)ev->when_);
        BCTRL_ASSERT(liveEvents_ > 0);
        curTick_ = e.when;
        ev->scheduled_ = false;
        --liveEvents_;
        ++processed_;
        if (profiler_ != nullptr) {
            // The eventLoop slot wraps every callback: it is the
            // denominator for events/sec and the 100% reference the
            // per-component inclusive slots are read against.
            HostProfiler::Scope scope(profiler_,
                                      HostProfiler::Slot::eventLoop);
            ev->process();
        } else {
            ev->process();
        }
        if (e.ownedLambda)
            recycleLambda(ev);
        return true;
    }
    return false;
}

bool
EventQueue::step()
{
    return serviceOne(tickNever);
}

Tick
EventQueue::run(Tick maxTick)
{
    stopRequested_ = false;
    while (!stopRequested_ && serviceOne(maxTick)) {
    }
    return curTick_;
}

} // namespace bctrl
