#include "sim/event_queue.hh"

#include "sim/contracts.hh"

namespace bctrl {

EventQueue::~EventQueue()
{
    // Drain the heap, deleting any queue-owned lambda events that never
    // fired. Externally owned events are left to their owners.
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (e.ownedLambda)
            delete e.event;
    }
}

void
EventQueue::push(Event *ev, Tick when, bool owned_lambda)
{
    panic_if(when < curTick_,
             "scheduling event '%s' in the past (%llu < %llu)",
             ev->name().c_str(), (unsigned long long)when,
             (unsigned long long)curTick_);
    // No-double-schedule: every caller must have descheduled (or never
    // scheduled) the event; a second live heap entry for the same event
    // would fire its callback twice.
    BCTRL_ASSERT_MSG(!ev->scheduled_,
                     "event '%s' pushed while already scheduled",
                     ev->name().c_str());
    ev->scheduled_ = true;
    ev->squashed_ = false;
    ev->when_ = when;
    ev->sequence_ = nextSequence_++;
    heap_.push(Entry{when, ev->priority(), ev->sequence_, ev,
                     owned_lambda});
    ++liveEvents_;
    // Stale (squashed or superseded) entries linger in the heap, so the
    // heap can only ever be at least as large as the live-event count.
    BCTRL_ASSERT(liveEvents_ <= heap_.size());
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev->scheduled_, "event '%s' is already scheduled",
             ev->name().c_str());
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(!ev->scheduled_, "descheduling unscheduled event '%s'",
             ev->name().c_str());
    // The heap entry stays behind; mark the event squashed so the entry
    // is discarded when popped.
    ev->scheduled_ = false;
    ev->squashed_ = true;
    --liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    push(ev, when, false);
}

void
EventQueue::scheduleLambda(std::function<void()> fn, Tick when,
                           int priority)
{
    auto *ev = new LambdaEvent(std::move(fn), priority);
    push(ev, when, true);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        Event *ev = e.event;
        // A stale entry: the event was descheduled (and possibly
        // rescheduled, in which case a newer entry exists with a newer
        // sequence number).
        if (ev->squashed_ && ev->sequence_ == e.sequence) {
            ev->squashed_ = false;
            if (e.ownedLambda)
                delete ev;
            continue;
        }
        if (!ev->scheduled_ || ev->sequence_ != e.sequence) {
            // Superseded by a reschedule; drop silently.
            continue;
        }
        panic_if(e.when < curTick_, "event time ran backwards");
        // Monotonic-tick contract: the entry about to execute carries
        // the event's current schedule, never a stale earlier one.
        BCTRL_ASSERT_MSG(ev->when_ == e.when && ev->when_ >= curTick_,
                         "event '%s' fired at tick %llu but is "
                         "scheduled for %llu",
                         ev->name().c_str(), (unsigned long long)e.when,
                         (unsigned long long)ev->when_);
        BCTRL_ASSERT(liveEvents_ > 0);
        curTick_ = e.when;
        ev->scheduled_ = false;
        --liveEvents_;
        ++processed_;
        ev->process();
        if (e.ownedLambda)
            delete ev;
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick maxTick)
{
    while (!heap_.empty()) {
        if (heap_.top().when > maxTick)
            break;
        step();
    }
    return curTick_;
}

} // namespace bctrl
