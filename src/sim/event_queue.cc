#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/contracts.hh"
#include "sim/host_profiler.hh"

namespace bctrl {

namespace {
/**
 * Initial reservations. A typical run keeps a few hundred events in
 * flight; reserving up front avoids the first several doublings of the
 * drain/overflow vectors on every System construction.
 */
constexpr std::size_t initialDrainCapacity = 1024;
constexpr std::size_t initialOverflowCapacity = 256;

/**
 * Free-list pools larger than this are trimmed by deleting returned
 * events instead of parking them, bounding idle memory after a burst.
 */
constexpr std::size_t maxLambdaPool = 4096;

/**
 * The shard whose grant is executing on this thread (null on the
 * coordinator and in serial mode). push() consults it to decide
 * between a direct ladder insert and a cross-domain mailbox post.
 * Function-local so there is no namespace-scope mutable state.
 */
EventQueue *&
tlsActiveShard()
{
    static thread_local EventQueue *shard = nullptr;
    return shard;
}

/**
 * Smallest order key this thread cross-posted to another shard during
 * the current grant. A posted event may be the true global next event,
 * so the grant must not execute past it (the conservative PDES rule).
 */
EventQueue::OrderKey &
tlsMinPosted()
{
    static thread_local EventQueue::OrderKey key;
    return key;
}
} // namespace

EventQueue::EventQueue(Domain domain)
    : domain_(domain), primary_(this)
{
    drain_.reserve(initialDrainCapacity);
    buckets_.resize(numBuckets);
    std::vector<Entry> storage;
    storage.reserve(initialOverflowCapacity);
    overflow_ = std::priority_queue<Entry, std::vector<Entry>,
                                    EntryAfter>(EntryAfter{},
                                                std::move(storage));
}

EventQueue::~EventQueue()
{
    // Drain every storage tier, deleting queue-owned lambda events that
    // never fired. Externally owned events are left to their owners.
    // Owned lambdas are deleted directly (never recycled) because in a
    // shard group the pool lives on the primary, which may already be
    // gone when a secondary shard is destroyed.
    auto destroyEntry = [](const Entry &e) {
        if (e.ownedLambda())
            delete e.event;
    };
    for (std::size_t i = drainPos_; i < drain_.size(); ++i)
        destroyEntry(drain_[i]);
    for (const std::vector<Entry> &bucket : buckets_)
        for (const Entry &e : bucket)
            destroyEntry(e);
    while (!overflow_.empty()) {
        destroyEntry(overflow_.top());
        overflow_.pop();
    }
    if (mailboxes_ != nullptr) {
        // A run aborted by the watchdog can leave undrained posts.
        Entry e;
        for (std::size_t d = 0; d < numDomains; ++d)
            while (mailboxes_->fromDomain[d].pop(e))
                destroyEntry(e);
    }
    for (LambdaEvent *ev : lambdaPool_)
        delete ev;
}

LambdaEvent *
EventQueue::acquireLambda(LambdaFn fn, int priority)
{
    EventQueue *p = primary_;
    if (fn.spilled())
        ++p->lambdaSpills_;
    if (p->lambdaPool_.empty()) {
        ++p->lambdaAllocs_;
        return new LambdaEvent(std::move(fn), priority);
    }
    LambdaEvent *ev = p->lambdaPool_.back();
    p->lambdaPool_.pop_back();
    ev->rearm(std::move(fn), priority);
    return ev;
}

void
EventQueue::recycleLambda(Event *ev)
{
    EventQueue *p = primary_;
    auto *lev = static_cast<LambdaEvent *>(ev);
    if (p->lambdaPool_.size() >= maxLambdaPool) {
        delete lev;
        return;
    }
    // Release captured state (shared_ptrs, references) now, not at the
    // next reuse; callers rely on callback destruction after firing.
    lev->disarm();
    p->lambdaPool_.push_back(lev);
}

void
EventQueue::discardStale(const Entry &e)
{
    Event *ev = e.event;
    ++stalePurged_;
    // When this entry is the event's current (squashed) incarnation,
    // clear the mark so the event can be scheduled again. Superseded
    // entries (a reschedule minted a newer sequence) drop silently.
    if (ev->squashed_ && ev->sequence_ == e.prioSeq) {
        ev->squashed_ = false;
        if (e.ownedLambda())
            recycleLambda(ev);
    }
}

void
EventQueue::push(Event *ev, Tick when, bool owned_lambda)
{
    EventQueue *p = primary_;
    panic_if(when < p->curTick_,
             "scheduling event '%s' in the past (%llu < %llu)",
             ev->name().c_str(), (unsigned long long)when,
             (unsigned long long)p->curTick_);
    // No-double-schedule: every caller must have descheduled (or never
    // scheduled) the event; a second live ladder entry for the same
    // event would fire its callback twice.
    BCTRL_ASSERT_MSG(!ev->scheduled_,
                     "event '%s' pushed while already scheduled",
                     ev->name().c_str());
    // The packed word needs the priority to fit its 16-bit field and
    // the sequence its 47 bits; both hold by construction (priorities
    // are small enum-scale ints, 2^47 schedules is out of reach).
    BCTRL_ASSERT(ev->priority() >= -(1 << 15) &&
                 ev->priority() < (1 << 15));
    ev->scheduled_ = true;
    ev->squashed_ = false;
    ev->when_ = when;
    ev->sequence_ =
        packPrioSeq(ev->priority(), p->nextSequence_++, owned_lambda);
    ++p->liveEvents_;
    const Entry e{when, ev->sequence_, ev};
    if (mailboxes_ != nullptr) {
        EventQueue *active = tlsActiveShard();
        if (active != nullptr && active != this) {
            postCross(e);
            return;
        }
    }
    insertEntry(e);
}

void
EventQueue::insertEntry(const Entry &e)
{
    ++totalEntries_;
    if (e.when < activeEnd_) {
        // Inside (or before) the active window: merge into the sorted
        // pending tail of the drain array. The tail is a handful of
        // entries, so the shift is cheaper than heap maintenance and
        // dispatch stays a branch-free array walk. An entry keyed
        // before the current head (same tick, lower priority value)
        // lands at drainPos_ and correctly runs next.
        const auto it = std::upper_bound(drain_.begin() + drainPos_,
                                         drain_.end(), e, EntryBefore{});
        drain_.insert(it, e);
    } else if (e.when < horizon_) {
        buckets_[bucketIndexOf(e.when)].push_back(e);
        ++ladderCount_;
    } else {
        overflow_.push(e);
    }
}

void
EventQueue::postCross(const Entry &e)
{
    EventQueue *active = tlsActiveShard();
    mailboxes_->fromDomain[static_cast<std::size_t>(active->domain_)]
        .push(e);
    OrderKey &min_posted = tlsMinPosted();
    const OrderKey k = e.key();
    if (k < min_posted)
        min_posted = k;
}

void
EventQueue::drainMailboxes()
{
    Entry e;
    for (std::size_t d = 0; d < numDomains; ++d)
        while (mailboxes_->fromDomain[d].pop(e))
            insertEntry(e);
}

void
EventQueue::loadBucket(std::vector<Entry> &bucket)
{
    // Swap storage so vector capacities circulate between the drain
    // array and the buckets instead of reallocating every window.
    drain_.clear();
    drainPos_ = 0;
    drain_.swap(bucket);
    ladderCount_ -= drain_.size();
    // Purge stale entries wholesale before sorting: squashed timers
    // (watchdog re-arms, retried requests) die here instead of
    // lingering in pending storage until their tick comes up.
    std::size_t live = 0;
    for (const Entry &e : drain_) {
        Event *ev = e.event;
        if (ev->scheduled_ && ev->sequence_ == e.prioSeq) {
            drain_[live++] = e;
        } else {
            discardStale(e);
            --totalEntries_;
        }
    }
    drain_.resize(live);
    std::sort(drain_.begin(), drain_.end(), EntryBefore{});
}

bool
EventQueue::advanceWindow()
{
    BCTRL_ASSERT(drainPos_ >= drain_.size());
    drain_.clear();
    drainPos_ = 0;
    for (;;) {
        if (ladderCount_ == 0) {
            if (overflow_.empty())
                return false;
            // The ladder is empty: rebase the window directly at the
            // next overflow tick instead of stepping bucket by bucket
            // across a potentially huge gap (watchdog-only idle).
            const Tick w = overflow_.top().when;
            const Tick window_start = (w >> bucketBits) << bucketBits;
            activeIdx_ = bucketIndexOf(w);
            activeEnd_ = window_start + bucketWidth;
            horizon_ = window_start + ladderSpan;
        } else {
            activeIdx_ = (activeIdx_ + 1) & (numBuckets - 1);
            activeEnd_ += bucketWidth;
            horizon_ += bucketWidth;
        }
        // Refill: overflow entries that fell under the advancing
        // horizon belong in the just-freed tail buckets.
        while (!overflow_.empty() && overflow_.top().when < horizon_) {
            const Entry &e = overflow_.top();
            buckets_[bucketIndexOf(e.when)].push_back(e);
            ++ladderCount_;
            overflow_.pop();
        }
        std::vector<Entry> &bucket = buckets_[activeIdx_];
        if (!bucket.empty()) {
            loadBucket(bucket);
            if (drainPos_ < drain_.size())
                return true;
            // Every entry in the bucket was stale; keep advancing.
        }
    }
}

const EventQueue::Entry *
EventQueue::peekHead()
{
    for (;;) {
        if (drainPos_ < drain_.size()) {
            const Entry &d = drain_[drainPos_];
            Event *ev = d.event;
            if (ev->scheduled_ && ev->sequence_ == d.prioSeq)
                return &drain_[drainPos_];
            discardStale(d);
            ++drainPos_;
            --totalEntries_;
            continue;
        }
        if (!advanceWindow())
            return nullptr;
    }
}

void
EventQueue::popHead()
{
    // peekHead() left the head at the drain cursor.
    BCTRL_ASSERT(drainPos_ < drain_.size());
    ++drainPos_;
    --totalEntries_;
}

void
EventQueue::execute(const Entry &e)
{
    EventQueue *p = primary_;
    Event *ev = e.event;
    panic_if(e.when < p->curTick_, "event time ran backwards");
    // Monotonic-tick contract: the entry about to execute carries the
    // event's current schedule, never a stale earlier one.
    BCTRL_ASSERT_MSG(ev->when_ == e.when && ev->when_ >= p->curTick_,
                     "event '%s' fired at tick %llu but is "
                     "scheduled for %llu",
                     ev->name().c_str(), (unsigned long long)e.when,
                     (unsigned long long)ev->when_);
    BCTRL_ASSERT(p->liveEvents_ > 0);
    p->curTick_ = e.when;
    ev->scheduled_ = false;
    --p->liveEvents_;
    ++p->processed_;
    if (p->profiler_ != nullptr) {
        // The eventLoop slot wraps every callback: it is the
        // denominator for events/sec and the 100% reference the
        // per-component inclusive slots are read against.
        HostProfiler::Scope scope(p->profiler_,
                                  HostProfiler::Slot::eventLoop);
        ev->process();
    } else {
        ev->process();
    }
    if (e.ownedLambda())
        recycleLambda(ev);
}

bool
EventQueue::serviceOne(Tick maxTick)
{
    const Entry *head = peekHead();
    if (head == nullptr || head->when > maxTick)
        return false;
    // Copy before popping: process() may grow drain_/overlay_ and
    // invalidate the pointer.
    const Entry e = *head;
    popHead();
    execute(e);
    return true;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev->scheduled_, "event '%s' is already scheduled",
             ev->name().c_str());
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(!ev->scheduled_, "descheduling unscheduled event '%s'",
             ev->name().c_str());
    // The ladder entry stays behind; mark the event squashed so the
    // entry is purged when its bucket drains (or discarded at peek).
    ev->scheduled_ = false;
    ev->squashed_ = true;
    --primary_->liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    push(ev, when, false);
}

void
EventQueue::scheduleLambda(LambdaFn fn, Tick when, int priority)
{
    push(acquireLambda(std::move(fn), priority), when, true);
}

bool
EventQueue::step()
{
    return serviceOne(tickNever);
}

Tick
EventQueue::run(Tick maxTick)
{
    EventQueue *p = primary_;
    p->stopRequested_ = false;
    if (maxTick == tickNever) {
        // Batched dispatch: System::run() always runs unbounded, so
        // the common case skips the per-event maxTick compare and
        // dispatches straight off the sorted drain array — no
        // comparisons against other storage tiers at all.
        while (!p->stopRequested_) {
            if (drainPos_ < drain_.size()) {
                const Entry e = drain_[drainPos_++];
                --totalEntries_;
                Event *ev = e.event;
                if (ev->scheduled_ && ev->sequence_ == e.prioSeq)
                    execute(e);
                else
                    discardStale(e);
                continue;
            }
            if (!advanceWindow())
                break;
        }
    } else {
        while (!p->stopRequested_ && serviceOne(maxTick)) {
        }
    }
    return p->curTick_;
}

bool
EventQueue::headKey(OrderKey &out)
{
    if (mailboxes_ != nullptr)
        drainMailboxes();
    const Entry *head = peekHead();
    if (head == nullptr)
        return false;
    out = head->key();
    return true;
}

std::uint64_t
EventQueue::runGranted(const OrderKey &bound)
{
    BCTRL_ASSERT(mailboxes_ != nullptr);
    EventQueue *p = primary_;
    tlsActiveShard() = this;
    tlsMinPosted() = OrderKey{}; // +infinity sentinel
    drainMailboxes();
    std::uint64_t executed = 0;
    while (!p->stopRequested_) {
        const Entry *head = peekHead();
        if (head == nullptr)
            break;
        const OrderKey k = head->key();
        // The effective bound shrinks to the smallest key this grant
        // cross-posted: that event may be the true global next one,
        // and only the coordinator may decide.
        const OrderKey &min_posted = tlsMinPosted();
        const OrderKey &eff = min_posted < bound ? min_posted : bound;
        if (!(k < eff))
            break;
        const Entry e = *head;
        popHead();
        execute(e);
        ++executed;
    }
    tlsActiveShard() = nullptr;
    return executed;
}

void
EventQueue::joinShardGroup(EventQueue *primary)
{
    panic_if(totalEntries_ != 0 || !overflow_.empty() ||
                 (this != primary && liveEvents_ != 0),
             "queue joined a shard group while holding events");
    primary_ = primary;
    mailboxes_ = std::make_unique<Mailboxes>();
}

} // namespace bctrl
