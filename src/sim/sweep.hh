/**
 * @file
 * Parallel sweep engine: runs many independent (workload, config)
 * simulations across a worker pool, one fully isolated System (and
 * therefore EventQueue, Random, stats) per run.
 *
 * Determinism guarantees:
 *  - every point is simulated on a private System built from its own
 *    SystemConfig copy; no simulation state is shared between workers;
 *  - results are keyed by sweep index (the order points were given),
 *    never by completion order;
 *  - a parallel sweep produces bit-identical RunResults and stats
 *    dumps to a serial sweep (jobs = 1) of the same points, because
 *    host-side scheduling can only affect *when* a run happens, not
 *    what it computes.
 *
 * Host wall time and host events/second are measured per run for
 * throughput reporting; they are the only nondeterministic outputs and
 * are kept out of RunResult.
 */

#ifndef BCTRL_SIM_SWEEP_HH
#define BCTRL_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "config/system_builder.hh"

namespace bctrl {

/** One point of a sweep: a workload on a complete configuration. */
struct SweepPoint {
    std::string workload;
    SystemConfig config;
    /**
     * Optional hook run on the freshly constructed System before the
     * workload starts (attack injection, trace hooks, ...). It runs on
     * the worker's thread; it must only touch this run's System and
     * state private to this point (e.g. a per-index slot).
     */
    std::function<void(System &, std::size_t index)> prepare;
};

/** The measurements of one sweep point. */
struct SweepOutcome {
    std::size_t index = 0;    ///< position in the input vector
    std::string workload;
    RunResult result;
    /** Host events executed by this run's queue (deterministic). */
    std::uint64_t hostEvents = 0;
    /** Host wall-clock seconds this run took (nondeterministic). */
    double hostSeconds = 0;
    /** Host events per second (nondeterministic). */
    double hostEventsPerSec = 0;
    /** Full per-component stats dump (only with captureStats). */
    std::string statsDump;
    /** Flat JSON stats object (only with captureStatsJson). */
    std::string statsJson;
    /**
     * Simulated-state-only stats dump (only with captureSimStats):
     * component counters and extra stats, no host-side blocks. This is
     * the dump that must match byte for byte between a serial and a
     * sharded run of the same point (System::dumpSimStats).
     */
    std::string simStatsDump;
    /**
     * Chrome-trace event fragment for this run (only when the point's
     * config has a nonzero traceMask): the comma-separated event
     * objects with pid = index + 1, ready to merge into one document.
     */
    std::string traceJson;
    /**
     * Host profile (only when the point's config enables hostProfile):
     * wall seconds and call counts indexed by HostProfiler::Slot.
     */
    std::vector<double> profileSeconds;
    std::vector<std::uint64_t> profileCalls;
};

struct SweepOptions {
    /** Worker threads; 0 means one per hardware thread. */
    unsigned jobs = 0;
    /** Capture each run's System::dumpStats() into the outcome. */
    bool captureStats = false;
    /** Capture each run's System::dumpStatsJson() into the outcome. */
    bool captureStatsJson = false;
    /** Capture each run's System::dumpSimStats() into the outcome
     * (the serial-vs-sharded bit-identity comparison surface). */
    bool captureSimStats = false;
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});

    /**
     * Run every point and return outcomes ordered by sweep index.
     * With jobs == 1 the points run inline on the calling thread (the
     * serial reference path); otherwise a pool of min(jobs, points)
     * threads drains an atomic work counter.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepPoint> &points);

    /** Simulate a single point (used by both serial and pool paths). */
    static SweepOutcome runPoint(const SweepPoint &point,
                                 std::size_t index, bool capture_stats,
                                 bool capture_stats_json = false,
                                 bool capture_sim_stats = false);

    /** The worker count this engine resolves to. */
    unsigned effectiveJobs() const;

  private:
    SweepOptions options_;
};

/** Convenience wrapper: one-shot sweep. */
std::vector<SweepOutcome> runSweep(const std::vector<SweepPoint> &points,
                                   SweepOptions options = {});

} // namespace bctrl

#endif // BCTRL_SIM_SWEEP_HH
