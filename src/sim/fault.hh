/**
 * @file
 * Deterministic fault injection at the simulator's trust borders.
 *
 * The paper's premise is that accelerators are buggy or malicious, so
 * the protocol must stay safe under dropped, delayed, duplicated, and
 * corrupted traffic — not just clean runs. A FaultEngine sits behind
 * the EventQueue (same wiring contract as tracing): every border
 * crossing asks fault::decide() whether to perturb the message. With
 * no engine installed the cost is one pointer-load-and-branch and the
 * simulation is bit-identical to a build without this file.
 *
 * Determinism: the engine draws from its own seeded bctrl::Random in
 * discrete-event order, so a (seed, plan, config) triple replays the
 * exact same fault sequence on any platform.
 *
 * The companion Watchdog detects simulated-time hangs (no forward
 * progress while requests are outstanding, or a dropped message held
 * beyond a bound) and stops the event loop with a packet-lifecycle
 * report instead of spinning forever.
 */

#ifndef BCTRL_SIM_FAULT_HH
#define BCTRL_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bctrl {
namespace fault {

/**
 * Named injection points: one per trust/component border a message can
 * cross. Sites consult the engine exactly where the message would be
 * handed to the other side.
 */
enum class Point : unsigned {
    gpuRequest = 0,  ///< accelerator request arriving at Border Control
    atsResponse,     ///< ATS translation response delivered to requester
    bccFill,         ///< Border Control Cache fill from Protection Table
    shootdownAck,    ///< TLB shootdown round acknowledgement
    dramResponse,    ///< DRAM read/write completion
    coherenceMsg,    ///< message entering the coherence point
};

constexpr unsigned numPoints = 6;

/** What the fault does to the crossing message. */
enum class Kind : unsigned {
    none = 0,
    drop,          ///< message vanishes (held by the engine, see below)
    delay,         ///< message delivered delayTicks late
    duplicate,     ///< message delivered twice
    corruptPerms,  ///< permission bits flipped in the payload
    stuckAt,       ///< payload replaced with the first value ever seen
};

const char *pointName(Point p);
const char *kindName(Kind k);
bool parsePoint(const std::string &s, Point &out);
bool parseKind(const std::string &s, Kind &out);

/** One per-point gate: fire with @p rate inside the tick window. */
struct Rule {
    Point point = Point::gpuRequest;
    Kind kind = Kind::none;
    /** Probability a crossing inside the window is perturbed. */
    double rate = 0.0;
    /** Extra delivery latency for Kind::delay. */
    Tick delayTicks = 0;
    /** Inclusive tick window the rule is armed in. */
    Tick windowStart = 0;
    Tick windowEnd = tickNever;
    /** Stop after this many injections (bounds livelock pressure). */
    std::uint64_t maxFires = ~std::uint64_t(0);
};

/**
 * A complete chaos configuration: seed + rules + watchdog cadence.
 * An inactive plan (default) installs neither engine nor watchdog, so
 * the zero-fault path stays bit-identical — including host-side event
 * counts — to a run that never heard of fault injection.
 */
struct FaultPlan {
    std::uint64_t seed = 0x5eedfa0175bcULL;
    std::vector<Rule> rules;
    /**
     * Watchdog check cadence in ticks; 0 disables the watchdog. Must
     * comfortably exceed the longest legitimate progress gap (page
     * fault service is 400k ticks; 20M ticks = 20 µs is safe).
     */
    Tick watchdogInterval = 0;

    bool active() const { return !rules.empty() || watchdogInterval != 0; }
};

/** The verdict decide() hands back to an injection site. */
struct Decision {
    Kind kind = Kind::none;
    Tick delay = 0;
};

/**
 * The per-System fault engine. Owned by System, reached through
 * EventQueue::faultEngine() (null when no plan is active).
 *
 * Drop semantics: a "dropped" message is really held — the site hands
 * the engine a delivery thunk which releaseDropped() re-delivers after
 * the engine is disabled (at watchdog recovery or normal completion).
 * This keeps drops indistinguishable from infinite delay while the
 * plan is live, yet lets caches, MSHRs, and the packet pool drain so
 * teardown contracts and sanitizers stay clean on every chaos run.
 *
 * Ground truth for the safety invariant: when a corrupt-perms fault
 * upgrades a translation, the engine records the poisoned frames;
 * DRAM audits accelerator writes against that set. Any poisoned write
 * reaching DRAM is an unsafe access that escaped the checker.
 */
class FaultEngine
{
  public:
    explicit FaultEngine(const FaultPlan &plan);

    /** Ask whether the crossing at @p point is perturbed at @p now. */
    Decision decide(Point point, Tick now);

    /** Master switch; disabled engines never perturb anything. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /**
     * Suppress decisions for the current scope. Used when a site
     * re-enters itself to deliver a duplicate, so the copy cannot
     * recursively fault into a duplication storm.
     */
    class Suppressor
    {
      public:
        explicit Suppressor(FaultEngine *engine) : engine_(engine)
        {
            if (engine_ != nullptr)
                ++engine_->suppress_;
        }
        ~Suppressor()
        {
            if (engine_ != nullptr)
                --engine_->suppress_;
        }
        Suppressor(const Suppressor &) = delete;
        Suppressor &operator=(const Suppressor &) = delete;

      private:
        FaultEngine *engine_;
    };

    /** @name Held (dropped) messages */
    /// @{
    void holdDropped(const char *site, Tick now,
                     std::function<void()> deliver);
    std::size_t heldCount() const { return held_.size(); }
    /** Hold tick of the oldest held message; tickNever when none. */
    Tick oldestHeldTick() const;
    /** Re-deliver every held message now; disable the engine first. */
    void releaseDropped(EventQueue &eq);
    /** One "site@tick" line per held message (watchdog report). */
    std::string describeHeld() const;
    /// @}

    /** @name Poisoned-translation ground truth */
    /// @{
    void notePoisonedPage(Addr ppn);
    bool poisoned(Addr ppn) const
    {
        return !poisoned_.empty() && poisoned_.count(ppn) != 0;
    }
    /** An accelerator write to a poisoned frame reached DRAM. */
    void noteUnsafeWrite();
    std::uint64_t unsafeWrites() const
    {
        return static_cast<std::uint64_t>(unsafeWrites_.value());
    }
    /// @}

    /**
     * Stuck-at payload memory for address-valued points: the first
     * faulted value is captured; later faults replace @p addr with it.
     * @return true if @p addr was replaced.
     */
    bool stickAddr(Point point, Addr &addr);

    std::uint64_t injected(Point point) const;
    std::uint64_t totalInjected() const;
    std::uint64_t dropsReleased() const
    {
        return static_cast<std::uint64_t>(dropsReleased_.value());
    }

    stats::StatGroup &statGroup() { return stats_; }

  private:
    FaultPlan plan_;
    bool enabled_ = true;
    unsigned suppress_ = 0;
    Random rng_;

    /** Rule indices per point, so decide() scans only its own rules. */
    std::array<std::vector<std::size_t>, numPoints> rulesByPoint_;
    std::vector<std::uint64_t> fires_;

    struct Held {
        const char *site;
        Tick heldAt;
        std::function<void()> deliver;
    };
    std::vector<Held> held_;

    std::unordered_set<Addr> poisoned_;
    std::array<Addr, numPoints> stuckValue_{};
    std::array<bool, numPoints> stuckValid_{};

    stats::StatGroup stats_;
    std::array<stats::Scalar *, numPoints> injectedByPoint_{};
    stats::Scalar &dropsHeld_;
    stats::Scalar &dropsReleased_;
    stats::Scalar &poisonedPages_;
    stats::Scalar &unsafeWrites_;
};

/**
 * Simulated-time hang detector. Armed only when a FaultPlan asks for
 * it; checks every interval whether response deliveries ("progress
 * marks", fed by EventQueue::noteProgress) advanced. A stall with
 * requests outstanding, or a dropped message held for a full interval,
 * is declared a hang: the watchdog records a packet-lifecycle report
 * and stops the event loop instead of letting the run spin or drain
 * into a silent half-finished state.
 */
class Watchdog : public Event
{
  public:
    Watchdog(EventQueue &eq, FaultEngine *engine, Tick interval);

    /** Start checking; first check one interval from now. */
    void arm();
    /** Stop checking (idempotent). */
    void disarm();

    /** Probe for "requests still outstanding" (e.g. GPU mem ops). */
    void setOutstandingProbe(std::function<std::uint64_t()> probe)
    {
        outstandingProbe_ = std::move(probe);
    }
    /**
     * Probe for "the run is over": once true the watchdog stops
     * rescheduling itself so the event queue can drain. Without it a
     * finished sim would idle forever under an armed watchdog.
     */
    void setDoneProbe(std::function<bool()> probe)
    {
        doneProbe_ = std::move(probe);
    }
    /** Extra report lines (packet pool state, component queues). */
    void addReporter(std::function<std::string()> reporter)
    {
        reporters_.push_back(std::move(reporter));
    }

    bool hangDetected() const { return hangDetected_; }
    Tick hangTick() const { return hangTick_; }
    const std::string &report() const { return report_; }

    void process() override;
    std::string name() const override { return "watchdog"; }

  private:
    EventQueue &eq_;
    FaultEngine *engine_;
    Tick interval_;
    std::uint64_t lastProgress_ = 0;
    bool hangDetected_ = false;
    Tick hangTick_ = 0;
    std::string report_;
    std::function<std::uint64_t()> outstandingProbe_;
    std::function<bool()> doneProbe_;
    std::vector<std::function<std::string()>> reporters_;
};

/**
 * The injection-site helper: one pointer test when no engine is
 * installed, a seeded draw when one is.
 */
inline Decision
decide(EventQueue &eq, Point point)
{
    FaultEngine *engine = eq.faultEngine();
    if (engine == nullptr)
        return Decision{};
    return engine->decide(point, eq.curTick());
}

} // namespace fault
} // namespace bctrl

#endif // BCTRL_SIM_FAULT_HH
