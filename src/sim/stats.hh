/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Components own Scalar / Average / Distribution / Formula statistics,
 * register them with a StatGroup, and a whole system's stats can be
 * dumped as text or harvested programmatically by the benchmark
 * harnesses.
 */

#ifndef BCTRL_SIM_STATS_HH
#define BCTRL_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace bctrl {
namespace stats {

/** Base class for all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render this stat's value(s) to @p os, one line per value. */
    virtual void print(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically updated counter / value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void print(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** Mean / count / min / max of a stream of samples. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** A value computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void print(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named group of statistics. Groups form a tree through the owning
 * SimObjects; the root group prints everything.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix) : prefix_(std::move(prefix)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a Scalar named "<prefix>.<name>". */
    Scalar &scalar(const std::string &name, const std::string &desc);
    /** Create and register a Distribution. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc);
    /** Create and register a Formula. */
    Formula &formula(const std::string &name, const std::string &desc,
                     std::function<double()> fn);

    /** Register a child group (not owned). */
    void addChild(StatGroup *child) { children_.push_back(child); }

    /** Find a stat by fully qualified name; nullptr if absent. */
    const Stat *find(const std::string &full_name) const;

    /** Print this group's and all children's stats. */
    void print(std::ostream &os) const;

    /** Reset this group's and all children's stats. */
    void reset();

    const std::string &prefix() const { return prefix_; }

  private:
    std::string prefix_;
    std::vector<std::unique_ptr<Stat>> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace bctrl

#endif // BCTRL_SIM_STATS_HH
