/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Components own Scalar / Average / Distribution / Histogram / Formula
 * statistics, register them with a StatGroup, and a whole system's
 * stats can be dumped as text or JSON, or harvested programmatically
 * by the benchmark harnesses.
 */

#ifndef BCTRL_SIM_STATS_HH
#define BCTRL_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace bctrl {
namespace stats {

/**
 * Locale-independent JSON number rendering (shortest round-trip, '.'
 * separator whatever LC_NUMERIC says; non-finite values degrade to
 * "0", which JSON cannot represent).
 */
std::string jsonNumber(double v);

/** Quote and escape @p s as a JSON string (including the quotes). */
std::string jsonQuote(const std::string &s);

/** Base class for all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render this stat's value(s) to @p os, one line per value. */
    virtual void print(std::ostream &os) const = 0;

    /** Render this stat's value(s) as a JSON value (no name, no key). */
    virtual void printJson(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically updated counter / value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** Mean / count / min / max / stddev of a stream of samples. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    /** Population standard deviation (0 with fewer than 2 samples). */
    double stdev() const;

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0;
    /** Welford running mean / sum of squared deviations (for stdev). */
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * A log₂-bucketed histogram for latency- and occupancy-style samples.
 *
 * Bucket 0 holds samples in [0, 1) (negative samples clamp to it);
 * bucket i ≥ 1 holds [2^(i-1), 2^i). 65 buckets cover the full Tick
 * range, so sampling never saturates. Percentiles are estimated by a
 * cumulative walk with linear interpolation inside the landing bucket,
 * clamped to the observed [min, max] — a constant stream therefore
 * reports that constant for every percentile, and any percentile is
 * exact to within its bucket's width.
 */
class Histogram : public Stat
{
  public:
    using Stat::Stat;

    static constexpr unsigned numBuckets = 65;

    /** Bucket index @p v lands in (static so tests can pin edges). */
    static unsigned bucketOf(double v);
    /** Inclusive lower edge of bucket @p i. */
    static double bucketLow(unsigned i);
    /** Exclusive upper edge of bucket @p i. */
    static double bucketHigh(unsigned i);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /**
     * Estimated value at fraction @p p (0 < p <= 1) of the sample
     * distribution; 0 when empty.
     */
    double percentile(double p) const;
    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }

    const std::array<std::uint64_t, numBuckets> &buckets() const
    {
        return buckets_;
    }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** A value computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

    /**
     * Intentionally empty: a Formula is a stateless view over other
     * stats, so resetting the group resets its inputs and the formula's
     * value follows. There is nothing here to clear.
     */
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named group of statistics. Groups form a tree through the owning
 * SimObjects; the root group prints everything.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix) : prefix_(std::move(prefix)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a Scalar named "<prefix>.<name>". */
    Scalar &scalar(const std::string &name, const std::string &desc);
    /** Create and register a Distribution. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc);
    /** Create and register a Histogram. */
    Histogram &histogram(const std::string &name,
                         const std::string &desc);
    /** Create and register a Formula. */
    Formula &formula(const std::string &name, const std::string &desc,
                     std::function<double()> fn);

    /** Register a child group (not owned). */
    void addChild(StatGroup *child) { children_.push_back(child); }

    /** Find a stat by fully qualified name; nullptr if absent. */
    const Stat *find(const std::string &full_name) const;

    /** Print this group's and all children's stats. */
    void print(std::ostream &os) const;

    /**
     * Render this group (and children) as one flat JSON object keyed
     * by fully qualified stat name.
     */
    void printJson(std::ostream &os) const;

    /**
     * Emit only the "name": value members (no surrounding braces), so
     * several root groups can merge into one object. @p first tracks
     * comma placement across calls and must start true.
     */
    void printJsonInto(std::ostream &os, bool &first) const;

    /** Reset this group's and all children's stats. */
    void reset();

    const std::string &prefix() const { return prefix_; }

  private:
    /** Take ownership of @p stat and index it by full name. */
    template <typename T>
    T &adopt(std::unique_ptr<T> stat);

    std::string prefix_;
    std::vector<std::unique_ptr<Stat>> stats_;
    /** Name index so find() is O(1) per group instead of a scan. */
    std::unordered_map<std::string, const Stat *> byName_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace bctrl

#endif // BCTRL_SIM_STATS_HH
