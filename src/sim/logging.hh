/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated; aborts.
 * fatal()  - the user asked for something unsatisfiable; exits cleanly.
 * warn()   - something questionable happened but simulation continues.
 * inform() - status output for the user.
 */

#ifndef BCTRL_SIM_LOGGING_HH
#define BCTRL_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace bctrl {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

/** Enable or disable inform()/warn() output (tests silence it). */
void setLogVerbose(bool verbose);

/** @return whether inform()/warn() output is enabled. */
bool logVerbose();

/** printf-style formatting into a std::string. */
std::string vformatString(const char *fmt, std::va_list args);
std::string formatString(const char *fmt, ...);

} // namespace bctrl

#define panic(...) ::bctrl::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::bctrl::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::bctrl::warnImpl(__VA_ARGS__)
#define inform(...) ::bctrl::informImpl(__VA_ARGS__)

#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // BCTRL_SIM_LOGGING_HH
