/**
 * @file
 * InlineFunction: a move-only callable wrapper with a fixed-capacity
 * inline buffer, for the simulator's hot callback paths.
 *
 * `std::function` heap-allocates any capture larger than its small
 * libstdc++ SSO buffer (~16 bytes), which puts malloc/free on the
 * critical path of every simulated memory request (GPU issue lambdas
 * run ~112 bytes of capture). InlineFunction stores the callable
 * inside the wrapper itself whenever it fits in `Capacity` bytes; a
 * larger callable still works — it spills to a single heap allocation
 * — but the spill is observable via `spilled()` so the allocation
 * profile can count it and tests can assert the hot paths stay inline.
 *
 * Capacity contract: pick Capacity from the *measured* worst-case hot
 * capture, not from hope. The capacities used by the simulator are
 * documented where the aliases are declared (EventQueue::LambdaFn and
 * Packet::onResponse); growing a capture past them is legal but shows
 * up as a nonzero `callbackHeapSpills` counter in the allocation
 * profile, which the perf-label allocation-ceiling test rejects.
 */

#ifndef BCTRL_SIM_INLINE_FUNCTION_HH
#define BCTRL_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bctrl {

template <typename Signature, std::size_t Capacity>
class InlineFunction; // undefined; only the R(Args...) partial below

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
    static_assert(Capacity >= sizeof(void *),
                  "capacity must hold at least the heap-spill pointer");

  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        construct(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        destroy();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction &
    operator=(F &&f)
    {
        destroy();
        construct(std::forward<F>(f));
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { destroy(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True iff the stored callable lives on the heap (capacity miss). */
    bool spilled() const noexcept { return ops_ != nullptr && ops_->heap; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

  private:
    struct Ops {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src); // move-construct + destroy
        void (*destroy)(void *);
        bool heap;
    };

    template <typename F>
    struct InlineOps {
        static R
        invoke(void *p, Args &&...args)
        {
            return (*static_cast<F *>(p))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src)
        {
            F *s = static_cast<F *>(src);
            ::new (dst) F(std::move(*s));
            s->~F();
        }
        static void destroy(void *p) { static_cast<F *>(p)->~F(); }
    };

    template <typename F>
    struct HeapOps {
        static R
        invoke(void *p, Args &&...args)
        {
            return (**static_cast<F **>(p))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src)
        {
            *static_cast<F **>(dst) = *static_cast<F **>(src);
        }
        static void destroy(void *p) { delete *static_cast<F **>(p); }
    };

    template <typename F>
    static constexpr Ops kInlineOps{&InlineOps<F>::invoke,
                                    &InlineOps<F>::relocate,
                                    &InlineOps<F>::destroy, false};
    template <typename F>
    static constexpr Ops kHeapOps{&HeapOps<F>::invoke,
                                  &HeapOps<F>::relocate,
                                  &HeapOps<F>::destroy, true};

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= Capacity &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &kHeapOps<Fn>;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

template <typename Sig, std::size_t Cap>
bool
operator==(const InlineFunction<Sig, Cap> &f, std::nullptr_t) noexcept
{
    return !static_cast<bool>(f);
}

template <typename Sig, std::size_t Cap>
bool
operator!=(const InlineFunction<Sig, Cap> &f, std::nullptr_t) noexcept
{
    return static_cast<bool>(f);
}

} // namespace bctrl

#endif // BCTRL_SIM_INLINE_FUNCTION_HH
