#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <memory>

namespace bctrl {
namespace stats {

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integers up to 2^53 render exactly without an exponent; that
    // covers every counter this simulator produces and keeps the JSON
    // round-trippable through tools that parse integers strictly.
    if (v == std::floor(v) && std::abs(v) < 9.0e15) {
        char buf[32];
        auto res = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<long long>(v));
        return std::string(buf, res.ptr);
    }
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name() << " "
       << std::setprecision(12) << value_ << "  # " << desc() << "\n";
}

void
Scalar::printJson(std::ostream &os) const
{
    os << jsonNumber(value_);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    count_ += count;
    sum_ += v * static_cast<double>(count);
    // West's weighted Welford update: unlike the naive E[x^2]-E[x]^2
    // formula it never cancels catastrophically, so a constant stream
    // of large values reports a stdev of (near) zero, not hundreds.
    const double w = static_cast<double>(count);
    const double delta = v - mean_;
    mean_ += delta * w / static_cast<double>(count_);
    m2_ += w * delta * (v - mean_);
}

double
Distribution::stdev() const
{
    if (count_ < 2)
        return 0.0;
    const double var = m2_ / static_cast<double>(count_);
    // Rounding can still push a zero variance a hair negative.
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << (name() + "::mean") << " "
       << mean() << "  # " << desc() << "\n";
    os << std::left << std::setw(48) << (name() + "::count") << " "
       << count_ << "\n";
    os << std::left << std::setw(48) << (name() + "::min") << " " << min()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::max") << " " << max()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::stdev") << " "
       << stdev() << "\n";
}

void
Distribution::printJson(std::ostream &os) const
{
    os << "{\"count\":" << count_ << ",\"mean\":" << jsonNumber(mean())
       << ",\"min\":" << jsonNumber(min())
       << ",\"max\":" << jsonNumber(max())
       << ",\"stdev\":" << jsonNumber(stdev()) << "}";
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0;
    mean_ = 0;
    m2_ = 0;
    min_ = 0;
    max_ = 0;
}

unsigned
Histogram::bucketOf(double v)
{
    if (v < 1.0)
        return 0;
    // bit_width(x) = floor(log2(x)) + 1, so [2^(k-1), 2^k) maps to
    // bucket k for every representable Tick-sized sample.
    const auto x = static_cast<std::uint64_t>(v);
    const unsigned b = static_cast<unsigned>(std::bit_width(x));
    return b < numBuckets ? b : numBuckets - 1;
}

double
Histogram::bucketLow(unsigned i)
{
    if (i == 0)
        return 0.0;
    return std::ldexp(1.0, static_cast<int>(i) - 1);
}

double
Histogram::bucketHigh(unsigned i)
{
    return std::ldexp(1.0, static_cast<int>(i));
}

void
Histogram::sample(double v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    count_ += count;
    sum_ += v * static_cast<double>(count);
    buckets_[bucketOf(v)] += count;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Nearest-rank target, then linear interpolation across the
    // landing bucket's observed value range.
    const double rank =
        std::max(1.0, std::ceil(p * static_cast<double>(count_)));
    std::uint64_t cumBefore = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        const std::uint64_t n = buckets_[i];
        if (n == 0)
            continue;
        if (rank <= static_cast<double>(cumBefore + n)) {
            const double low = std::max(bucketLow(i), min_);
            const double high = std::min(bucketHigh(i), max_);
            const double frac =
                (rank - static_cast<double>(cumBefore)) /
                static_cast<double>(n);
            const double v = low + (high - low) * frac;
            return std::clamp(v, min_, max_);
        }
        cumBefore += n;
    }
    return max_;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << (name() + "::mean") << " "
       << mean() << "  # " << desc() << "\n";
    os << std::left << std::setw(48) << (name() + "::count") << " "
       << count_ << "\n";
    os << std::left << std::setw(48) << (name() + "::min") << " " << min()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::max") << " " << max()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::p50") << " " << p50()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::p95") << " " << p95()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::p99") << " " << p99()
       << "\n";
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"count\":" << count_ << ",\"mean\":" << jsonNumber(mean())
       << ",\"min\":" << jsonNumber(min())
       << ",\"max\":" << jsonNumber(max())
       << ",\"p50\":" << jsonNumber(p50())
       << ",\"p95\":" << jsonNumber(p95())
       << ",\"p99\":" << jsonNumber(p99()) << ",\"buckets\":[";
    // Trailing all-zero buckets are elided; the reader reconstructs
    // edges from the log2 bucket rule.
    unsigned last = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        if (buckets_[i] != 0)
            last = i;
    }
    for (unsigned i = 0; i <= last; ++i) {
        if (i != 0)
            os << ",";
        os << buckets_[i];
    }
    os << "]}";
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name() << " " << value() << "  # "
       << desc() << "\n";
}

void
Formula::printJson(std::ostream &os) const
{
    os << jsonNumber(value());
}

template <typename T>
T &
StatGroup::adopt(std::unique_ptr<T> stat)
{
    T &ref = *stat;
    byName_.emplace(stat->name(), stat.get());
    stats_.push_back(std::move(stat));
    return ref;
}

Scalar &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    return adopt(std::make_unique<Scalar>(prefix_ + "." + name, desc));
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc)
{
    return adopt(
        std::make_unique<Distribution>(prefix_ + "." + name, desc));
}

Histogram &
StatGroup::histogram(const std::string &name, const std::string &desc)
{
    return adopt(std::make_unique<Histogram>(prefix_ + "." + name, desc));
}

Formula &
StatGroup::formula(const std::string &name, const std::string &desc,
                   std::function<double()> fn)
{
    return adopt(std::make_unique<Formula>(prefix_ + "." + name, desc,
                                           std::move(fn)));
}

const Stat *
StatGroup::find(const std::string &full_name) const
{
    auto it = byName_.find(full_name);
    if (it != byName_.end())
        return it->second;
    for (const StatGroup *child : children_) {
        if (const Stat *s = child->find(full_name))
            return s;
    }
    return nullptr;
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto &s : stats_)
        s->print(os);
    for (const StatGroup *child : children_)
        child->print(os);
}

void
StatGroup::printJson(std::ostream &os) const
{
    bool first = true;
    os << "{";
    printJsonInto(os, first);
    os << "}";
}

void
StatGroup::printJsonInto(std::ostream &os, bool &first) const
{
    for (const auto &s : stats_) {
        if (!first)
            os << ",";
        first = false;
        os << jsonQuote(s->name()) << ":";
        s->printJson(os);
    }
    for (const StatGroup *child : children_)
        child->printJsonInto(os, first);
}

void
StatGroup::reset()
{
    for (const auto &s : stats_)
        s->reset();
    for (StatGroup *child : children_)
        child->reset();
}

} // namespace stats
} // namespace bctrl
