#include "sim/stats.hh"

#include <iomanip>
#include <memory>

namespace bctrl {
namespace stats {

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name() << " "
       << std::setprecision(12) << value_ << "  # " << desc() << "\n";
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    count_ += count;
    sum_ += v * static_cast<double>(count);
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << (name() + "::mean") << " "
       << mean() << "  # " << desc() << "\n";
    os << std::left << std::setw(48) << (name() + "::count") << " "
       << count_ << "\n";
    os << std::left << std::setw(48) << (name() + "::min") << " " << min()
       << "\n";
    os << std::left << std::setw(48) << (name() + "::max") << " " << max()
       << "\n";
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name() << " " << value() << "  # "
       << desc() << "\n";
}

Scalar &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(prefix_ + "." + name, desc);
    Scalar &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Distribution>(prefix_ + "." + name, desc);
    Distribution &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula &
StatGroup::formula(const std::string &name, const std::string &desc,
                   std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(prefix_ + "." + name, desc,
                                          std::move(fn));
    Formula &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

const Stat *
StatGroup::find(const std::string &full_name) const
{
    for (const auto &s : stats_) {
        if (s->name() == full_name)
            return s.get();
    }
    for (const StatGroup *child : children_) {
        if (const Stat *s = child->find(full_name))
            return s;
    }
    return nullptr;
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto &s : stats_)
        s->print(os);
    for (const StatGroup *child : children_)
        child->print(os);
}

void
StatGroup::reset()
{
    for (const auto &s : stats_)
        s->reset();
    for (StatGroup *child : children_)
        child->reset();
}

} // namespace stats
} // namespace bctrl
