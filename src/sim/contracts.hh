/**
 * @file
 * Runtime invariant contracts.
 *
 * BCTRL_ASSERT / BCTRL_ASSERT_MSG enforce documented simulator
 * invariants (response-exactly-once, event-queue monotonicity, BCC
 * inclusion in the Protection Table, MSHR accounting). They differ from
 * panic_if in two ways: they are compiled out of release builds, so
 * hot-path checks cost nothing in measurement runs, and they abort()
 * rather than unwind, so a debugger or death test lands exactly at the
 * violation.
 *
 * Enablement: contracts follow the build type (on when NDEBUG is not
 * defined), and can be forced either way with the BCTRL_CONTRACTS CMake
 * option, which defines BCTRL_CONTRACTS_ENABLED globally. A translation
 * unit may also define BCTRL_CONTRACTS_ENABLED before including this
 * header (the failure handler is always compiled into the library, so
 * per-TU enablement needs no special build).
 *
 * When compiled out, the condition is parsed but never evaluated
 * (sizeof of an unevaluated operand), so contracts may reference
 * debug-only state without triggering unused warnings in release.
 */

#ifndef BCTRL_SIM_CONTRACTS_HH
#define BCTRL_SIM_CONTRACTS_HH

namespace bctrl {

/**
 * Report a contract violation with source context and abort().
 * Always compiled into the library regardless of BCTRL_CONTRACTS_ENABLED.
 */
[[noreturn]] void contractFailure(const char *file, int line,
                                  const char *expr, const char *fmt, ...);

} // namespace bctrl

#ifndef BCTRL_CONTRACTS_ENABLED
#ifdef NDEBUG
#define BCTRL_CONTRACTS_ENABLED 0
#else
#define BCTRL_CONTRACTS_ENABLED 1
#endif
#endif

#if BCTRL_CONTRACTS_ENABLED

#define BCTRL_ASSERT(expr)                                                   \
    do {                                                                     \
        if (!(expr))                                                         \
            ::bctrl::contractFailure(__FILE__, __LINE__, #expr, nullptr);    \
    } while (0)

#define BCTRL_ASSERT_MSG(expr, ...)                                          \
    do {                                                                     \
        if (!(expr))                                                         \
            ::bctrl::contractFailure(__FILE__, __LINE__, #expr,              \
                                     __VA_ARGS__);                           \
    } while (0)

#else

#define BCTRL_ASSERT(expr) ((void)sizeof((expr) ? 1 : 0))
#define BCTRL_ASSERT_MSG(expr, ...) ((void)sizeof((expr) ? 1 : 0))

#endif // BCTRL_CONTRACTS_ENABLED

#endif // BCTRL_SIM_CONTRACTS_HH
