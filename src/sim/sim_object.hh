/**
 * @file
 * SimObject: the common base for every named simulated component.
 *
 * A SimObject owns a StatGroup keyed by its hierarchical name and holds
 * a reference to the global event queue. Systems are built by wiring
 * SimObjects together; the System object (config/system_builder) owns
 * them.
 */

#ifndef BCTRL_SIM_SIM_OBJECT_HH
#define BCTRL_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bctrl {

class SimObject
{
  public:
    /**
     * @param eq the global event queue driving this object
     * @param name hierarchical dotted name, e.g. "system.gpu.cu0.l1d"
     */
    SimObject(EventQueue &eq, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    EventQueue &eventQueue() const { return eventq_; }

    Tick curTick() const { return eventq_.curTick(); }

    stats::StatGroup &statGroup() { return statGroup_; }
    const stats::StatGroup &statGroup() const { return statGroup_; }

  private:
    EventQueue &eventq_;
    std::string name_;
    stats::StatGroup statGroup_;
};

} // namespace bctrl

#endif // BCTRL_SIM_SIM_OBJECT_HH
