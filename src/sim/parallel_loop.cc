#include "sim/parallel_loop.hh"

#include <chrono>

#include "sim/contracts.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"

namespace bctrl {

namespace {

/** One polite busy-wait iteration. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/**
 * True when the host has fewer cores than the loop has threads
 * (coordinator + one per domain): busy-waiting then only steals time
 * from the thread being awaited, so back off to the scheduler at once.
 */
bool
scarceCores()
{
    static const bool scarce =
        std::thread::hardware_concurrency() < numDomains + 1;
    return scarce;
}

/**
 * Spin until @p seq differs from @p last (acquire), backing off from
 * pause to yield to a short sleep so idle threads (between runs, or a
 * shard starved for several windows) stop burning a core while an
 * active window still wakes in nanoseconds. On machines without a
 * core per thread the pause phase is skipped entirely — the awaited
 * thread needs this core to make the awaited change happen.
 */
std::uint64_t
awaitChange(const std::atomic<std::uint64_t> &seq, std::uint64_t last)
{
    const std::uint64_t pauseLimit = scarceCores() ? 0 : 4096;
    const std::uint64_t yieldLimit = pauseLimit + 61440;
    std::uint64_t v;
    std::uint64_t spins = 0;
    while ((v = seq.load(std::memory_order_acquire)) == last) {
        ++spins;
        if (spins < pauseLimit) {
            cpuRelax();
        } else if (spins < yieldLimit) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
    return v;
}

/**
 * Host wall-clock for the coordinator's sync/stall counters. Feeds
 * stats only, never simulated state, so runs stay bit-identical.
 */
// bclint:allow(nondeterminism)
using HostClock = std::chrono::steady_clock;

std::uint64_t
nanosSince(HostClock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            HostClock::now() - t0)
            .count());
}

} // namespace

ParallelLoop::ParallelLoop(EventQueue &border, EventQueue &gpu,
                           EventQueue &dram, Tick lookahead)
    : queues_{&border, &gpu, &dram}, lookahead_(lookahead)
{
    EventQueue::formShardGroup(border, gpu, dram, lookahead);
}

ParallelLoop::~ParallelLoop()
{
    if (!threadsStarted_)
        return;
    for (Worker &w : workers_) {
        w.quit.store(true, std::memory_order_relaxed);
        w.go.store(w.go.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
        w.thread.join();
    }
}

void
ParallelLoop::ensureThreads()
{
    if (threadsStarted_)
        return;
    threadsStarted_ = true;
    for (std::size_t i = 0; i < numDomains; ++i)
        workers_[i].thread =
            std::thread([this, i] { workerMain(i); });
}

void
ParallelLoop::workerMain(std::size_t idx)
{
    Worker &w = workers_[idx];
    std::uint64_t seen = 0;
    for (;;) {
        seen = awaitChange(w.go, seen);
        if (w.quit.load(std::memory_order_relaxed))
            return;
        // The window runs between the go acquire and the done
        // release: the coordinator never touches this shard's state
        // inside that span, and every coordinator-side mutation
        // (mailbox drains) happened before the go release-store.
        w.executed += queues_[idx]->runGranted(w.bound);
        w.done.store(seen, std::memory_order_release);
    }
}

Tick
ParallelLoop::run()
{
    ensureThreads();
    for (EventQueue *q : queues_)
        q->stopRequested_ = false;
    // The eventLoop slot spans the whole parallel run: it is the
    // denominator for events/s, mirroring the serial loop's
    // per-callback wrap.
    HostProfiler::Scope runScope(profiler_,
                                 HostProfiler::Slot::eventLoop);
    for (;;) {
        bool stop = false;
        for (const EventQueue *q : queues_)
            stop = stop || q->stopRequested_;
        if (stop)
            break;

        // Barrier work, serialized on this thread while every worker
        // is parked: fold last window's cross posts into the ladders,
        // then scan the shard heads.
        Tick heads[numDomains];
        Tick m = tickNever;
        {
            HostProfiler::Scope sync(profiler_,
                                     HostProfiler::Slot::coordinator);
            const auto t0 = HostClock::now();
            for (std::size_t i = 0; i < numDomains; ++i) {
                queues_[i]->drainCrossPosts();
                heads[i] = queues_[i]->nextEventTick();
                if (heads[i] < m)
                    m = heads[i];
            }
            EventQueue::rebalanceLambdaPools(queues_);
            syncNanos_ += nanosSince(t0);
        }
        if (m == tickNever)
            break; // every shard and mailbox drained

        // Uniform conservative window: every shard may run strictly
        // below m + L. Messages posted inside the window fire at
        // sender-tick + L >= m + L, beyond the bound, so none can be
        // needed (or even merged) before the next barrier. The bound
        // must be uniform — a per-shard min-of-others bound would let
        // an i -> j -> i echo land inside i's window.
        const Tick bound = m + lookahead_;
        std::uint64_t expect[numDomains] = {};
        bool released[numDomains] = {};
        for (std::size_t i = 0; i < numDomains; ++i) {
            if (heads[i] >= bound)
                continue; // nothing runnable: skip the handoff
            Worker &w = workers_[i];
            w.bound = bound;
            expect[i] = w.go.load(std::memory_order_relaxed) + 1;
            released[i] = true;
            ++grants_;
            w.go.store(expect[i], std::memory_order_release);
        }
        ++windows_;
        // The shard holding m always has head < bound, so every
        // window executes at least one event: progress is guaranteed.
        {
            const auto t0 = HostClock::now();
            for (std::size_t i = 0; i < numDomains; ++i)
                if (released[i])
                    awaitChange(workers_[i].done, expect[i] - 1);
            stallNanos_ += nanosSince(t0);
        }
    }
    // Re-synchronize the shard clocks to the global maximum so
    // quiescent reads (utilization formulas, release-phase schedules,
    // RunResult collection) agree with the serial oracle's final tick.
    Tick tmax = 0;
    for (const EventQueue *q : queues_)
        if (q->curTick_ > tmax)
            tmax = q->curTick_;
    for (EventQueue *q : queues_)
        q->curTick_ = tmax;
    return tmax;
}

} // namespace bctrl
