#include "sim/parallel_loop.hh"

#include "sim/contracts.hh"
#include "sim/logging.hh"

namespace bctrl {

ParallelLoop::ParallelLoop(EventQueue &border, EventQueue &gpu,
                           EventQueue &dram)
    : queues_{&border, &gpu, &dram}
{
    panic_if(border.domain() != Domain::border ||
                 gpu.domain() != Domain::gpuCluster ||
                 dram.domain() != Domain::dram,
             "ParallelLoop queues must be (border, gpuCluster, dram)");
    border.joinShardGroup(&border);
    gpu.joinShardGroup(&border);
    dram.joinShardGroup(&border);
}

ParallelLoop::~ParallelLoop()
{
    if (!threadsStarted_)
        return;
    for (Worker &w : workers_) {
        {
            std::lock_guard<std::mutex> lk(w.mutex);
            w.cmd = Worker::Cmd::quit;
        }
        w.cv.notify_all();
        w.thread.join();
    }
}

void
ParallelLoop::ensureThreads()
{
    if (threadsStarted_)
        return;
    threadsStarted_ = true;
    for (std::size_t i = 0; i < numDomains; ++i)
        workers_[i].thread =
            std::thread([this, i] { workerMain(i); });
}

void
ParallelLoop::workerMain(std::size_t idx)
{
    Worker &w = workers_[idx];
    for (;;) {
        Worker::Cmd cmd;
        {
            std::unique_lock<std::mutex> lk(w.mutex);
            w.cv.wait(lk,
                      [&] { return w.cmd != Worker::Cmd::none; });
            cmd = w.cmd;
            w.cmd = Worker::Cmd::none;
        }
        if (cmd == Worker::Cmd::quit)
            return;
        // The grant runs outside the lock: the coordinator is parked
        // in grant() until done flips, so this thread is the only one
        // touching the shard group's simulated state.
        const std::uint64_t n = queues_[idx]->runGranted(w.bound);
        {
            std::lock_guard<std::mutex> lk(w.mutex);
            w.executed += n;
            w.done = true;
        }
        w.cv.notify_all();
    }
}

void
ParallelLoop::grant(std::size_t idx, const EventQueue::OrderKey &bound)
{
    Worker &w = workers_[idx];
    {
        std::lock_guard<std::mutex> lk(w.mutex);
        w.bound = bound;
        w.done = false;
        w.cmd = Worker::Cmd::go;
    }
    w.cv.notify_all();
    std::unique_lock<std::mutex> lk(w.mutex);
    w.cv.wait(lk, [&] { return w.done; });
}

Tick
ParallelLoop::run()
{
    ensureThreads();
    EventQueue &primary = *queues_[0];
    primary.stopRequested_ = false;
    while (!primary.stopRequested_) {
        // Structural scan: drain mailboxes and read each shard's head
        // key. Safe from this thread — every worker is parked.
        EventQueue::OrderKey keys[numDomains];
        bool have[numDomains];
        for (std::size_t i = 0; i < numDomains; ++i)
            have[i] = queues_[i]->headKey(keys[i]);

        std::size_t next = numDomains;
        for (std::size_t i = 0; i < numDomains; ++i)
            if (have[i] && (next == numDomains || keys[i] < keys[next]))
                next = i;
        if (next == numDomains)
            break; // every shard drained

        // Conservative bound: the minimal head key of the other
        // shards. Keys are unique, so the granted head is strictly
        // below the bound and every grant makes progress.
        EventQueue::OrderKey bound; // +infinity sentinel
        for (std::size_t i = 0; i < numDomains; ++i)
            if (i != next && have[i] && keys[i] < bound)
                bound = keys[i];

        grant(next, bound);
        ++grants_;
    }
    return primary.curTick();
}

} // namespace bctrl
