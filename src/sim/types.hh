/**
 * @file
 * Fundamental simulation types: ticks, cycles, addresses.
 *
 * The global simulated time base is one tick per picosecond, which lets
 * components in different clock domains (a 3 GHz CPU, a 700 MHz GPU, a
 * DRAM controller) interleave events without rounding error large enough
 * to matter at the granularity this simulator models.
 */

#ifndef BCTRL_SIM_TYPES_HH
#define BCTRL_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace bctrl {

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some component's clock domain. */
using Cycles = std::uint64_t;

/** A physical or virtual memory address. */
using Addr = std::uint64_t;

/** An address-space (process) identifier as seen by TLBs and the ATS. */
using Asid = std::uint16_t;

/** Ticks per second (the tick is one picosecond). */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** The maximum representable tick, used as "never". */
constexpr Tick tickNever = ~Tick(0);

/**
 * Component domains of the sharded parallel event loop (classic PDES
 * partitioning): the GPU cluster (CUs, wavefronts, accelerator caches
 * and TLBs), the border/host domain (Border Control, bus, coherence
 * point, ATS, kernel, CPU), and the DRAM channel model. A solo
 * (serial) EventQueue is tagged Domain::border.
 */
enum class Domain : unsigned {
    border = 0,
    gpuCluster = 1,
    dram = 2,
};

/** Number of shardable domains. */
constexpr std::size_t numDomains = 3;

/** Convert a frequency in Hz to a clock period in ticks. */
constexpr Tick
periodFromFrequency(std::uint64_t hz)
{
    return ticksPerSecond / hz;
}

} // namespace bctrl

#endif // BCTRL_SIM_TYPES_HH
