/**
 * @file
 * Host-side wall-time profiler: attributes the simulator's own CPU
 * time to simulated components, answering "where do events/sec go".
 *
 * Components open a Scope at their access()/service entry; the scope
 * accumulates wall time into that component's slot on exit. Scopes
 * nest (a cache access that synchronously reaches the bus is counted
 * in both), so slot times are *inclusive* and do not sum to the event
 * loop total. The eventLoop slot wraps every Event::process() call in
 * EventQueue::serviceOne and is the denominator for events/sec.
 *
 * This is host instrumentation only: it reads the wall clock but never
 * feeds simulated state, so enabling it is bit-identical on every
 * RunResult (the same contract as tracing, enforced by the
 * TraceOverhead tests). Disabled cost is one null-pointer branch per
 * scope. Results are inherently nondeterministic and are surfaced only
 * through the sweep report's profile block, never through stats dumps.
 */

// bclint:allow-file(nondeterminism) -- host-side wall-clock profiling
// only; simulated results never read it (same waiver as sim/sweep.cc).

#ifndef BCTRL_SIM_HOST_PROFILER_HH
#define BCTRL_SIM_HOST_PROFILER_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace bctrl {

class HostProfiler
{
  public:
    /** Attribution slots, one per major hot-path component class. */
    enum class Slot : unsigned {
        eventLoop,     ///< every Event::process() (the 100% reference)
        gpu,           ///< GPU memory-op issue path
        cache,         ///< all Cache::access calls (L1s, L2s, CPU)
        coherence,     ///< coherence-point request handling
        borderControl, ///< Border Control check path
        ats,           ///< translation service / page walks
        dram,          ///< DRAM channel model
        coordinator,   ///< parallel-loop window barriers (sync work)
        numSlots,
    };

    static constexpr std::size_t numSlots =
        static_cast<std::size_t>(Slot::numSlots);

    static const char *
    slotName(Slot slot)
    {
        static const char *const kNames[numSlots] = {
            "eventLoop", "gpu",  "cache", "coherence",
            "borderControl", "ats", "dram", "coordinator",
        };
        return kNames[static_cast<std::size_t>(slot)];
    }

    /** Accumulated wall seconds attributed to @p slot (inclusive). */
    double
    seconds(Slot slot) const
    {
        return static_cast<double>(
                   nanos_[static_cast<std::size_t>(slot)]) *
               1e-9;
    }

    /** Number of scopes opened against @p slot. */
    std::uint64_t
    calls(Slot slot) const
    {
        return calls_[static_cast<std::size_t>(slot)];
    }

    void
    reset()
    {
        nanos_.fill(0);
        calls_.fill(0);
    }

    /**
     * RAII attribution scope. Constructed from a possibly-null
     * profiler so call sites pay one branch when profiling is off.
     */
    class Scope
    {
      public:
        Scope(HostProfiler *profiler, Slot slot)
            : profiler_(profiler), slot_(slot)
        {
            if (profiler_ != nullptr)
                start_ = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (profiler_ == nullptr)
                return;
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            const std::size_t i = static_cast<std::size_t>(slot_);
            profiler_->nanos_[i] += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed)
                    .count());
            ++profiler_->calls_[i];
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *profiler_;
        Slot slot_;
        std::chrono::steady_clock::time_point start_;
    };

  private:
    std::array<std::uint64_t, numSlots> nanos_{};
    std::array<std::uint64_t, numSlots> calls_{};
};

} // namespace bctrl

#endif // BCTRL_SIM_HOST_PROFILER_HH
