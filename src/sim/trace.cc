#include "sim/trace.hh"

#include <iomanip>
#include <map>
#include <sstream>

#include "sim/stats.hh"

namespace bctrl {
namespace trace {

namespace {

struct FlagName {
    Flag flag;
    const char *name;
};

constexpr FlagName kFlagNames[] = {
    {Flag::BCC, "BCC"},
    {Flag::ProtTable, "ProtTable"},
    {Flag::Coherence, "Coherence"},
    {Flag::TLB, "TLB"},
    {Flag::DRAM, "DRAM"},
    {Flag::Cache, "Cache"},
    {Flag::PacketLife, "PacketLife"},
    {Flag::Os, "Os"},
};

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

const char *
flagName(Flag flag)
{
    for (const FlagName &fn : kFlagNames) {
        if (fn.flag == flag)
            return fn.name;
    }
    return "unknown";
}

bool
parseFlags(const std::string &list, std::uint32_t &mask, std::string *err)
{
    mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string token = list.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace so "BCC, TLB" parses.
        const std::size_t b = token.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        const std::size_t e = token.find_last_not_of(" \t");
        token = token.substr(b, e - b + 1);
        if (token == "all") {
            mask |= allFlags;
            continue;
        }
        bool found = false;
        for (const FlagName &fn : kFlagNames) {
            if (token == fn.name) {
                mask |= static_cast<std::uint32_t>(fn.flag);
                found = true;
                break;
            }
        }
        if (!found) {
            if (err != nullptr) {
                std::string known = "all";
                for (const FlagName &fn : kFlagNames) {
                    known += ", ";
                    known += fn.name;
                }
                *err = "unknown trace flag '" + token +
                       "' (known: " + known + ")";
            }
            return false;
        }
    }
    return true;
}

void
Tracer::writeText(std::ostream &os) const
{
    for (const Record &r : records_) {
        os << std::setw(14) << r.start << ": " << flagName(r.flag) << " "
           << r.component << " " << r.event;
        if (r.duration != 0)
            os << " dur=" << r.duration;
        if (r.packetId != 0)
            os << " pkt=" << r.packetId;
        if (r.addr != 0)
            os << " addr=" << hexAddr(r.addr);
        os << "\n";
    }
}

void
Tracer::writeChromeTrace(std::ostream &os, int pid,
                         const std::string &process_name) const
{
    os << "{\"traceEvents\":[";
    writeChromeTraceEvents(os, pid, process_name);
    os << "]}\n";
}

void
Tracer::writeChromeTraceEvents(std::ostream &os, int pid,
                               const std::string &process_name) const
{
    using stats::jsonNumber;
    using stats::jsonQuote;

    // One Chrome-trace thread per emitting component, numbered in
    // first-appearance order so related lanes sit together.
    std::map<std::string, int> tids;
    for (const Record &r : records_) {
        const int next = static_cast<int>(tids.size()) + 1;
        tids.emplace(r.component, next);
    }

    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":" << jsonQuote(process_name)
       << "}}";
    for (const auto &[component, tid] : tids) {
        os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << tid
           << ",\"args\":{\"name\":" << jsonQuote(component) << "}}";
    }

    for (const Record &r : records_) {
        const int tid = tids[r.component];
        // Ticks are picoseconds; Chrome-trace timestamps microseconds.
        const double ts = static_cast<double>(r.start) * 1e-6;
        os << ",{\"name\":" << jsonQuote(r.event)
           << ",\"cat\":" << jsonQuote(flagName(r.flag))
           << ",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"ts\":" << jsonNumber(ts);
        if (r.duration != 0) {
            const double dur = static_cast<double>(r.duration) * 1e-6;
            os << ",\"ph\":\"X\",\"dur\":" << jsonNumber(dur);
        } else {
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        }
        os << ",\"args\":{";
        bool first = true;
        if (r.packetId != 0) {
            os << "\"packet\":" << r.packetId;
            first = false;
        }
        if (r.addr != 0) {
            if (!first)
                os << ",";
            os << "\"addr\":" << jsonQuote(hexAddr(r.addr));
        }
        os << "}}";
    }
}

} // namespace trace
} // namespace bctrl
