#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bctrl {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Random::nextBounded(std::uint64_t bound)
{
    panic_if(bound == 0, "nextBounded(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Random::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    panic_if(lo > hi, "nextRange with lo > hi");
    return lo + nextBounded(hi - lo + 1);
}

double
Random::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Random::nextGeometric(double p, std::uint64_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    std::uint64_t n = 0;
    while (n < cap && !nextBool(p))
        ++n;
    return n;
}

} // namespace bctrl
