/**
 * @file
 * The Border Control Cache (BCC): a small cache of the Protection
 * Table (paper §3.1.2).
 *
 * Entries are subblocked like a subblock TLB: one tag covers the
 * permissions of many consecutive physical pages (512 pages = one
 * 128 B Protection Table block in the default configuration, giving a
 * 64-entry/8 KB BCC a 128 MB reach). The structure is fully
 * associative with LRU replacement, explicitly managed by Border
 * Control hardware, write-through to the Protection Table, and needs
 * no hardware coherence.
 *
 * The BCC is a passive structure; BorderControl charges its latency
 * and the fill traffic.
 */

#ifndef BCTRL_BC_BCC_HH
#define BCTRL_BC_BCC_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "vm/perms.hh"

namespace bctrl {

class ProtectionTable;

class BorderControlCache
{
  public:
    struct Params {
        unsigned entries = 64;
        /** Pages covered per entry (subblocking factor). */
        unsigned pagesPerEntry = 512;
        /** Tag bits per entry, counted for size reporting only. */
        unsigned tagBits = 36;
    };

    explicit BorderControlCache(const Params &params);

    /**
     * Look up the permissions for @p ppn.
     * @return the permissions if the covering entry is resident.
     */
    std::optional<Perms> lookup(Addr ppn);

    /** Probe without updating LRU (test support). */
    std::optional<Perms> probe(Addr ppn) const;

    /**
     * Allocate (or refresh) the entry covering @p ppn, loading the
     * group's permissions from @p table — the fill performed on a BCC
     * miss. @return the permissions of @p ppn after the fill.
     */
    Perms fill(Addr ppn, const ProtectionTable &table);

    /**
     * Update @p ppn's permissions in a resident entry; no-op if the
     * covering entry is absent. The caller writes through to the
     * Protection Table.
     * @return true if a resident entry was updated.
     */
    bool update(Addr ppn, Perms perms);

    /** Invalidate the entry covering @p ppn, if resident. */
    void invalidatePage(Addr ppn);

    /** Invalidate everything (downgrade / process completion). */
    void invalidateAll();

    /** True if the entry covering @p ppn is resident. */
    bool resident(Addr ppn) const;

    const Params &params() const { return params_; }

    /** Total SRAM bits: entries * (tag + 2 bits per covered page). */
    std::uint64_t sizeBits() const;
    std::uint64_t sizeBytes() const { return (sizeBits() + 7) / 8; }

    /** Pages of reach: entries * pagesPerEntry. */
    std::uint64_t reachPages() const
    {
        return std::uint64_t(params_.entries) * params_.pagesPerEntry;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Bytes fetched from the Protection Table per fill. */
    unsigned fillBytes() const
    {
        return std::max(1u, params_.pagesPerEntry / 4);
    }

  private:
    struct Entry {
        bool valid = false;
        Addr groupTag = 0; ///< ppn / pagesPerEntry
        std::vector<std::uint8_t> bits; ///< 2 bits per covered page
        std::uint64_t lastUse = 0;
    };

    Addr groupOf(Addr ppn) const { return ppn / params_.pagesPerEntry; }

    Entry *findEntry(Addr group);
    const Entry *findEntry(Addr group) const;

    static Perms getBits(const Entry &e, unsigned index);
    static void setBits(Entry &e, unsigned index, Perms perms);

    Params params_;
    std::vector<Entry> entries_;
    /**
     * O(1) group→slot index replacing the linear tag scan: every BCC
     * lookup runs on every border request, so a 64-entry scan was the
     * hottest loop in the bc-bcc configurations. Kept consistent with
     * entries_ by fill/invalidatePage/invalidateAll; entries_ never
     * reallocates after construction, so slot indices are stable.
     */
    std::unordered_map<Addr, std::uint32_t> index_;
    std::uint64_t useCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bctrl

#endif // BCTRL_BC_BCC_HH
