#include "bc/border_control.hh"

#include <algorithm>

#include "sim/contracts.hh"
#include "sim/fault.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace bctrl {

BorderControl::BorderControl(EventQueue &eq, const std::string &name,
                             const Params &params, MemDevice &downstream,
                             PacketPool *pool)
    : SimObject(eq, name),
      params_(params),
      downstream_(downstream),
      pool_(pool),
      bcc_(params.bcc),
      borderRequests_(statGroup().scalar(
          "borderRequests", "accelerator requests checked at the border")),
      readChecks_(statGroup().scalar("readChecks",
                                     "read-permission checks")),
      writeChecks_(statGroup().scalar("writeChecks",
                                      "write-permission checks")),
      violations_(statGroup().scalar(
          "violations", "accesses blocked for insufficient permission")),
      bccHitStat_(statGroup().scalar("bccHits", "BCC hits")),
      bccMissStat_(statGroup().scalar("bccMisses", "BCC misses")),
      insertions_(statGroup().scalar(
          "insertions", "Protection Table insertions from the ATS")),
      tableTrafficBytes_(statGroup().scalar(
          "tableTrafficBytes", "memory traffic to the Protection Table")),
      checkLatencyBccHit_(statGroup().histogram(
          "checkLatencyBccHit",
          "border check latency in ticks, resolved by a BCC hit")),
      checkLatencyTableWalk_(statGroup().histogram(
          "checkLatencyTableWalk",
          "border check latency in ticks, resolved by a table walk")),
      checkLatencyDenied_(statGroup().histogram(
          "checkLatencyDenied",
          "border check latency in ticks for denied accesses"))
{
    panic_if(params_.clockPeriod == 0, "Border Control clock is zero");
}

Tick
BorderControl::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % params_.clockPeriod;
    Tick edge = rem == 0 ? now : now + (params_.clockPeriod - rem);
    return edge + cycles * params_.clockPeriod;
}

void
BorderControl::attachTable(ProtectionTable *table)
{
    panic_if(table_ != nullptr && table != table_,
             "attaching a second protection table");
    table_ = table;
}

void
BorderControl::detachTable()
{
    panic_if(useCount_ != 0,
             "detaching protection table while %u processes are active",
             useCount_);
    table_ = nullptr;
    bcc_.invalidateAll();
}

unsigned
BorderControl::decrUseCount()
{
    panic_if(useCount_ == 0, "use count underflow");
    return --useCount_;
}

void
BorderControl::chargeTableAccess(Addr table_addr, unsigned bytes,
                                 bool write)
{
    tableTrafficBytes_ += bytes;
    if (!params_.chargeTableTraffic)
        return;
    auto pkt = allocPacket(pool_, write ? MemCmd::Write : MemCmd::Read,
                           table_addr, bytes, Requestor::trustedHw);
    pkt->issuedAt = curTick();
    downstream_.access(pkt);
}

Perms
BorderControl::evaluate(Addr ppn, Tick &check_done,
                        CheckOutcome &outcome)
{
    // §3.2.3: the Protection Table is only consulted after the bounds
    // check; anything outside bounds has no permissions.
    if (table_ == nullptr) {
        check_done = clockEdge();
        outcome = CheckOutcome::boundsOnly;
        return Perms::noAccess();
    }

    if (params_.useBcc) {
        if (!table_->inBounds(ppn)) {
            check_done = clockEdge(params_.bccLatency);
            outcome = CheckOutcome::boundsOnly;
            return Perms::noAccess();
        }
        if (auto hit = bcc_.lookup(ppn)) {
            ++bccHitStat_;
            outcome = CheckOutcome::bccHit;
            // Inclusion contract (paper §3.3): the BCC is write-through
            // to the Protection Table, so a resident entry must hold
            // exactly the permissions the table holds. A divergence
            // here means a downgrade or insertion skipped one of the
            // two structures — the bug class that silently voids the
            // sandboxing guarantee.
            BCTRL_ASSERT_MSG(
                *hit == table_->getPerms(ppn),
                "BCC/Protection Table divergence for ppn 0x%llx: "
                "BCC {r=%d w=%d} vs table {r=%d w=%d}",
                (unsigned long long)ppn, hit->read, hit->write,
                table_->getPerms(ppn).read, table_->getPerms(ppn).write);
            check_done = clockEdge(params_.bccLatency);
            return *hit;
        }
        ++bccMissStat_;
        // Injection point: the BCC fill from the Protection Table. A
        // trusted-side structure, so only lossy/timing faults apply
        // (corrupting the fill would break the BCC⊆PT inclusion
        // contract the hardware is defined by, not merely perturb it).
        const fault::Decision fd =
            fault::decide(eventQueue(), fault::Point::bccFill);
        if (fd.kind == fault::Kind::drop) {
            // The fill is lost: answer from the table directly and
            // leave the BCC cold; the next miss retries the fill.
            check_done =
                clockEdge(params_.bccLatency + params_.tableLatency);
            outcome = CheckOutcome::tableWalk;
            chargeTableAccess(table_->entryAddr(ppn), bcc_.fillBytes(),
                              false);
            return table_->getPerms(ppn);
        }
        Perms perms = bcc_.fill(ppn, *table_);
        chargeTableAccess(table_->entryAddr(ppn), bcc_.fillBytes(),
                          false);
        if (fd.kind == fault::Kind::duplicate) {
            // A second, redundant fill: idempotent on state, but it
            // costs another table read.
            bcc_.fill(ppn, *table_);
            chargeTableAccess(table_->entryAddr(ppn), bcc_.fillBytes(),
                              false);
        }
        check_done =
            clockEdge(params_.bccLatency + params_.tableLatency);
        if (fd.kind == fault::Kind::delay)
            check_done += fd.delay;
        outcome = CheckOutcome::tableWalk;
        return perms;
    }

    if (!table_->inBounds(ppn)) {
        check_done = clockEdge();
        outcome = CheckOutcome::boundsOnly;
        return Perms::noAccess();
    }
    chargeTableAccess(table_->entryAddr(ppn), 64, false);
    check_done = clockEdge(params_.tableLatency);
    outcome = CheckOutcome::tableWalk;
    return table_->getPerms(ppn);
}

void
BorderControl::deny(const PacketPtr &pkt, Tick when)
{
    ++violations_;
    pkt->denied = true;
    respondAt(eventQueue(), pkt, when);
    if (violationHandler_) {
        PacketPtr held = pkt;
        eventQueue().scheduleLambda(
            [this, held]() { violationHandler_(*held); }, when);
    }
}

void
BorderControl::access(const PacketPtr &pkt)
{
    if (pkt->requestor == Requestor::trustedHw) {
        // Trusted traffic (page walks, table refills routed through us)
        // crosses unchecked.
        downstream_.access(pkt);
        return;
    }

    // Injection point: the untrusted request arriving at the border.
    // Whatever the fault does to it, the surviving copies still go
    // through the full check below — a perturbed request must never
    // become an unchecked one.
    if (fault::FaultEngine *fe = eventQueue().faultEngine()) {
        const fault::Decision fd =
            fe->decide(fault::Point::gpuRequest, curTick());
        switch (fd.kind) {
          case fault::Kind::drop: {
            PacketPtr held = pkt;
            fe->holdDropped("borderControl.gpuRequest", curTick(),
                            [this, held]() { access(held); });
            return;
          }
          case fault::Kind::delay: {
            PacketPtr held = pkt;
            eventQueue().scheduleLambda(
                [this, held]() { access(held); },
                curTick() + fd.delay);
            return;
          }
          case fault::Kind::duplicate: {
            // A fire-and-forget replay of the same request. Checked
            // like any other arrival; the suppressor keeps the copy
            // from recursively faulting into a storm.
            auto dup = allocPacket(pool_, pkt->cmd, pkt->paddr,
                                   pkt->size, pkt->requestor, pkt->asid);
            dup->issuedAt = curTick();
            fault::FaultEngine::Suppressor guard(fe);
            access(dup);
            break;
          }
          case fault::Kind::stuckAt:
            // The request bus wedges: this and every later faulted
            // request carry the first faulted address.
            fe->stickAddr(fault::Point::gpuRequest, pkt->paddr);
            break;
          default:
            break;
        }
    }

    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::borderControl);

    ++borderRequests_;
    if (pkt->isRead())
        ++readChecks_;
    else
        ++writeChecks_;
    if (traceHook_)
        traceHook_(pkt->pageNum());

    const Tick now = curTick();
    Tick check_done = 0;
    CheckOutcome outcome = CheckOutcome::boundsOnly;
    const Perms have = evaluate(pkt->pageNum(), check_done, outcome);
    const Perms need{pkt->isRead(), pkt->isWrite()};
    const Tick check_latency = check_done - now;

    if (!have.covers(need)) {
        checkLatencyDenied_.sample(static_cast<double>(check_latency));
        trace::emit(eventQueue(), trace::Flag::BCC, name().c_str(),
                    "deny", now, check_latency, pkt->traceId,
                    pkt->paddr);
        deny(pkt, check_done);
        return;
    }

    switch (outcome) {
      case CheckOutcome::bccHit:
        checkLatencyBccHit_.sample(static_cast<double>(check_latency));
        trace::emit(eventQueue(), trace::Flag::BCC, name().c_str(),
                    "bccHit", now, check_latency, pkt->traceId,
                    pkt->paddr);
        break;
      case CheckOutcome::tableWalk:
        checkLatencyTableWalk_.sample(
            static_cast<double>(check_latency));
        if (params_.useBcc) {
            trace::emit(eventQueue(), trace::Flag::BCC, name().c_str(),
                        "bccMiss", now, 0, pkt->traceId, pkt->paddr);
        }
        trace::emit(eventQueue(), trace::Flag::ProtTable, name().c_str(),
                    "tableWalk", now, check_latency, pkt->traceId,
                    pkt->paddr);
        break;
      case CheckOutcome::boundsOnly:
        // Covered permissions with no table consult cannot happen
        // (no-table and out-of-bounds checks grant nothing), so this
        // arm is unreachable on the allow path.
        break;
    }

    if (pkt->isRead() && !params_.serializeReadChecks) {
        // The flat table guarantees single-access lookups, so the check
        // proceeds in parallel with the read; the data response is
        // gated on the later of the two (paper §3.1.1). respondAt()
        // consumes the gate with the same extra delivery hop the old
        // wrapped-callback implementation scheduled, keeping event
        // ordering bit-identical without re-wrapping the callback.
        if (pkt->onResponse && check_done > curTick())
            pkt->responseGateTick = check_done;
        downstream_.access(pkt);
    } else {
        // Writes (and, in the serialized ablation, reads) must not
        // reach memory before the check completes.
        PacketPtr held = pkt;
        eventQueue().scheduleLambda(
            [this, held]() { downstream_.access(held); }, check_done);
    }
}

void
BorderControl::onTranslation(Asid asid, Addr vpn, Addr ppn, Perms perms,
                             bool large_page)
{
    (void)asid;
    (void)vpn;
    if (table_ == nullptr)
        return;

    ++insertions_;
    trace::emit(eventQueue(), trace::Flag::ProtTable, name().c_str(),
                "insert", curTick(), 0, 0, ppn * pageSize);
    const unsigned pages = large_page ? pagesPerLargePage : 1;
    for (unsigned i = 0; i < pages; ++i) {
        const Addr p = ppn + i;
        if (!table_->inBounds(p))
            continue;
        const Perms merged = table_->mergePerms(p, perms);
        if (params_.useBcc && !bcc_.update(p, merged))
            bcc_.fill(p, *table_);
        // Post-condition of the write-through insert: whichever path
        // ran (in-place update or miss fill), the BCC now agrees with
        // the table for this page.
        BCTRL_ASSERT_MSG(!params_.useBcc ||
                             bcc_.probe(p) == table_->getPerms(p),
                         "BCC out of sync after insertion of ppn 0x%llx",
                         (unsigned long long)p);
    }
    // One read-modify-write of the affected table bytes. A 2 MB large
    // page touches 512 entries = 128 B, exactly one memory block.
    const unsigned bytes = std::max(
        64u, pages / ProtectionTable::pagesPerByte);
    chargeTableAccess(table_->entryAddr(ppn), bytes, true);
}

void
BorderControl::downgradePage(Addr ppn, Perms new_perms)
{
    if (table_ == nullptr)
        return;
    if (!table_->inBounds(ppn))
        return;
    table_->setPerms(ppn, new_perms);
    trace::emit(eventQueue(), trace::Flag::ProtTable, name().c_str(),
                "downgrade", curTick(), 0, 0, ppn * pageSize);
    if (params_.useBcc)
        bcc_.update(ppn, new_perms);
    // A downgrade must land in both structures or the stale BCC copy
    // would keep authorizing revoked accesses.
    BCTRL_ASSERT_MSG(!params_.useBcc || !bcc_.resident(ppn) ||
                         bcc_.probe(ppn) == new_perms,
                     "BCC kept stale permissions after downgrade of "
                     "ppn 0x%llx",
                     (unsigned long long)ppn);
    chargeTableAccess(table_->entryAddr(ppn), 64, true);
}

void
BorderControl::zeroTableAndInvalidate()
{
    if (table_ == nullptr)
        return;
    table_->zeroAll();
    bcc_.invalidateAll();
    trace::emit(eventQueue(), trace::Flag::ProtTable, name().c_str(),
                "zeroTable", curTick());
    // Zeroing streams the whole table through memory.
    chargeTableAccess(table_->base(),
                      static_cast<unsigned>(table_->sizeBytes()), true);
}

} // namespace bctrl
