#include "bc/protection_table.hh"

#include "sim/logging.hh"

namespace bctrl {

ProtectionTable::ProtectionTable(BackingStore &store, Addr base,
                                 Addr num_ppns)
    : store_(store), base_(base), numPpns_(num_ppns)
{
    panic_if(num_ppns == 0, "protection table covering zero pages");
    panic_if(base + sizeBytes() > store.size(),
             "protection table [0x%llx, +%llu) exceeds physical memory",
             (unsigned long long)base, (unsigned long long)sizeBytes());
}

const std::uint8_t *
ProtectionTable::tableByte(Addr ppn) const
{
    const Addr addr = entryAddr(ppn);
    const Addr page_addr = pageBase(addr);
    if (page_addr != cachedPageAddr_ || cachedPage_ == nullptr) {
        cachedPageAddr_ = page_addr;
        cachedPage_ = const_cast<std::uint8_t *>(
            store_.pageDataIfResident(addr));
    }
    return cachedPage_ != nullptr ? cachedPage_ + pageOffset(addr)
                                  : nullptr;
}

std::uint8_t *
ProtectionTable::tableByteForWrite(Addr ppn)
{
    const Addr addr = entryAddr(ppn);
    const Addr page_addr = pageBase(addr);
    if (page_addr != cachedPageAddr_ || cachedPage_ == nullptr) {
        cachedPageAddr_ = page_addr;
        cachedPage_ = store_.pageData(addr);
    }
    return cachedPage_ + pageOffset(addr);
}

Perms
ProtectionTable::getPerms(Addr ppn) const
{
    panic_if(!inBounds(ppn), "protection table read of PPN 0x%llx out of "
             "bounds (%llu)",
             (unsigned long long)ppn, (unsigned long long)numPpns_);
    const std::uint8_t *entry = tableByte(ppn);
    if (entry == nullptr)
        return Perms::fromBits(0); // untouched table bytes read as zero
    unsigned shift = (ppn % pagesPerByte) * 2;
    return Perms::fromBits((*entry >> shift) & 0x3);
}

void
ProtectionTable::setPerms(Addr ppn, Perms perms)
{
    panic_if(!inBounds(ppn), "protection table write of PPN 0x%llx out "
             "of bounds (%llu)",
             (unsigned long long)ppn, (unsigned long long)numPpns_);
    std::uint8_t *entry = tableByteForWrite(ppn);
    unsigned shift = (ppn % pagesPerByte) * 2;
    *entry = static_cast<std::uint8_t>(
        (*entry & ~(0x3u << shift)) | (unsigned(perms.toBits()) << shift));
}

Perms
ProtectionTable::mergePerms(Addr ppn, Perms perms)
{
    Perms merged = getPerms(ppn) | perms;
    setPerms(ppn, merged);
    return merged;
}

void
ProtectionTable::zeroAll()
{
    store_.zero(base_, sizeBytes());
}

double
ProtectionTable::overheadFraction()  const
{
    return static_cast<double>(sizeBytes()) /
           (static_cast<double>(numPpns_) * pageSize);
}

} // namespace bctrl
