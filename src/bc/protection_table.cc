#include "bc/protection_table.hh"

#include "sim/logging.hh"

namespace bctrl {

ProtectionTable::ProtectionTable(BackingStore &store, Addr base,
                                 Addr num_ppns)
    : store_(store), base_(base), numPpns_(num_ppns)
{
    panic_if(num_ppns == 0, "protection table covering zero pages");
    panic_if(base + sizeBytes() > store.size(),
             "protection table [0x%llx, +%llu) exceeds physical memory",
             (unsigned long long)base, (unsigned long long)sizeBytes());
}

Perms
ProtectionTable::getPerms(Addr ppn) const
{
    panic_if(!inBounds(ppn), "protection table read of PPN 0x%llx out of "
             "bounds (%llu)",
             (unsigned long long)ppn, (unsigned long long)numPpns_);
    std::uint8_t byte = store_.read8(entryAddr(ppn));
    unsigned shift = (ppn % pagesPerByte) * 2;
    return Perms::fromBits((byte >> shift) & 0x3);
}

void
ProtectionTable::setPerms(Addr ppn, Perms perms)
{
    panic_if(!inBounds(ppn), "protection table write of PPN 0x%llx out "
             "of bounds (%llu)",
             (unsigned long long)ppn, (unsigned long long)numPpns_);
    Addr addr = entryAddr(ppn);
    std::uint8_t byte = store_.read8(addr);
    unsigned shift = (ppn % pagesPerByte) * 2;
    byte = static_cast<std::uint8_t>(
        (byte & ~(0x3u << shift)) | (unsigned(perms.toBits()) << shift));
    store_.write8(addr, byte);
}

Perms
ProtectionTable::mergePerms(Addr ppn, Perms perms)
{
    Perms merged = getPerms(ppn) | perms;
    setPerms(ppn, merged);
    return merged;
}

void
ProtectionTable::zeroAll()
{
    store_.zero(base_, sizeBytes());
}

double
ProtectionTable::overheadFraction()  const
{
    return static_cast<double>(sizeBytes()) /
           (static_cast<double>(numPpns_) * pageSize);
}

} // namespace bctrl
