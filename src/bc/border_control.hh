/**
 * @file
 * The Border Control unit (paper §3).
 *
 * Border Control sits at the border between the untrusted accelerator's
 * physical caches and the trusted memory system. Every packet the
 * accelerator sends toward memory is permission-checked here against
 * the per-accelerator Protection Table (cached by the Border Control
 * Cache): reads need read permission for the physical page, writes and
 * writebacks need write permission. Checks for reads proceed in
 * parallel with the memory access; the response is gated on the check.
 * A failed check blocks the access, returns a denied response, and
 * notifies the OS.
 */

#ifndef BCTRL_BC_BORDER_CONTROL_HH
#define BCTRL_BC_BORDER_CONTROL_HH

#include <functional>

#include "bc/bcc.hh"
#include "bc/protection_table.hh"
#include "mem/mem_device.hh"
#include "sim/sim_object.hh"

namespace bctrl {

class BorderControl : public SimObject, public MemDevice
{
  public:
    struct Params {
        /** Whether the Border Control Cache is present. */
        bool useBcc = true;
        BorderControlCache::Params bcc;
        /** BCC access latency, in Border Control clock cycles. */
        Cycles bccLatency = 10;
        /** Protection Table access latency, in cycles. */
        Cycles tableLatency = 100;
        /** Clock period in ticks (the accelerator's clock). */
        Tick clockPeriod = 1'429; // 700 MHz
        /** Inject the table's memory traffic into the memory system. */
        bool chargeTableTraffic = true;
        /**
         * Ablation of the §3.1.1 design choice: serialize the
         * permission check before reads instead of overlapping check
         * and memory access (the paper's design overlaps).
         */
        bool serializeReadChecks = false;
    };

    /**
     * @param pool packet pool for the table traffic this unit injects;
     *        null (unit tests) falls back to heap packets.
     */
    BorderControl(EventQueue &eq, const std::string &name,
                  const Params &params, MemDevice &downstream,
                  PacketPool *pool = nullptr);

    /** @name Datapath (paper Fig. 3c) */
    /// @{
    void access(const PacketPtr &pkt) override;
    /// @}

    /** @name OS- and ATS-facing control (paper Fig. 3a/b/d/e) */
    /// @{

    /**
     * Process initialization: the OS points Border Control at a zeroed
     * Protection Table via the base/bounds registers (modeled by the
     * table object). Not owned.
     */
    void attachTable(ProtectionTable *table);

    /** Tear down the table binding (accelerator idle). */
    void detachTable();

    /** One more process is now running on the accelerator. */
    void incrUseCount() { ++useCount_; }

    /**
     * One process released the accelerator.
     * @return the remaining use count (0 means the table can be freed).
     */
    unsigned decrUseCount();

    unsigned useCount() const { return useCount_; }

    /**
     * Protection Table insertion on an ATS translation (Fig. 3b).
     * Permissions are merged (union across co-scheduled processes,
     * §3.3); a resident BCC entry is updated and written through, a
     * missing one is allocated and filled from the table.
     */
    void onTranslation(Asid asid, Addr vpn, Addr ppn, Perms perms,
                       bool large_page);

    /**
     * Selective permission downgrade for one physical page (Fig. 3d
     * fast path, after the accelerator flushed blocks of that page).
     */
    void downgradePage(Addr ppn, Perms new_perms);

    /**
     * Full downgrade / process-completion path: zero the Protection
     * Table and invalidate the whole BCC (Fig. 3d/3e).
     */
    void zeroTableAndInvalidate();

    /** Register the OS handler invoked on a blocked access. */
    void setViolationHandler(std::function<void(const Packet &)> handler)
    {
        violationHandler_ = std::move(handler);
    }
    /// @}

    /**
     * Observe the PPN of every checked request (used by the Fig. 6
     * sensitivity harness to capture border traces for offline BCC
     * geometry sweeps). Null disables.
     */
    void setCheckTraceHook(std::function<void(Addr ppn)> hook)
    {
        traceHook_ = std::move(hook);
    }

    ProtectionTable *table() { return table_; }
    BorderControlCache *bcc() { return params_.useBcc ? &bcc_ : nullptr; }
    const Params &params() const { return params_; }

    std::uint64_t borderRequests() const
    {
        return static_cast<std::uint64_t>(borderRequests_.value());
    }
    std::uint64_t violations() const
    {
        return static_cast<std::uint64_t>(violations_.value());
    }
    std::uint64_t bccHits() const { return bcc_.hits(); }
    std::uint64_t bccMisses() const { return bcc_.misses(); }

  private:
    /** How a permission check was resolved (latency attribution). */
    enum class CheckOutcome {
        bccHit,    ///< answered by the Border Control Cache
        tableWalk, ///< BCC miss (or no BCC): Protection Table consulted
        boundsOnly ///< rejected by the bounds check / no table attached
    };

    Tick clockEdge(Cycles cycles = 0) const;

    /** Inject trusted traffic for a Protection Table access. */
    void chargeTableAccess(Addr table_addr, unsigned bytes, bool write);

    /** Evaluate the check: permissions the table grants for @p ppn. */
    Perms evaluate(Addr ppn, Tick &check_done, CheckOutcome &outcome);

    /** Deny @p pkt: no forwarding, denied response, OS notification. */
    void deny(const PacketPtr &pkt, Tick when);

    Params params_;
    MemDevice &downstream_;
    PacketPool *pool_;
    ProtectionTable *table_ = nullptr;
    BorderControlCache bcc_;
    unsigned useCount_ = 0;
    std::function<void(const Packet &)> violationHandler_;
    std::function<void(Addr ppn)> traceHook_;

    stats::Scalar &borderRequests_;
    stats::Scalar &readChecks_;
    stats::Scalar &writeChecks_;
    stats::Scalar &violations_;
    stats::Scalar &bccHitStat_;
    stats::Scalar &bccMissStat_;
    stats::Scalar &insertions_;
    stats::Scalar &tableTrafficBytes_;
    /** Check latency in ticks, split by how the check resolved. */
    stats::Histogram &checkLatencyBccHit_;
    stats::Histogram &checkLatencyTableWalk_;
    stats::Histogram &checkLatencyDenied_;
};

} // namespace bctrl

#endif // BCTRL_BC_BORDER_CONTROL_HH
