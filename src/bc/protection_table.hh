/**
 * @file
 * The Protection Table: Border Control's flat permission table in
 * simulated physical memory (paper §3.1.1).
 *
 * One table exists per active accelerator. It is indexed by physical
 * page number and stores two bits (read, write) per page — the paper's
 * key insight that permission checking does not require the reverse
 * physical-to-virtual translation, reducing per-page state from a
 * 64-bit PTE to 2 bits (0.006% of physical memory).
 *
 * The table is a passive structure: Border Control charges the timing
 * and memory traffic of reading and writing it.
 */

#ifndef BCTRL_BC_PROTECTION_TABLE_HH
#define BCTRL_BC_PROTECTION_TABLE_HH

#include "mem/backing_store.hh"
#include "vm/perms.hh"

namespace bctrl {

class ProtectionTable
{
  public:
    /** Pages whose permissions fit in one byte (2 bits per page). */
    static constexpr unsigned pagesPerByte = 4;

    /**
     * @param store the physical memory the table lives in
     * @param base physical base address (the base register)
     * @param num_ppns number of physical pages covered (bounds register)
     */
    ProtectionTable(BackingStore &store, Addr base, Addr num_ppns);

    /** Bytes of physical memory the table occupies. */
    Addr sizeBytes() const { return roundUp(numPpns_, pagesPerByte) /
                                    pagesPerByte; }

    /** The base register value. */
    Addr base() const { return base_; }

    /** The bounds register value: one past the last valid PPN. */
    Addr boundPpns() const { return numPpns_; }

    /** @return true if @p ppn is inside the bounds register. */
    bool inBounds(Addr ppn) const { return ppn < numPpns_; }

    /** Read the permissions recorded for @p ppn. */
    Perms getPerms(Addr ppn) const;

    /** Overwrite the permissions for @p ppn. */
    void setPerms(Addr ppn, Perms perms);

    /**
     * Merge (union) @p perms into the entry for @p ppn — the lazy
     * insertion performed on ATS translations, which for multiprocess
     * accelerators accumulates the union across processes (§3.3).
     * @return the resulting permissions.
     */
    Perms mergePerms(Addr ppn, Perms perms);

    /** Reset every entry to no-access (process completion, §3.2.5). */
    void zeroAll();

    /**
     * Physical address of the byte holding @p ppn's bits, for charging
     * memory traffic.
     */
    Addr entryAddr(Addr ppn) const { return base_ + ppn / pagesPerByte; }

    /**
     * Storage overhead as a fraction of the covered physical memory
     * (the paper's 0.006% figure).
     */
    double overheadFraction() const;

  private:
    /** The byte holding @p ppn's bits, or nullptr if never written. */
    const std::uint8_t *tableByte(Addr ppn) const;
    /** Writable byte for @p ppn, allocating the page it lives in. */
    std::uint8_t *tableByteForWrite(Addr ppn);

    BackingStore &store_;
    Addr base_;
    Addr numPpns_;

    /**
     * Cached raw pointer to the most recently touched table page in
     * the backing store. getPerms/mergePerms run on every border
     * request, so they read table bits through this pointer instead of
     * re-hashing into the store's page map. Backing-store pages are
     * never freed or moved and all content changes happen in place
     * (including zeroAll, which zeroes through store_.zero), so a
     * non-null cached pointer cannot go stale; a cached "absent" page
     * (nullptr) is re-probed on every access until the page exists.
     */
    mutable Addr cachedPageAddr_ = ~Addr(0);
    mutable std::uint8_t *cachedPage_ = nullptr;
};

} // namespace bctrl

#endif // BCTRL_BC_PROTECTION_TABLE_HH
