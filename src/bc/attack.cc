#include "bc/attack.hh"

#include "sim/logging.hh"

namespace bctrl {

AttackInjector::Outcome
AttackInjector::inject(const PacketPtr &pkt, bool via_border)
{
    Outcome outcome;
    const Tick start = system_.eventQueue().curTick();
    bool done = false;
    pkt->issuedAt = start;
    pkt->onResponse = [&](Packet &p) {
        done = true;
        outcome.responded = true;
        outcome.blocked = p.denied;
        outcome.latency = system_.eventQueue().curTick() - start;
    };

    MemDevice &target = via_border
                            ? system_.borderDevice()
                            : static_cast<MemDevice &>(system_.bus());
    target.access(pkt);
    system_.eventQueue().run();

    if (!done) {
        // Fire-and-forget paths (e.g. an unacknowledged writeback on
        // the unsafe baseline) produce no response: the access went
        // through unchecked.
        outcome.responded = false;
        outcome.blocked = false;
    }
    return outcome;
}

AttackInjector::Outcome
AttackInjector::wildPhysicalRead(Addr paddr)
{
    auto pkt = system_.packetPool().make(MemCmd::Read, paddr, 64,
                                         Requestor::accelerator);
    return inject(pkt, true);
}

AttackInjector::Outcome
AttackInjector::wildPhysicalWrite(Addr paddr)
{
    auto pkt = system_.packetPool().make(MemCmd::Write, paddr, 64,
                                         Requestor::accelerator);
    return inject(pkt, true);
}

AttackInjector::Outcome
AttackInjector::staleWriteback(Addr paddr)
{
    auto pkt =
        system_.packetPool().make(MemCmd::Writeback, blockAlign(paddr),
                                  blockSize, Requestor::accelerator);
    return inject(pkt, true);
}

AttackInjector::Outcome
AttackInjector::forgedAsidRead(Asid asid, Addr vaddr)
{
    auto pkt = system_.packetPool().make(MemCmd::Read, 0, 64,
                                         Requestor::accelerator, asid);
    pkt->isVirtual = true;
    pkt->vaddr = vaddr;

    if (system_.iommuFrontend() != nullptr)
        return inject(pkt, true);

    // Configurations without a translate-at-border front end route
    // virtual requests through the ATS the way the accelerator would;
    // a forged ASID fails translation there.
    Outcome outcome;
    const Tick start = system_.eventQueue().curTick();
    bool done = false;
    system_.ats().translate(asid, vaddr, false,
                            [&](bool ok, const TlbEntry &) {
                                done = true;
                                outcome.responded = true;
                                outcome.blocked = !ok;
                                outcome.latency =
                                    system_.eventQueue().curTick() -
                                    start;
                            });
    system_.eventQueue().run();
    if (!done)
        outcome.responded = false;
    return outcome;
}

} // namespace bctrl
