#include "bc/attack.hh"

#include "sim/logging.hh"

namespace bctrl {

AttackInjector::AttackInjector(System &system)
    : system_(system),
      stats_("system.attack"),
      injected_(stats_.scalar("injected", "attack requests issued")),
      blocked_(stats_.scalar("blocked",
                             "attacks denied by a safety mechanism")),
      unblocked_(stats_.scalar(
          "unblocked", "attacks that completed unchecked (unsafe)")),
      latency_(stats_.histogram(
          "latency", "injection-to-response time of attacks (ticks)"))
{
}

void
AttackInjector::record(const Outcome &outcome)
{
    if (outcome.responded) {
        latency_.sample(static_cast<double>(outcome.latency));
        if (outcome.blocked)
            ++blocked_;
        else
            ++unblocked_;
    } else {
        // Fire-and-forget paths (e.g. an unacknowledged writeback on
        // the unsafe baseline) produce no response: the access went
        // through unchecked.
        ++unblocked_;
    }
}

AttackInjector::Outcome
AttackInjector::inject(const PacketPtr &pkt, bool via_border)
{
    Outcome outcome;
    const Tick start = system_.eventQueue().curTick();
    bool done = false;
    ++injected_;
    pkt->issuedAt = start;
    pkt->onResponse = [&](Packet &p) {
        done = true;
        outcome.responded = true;
        outcome.blocked = p.denied;
        outcome.latency = system_.eventQueue().curTick() - start;
    };

    MemDevice &target = via_border
                            ? system_.borderDevice()
                            : static_cast<MemDevice &>(system_.bus());
    target.access(pkt);
    system_.eventQueue().run();

    if (!done) {
        outcome.responded = false;
        outcome.blocked = false;
    }
    record(outcome);
    return outcome;
}

PacketPtr
AttackInjector::makeAttackPacket(AttackKind kind, Addr addr, Asid asid)
{
    switch (kind) {
      case AttackKind::wildRead:
        return system_.packetPool().make(MemCmd::Read, addr, 64,
                                         Requestor::accelerator);
      case AttackKind::wildWrite:
        return system_.packetPool().make(MemCmd::Write, addr, 64,
                                         Requestor::accelerator);
      case AttackKind::staleWriteback:
        return system_.packetPool().make(MemCmd::Writeback,
                                         blockAlign(addr), blockSize,
                                         Requestor::accelerator);
      case AttackKind::forgedAsidRead: {
        auto pkt = system_.packetPool().make(MemCmd::Read, 0, 64,
                                             Requestor::accelerator,
                                             asid);
        pkt->isVirtual = true;
        pkt->vaddr = addr;
        return pkt;
      }
    }
    return nullptr;
}

void
AttackInjector::scheduleAttackAt(Tick when, AttackKind kind, Addr addr,
                                 Asid asid)
{
    // The injector runs on the primary (border) queue, the same
    // queue system_ hands out: a same-domain reach.
    // bclint:allow(cross-domain-direct-call)
    system_.eventQueue().scheduleLambda(
        [this, kind, addr, asid]() {
            const Tick start = system_.eventQueue().curTick();
            ++injected_;

            if (kind == AttackKind::forgedAsidRead &&
                system_.iommuFrontend() == nullptr) {
                // No translate-at-border front end: the forgery dies
                // (or not) at the ATS the way real traffic would.
                system_.ats().translate(
                    asid, addr, false,
                    [this, start](bool ok, const TlbEntry &) {
                        Outcome outcome;
                        outcome.responded = true;
                        outcome.blocked = !ok;
                        outcome.latency =
                            system_.eventQueue().curTick() - start;
                        record(outcome);
                        asyncOutcomes_.push_back(outcome);
                    });
                return;
            }

            auto pkt = makeAttackPacket(kind, addr, asid);
            pkt->issuedAt = start;
            pkt->onResponse = [this, start](Packet &p) {
                Outcome outcome;
                outcome.responded = true;
                outcome.blocked = p.denied;
                outcome.latency =
                    system_.eventQueue().curTick() - start;
                record(outcome);
                asyncOutcomes_.push_back(outcome);
            };
            system_.borderDevice().access(pkt);
        },
        when);
}

AttackInjector::Outcome
AttackInjector::wildPhysicalRead(Addr paddr)
{
    return inject(makeAttackPacket(AttackKind::wildRead, paddr, 0), true);
}

AttackInjector::Outcome
AttackInjector::wildPhysicalWrite(Addr paddr)
{
    return inject(makeAttackPacket(AttackKind::wildWrite, paddr, 0),
                  true);
}

AttackInjector::Outcome
AttackInjector::staleWriteback(Addr paddr)
{
    return inject(makeAttackPacket(AttackKind::staleWriteback, paddr, 0),
                  true);
}

AttackInjector::Outcome
AttackInjector::forgedAsidRead(Asid asid, Addr vaddr)
{
    if (system_.iommuFrontend() != nullptr) {
        return inject(
            makeAttackPacket(AttackKind::forgedAsidRead, vaddr, asid),
            true);
    }

    // Configurations without a translate-at-border front end route
    // virtual requests through the ATS the way the accelerator would;
    // a forged ASID fails translation there.
    Outcome outcome;
    const Tick start = system_.eventQueue().curTick();
    bool done = false;
    ++injected_;
    system_.ats().translate(asid, vaddr, false,
                            [&](bool ok, const TlbEntry &) {
                                done = true;
                                outcome.responded = true;
                                outcome.blocked = !ok;
                                outcome.latency =
                                    system_.eventQueue().curTick() -
                                    start;
                            });
    system_.eventQueue().run();
    if (!done)
        outcome.responded = false;
    record(outcome);
    return outcome;
}

} // namespace bctrl
