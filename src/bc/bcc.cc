#include "bc/bcc.hh"

#include "bc/protection_table.hh"
#include "sim/logging.hh"

namespace bctrl {

BorderControlCache::BorderControlCache(const Params &params)
    : params_(params)
{
    panic_if(params_.entries == 0, "BCC with zero entries");
    panic_if(params_.pagesPerEntry == 0, "BCC with zero pages per entry");
    entries_.resize(params_.entries);
    const unsigned bytes_per_entry = (params_.pagesPerEntry * 2 + 7) / 8;
    for (Entry &e : entries_)
        e.bits.assign(bytes_per_entry, 0);
    index_.reserve(params_.entries);
}

BorderControlCache::Entry *
BorderControlCache::findEntry(Addr group)
{
    auto it = index_.find(group);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

const BorderControlCache::Entry *
BorderControlCache::findEntry(Addr group) const
{
    return const_cast<BorderControlCache *>(this)->findEntry(group);
}

Perms
BorderControlCache::getBits(const Entry &e, unsigned index)
{
    std::uint8_t byte = e.bits[index / 4];
    return Perms::fromBits((byte >> ((index % 4) * 2)) & 0x3);
}

void
BorderControlCache::setBits(Entry &e, unsigned index, Perms perms)
{
    unsigned shift = (index % 4) * 2;
    std::uint8_t &byte = e.bits[index / 4];
    byte = static_cast<std::uint8_t>(
        (byte & ~(0x3u << shift)) | (unsigned(perms.toBits()) << shift));
}

std::optional<Perms>
BorderControlCache::lookup(Addr ppn)
{
    Entry *e = findEntry(groupOf(ppn));
    if (!e) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    e->lastUse = ++useCounter_;
    return getBits(*e, static_cast<unsigned>(ppn % params_.pagesPerEntry));
}

std::optional<Perms>
BorderControlCache::probe(Addr ppn) const
{
    const Entry *e = findEntry(groupOf(ppn));
    if (!e)
        return std::nullopt;
    return getBits(*e, static_cast<unsigned>(ppn % params_.pagesPerEntry));
}

Perms
BorderControlCache::fill(Addr ppn, const ProtectionTable &table)
{
    const Addr group = groupOf(ppn);
    Entry *e = findEntry(group);
    if (!e) {
        // Choose the LRU (or an invalid) entry as victim. No writeback
        // is needed: the BCC is write-through.
        Entry *victim = &entries_.front();
        for (Entry &cand : entries_) {
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (cand.lastUse < victim->lastUse)
                victim = &cand;
        }
        if (victim->valid)
            index_.erase(victim->groupTag);
        victim->valid = true;
        victim->groupTag = group;
        index_[group] = static_cast<std::uint32_t>(victim -
                                                   entries_.data());
        e = victim;
    }
    // Load the whole group's permissions from the Protection Table.
    const Addr first_ppn = group * params_.pagesPerEntry;
    for (unsigned i = 0; i < params_.pagesPerEntry; ++i) {
        Addr p = first_ppn + i;
        Perms perms = table.inBounds(p) ? table.getPerms(p)
                                        : Perms::noAccess();
        setBits(*e, i, perms);
    }
    e->lastUse = ++useCounter_;
    return getBits(*e, static_cast<unsigned>(ppn % params_.pagesPerEntry));
}

bool
BorderControlCache::update(Addr ppn, Perms perms)
{
    Entry *e = findEntry(groupOf(ppn));
    if (!e)
        return false;
    setBits(*e, static_cast<unsigned>(ppn % params_.pagesPerEntry), perms);
    e->lastUse = ++useCounter_;
    return true;
}

void
BorderControlCache::invalidatePage(Addr ppn)
{
    if (Entry *e = findEntry(groupOf(ppn))) {
        e->valid = false;
        index_.erase(e->groupTag);
    }
}

void
BorderControlCache::invalidateAll()
{
    for (Entry &e : entries_)
        e.valid = false;
    index_.clear();
}

bool
BorderControlCache::resident(Addr ppn) const
{
    return findEntry(groupOf(ppn)) != nullptr;
}

std::uint64_t
BorderControlCache::sizeBits() const
{
    return std::uint64_t(params_.entries) *
           (params_.tagBits + 2ULL * params_.pagesPerEntry);
}

} // namespace bctrl
