/**
 * @file
 * Attack and fault injection: the threat model of §2.1 made concrete.
 *
 * An AttackInjector plays the role of a buggy or malicious accelerator
 * issuing requests that never came from the ATS: wild physical reads
 * and writes, writebacks with stale permissions, and forged-ASID
 * virtual requests. Requests are injected at exactly the point real
 * accelerator traffic crosses the trusted border, so the outcome
 * (blocked or not) reflects each safety configuration faithfully —
 * including the unsafe ATS-only baseline, where attacks succeed.
 *
 * Two modes: the synchronous methods drive the event queue to
 * completion on an otherwise idle system (unit tests), while
 * scheduleAttackAt() arms an attack to fire in the middle of a live
 * run (chaos campaigns), with the outcome recorded when the response
 * comes back. Either way every outcome lands in the injector's
 * "system.attack" stat group, which can be registered with
 * System::addStatGroup() to appear in the stat dumps.
 */

#ifndef BCTRL_BC_ATTACK_HH
#define BCTRL_BC_ATTACK_HH

#include <vector>

#include "config/system_builder.hh"

namespace bctrl {

/** The attack repertoire of §2.1. */
enum class AttackKind {
    wildRead,       ///< read a physical address the ATS never handed out
    wildWrite,      ///< write an arbitrary physical address
    staleWriteback, ///< write back under downgraded permissions
    forgedAsidRead, ///< virtual read under an ASID not bound to the accel
};

class AttackInjector
{
  public:
    /** Result of one injected request. */
    struct Outcome {
        bool blocked = false;   ///< a safety mechanism denied it
        bool responded = false; ///< a response came back at all
        Tick latency = 0;       ///< injection-to-response time
    };

    /**
     * @param system the system under attack. The synchronous methods
     *        require an idle system (no kernel running) and drive the
     *        event queue themselves; scheduleAttackAt() composes with
     *        a live run.
     */
    explicit AttackInjector(System &system);

    /** Read an arbitrary physical address the ATS never handed out. */
    Outcome wildPhysicalRead(Addr paddr);

    /** Write an arbitrary physical address. */
    Outcome wildPhysicalWrite(Addr paddr);

    /**
     * Write back a dirty block using a translation that has since been
     * downgraded (the buggy-TLB-shootdown scenario of §2.1).
     */
    Outcome staleWriteback(Addr paddr);

    /** Issue a virtual request under an ASID not bound to the accel. */
    Outcome forgedAsidRead(Asid asid, Addr vaddr);

    /**
     * Arm @p kind to fire at tick @p when during a live run (the event
     * queue is NOT driven here). The outcome is recorded in the stat
     * group and in asyncOutcomes() when (if) the response arrives.
     */
    void scheduleAttackAt(Tick when, AttackKind kind, Addr addr,
                          Asid asid = 0);

    /** Outcomes of responded scheduleAttackAt() attacks, in order. */
    const std::vector<Outcome> &asyncOutcomes() const
    {
        return asyncOutcomes_;
    }

    /** "system.attack" counters for System::addStatGroup(). */
    const stats::StatGroup &statGroup() const { return stats_; }

    std::uint64_t injected() const
    {
        return static_cast<std::uint64_t>(injected_.value());
    }
    std::uint64_t blocked() const
    {
        return static_cast<std::uint64_t>(blocked_.value());
    }
    std::uint64_t unblocked() const
    {
        return static_cast<std::uint64_t>(unblocked_.value());
    }

  private:
    Outcome inject(const PacketPtr &pkt, bool via_border);

    /** Build the packet for @p kind (null for ATS-routed forgeries). */
    PacketPtr makeAttackPacket(AttackKind kind, Addr addr, Asid asid);

    void record(const Outcome &outcome);

    System &system_;

    stats::StatGroup stats_;
    stats::Scalar &injected_;
    stats::Scalar &blocked_;
    stats::Scalar &unblocked_;
    stats::Histogram &latency_;

    std::vector<Outcome> asyncOutcomes_;
};

} // namespace bctrl

#endif // BCTRL_BC_ATTACK_HH
