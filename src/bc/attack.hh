/**
 * @file
 * Attack and fault injection: the threat model of §2.1 made concrete.
 *
 * An AttackInjector plays the role of a buggy or malicious accelerator
 * issuing requests that never came from the ATS: wild physical reads
 * and writes, writebacks with stale permissions, and forged-ASID
 * virtual requests. Requests are injected at exactly the point real
 * accelerator traffic crosses the trusted border, so the outcome
 * (blocked or not) reflects each safety configuration faithfully —
 * including the unsafe ATS-only baseline, where attacks succeed.
 */

#ifndef BCTRL_BC_ATTACK_HH
#define BCTRL_BC_ATTACK_HH

#include "config/system_builder.hh"

namespace bctrl {

class AttackInjector
{
  public:
    /** Result of one injected request. */
    struct Outcome {
        bool blocked = false;   ///< a safety mechanism denied it
        bool responded = false; ///< a response came back at all
        Tick latency = 0;       ///< injection-to-response time
    };

    /**
     * @param system an idle system (no kernel running); the injector
     *        drives the event queue synchronously.
     */
    explicit AttackInjector(System &system) : system_(system) {}

    /** Read an arbitrary physical address the ATS never handed out. */
    Outcome wildPhysicalRead(Addr paddr);

    /** Write an arbitrary physical address. */
    Outcome wildPhysicalWrite(Addr paddr);

    /**
     * Write back a dirty block using a translation that has since been
     * downgraded (the buggy-TLB-shootdown scenario of §2.1).
     */
    Outcome staleWriteback(Addr paddr);

    /** Issue a virtual request under an ASID not bound to the accel. */
    Outcome forgedAsidRead(Asid asid, Addr vaddr);

  private:
    Outcome inject(const PacketPtr &pkt, bool via_border);

    System &system_;
};

} // namespace bctrl

#endif // BCTRL_BC_ATTACK_HH
