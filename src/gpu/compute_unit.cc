#include "gpu/compute_unit.hh"

#include <algorithm>

#include "gpu/wavefront.hh"
#include "sim/logging.hh"

namespace bctrl {

ComputeUnit::ComputeUnit(EventQueue &eq, const std::string &name,
                         unsigned id, unsigned num_wavefronts,
                         unsigned issue_width, Tick clock_period,
                         Gpu &gpu)
    : SimObject(eq, name),
      id_(id),
      issueWidth_(issue_width),
      clockPeriod_(clock_period),
      gpu_(gpu)
{
    panic_if(num_wavefronts == 0, "CU with zero wavefronts");
    panic_if(issue_width == 0, "CU with zero issue width");
    for (unsigned wf = 0; wf < num_wavefronts; ++wf)
        wavefronts_.push_back(
            std::make_unique<Wavefront>(*this, gpu, id, wf));
}

ComputeUnit::~ComputeUnit() = default;

Tick
ComputeUnit::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % clockPeriod_;
    Tick edge = rem == 0 ? now : now + (clockPeriod_ - rem);
    return edge + cycles * clockPeriod_;
}

Tick
ComputeUnit::acquireIssueSlot()
{
    const Tick slot_time =
        std::max<Tick>(1, clockPeriod_ / issueWidth_);
    Tick start = std::max(clockEdge(), issueBusyUntil_);
    issueBusyUntil_ = start + slot_time;
    return start;
}

Tick
ComputeUnit::acquireIssueSlots(unsigned n)
{
    const Tick slot_time =
        std::max<Tick>(1, clockPeriod_ / issueWidth_);
    Tick start = std::max(clockEdge(), issueBusyUntil_);
    issueBusyUntil_ = start + slot_time * std::max(1u, n);
    return issueBusyUntil_;
}

void
ComputeUnit::startAll()
{
    for (auto &wf : wavefronts_)
        wf->start();
}

} // namespace bctrl
