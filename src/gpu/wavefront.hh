/**
 * @file
 * A wavefront context: executes its share of the workload's item
 * stream — compute gaps and coalesced memory accesses — one item at a
 * time, stalling on memory. Parks itself while the GPU is paused for a
 * shootdown and resumes afterwards.
 */

#ifndef BCTRL_GPU_WAVEFRONT_HH
#define BCTRL_GPU_WAVEFRONT_HH

#include "workloads/workload.hh"

namespace bctrl {

class ComputeUnit;
class Gpu;

class Wavefront
{
  public:
    Wavefront(ComputeUnit &cu, Gpu &gpu, unsigned cu_id, unsigned wf_id);

    /** Begin executing (schedules the first step). */
    void start();

    /** Advance: fetch (or re-use a pending) item and execute it. */
    void step();

    /** Called by the GPU on resume() for parked wavefronts. */
    void unpark();

    bool done() const { return done_; }

  private:
    void execute(const WorkItem &item);
    void issueMem(const WorkItem &item);
    void memDone(bool denied);
    void scheduleStep(Cycles cycles);

    ComputeUnit &cu_;
    Gpu &gpu_;
    unsigned cuId_;
    unsigned wfId_;

    bool havePending_ = false;
    WorkItem pending_;
    bool done_ = false;
    unsigned faults_ = 0;
};

} // namespace bctrl

#endif // BCTRL_GPU_WAVEFRONT_HH
