/**
 * @file
 * The accelerator model: a GPGPU with configurable compute units and
 * wavefront counts (the paper's highly threaded 8-CU and moderately
 * threaded 1-CU profiles), used as the stress-test accelerator.
 *
 * Two datapaths cover the five evaluated configurations:
 *  - physCached: per-CU L1 TLBs and write-through L1 caches over a
 *    shared write-back L2, all physically addressed. The L2's
 *    downstream is Border Control (BC configs) or the memory system
 *    directly (unsafe ATS-only baseline).
 *  - iommu: no accelerator TLBs or caches; every access is sent as a
 *    virtual address to an IOMMU front end (full-IOMMU config), which
 *    may sit in front of a trusted host-side L2 (CAPI-like config).
 */

#ifndef BCTRL_GPU_GPU_HH
#define BCTRL_GPU_GPU_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "os/accelerator_control.hh"
#include "sim/sim_object.hh"
#include "vm/ats.hh"
#include "workloads/workload.hh"

namespace bctrl {

class ComputeUnit;
class Process;

class Gpu : public SimObject, public AcceleratorControl
{
  public:
    enum class DatapathKind {
        physCached, ///< accelerator TLBs + physical caches
        iommu,      ///< translate-at-border, no accelerator caches
    };

    struct Params {
        unsigned numCus = 8;
        unsigned wavefrontsPerCu = 32;
        /** Memory instructions issued per CU per cycle. */
        unsigned issueWidth = 1;
        Tick clockPeriod = 1'429; // 700 MHz
        DatapathKind kind = DatapathKind::physCached;
        Cache::Params l1Cache;
        Cache::Params l2Cache;
        bool hasL2Cache = true;
        Tlb::Params l1Tlb{64, 0};
        Cycles l1TlbLatency = 1;
        /**
         * On the iommu datapath, split each coalesced access into
         * 32 B sub-requests (no caches means no line-level merging).
         * The CAPI-like link carries coalesced requests intact.
         */
        bool splitIommuRequests = true;
        /** Denied/faulted accesses before a wavefront gives up. */
        unsigned maxWavefrontFaults = 8;
    };

    /**
     * @param ats translation service (used by the physCached path)
     * @param mem_path where accelerator traffic leaves the GPU: Border
     *        Control or the bus (physCached), or the IOMMU front end
     *        (iommu kind)
     * @param pool packet pool shared with the GPU's internal caches;
     *        null (unit tests) falls back to heap packets
     */
    Gpu(EventQueue &eq, const std::string &name, const Params &params,
        Ats &ats, MemDevice &mem_path, PacketPool *pool = nullptr);
    ~Gpu() override;

    /** @name Kernel launch */
    /// @{

    /**
     * Run @p workload for @p proc. bind() and setup() must already
     * have been called on the workload. @p on_done fires when every
     * wavefront has finished.
     */
    void launch(Workload &workload, Process &proc,
                std::function<void()> on_done);

    bool running() const { return runningWfs_ != 0; }
    Tick startTick() const { return startTick_; }
    Tick endTick() const { return endTick_; }
    /// @}

    /** @name AcceleratorControl (the kernel's view) */
    /// @{
    void pause(std::function<void()> quiesced) override;
    void resume() override;
    void flushCaches(std::function<void()> done) override;
    void flushCachePage(Addr ppn, std::function<void()> done) override;
    void invalidateTlbs() override;
    void invalidateTlbPage(Asid asid, Addr vpn) override;
    /// @}

    /** @name Wavefront support (internal use) */
    /// @{
    bool paused() const { return paused_; }
    Workload *workload() { return workload_; }
    const Params &params() const { return params_; }

    /** Issue one coalesced access; @p done receives the denied flag. */
    void issueMem(unsigned cu, const WorkItem &item,
                  std::function<void(bool denied)> done);

    void wavefrontFinished();
    void parkWavefront(class Wavefront *wf);
    /// @}

    Cache *l2Cache() { return l2Cache_.get(); }
    Cache *l1Cache(unsigned cu);
    Tlb *l1Tlb(unsigned cu);

    /**
     * Route TLB-miss translation requests through the border domain's
     * queue with @p latency each way, instead of calling the ATS
     * synchronously. The ATS (page walker and all) lives on the host
     * side of the border, so in the sharded build the request and the
     * completion must each be a latency-carrying message; the builder
     * wires this in both serial and parallel modes so results stay
     * bit-identical. Unset (unit tests), translate stays synchronous.
     */
    void
    setCrossDomainHop(EventQueue *border_queue, Tick latency)
    {
        hopQueue_ = border_queue;
        hopLatency_ = latency;
    }

    std::uint64_t memOpsIssued() const
    {
        return static_cast<std::uint64_t>(memOps_.value());
    }
    std::uint64_t deniedOps() const
    {
        return static_cast<std::uint64_t>(deniedOps_.value());
    }
    /** Memory ops issued but not yet completed (watchdog probe). */
    std::uint64_t outstandingMemOps() const { return outstandingMemOps_; }

  private:
    void issuePhys(unsigned cu, const WorkItem &item,
                   std::function<void(bool denied)> done);
    void issueIommu(const WorkItem &item,
                    std::function<void(bool denied)> done);
    void translateVia(Addr vaddr, bool write, Ats::Callback cb);
    void finishMemOp(bool denied, std::function<void(bool)> done);
    Tick clockEdge(Cycles cycles = 0) const;

    Params params_;
    Ats &ats_;
    MemDevice &memPath_;
    PacketPool *pool_;
    EventQueue *hopQueue_ = nullptr;
    Tick hopLatency_ = 0;

    std::vector<std::unique_ptr<ComputeUnit>> cus_;
    std::vector<std::unique_ptr<Tlb>> l1Tlbs_;
    std::vector<std::unique_ptr<Cache>> l1Caches_;
    std::unique_ptr<Cache> l2Cache_;

    Workload *workload_ = nullptr;
    Asid asid_ = 0;
    std::function<void()> onDone_;
    unsigned runningWfs_ = 0;
    Tick startTick_ = 0;
    Tick endTick_ = 0;

    bool paused_ = false;
    std::function<void()> pauseCb_;
    std::uint64_t outstandingMemOps_ = 0;
    std::vector<class Wavefront *> parked_;

    stats::Scalar &memOps_;
    stats::Scalar &deniedOps_;
    stats::Scalar &translationFaults_;
};

} // namespace bctrl

#endif // BCTRL_GPU_GPU_HH
