#include "gpu/wavefront.hh"

#include "gpu/compute_unit.hh"
#include "gpu/gpu.hh"
#include "sim/logging.hh"

namespace bctrl {

Wavefront::Wavefront(ComputeUnit &cu, Gpu &gpu, unsigned cu_id,
                     unsigned wf_id)
    : cu_(cu), gpu_(gpu), cuId_(cu_id), wfId_(wf_id)
{
}

void
Wavefront::start()
{
    done_ = false;
    havePending_ = false;
    faults_ = 0;
    scheduleStep(1);
}

void
Wavefront::scheduleStep(Cycles cycles)
{
    Wavefront *self = this;
    // Same GPU-cluster domain as cu_ (wavefronts live on their CU's
    // shard). bclint:allow(cross-domain-direct-call)
    cu_.eventQueue().scheduleLambda([self]() { self->step(); },
                                    cu_.clockEdge(cycles));
}

void
Wavefront::unpark()
{
    if (!done_)
        step();
}

void
Wavefront::step()
{
    if (done_)
        return;
    if (gpu_.paused()) {
        // Keep the pending item (if any) and wait for resume().
        gpu_.parkWavefront(this);
        return;
    }
    if (!havePending_) {
        pending_ = gpu_.workload()->next(cuId_, wfId_);
        havePending_ = true;
    }
    execute(pending_);
}

void
Wavefront::execute(const WorkItem &item)
{
    switch (item.kind) {
      case WorkItem::Kind::compute: {
        // ALU instructions contend for the CU's single issue port just
        // like memory instructions; a compute gap of N cycles models N
        // non-memory instructions of this wavefront.
        havePending_ = false;
        const Tick done =
            cu_.acquireIssueSlots(static_cast<unsigned>(item.cycles));
        Wavefront *self = this;
        // Same GPU-cluster domain as cu_.
        // bclint:allow(cross-domain-direct-call)
        cu_.eventQueue().scheduleLambda([self]() { self->step(); },
                                        done);
        return;
      }
      case WorkItem::Kind::mem: {
        // Reserve the CU issue port, then hand the access to the GPU
        // datapath at the reserved slot.
        const Tick slot = cu_.acquireIssueSlot();
        Wavefront *self = this;
        WorkItem copy = item;
        havePending_ = false;
        // Same GPU-cluster domain as cu_.
        // bclint:allow(cross-domain-direct-call)
        cu_.eventQueue().scheduleLambda(
            [self, copy]() { self->issueMem(copy); }, slot);
        return;
      }
      case WorkItem::Kind::end:
        havePending_ = false;
        done_ = true;
        gpu_.wavefrontFinished();
        return;
    }
    panic("unreachable work-item kind");
}

void
Wavefront::issueMem(const WorkItem &item)
{
    if (gpu_.paused()) {
        // The pause arrived between slot reservation and issue: hold
        // the access so it cannot race the shootdown protocol.
        pending_ = item;
        havePending_ = true;
        gpu_.parkWavefront(this);
        return;
    }
    Wavefront *self = this;
    gpu_.issueMem(cuId_, item,
                  [self](bool denied) { self->memDone(denied); });
}

void
Wavefront::memDone(bool denied)
{
    if (denied) {
        ++faults_;
        if (faults_ >= gpu_.params().maxWavefrontFaults) {
            // Repeated denials: the wavefront aborts (the OS has been
            // notified by Border Control / the IOMMU).
            done_ = true;
            gpu_.wavefrontFinished();
            return;
        }
    }
    scheduleStep(1);
}

} // namespace bctrl
