/**
 * @file
 * A compute unit: a set of wavefront contexts sharing an issue port.
 *
 * Latency tolerance emerges from the wavefront count: while one
 * wavefront waits on memory, others issue. The issue port accepts
 * `issueWidth` memory instructions per cycle, which bounds the demand
 * an 8-CU GPU can place on the memory system.
 */

#ifndef BCTRL_GPU_COMPUTE_UNIT_HH
#define BCTRL_GPU_COMPUTE_UNIT_HH

#include <memory>
#include <vector>

#include "sim/sim_object.hh"

namespace bctrl {

class Gpu;
class Wavefront;

class ComputeUnit : public SimObject
{
  public:
    ComputeUnit(EventQueue &eq, const std::string &name, unsigned id,
                unsigned num_wavefronts, unsigned issue_width,
                Tick clock_period, Gpu &gpu);
    ~ComputeUnit() override;

    unsigned id() const { return id_; }

    /** Launch all wavefront contexts. */
    void startAll();

    /** Next tick aligned to this CU's clock, @p cycles edges ahead. */
    Tick clockEdge(Cycles cycles = 0) const;

    /** Reserve an issue-port slot; @return the tick the op issues at. */
    Tick acquireIssueSlot();

    /**
     * Reserve @p n consecutive issue slots (ALU instructions occupy
     * the same single-issue port memory instructions do).
     * @return the tick the last slot completes.
     */
    Tick acquireIssueSlots(unsigned n);

    Gpu &gpu() { return gpu_; }
    unsigned numWavefronts() const
    {
        return static_cast<unsigned>(wavefronts_.size());
    }

  private:
    unsigned id_;
    unsigned issueWidth_;
    Tick clockPeriod_;
    Gpu &gpu_;
    Tick issueBusyUntil_ = 0;
    std::vector<std::unique_ptr<Wavefront>> wavefronts_;
};

} // namespace bctrl

#endif // BCTRL_GPU_COMPUTE_UNIT_HH
