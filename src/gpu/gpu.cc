#include "gpu/gpu.hh"

#include <algorithm>

#include "gpu/compute_unit.hh"
#include "gpu/wavefront.hh"
#include "os/process.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace bctrl {

Gpu::Gpu(EventQueue &eq, const std::string &name, const Params &params,
         Ats &ats, MemDevice &mem_path, PacketPool *pool)
    : SimObject(eq, name),
      params_(params),
      ats_(ats),
      memPath_(mem_path),
      pool_(pool),
      memOps_(statGroup().scalar("memOps", "coalesced accesses issued")),
      deniedOps_(statGroup().scalar("deniedOps",
                                    "accesses denied by a safety check")),
      translationFaults_(statGroup().scalar(
          "translationFaults", "accesses abandoned on translation fault"))
{
    panic_if(params_.numCus == 0, "GPU with zero compute units");

    if (params_.kind == DatapathKind::physCached) {
        if (params_.hasL2Cache) {
            Cache::Params l2p = params_.l2Cache;
            l2p.clockPeriod = params_.clockPeriod;
            l2p.side = Requestor::accelerator;
            l2Cache_ = std::make_unique<Cache>(eq, name + ".l2", l2p,
                                               memPath_, pool_);
            statGroup().addChild(&l2Cache_->statGroup());
        }
        for (unsigned cu = 0; cu < params_.numCus; ++cu) {
            auto tlb = std::make_unique<Tlb>(
                eq, formatString("%s.cu%u.l1tlb", name.c_str(), cu),
                params_.l1Tlb);
            statGroup().addChild(&tlb->statGroup());
            l1Tlbs_.push_back(std::move(tlb));

            Cache::Params l1p = params_.l1Cache;
            l1p.clockPeriod = params_.clockPeriod;
            l1p.side = Requestor::accelerator;
            l1p.writeThrough = true;
            MemDevice &below =
                l2Cache_ ? static_cast<MemDevice &>(*l2Cache_)
                         : memPath_;
            auto l1 = std::make_unique<Cache>(
                eq, formatString("%s.cu%u.l1d", name.c_str(), cu), l1p,
                below, pool_);
            statGroup().addChild(&l1->statGroup());
            l1Caches_.push_back(std::move(l1));
        }
    }

    for (unsigned cu = 0; cu < params_.numCus; ++cu) {
        cus_.push_back(std::make_unique<ComputeUnit>(
            eq, formatString("%s.cu%u", name.c_str(), cu), cu,
            params_.wavefrontsPerCu, params_.issueWidth,
            params_.clockPeriod, *this));
    }
}

Gpu::~Gpu() = default;

Tick
Gpu::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % params_.clockPeriod;
    Tick edge = rem == 0 ? now : now + (params_.clockPeriod - rem);
    return edge + cycles * params_.clockPeriod;
}

Tlb *
Gpu::l1Tlb(unsigned cu)
{
    return cu < l1Tlbs_.size() ? l1Tlbs_[cu].get() : nullptr;
}

Cache *
Gpu::l1Cache(unsigned cu)
{
    return cu < l1Caches_.size() ? l1Caches_[cu].get() : nullptr;
}

void
Gpu::launch(Workload &workload, Process &proc,
            std::function<void()> on_done)
{
    panic_if(running(), "launch while a kernel is running");
    workload_ = &workload;
    asid_ = proc.asid();
    onDone_ = std::move(on_done);
    runningWfs_ = params_.numCus * params_.wavefrontsPerCu;
    startTick_ = curTick();
    endTick_ = 0;
    for (auto &cu : cus_)
        cu->startAll();
}

void
Gpu::wavefrontFinished()
{
    panic_if(runningWfs_ == 0, "wavefront underflow");
    if (--runningWfs_ == 0) {
        endTick_ = curTick();
        if (onDone_) {
            auto cb = std::move(onDone_);
            onDone_ = nullptr;
            eventQueue().scheduleLambda(std::move(cb), curTick());
        }
    }
}

void
Gpu::parkWavefront(Wavefront *wf)
{
    parked_.push_back(wf);
}

void
Gpu::issueMem(unsigned cu, const WorkItem &item,
              std::function<void(bool denied)> done)
{
    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::gpu);

    ++memOps_;
    ++outstandingMemOps_;
    if (params_.kind == DatapathKind::physCached)
        issuePhys(cu, item, std::move(done));
    else
        issueIommu(item, std::move(done));
}

void
Gpu::finishMemOp(bool denied, std::function<void(bool)> done)
{
    if (denied)
        ++deniedOps_;
    panic_if(outstandingMemOps_ == 0, "outstanding mem op underflow");
    --outstandingMemOps_;
    eventQueue().noteProgress(); // watchdog food: an op completed

    done(denied);
    if (paused_ && outstandingMemOps_ == 0 && pauseCb_) {
        auto cb = std::move(pauseCb_);
        pauseCb_ = nullptr;
        eventQueue().scheduleLambda(std::move(cb), curTick());
    }
}

void
Gpu::issuePhys(unsigned cu, const WorkItem &item,
               std::function<void(bool denied)> done)
{
    Tlb &tlb = *l1Tlbs_[cu];
    const Addr vpn = pageNumber(item.vaddr);

    auto proceed = [this, cu, item, done = std::move(done)](
                       bool ok, const TlbEntry &entry) mutable {
        if (!ok) {
            // Translation fault: the op never reaches the caches.
            ++translationFaults_;
            finishMemOp(true, std::move(done));
            return;
        }
        // The (correct) accelerator checks permissions at its own TLB:
        // a write to a read-only page faults locally.
        const Perms need{!item.write, item.write};
        if (!entry.perms.covers(need)) {
            ++translationFaults_;
            finishMemOp(true, std::move(done));
            return;
        }
        const Addr paddr =
            pageBase(entry.ppn + (pageNumber(item.vaddr) - entry.vpn)) |
            pageOffset(item.vaddr);
        auto pkt =
            allocPacket(pool_,
                        item.write ? MemCmd::Write : MemCmd::Read,
                        paddr, item.size, Requestor::accelerator,
                        asid_);
        pkt->issuedAt = curTick();
        trace::emit(eventQueue(), trace::Flag::PacketLife,
                    name().c_str(), "issue", curTick(), 0, pkt->traceId,
                    pkt->paddr);
        auto self = this;
        pkt->onResponse = [self, done = std::move(done)](Packet &p)
            mutable {
            trace::emit(self->eventQueue(), trace::Flag::PacketLife,
                        self->name().c_str(), "retire", p.issuedAt,
                        self->curTick() - p.issuedAt, p.traceId,
                        p.paddr);
            self->finishMemOp(p.denied, std::move(done));
        };
        l1Caches_[cu]->access(pkt);
    };

    if (auto entry = tlb.lookup(asid_, vpn)) {
        TlbEntry e = *entry;
        eventQueue().scheduleLambda(
            [proceed = std::move(proceed), e]() mutable {
                proceed(true, e);
            },
            clockEdge(params_.l1TlbLatency));
    } else {
        translateVia(item.vaddr, item.write,
                     [this, cu, proceed = std::move(proceed)](
                         bool ok, const TlbEntry &entry) mutable {
                         if (ok)
                             l1Tlbs_[cu]->insert(entry);
                         proceed(ok, entry);
                     });
    }
}

void
Gpu::translateVia(Addr vaddr, bool write, Ats::Callback cb)
{
    if (hopQueue_ == nullptr) {
        // No border hop wired (unit tests): synchronous ATS.
        ats_.translate(asid_, vaddr, write, std::move(cb));
        return;
    }
    // Request hop: deliver the translate to the border domain at our
    // tick + L. Completion hop: when the ATS answers (border side,
    // possibly after a long page walk), copy the entry and deliver the
    // callback back on our queue at the *border's* tick + L — each
    // side only ever reads its own clock.
    Ats *ats = &ats_;
    EventQueue *gpuq = &eventQueue();
    EventQueue *borderq = hopQueue_;
    const Tick latency = hopLatency_;
    const Asid asid = asid_;
    borderq->scheduleLambda(
        [ats, gpuq, borderq, latency, asid, vaddr, write,
         cb = std::move(cb)]() mutable {
            ats->translate(
                asid, vaddr, write,
                [gpuq, borderq, latency, cb = std::move(cb)](
                    bool ok, const TlbEntry &entry) mutable {
                    TlbEntry copy = entry;
                    gpuq->scheduleLambda(
                        [ok, copy, cb = std::move(cb)]() mutable {
                            cb(ok, copy);
                        },
                        borderq->curTick() + latency);
                });
        },
        eventQueue().curTick() + latency);
}

void
Gpu::issueIommu(const WorkItem &item,
                std::function<void(bool denied)> done)
{
    // Without accelerator caches there is no line-level coalescing:
    // the wavefront's access leaves the GPU as independent sub-line
    // requests (32 B lanes-groups), each translated and checked at the
    // border. This is the first-order cost of the cache-less designs.
    const unsigned subSize =
        params_.splitIommuRequests ? 32 : item.size;
    const unsigned count = std::max(1u, item.size / subSize);

    struct Join {
        unsigned remaining;
        bool denied = false;
        std::function<void(bool)> done;
    };
    auto join = std::make_shared<Join>();
    join->remaining = count;
    join->done = std::move(done);

    for (unsigned i = 0; i < count; ++i) {
        auto pkt =
            allocPacket(pool_,
                        item.write ? MemCmd::Write : MemCmd::Read, 0,
                        subSize, Requestor::accelerator, asid_);
        pkt->isVirtual = true;
        pkt->vaddr = item.vaddr + Addr(i) * subSize;
        pkt->issuedAt = curTick();
        trace::emit(eventQueue(), trace::Flag::PacketLife,
                    name().c_str(), "issue", curTick(), 0, pkt->traceId,
                    pkt->vaddr);
        auto self = this;
        pkt->onResponse = [self, join](Packet &p) {
            join->denied = join->denied || p.denied;
            if (--join->remaining == 0) {
                auto cb = std::move(join->done);
                self->finishMemOp(join->denied, std::move(cb));
            }
        };
        memPath_.access(pkt);
    }
}

void
Gpu::pause(std::function<void()> quiesced)
{
    panic_if(paused_, "pause while already paused");
    paused_ = true;
    if (outstandingMemOps_ == 0) {
        eventQueue().scheduleLambda(std::move(quiesced), curTick());
    } else {
        pauseCb_ = std::move(quiesced);
    }
}

void
Gpu::resume()
{
    panic_if(!paused_, "resume while not paused");
    paused_ = false;
    std::vector<Wavefront *> to_wake;
    to_wake.swap(parked_);
    for (Wavefront *wf : to_wake) {
        eventQueue().scheduleLambda([wf]() { wf->unpark(); },
                                    clockEdge(1));
    }
}

void
Gpu::flushCaches(std::function<void()> done)
{
    // Write-through L1s hold no dirty data: invalidating suffices.
    for (auto &l1 : l1Caches_)
        l1->invalidateAll();
    if (l2Cache_) {
        l2Cache_->flushAll(std::move(done));
    } else {
        eventQueue().scheduleLambda(std::move(done), curTick());
    }
}

void
Gpu::flushCachePage(Addr ppn, std::function<void()> done)
{
    for (auto &l1 : l1Caches_) {
        // Selectively drop the page's blocks from the (clean) L1s.
        l1->tags().forEachBlock([&](CacheBlock &blk) {
            if (pageNumber(blk.addr) == ppn)
                l1->tags().invalidate(&blk);
        });
    }
    if (l2Cache_) {
        l2Cache_->flushPage(ppn, std::move(done));
    } else {
        eventQueue().scheduleLambda(std::move(done), curTick());
    }
}

void
Gpu::invalidateTlbs()
{
    for (auto &tlb : l1Tlbs_)
        tlb->invalidateAll();
}

void
Gpu::invalidateTlbPage(Asid asid, Addr vpn)
{
    for (auto &tlb : l1Tlbs_)
        tlb->invalidatePage(asid, vpn);
}

} // namespace bctrl
