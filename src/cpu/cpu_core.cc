#include "cpu/cpu_core.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace bctrl {

CpuCore::CpuCore(EventQueue &eq, const std::string &name,
                 const Params &params, Kernel &kernel,
                 MemDevice &mem_path, PacketPool *pool)
    : SimObject(eq, name),
      params_(params),
      kernel_(kernel),
      memPath_(mem_path),
      pool_(pool),
      tlb_(eq, name + ".dtlb", params.tlb),
      opsExecuted_(statGroup().scalar("opsExecuted",
                                      "memory operations completed")),
      tlbMissWalks_(statGroup().scalar("tlbMissWalks",
                                       "page walks on dTLB misses")),
      faults_(statGroup().scalar("faults",
                                 "operations abandoned on fault"))
{
    statGroup().addChild(&tlb_.statGroup());
    panic_if(params_.clockPeriod == 0, "CPU clock period is zero");
}

Tick
CpuCore::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % params_.clockPeriod;
    Tick edge = rem == 0 ? now : now + (params_.clockPeriod - rem);
    return edge + cycles * params_.clockPeriod;
}

void
CpuCore::bindProcess(Process &proc)
{
    panic_if(busy(), "rebinding a busy CPU core");
    process_ = &proc;
    tlb_.invalidateAll();
}

void
CpuCore::run(std::vector<CpuOp> ops, std::function<void()> done)
{
    panic_if(process_ == nullptr, "run() before bindProcess()");
    panic_if(busy(), "run() while the core is busy");
    for (CpuOp &op : ops)
        queue_.push_back(op);
    done_ = std::move(done);
    CpuCore *self = this;
    eventQueue().scheduleLambda([self]() { self->step(); },
                                clockEdge(1));
}

void
CpuCore::step()
{
    if (queue_.empty()) {
        if (done_) {
            auto cb = std::move(done_);
            done_ = nullptr;
            cb();
        }
        return;
    }
    CpuOp op = queue_.front();
    queue_.pop_front();
    if (op.computeBefore > 0) {
        CpuOp issue_op = op;
        issue_op.computeBefore = 0;
        queue_.push_front(issue_op);
        CpuCore *self = this;
        eventQueue().scheduleLambda([self]() { self->step(); },
                                    clockEdge(op.computeBefore));
        return;
    }
    execute(op);
}

void
CpuCore::execute(const CpuOp &op)
{
    const Addr vpn = pageNumber(op.vaddr);
    const Asid asid = process_->asid();
    const Perms need{!op.write, op.write};

    auto entry = tlb_.lookup(asid, vpn);
    if (entry && entry->perms.covers(need)) {
        const Addr paddr = pageBase(entry->ppn + (vpn - entry->vpn)) |
                           pageOffset(op.vaddr);
        CpuCore *self = this;
        CpuOp copy = op;
        Addr pa = paddr;
        eventQueue().scheduleLambda(
            [self, copy, pa]() { self->issue(copy, pa); },
            clockEdge(params_.tlbLatency));
        return;
    }

    // dTLB miss: the CPU walks its own page table (charged as a fixed
    // walk latency; the PTE traffic is small next to the data stream).
    ++tlbMissWalks_;
    WalkResult walk = process_->pageTable().walk(op.vaddr);
    if (!walk.valid || !walk.perms.covers(need)) {
        // Demand paging through the kernel, then retry once.
        if (kernel_.handlePageFault(asid, op.vaddr, op.write)) {
            walk = process_->pageTable().walk(op.vaddr);
        }
    }
    if (!walk.valid || !walk.perms.covers(need)) {
        ++faults_;
        CpuCore *self = this;
        eventQueue().scheduleLambda([self]() { self->step(); },
                                    clockEdge(1));
        return;
    }

    TlbEntry fill;
    fill.asid = asid;
    fill.largePage = walk.largePage;
    fill.vpn = walk.largePage ? (vpn & ~(pagesPerLargePage - 1)) : vpn;
    fill.ppn = walk.largePage
                   ? (pageNumber(walk.paddr) & ~(pagesPerLargePage - 1))
                   : pageNumber(walk.paddr);
    fill.perms = walk.perms;
    tlb_.insert(fill);

    CpuCore *self = this;
    CpuOp copy = op;
    Addr pa = walk.paddr;
    eventQueue().scheduleLambda(
        [self, copy, pa]() { self->issue(copy, pa); },
        clockEdge(params_.walkLatency));
}

void
CpuCore::issue(const CpuOp &op, Addr paddr)
{
    inFlight_ = true;
    auto pkt = allocPacket(pool_,
                           op.write ? MemCmd::Write : MemCmd::Read,
                           paddr, op.size, Requestor::cpu,
                           process_->asid());
    pkt->issuedAt = curTick();
    CpuCore *self = this;
    pkt->onResponse = [self](Packet &) {
        self->inFlight_ = false;
        ++self->opsExecuted_;
        self->eventQueue().scheduleLambda([self]() { self->step(); },
                                          self->clockEdge(1));
    };
    memPath_.access(pkt);
}

} // namespace bctrl
