/**
 * @file
 * A simple in-order CPU core model.
 *
 * The paper's system (Table 3) pairs the GPU with a host CPU that
 * shares physical memory through the coherence point. This core is a
 * timing traffic generator with the structures that matter to the
 * memory system: its own TLB (CPUs walk their own page tables, unlike
 * accelerators), a blocking load/store unit in front of its caches,
 * and demand paging through the kernel. It drives the CPU side of
 * CPU-GPU sharing in examples and coherence tests.
 */

#ifndef BCTRL_CPU_CPU_CORE_HH
#define BCTRL_CPU_CPU_CORE_HH

#include <deque>
#include <functional>

#include "mem/mem_device.hh"
#include "sim/sim_object.hh"
#include "vm/tlb.hh"

namespace bctrl {

class Kernel;
class Process;

/** One CPU memory operation with an optional compute gap before it. */
struct CpuOp {
    Addr vaddr = 0;
    bool write = false;
    unsigned size = 8;
    Cycles computeBefore = 0;
};

class CpuCore : public SimObject
{
  public:
    struct Params {
        Tick clockPeriod = 333; // 3 GHz
        Tlb::Params tlb{64, 4};
        Cycles tlbLatency = 1;
        /** Page-walk cost charged on a TLB miss (cycles). */
        Cycles walkLatency = 60;
    };

    /**
     * @param mem_path the core's L1 cache (or any memory device)
     * @param pool packet pool for issued loads/stores; null = heap
     */
    CpuCore(EventQueue &eq, const std::string &name,
            const Params &params, Kernel &kernel, MemDevice &mem_path,
            PacketPool *pool = nullptr);

    /** Bind the address space subsequent ops execute in. */
    void bindProcess(Process &proc);

    /**
     * Enqueue @p ops and execute them in order; @p done fires after
     * the last response. May be called again after completion.
     */
    void run(std::vector<CpuOp> ops, std::function<void()> done);

    bool busy() const { return !queue_.empty() || inFlight_; }

    Tlb &tlb() { return tlb_; }

    std::uint64_t opsExecuted() const
    {
        return static_cast<std::uint64_t>(opsExecuted_.value());
    }
    std::uint64_t faults() const
    {
        return static_cast<std::uint64_t>(faults_.value());
    }

  private:
    Tick clockEdge(Cycles cycles = 0) const;
    void step();
    void execute(const CpuOp &op);
    void issue(const CpuOp &op, Addr paddr);

    Params params_;
    Kernel &kernel_;
    MemDevice &memPath_;
    PacketPool *pool_;
    Tlb tlb_;
    Process *process_ = nullptr;

    std::deque<CpuOp> queue_;
    bool inFlight_ = false;
    std::function<void()> done_;

    stats::Scalar &opsExecuted_;
    stats::Scalar &tlbMissWalks_;
    stats::Scalar &faults_;
};

} // namespace bctrl

#endif // BCTRL_CPU_CPU_CORE_HH
