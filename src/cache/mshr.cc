#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace bctrl {

Mshr *
MshrQueue::find(Addr block_addr)
{
    for (Mshr &m : slots_) {
        if (m.active && m.blockAddr == block_addr)
            return &m;
    }
    return nullptr;
}

Mshr &
MshrQueue::allocate(Addr block_addr)
{
    panic_if(full(), "allocating MSHR beyond capacity %u", capacity_);
    panic_if(find(block_addr) != nullptr,
             "MSHR for block 0x%llx already exists",
             (unsigned long long)block_addr);
    for (Mshr &m : slots_) {
        if (m.active)
            continue;
        m.active = true;
        m.blockAddr = block_addr;
        m.needsWritable = false;
        m.targets.clear();
        ++live_;
        return m;
    }
    panic("MSHR slot accounting disagrees with live count");
}

void
MshrQueue::release(Mshr *mshr)
{
    panic_if(mshr == nullptr || !mshr->active,
             "releasing an inactive MSHR");
    mshr->active = false;
    mshr->targets.clear();
    --live_;
}

} // namespace bctrl
