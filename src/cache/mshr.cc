#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace bctrl {

Mshr *
MshrQueue::find(Addr block_addr)
{
    auto it = entries_.find(block_addr);
    return it == entries_.end() ? nullptr : &it->second;
}

Mshr &
MshrQueue::allocate(Addr block_addr)
{
    panic_if(full(), "allocating MSHR beyond capacity %u", capacity_);
    auto [it, inserted] = entries_.emplace(block_addr, Mshr{});
    panic_if(!inserted, "MSHR for block 0x%llx already exists",
             (unsigned long long)block_addr);
    it->second.blockAddr = block_addr;
    return it->second;
}

Mshr
MshrQueue::release(Addr block_addr)
{
    auto it = entries_.find(block_addr);
    panic_if(it == entries_.end(), "releasing absent MSHR 0x%llx",
             (unsigned long long)block_addr);
    Mshr m = std::move(it->second);
    entries_.erase(it);
    return m;
}

} // namespace bctrl
