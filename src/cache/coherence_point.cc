#include "cache/coherence_point.hh"

#include "cache/cache.hh"
#include "sim/fault.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace bctrl {

CoherencePoint::CoherencePoint(EventQueue &eq, const std::string &name,
                               MemDevice &memory, const Params &params)
    : SimObject(eq, name),
      memory_(memory),
      params_(params),
      requests_(statGroup().scalar("requests", "packets handled")),
      recalls_(statGroup().scalar("recalls",
                                  "cross-side block recalls performed")),
      demotions_(statGroup().scalar(
          "demotions",
          "read-only accelerator fills of dirty data written back first"))
{
    blocks_.reserve(params_.reserveBlocks);
}

void
CoherencePoint::recallFrom(bool accel_side, Addr addr)
{
    if (accel_side) {
        if (accelCache_ == nullptr)
            return;
        if (accelHopQueue_ != nullptr) {
            // The recall crosses the border: fire-and-forget message
            // on the accelerator's queue. Any writeback it provokes
            // returns through the accelerator's own downstream path
            // with its own border crossing.
            Cache *cache = accelCache_;
            accelHopQueue_->scheduleLambda(
                [cache, addr]() { cache->recallBlock(addr); },
                curTick() + accelHopLatency_);
        } else {
            accelCache_->recallBlock(addr);
        }
        return;
    }
    for (Cache *cache : cpuCaches_)
        cache->recallBlock(addr);
}

bool
CoherencePoint::handleFillRequest(const PacketPtr &pkt, BlockState &st)
{
    const bool from_accel = pkt->requestor == Requestor::accelerator;
    SideState &mine = from_accel ? st.accel : st.cpu;
    SideState &theirs = from_accel ? st.cpu : st.accel;

    bool recalled = false;

    if (pkt->needsWritable) {
        // Exclusive request: the other side must drop its copy (and
        // write back dirty data via its own downstream path).
        if (theirs != SideState::invalid) {
            recallFrom(!from_accel, pkt->paddr);
            theirs = SideState::invalid;
            ++recalls_;
            recalled = true;
        }
        mine = SideState::owned;
        pkt->grantedWritable = true;
    } else {
        // Shared request: demote an owner on the other side to shared.
        // The §3.4.3 invariant: when the accelerator asks read-only for
        // a block that is dirty on the trusted side, the dirty data is
        // written back to memory so the trusted hierarchy keeps (or
        // memory regains) ownership; the accelerator only ever gets a
        // clean shared copy it will never need to write back.
        if (theirs == SideState::owned) {
            recallFrom(!from_accel, pkt->paddr);
            theirs = SideState::invalid;
            ++recalls_;
            if (from_accel)
                ++demotions_;
            recalled = true;
        }
        mine = SideState::shared;
        // Trusted CPU fills may still receive exclusive-clean copies;
        // untrusted read-only fills never do (no owned-E for read-only
        // accelerator requests).
        pkt->grantedWritable = false;
    }
    return recalled;
}

void
CoherencePoint::access(const PacketPtr &pkt)
{
    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::coherence);

    // Injection point: a message entering the coherence point. The
    // surviving copies still run the full state machine below.
    if (fault::FaultEngine *fe = eventQueue().faultEngine()) {
        const fault::Decision fd =
            fe->decide(fault::Point::coherenceMsg, curTick());
        switch (fd.kind) {
          case fault::Kind::drop: {
            PacketPtr held = pkt;
            fe->holdDropped("coherence.msg", curTick(),
                            [this, held]() { access(held); });
            return;
          }
          case fault::Kind::delay: {
            PacketPtr held = pkt;
            eventQueue().scheduleLambda(
                [this, held]() { access(held); },
                curTick() + fd.delay);
            return;
          }
          case fault::Kind::duplicate: {
            // Replay the message through the state machine; the copy
            // carries no response callback of its own.
            auto dup = allocPacket(nullptr, pkt->cmd, pkt->paddr,
                                   pkt->size, pkt->requestor, pkt->asid);
            dup->needsWritable = pkt->needsWritable;
            dup->issuedAt = curTick();
            fault::FaultEngine::Suppressor guard(fe);
            access(dup);
            break;
          }
          default:
            break;
        }
    }

    ++requests_;
    Tick delay = params_.latency;

    if (pkt->requestor != Requestor::trustedHw) {
        const bool cacheable_fill =
            pkt->isRead() && pkt->size == blockSize &&
            pageOffset(pkt->paddr) % blockSize == 0;
        auto &st = blocks_[blockAlign(pkt->paddr)];

        if (cacheable_fill) {
            if (handleFillRequest(pkt, st))
                delay += params_.recallPenalty;
        } else if (pkt->isWriteback()) {
            // The block left the writer's cache.
            SideState &mine = pkt->requestor == Requestor::accelerator
                                  ? st.accel
                                  : st.cpu;
            mine = SideState::invalid;
        } else if (pkt->isWrite()) {
            // Uncached / write-through write: invalidate the other
            // side's stale copies.
            const bool from_accel =
                pkt->requestor == Requestor::accelerator;
            SideState &theirs = from_accel ? st.cpu : st.accel;
            if (theirs != SideState::invalid) {
                recallFrom(!from_accel, pkt->paddr);
                theirs = SideState::invalid;
                ++recalls_;
                delay += params_.recallPenalty;
            }
        } else {
            // Uncached read: no state change.
        }
    }

    trace::emit(eventQueue(), trace::Flag::Coherence, name().c_str(),
                delay > params_.latency ? "recall" : "request",
                curTick(), delay, pkt->traceId, pkt->paddr);

    eventQueue().scheduleLambda([this, pkt]() { memory_.access(pkt); },
                                curTick() + delay);
}

} // namespace bctrl
