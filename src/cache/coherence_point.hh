/**
 * @file
 * The memory-side coherence point ("null directory") between the CPU
 * cache hierarchy, the accelerator cache hierarchy, and DRAM.
 *
 * It keeps a per-block record of which side may hold the block and in
 * what state (Invalid / Shared / Modified-ownership), recalls blocks
 * from the opposite side on conflicting requests, and enforces the
 * paper's §3.4.3 invariant: an untrusted cache is never granted
 * ownership of a block it only asked to read, and a dirty block
 * requested read-only by the accelerator is first written back to
 * memory so ownership stays with the trusted hierarchy.
 */

#ifndef BCTRL_CACHE_COHERENCE_POINT_HH
#define BCTRL_CACHE_COHERENCE_POINT_HH

#include <unordered_map>
#include <vector>

#include "mem/mem_device.hh"
#include "sim/sim_object.hh"

namespace bctrl {

class Cache;

class CoherencePoint : public SimObject, public MemDevice
{
  public:
    struct Params {
        /** Fixed traversal latency in ticks. */
        Tick latency = 4'000; // 4 ns
        /** Extra latency when a recall from the other side is needed. */
        Tick recallPenalty = 30'000; // 30 ns
        /**
         * Buckets reserved in the block-state map up front. The map
         * grows with every block ever touched, so rehash-on-insert sits
         * directly on the memory hot path; one run of a Rodinia proxy
         * touches tens of thousands of blocks.
         */
        std::size_t reserveBlocks = 1 << 16;
    };

    CoherencePoint(EventQueue &eq, const std::string &name,
                   MemDevice &memory, const Params &params);

    /**
     * Register a trusted (CPU-side) cache to receive recalls. Both
     * levels of a hierarchy may be registered; recalls visit all.
     */
    void addCpuCache(Cache *cache) { cpuCaches_.push_back(cache); }

    /** Backwards-compatible alias for a single trusted cache. */
    void setCpuCache(Cache *cache) { addCpuCache(cache); }

    /** Register the top-level untrusted (accelerator-side) cache. */
    void setAccelCache(Cache *cache) { accelCache_ = cache; }

    /**
     * Deliver accelerator-side recalls as messages on the accelerator
     * domain's queue with @p latency, instead of calling into the
     * accelerator L2 synchronously. The coherence point lives on the
     * host side of the border, so in the sharded build a recall must
     * cross like any other traffic; the builder wires this in both
     * serial and parallel modes so results stay bit-identical. Unset
     * (unit tests), recalls stay synchronous.
     */
    void
    setAccelRecallHop(EventQueue *accel_queue, Tick latency)
    {
        accelHopQueue_ = accel_queue;
        accelHopLatency_ = latency;
    }

    void access(const PacketPtr &pkt) override;

    /** Number of blocks with tracked state (test support). */
    std::size_t trackedBlocks() const { return blocks_.size(); }

    std::uint64_t recalls() const
    {
        return static_cast<std::uint64_t>(recalls_.value());
    }

  private:
    enum class SideState : std::uint8_t { invalid, shared, owned };

    struct BlockState {
        SideState cpu = SideState::invalid;
        SideState accel = SideState::invalid;
    };

    /** Handle a cacheable (block-sized) read fill. */
    bool handleFillRequest(const PacketPtr &pkt, BlockState &st);

    /** Recall a block from every cache on one side. */
    void recallFrom(bool accel_side, Addr addr);

    MemDevice &memory_;
    Params params_;
    std::vector<Cache *> cpuCaches_;
    Cache *accelCache_ = nullptr;
    EventQueue *accelHopQueue_ = nullptr;
    Tick accelHopLatency_ = 0;
    std::unordered_map<Addr, BlockState> blocks_;

    stats::Scalar &requests_;
    stats::Scalar &recalls_;
    stats::Scalar &demotions_;
};

} // namespace bctrl

#endif // BCTRL_CACHE_COHERENCE_POINT_HH
