/**
 * @file
 * Set-associative tag store with LRU replacement, shared by every cache
 * in the system (CPU L1/L2, accelerator L1/L2, trusted CAPI-like L2).
 */

#ifndef BCTRL_CACHE_TAGS_HH
#define BCTRL_CACHE_TAGS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace bctrl {

struct CacheBlock {
    bool valid = false;
    /** Block-aligned physical address (full address, not just tag bits). */
    Addr addr = 0;
    bool dirty = false;
    /** Whether the coherence point granted write (ownership) rights. */
    bool writable = false;
    std::uint64_t lastUse = 0;
};

class TagStore
{
  public:
    /**
     * @param size total capacity in bytes
     * @param assoc ways per set
     * @param block_size block size in bytes (power of two)
     */
    TagStore(Addr size, unsigned assoc, unsigned block_size);

    /** @return the block holding @p addr, or nullptr. Updates LRU. */
    CacheBlock *accessBlock(Addr addr);

    /** @return the block holding @p addr, or nullptr. No LRU update. */
    CacheBlock *findBlock(Addr addr);
    const CacheBlock *findBlock(Addr addr) const;

    /**
     * Choose a victim slot in @p addr's set: an invalid slot if one
     * exists, otherwise the LRU block. Never returns nullptr.
     */
    CacheBlock *findVictim(Addr addr);

    /** Install @p addr into @p blk (caller handled any previous dirty). */
    void insert(CacheBlock *blk, Addr addr);

    /** Invalidate a single block. */
    void invalidate(CacheBlock *blk);

    /** Apply @p fn to every valid block. */
    void forEachBlock(const std::function<void(CacheBlock &)> &fn);

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned blockSize() const { return blockSize_; }
    Addr capacity() const { return capacity_; }

    Addr blockAlign(Addr a) const { return a & ~Addr(blockSize_ - 1); }

  private:
    unsigned setIndex(Addr addr) const;

    Addr capacity_;
    unsigned assoc_;
    unsigned blockSize_;
    unsigned numSets_;
    std::vector<CacheBlock> blocks_;
    std::uint64_t useCounter_ = 0;
};

} // namespace bctrl

#endif // BCTRL_CACHE_TAGS_HH
