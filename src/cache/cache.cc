#include "cache/cache.hh"

#include <algorithm>

#include "sim/contracts.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace bctrl {

Cache::Cache(EventQueue &eq, const std::string &name, const Params &params,
             MemDevice &downstream, PacketPool *pool)
    : SimObject(eq, name),
      params_(params),
      downstream_(downstream),
      pool_(pool),
      tags_(params.size, params.assoc, params.blockSize),
      mshrs_(params.mshrs),
      bankBusy_(std::max(1u, params.banks), 0),
      hits_(statGroup().scalar("hits", "demand hits")),
      misses_(statGroup().scalar("misses", "demand misses")),
      mshrCoalesced_(statGroup().scalar("mshrCoalesced",
                                        "misses coalesced into MSHRs")),
      writebacks_(statGroup().scalar("writebacks", "writebacks issued")),
      evictions_(statGroup().scalar("evictions", "blocks evicted")),
      deferrals_(statGroup().scalar("deferrals",
                                    "accesses deferred on full MSHRs")),
      missLatency_(statGroup().distribution("missLatency",
                                            "demand miss latency (ticks)")),
      mshrOccupancy_(statGroup().histogram(
          "mshrOccupancy", "MSHRs in service at each allocation")),
      missToFill_(statGroup().histogram(
          "missToFill", "fill round-trip latency in ticks"))
{
    panic_if(params_.clockPeriod == 0, "cache clock period is zero");
}

Cache::~Cache()
{
    // MSHR leak contract: once the event queue has fully drained, every
    // allocated MSHR must have seen its fill response and been
    // released, and no deferred access may still be parked. A leak here
    // means a miss was issued whose response path was dropped — the
    // requestor above us hangs forever. Only checked when the queue is
    // empty: tearing down mid-simulation (run(maxTick) cut short)
    // legitimately leaves misses in flight.
    BCTRL_ASSERT_MSG(!eventQueue().empty() || (mshrs_.inService() == 0 &&
                                               deferred_.empty()),
                     "cache '%s' destroyed with %zu leaked MSHRs and "
                     "%zu deferred accesses after the event queue "
                     "drained",
                     name().c_str(), mshrs_.inService(),
                     deferred_.size());
}

Tick
Cache::clockEdge(Cycles cycles) const
{
    Tick now = curTick();
    Tick rem = now % params_.clockPeriod;
    Tick edge = rem == 0 ? now : now + (params_.clockPeriod - rem);
    return edge + cycles * params_.clockPeriod;
}

Tick
Cache::bankReady(Addr addr)
{
    unsigned bank =
        static_cast<unsigned>(blockNumber(addr) % bankBusy_.size());
    Tick start = std::max(clockEdge(), bankBusy_[bank]);
    bankBusy_[bank] = start + params_.clockPeriod;
    return start + params_.hitLatency * params_.clockPeriod;
}

void
Cache::access(const PacketPtr &pkt)
{
    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::cache);

    const Tick ready = bankReady(pkt->paddr);
    CacheBlock *blk = tags_.accessBlock(pkt->paddr);
    trace::emit(eventQueue(), trace::Flag::Cache, name().c_str(),
                blk != nullptr ? "hit" : "miss", curTick(),
                ready - curTick(), pkt->traceId, pkt->paddr);

    if (pkt->isRead()) {
        if (blk) {
            ++hits_;
            respondAt(eventQueue(), pkt, ready);
        } else {
            ++misses_;
            handleMiss(pkt, ready);
        }
        return;
    }

    // Writes and writebacks.
    if (params_.writeThrough) {
        // Write-through, no write-allocate: update a present copy and
        // forward the write downstream regardless.
        if (blk)
            ++hits_;
        else
            ++misses_;
        auto through = allocPacket(pool_, MemCmd::Write, pkt->paddr,
                                   pkt->size, params_.side, pkt->asid);
        through->issuedAt = curTick();
        eventQueue().scheduleLambda(
            [this, through]() { downstream_.access(through); }, ready);
        respondAt(eventQueue(), pkt, ready);
        return;
    }

    if (blk && blk->writable) {
        ++hits_;
        blk->dirty = true;
        respondAt(eventQueue(), pkt, ready);
    } else {
        // Miss, or present without write rights (upgrade needed).
        ++misses_;
        handleMiss(pkt, ready);
    }
}

void
Cache::handleMiss(const PacketPtr &pkt, Tick ready)
{
    (void)ready;
    const Addr block_addr = tags_.blockAlign(pkt->paddr);

    if (Mshr *mshr = mshrs_.find(block_addr)) {
        ++mshrCoalesced_;
        mshr->targets.push_back(pkt);
        // A write joining a read-only fill is resolved in handleFill by
        // reissuing an exclusive fill.
        if (pkt->isWrite())
            mshr->needsWritable = true;
        return;
    }

    if (mshrs_.full()) {
        ++deferrals_;
        deferred_.push_back(pkt);
        return;
    }

    mshrOccupancy_.sample(static_cast<double>(mshrs_.inService()));
    Mshr &mshr = mshrs_.allocate(block_addr);
    mshr.targets.push_back(pkt);
    mshr.needsWritable = pkt->isWrite();
    sendFill(block_addr, mshr.needsWritable);
}

void
Cache::sendFill(Addr block_addr, bool needs_writable)
{
    auto fill = allocPacket(pool_, MemCmd::Read, block_addr,
                            params_.blockSize, params_.side, 0);
    fill->needsWritable = needs_writable;
    fill->issuedAt = curTick();
    fill->onResponse = [this](Packet &resp) { handleFill(resp); };
    downstream_.access(fill);
}

void
Cache::handleFill(Packet &fill)
{
    missToFill_.sample(static_cast<double>(curTick() - fill.issuedAt));
    trace::emit(eventQueue(), trace::Flag::Cache, name().c_str(), "fill",
                fill.issuedAt, curTick() - fill.issuedAt, fill.traceId,
                fill.paddr);

    const Addr block_addr = fill.paddr;
    Mshr *mshr = mshrs_.find(block_addr);
    panic_if(mshr == nullptr, "fill response for absent MSHR 0x%llx",
             (unsigned long long)block_addr);
    // Drain the targets into a reused scratch buffer and retire the
    // slot up front (the reissue path below re-allocates it).
    fillTargets_.clear();
    fillTargets_.swap(mshr->targets);
    mshrs_.release(mshr);

    if (fill.denied) {
        // The fill was blocked by a safety mechanism: nothing is
        // installed, and every coalesced target fails.
        const Tick when = clockEdge(params_.responseLatency);
        for (const PacketPtr &target : fillTargets_) {
            target->denied = true;
            respondAt(eventQueue(), target, when);
        }
        fillTargets_.clear();
        retryDeferred();
        maybeStartFlush();
        return;
    }

    CacheBlock *blk = tags_.findBlock(block_addr);
    if (!blk) {
        blk = tags_.findVictim(block_addr);
        if (blk->valid) {
            ++evictions_;
            if (blk->dirty)
                issueWriteback(blk->addr, false);
        }
        tags_.insert(blk, block_addr);
    }
    if (fill.grantedWritable)
        blk->writable = true;

    const Tick done = clockEdge(params_.responseLatency);
    bool reissue_writable = false;
    stillWaiting_.clear();
    for (const PacketPtr &target : fillTargets_) {
        if (target->isRead()) {
            missLatency_.sample(
                static_cast<double>(done - target->issuedAt));
            respondAt(eventQueue(), target, done);
        } else if (blk->writable) {
            blk->dirty = true;
            missLatency_.sample(
                static_cast<double>(done - target->issuedAt));
            respondAt(eventQueue(), target, done);
        } else {
            // Write target but the fill came back read-only: an
            // exclusive re-request is required.
            reissue_writable = true;
            stillWaiting_.push_back(target);
        }
    }
    fillTargets_.clear();

    if (reissue_writable) {
        Mshr &again = mshrs_.allocate(block_addr);
        again.targets.swap(stillWaiting_);
        again.needsWritable = true;
        sendFill(block_addr, true);
        return;
    }

    retryDeferred();
    maybeStartFlush();
}

void
Cache::issueWriteback(Addr block_addr, bool track)
{
    ++writebacks_;
    auto wb = allocPacket(pool_, MemCmd::Writeback, block_addr,
                          params_.blockSize, params_.side, 0);
    wb->issuedAt = curTick();
    if (track) {
        ++trackedWritebacks_;
        wb->onResponse = [this](Packet &) {
            panic_if(trackedWritebacks_ == 0,
                     "tracked writeback underflow");
            --trackedWritebacks_;
            finishFlushIfDone();
        };
    }
    downstream_.access(wb);
}

void
Cache::retryDeferred()
{
    while (!deferred_.empty() && !mshrs_.full()) {
        PacketPtr pkt = deferred_.front();
        deferred_.pop_front();
        // Re-run the full access path: the block may have been filled
        // by the miss that just completed.
        access(pkt);
    }
}

bool
Cache::busy() const
{
    return mshrs_.inService() != 0 || !deferred_.empty() ||
           trackedWritebacks_ != 0;
}

void
Cache::flushAll(std::function<void()> done)
{
    panic_if(flushPending_ || flushDone_,
             "flush requested while another flush is in progress");
    flushDone_ = std::move(done);
    flushPagePpn_ = ~Addr(0);
    flushPending_ = true;
    maybeStartFlush();
}

void
Cache::flushPage(Addr ppn, std::function<void()> done)
{
    panic_if(flushPending_ || flushDone_,
             "flush requested while another flush is in progress");
    flushDone_ = std::move(done);
    flushPagePpn_ = ppn;
    flushPending_ = true;
    maybeStartFlush();
}

void
Cache::maybeStartFlush()
{
    if (!flushPending_)
        return;
    if (mshrs_.inService() != 0 || !deferred_.empty())
        return; // wait for outstanding misses to drain

    flushPending_ = false;
    const bool whole_cache = flushPagePpn_ == ~Addr(0);
    std::vector<Addr> dirty;
    tags_.forEachBlock([&](CacheBlock &blk) {
        if (!whole_cache && pageNumber(blk.addr) != flushPagePpn_)
            return;
        if (blk.dirty)
            dirty.push_back(blk.addr);
        tags_.invalidate(&blk);
    });
    for (Addr addr : dirty)
        issueWriteback(addr, true);
    finishFlushIfDone();
}

void
Cache::finishFlushIfDone()
{
    if (flushPending_ || trackedWritebacks_ != 0 || !flushDone_)
        return;
    auto done = std::move(flushDone_);
    flushDone_ = nullptr;
    // Defer to the event queue so callers never see reentrant callbacks.
    eventQueue().scheduleLambda(std::move(done), curTick());
}

void
Cache::invalidateAll()
{
    tags_.forEachBlock([&](CacheBlock &blk) { tags_.invalidate(&blk); });
}

bool
Cache::recallBlock(Addr addr)
{
    CacheBlock *blk = tags_.findBlock(addr);
    if (!blk)
        return false;
    if (blk->dirty)
        issueWriteback(blk->addr, false);
    tags_.invalidate(blk);
    return true;
}

} // namespace bctrl
