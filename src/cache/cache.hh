/**
 * @file
 * A non-blocking, set-associative cache with MSHRs.
 *
 * Two write policies cover every cache in the evaluated system:
 *  - write-back with write-allocate (CPU caches, accelerator L2,
 *    trusted CAPI-like L2), where dirty blocks produce Writeback
 *    packets on eviction or flush — the traffic Border Control checks
 *    for write permission;
 *  - write-through with no write-allocate (accelerator L1s, matching
 *    the paper's simple intra-GPU write-through protocol).
 *
 * The cache is timing-only: data contents live in the functional
 * BackingStore, which requests update at issue time.
 */

#ifndef BCTRL_CACHE_CACHE_HH
#define BCTRL_CACHE_CACHE_HH

#include <deque>
#include <functional>
#include <vector>

#include "cache/mshr.hh"
#include "cache/tags.hh"
#include "mem/mem_device.hh"
#include "sim/sim_object.hh"

namespace bctrl {

class Cache : public SimObject, public MemDevice
{
  public:
    struct Params {
        Addr size = 64 * 1024;
        unsigned assoc = 8;
        unsigned blockSize = bctrl::blockSize;
        /** Lookup-to-data latency in this cache's cycles. */
        Cycles hitLatency = 4;
        /** Additional latency applied to fill responses. */
        Cycles responseLatency = 2;
        unsigned mshrs = 16;
        /** Independent banks, each accepting one access per cycle. */
        unsigned banks = 4;
        bool writeThrough = false;
        /** Clock period in ticks. */
        Tick clockPeriod = 1'429; // 700 MHz
        /** Identity stamped on self-generated traffic (fills, WBs). */
        Requestor side = Requestor::cpu;
    };

    /**
     * @param pool packet pool for self-generated traffic (fills,
     *        write-throughs, writebacks); null falls back to the heap.
     */
    Cache(EventQueue &eq, const std::string &name, const Params &params,
          MemDevice &downstream, PacketPool *pool = nullptr);

    /** Checks the end-of-sim MSHR leak contract (see cache.cc). */
    ~Cache() override;

    void access(const PacketPtr &pkt) override;

    /**
     * Write back every dirty block, invalidate the whole cache, and run
     * @p done once all writebacks have been accepted by memory. Waits
     * for outstanding misses to drain first.
     */
    void flushAll(std::function<void()> done);

    /**
     * Write back and invalidate only blocks of physical page @p ppn
     * (the selective-flush optimization of §3.2.4).
     */
    void flushPage(Addr ppn, std::function<void()> done);

    /** Drop all blocks without writing anything back (test support). */
    void invalidateAll();

    /**
     * Invalidate one block (coherence recall). If dirty, a writeback is
     * sent downstream.
     * @return true if the block was present.
     */
    bool recallBlock(Addr addr);

    /** True while misses or flush writebacks are outstanding. */
    bool busy() const;

    const Params &params() const { return params_; }
    TagStore &tags() { return tags_; }

    std::uint64_t demandHits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t demandMisses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }
    std::uint64_t writebacksIssued() const
    {
        return static_cast<std::uint64_t>(writebacks_.value());
    }

  private:
    /** Charge bank occupancy; @return tick the access completes. */
    Tick bankReady(Addr addr);

    Tick clockEdge(Cycles cycles = 0) const;

    void handleMiss(const PacketPtr &pkt, Tick ready);
    void sendFill(Addr block_addr, bool needs_writable);
    void handleFill(Packet &fill);
    void issueWriteback(Addr block_addr, bool track);
    void retryDeferred();
    void maybeStartFlush();
    void finishFlushIfDone();

    Params params_;
    MemDevice &downstream_;
    PacketPool *pool_;
    TagStore tags_;
    MshrQueue mshrs_;
    std::vector<Tick> bankBusy_;
    std::deque<PacketPtr> deferred_;
    /**
     * Scratch vectors reused across handleFill calls so draining an
     * MSHR's targets never allocates in steady state. handleFill is
     * never reentered (responses arrive via the event queue), so one
     * set of buffers per cache suffices.
     */
    std::vector<PacketPtr> fillTargets_;
    std::vector<PacketPtr> stillWaiting_;

    /** Writebacks whose acks the current flush is waiting on. */
    unsigned trackedWritebacks_ = 0;
    std::function<void()> flushDone_;
    /** Pages restricted by an in-progress selective flush (~0 = all). */
    Addr flushPagePpn_ = ~Addr(0);
    bool flushPending_ = false;

    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &mshrCoalesced_;
    stats::Scalar &writebacks_;
    stats::Scalar &evictions_;
    stats::Scalar &deferrals_;
    stats::Distribution &missLatency_;
    /** MSHRs in service, sampled at each allocation. */
    stats::Histogram &mshrOccupancy_;
    /** Fill round-trip in ticks (sendFill to handleFill). */
    stats::Histogram &missToFill_;
};

} // namespace bctrl

#endif // BCTRL_CACHE_CACHE_HH
