#include "cache/tags.hh"

#include "sim/logging.hh"

namespace bctrl {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

TagStore::TagStore(Addr size, unsigned assoc, unsigned block_size)
    : capacity_(size), assoc_(assoc), blockSize_(block_size)
{
    panic_if(!isPowerOfTwo(block_size), "block size must be a power of 2");
    panic_if(size % (Addr(assoc) * block_size) != 0,
             "cache size %llu not divisible by assoc*blockSize",
             (unsigned long long)size);
    numSets_ = static_cast<unsigned>(size / (Addr(assoc) * block_size));
    panic_if(numSets_ == 0, "cache with zero sets");
    blocks_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
TagStore::setIndex(Addr addr) const
{
    // Hash the block number across the index bits (GPUs hash their
    // cache indices for exactly this reason): without it, the many
    // wavefronts streaming page-strided work units in lockstep all
    // land in the same set and thrash it.
    Addr line = addr / blockSize_;
    Addr hashed = line ^ (line / numSets_) ^
                  (line / numSets_ / numSets_);
    return static_cast<unsigned>(hashed % numSets_);
}

CacheBlock *
TagStore::accessBlock(Addr addr)
{
    CacheBlock *blk = findBlock(addr);
    if (blk)
        blk->lastUse = ++useCounter_;
    return blk;
}

CacheBlock *
TagStore::findBlock(Addr addr)
{
    Addr aligned = blockAlign(addr);
    unsigned set = setIndex(addr);
    for (unsigned way = 0; way < assoc_; ++way) {
        CacheBlock &blk = blocks_[std::size_t(set) * assoc_ + way];
        if (blk.valid && blk.addr == aligned)
            return &blk;
    }
    return nullptr;
}

const CacheBlock *
TagStore::findBlock(Addr addr) const
{
    return const_cast<TagStore *>(this)->findBlock(addr);
}

CacheBlock *
TagStore::findVictim(Addr addr)
{
    unsigned set = setIndex(addr);
    CacheBlock *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        CacheBlock &blk = blocks_[std::size_t(set) * assoc_ + way];
        if (!blk.valid)
            return &blk;
        if (!victim || blk.lastUse < victim->lastUse)
            victim = &blk;
    }
    return victim;
}

void
TagStore::insert(CacheBlock *blk, Addr addr)
{
    blk->valid = true;
    blk->addr = blockAlign(addr);
    blk->dirty = false;
    blk->writable = false;
    blk->lastUse = ++useCounter_;
}

void
TagStore::invalidate(CacheBlock *blk)
{
    blk->valid = false;
    blk->dirty = false;
    blk->writable = false;
}

void
TagStore::forEachBlock(const std::function<void(CacheBlock &)> &fn)
{
    for (CacheBlock &blk : blocks_) {
        if (blk.valid)
            fn(blk);
    }
}

} // namespace bctrl
