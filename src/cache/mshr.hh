/**
 * @file
 * Miss Status Handling Registers: bookkeeping for outstanding cache
 * misses, with coalescing of multiple requests to the same block.
 */

#ifndef BCTRL_CACHE_MSHR_HH
#define BCTRL_CACHE_MSHR_HH

#include <unordered_map>
#include <vector>

#include "mem/packet.hh"

namespace bctrl {

struct Mshr {
    Addr blockAddr = 0;
    /** True once any coalesced target is a write. */
    bool needsWritable = false;
    /** Requests waiting on this fill. */
    std::vector<PacketPtr> targets;
};

class MshrQueue
{
  public:
    explicit MshrQueue(unsigned capacity) : capacity_(capacity)
    {
        // The table never holds more than `capacity` entries; reserving
        // once here keeps allocate()/release() rehash-free forever.
        entries_.reserve(capacity);
    }

    /** @return the MSHR tracking @p block_addr, or nullptr. */
    Mshr *find(Addr block_addr);

    /** @return true if no MSHR is free. */
    bool full() const { return entries_.size() >= capacity_; }

    /**
     * Allocate an MSHR for @p block_addr (must not exist; must not be
     * full).
     */
    Mshr &allocate(Addr block_addr);

    /** Remove and return the MSHR for @p block_addr. */
    Mshr release(Addr block_addr);

    std::size_t inService() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

  private:
    unsigned capacity_;
    std::unordered_map<Addr, Mshr> entries_;
};

} // namespace bctrl

#endif // BCTRL_CACHE_MSHR_HH
