/**
 * @file
 * Miss Status Handling Registers: bookkeeping for outstanding cache
 * misses, with coalescing of multiple requests to the same block.
 *
 * The queue is a flat slot array (8–32 entries in every evaluated
 * configuration): a linear scan over a small contiguous array beats a
 * hash map on the miss path, and slot reuse recycles each target
 * vector's capacity so steady-state misses allocate nothing.
 */

#ifndef BCTRL_CACHE_MSHR_HH
#define BCTRL_CACHE_MSHR_HH

#include <vector>

#include "mem/packet.hh"

namespace bctrl {

struct Mshr {
    Addr blockAddr = 0;
    /** True once any coalesced target is a write. */
    bool needsWritable = false;
    /** True while this slot tracks an outstanding fill. */
    bool active = false;
    /** Requests waiting on this fill (capacity survives slot reuse). */
    std::vector<PacketPtr> targets;
};

class MshrQueue
{
  public:
    explicit MshrQueue(unsigned capacity)
        : capacity_(capacity), slots_(capacity)
    {}

    /** @return the MSHR tracking @p block_addr, or nullptr. */
    Mshr *find(Addr block_addr);

    /** @return true if no MSHR is free. */
    bool full() const { return live_ >= capacity_; }

    /**
     * Allocate an MSHR for @p block_addr (must not exist; must not be
     * full).
     */
    Mshr &allocate(Addr block_addr);

    /** Retire @p mshr; its targets must already have been drained. */
    void release(Mshr *mshr);

    std::size_t inService() const { return live_; }
    unsigned capacity() const { return capacity_; }

  private:
    unsigned capacity_;
    std::vector<Mshr> slots_;
    std::size_t live_ = 0;
};

} // namespace bctrl

#endif // BCTRL_CACHE_MSHR_HH
