#include "config/system_config.hh"

namespace bctrl {

const char *
safetyModelName(SafetyModel model)
{
    switch (model) {
      case SafetyModel::atsOnlyIommu:
        return "ATS-only IOMMU";
      case SafetyModel::fullIommu:
        return "Full IOMMU";
      case SafetyModel::capiLike:
        return "CAPI-like";
      case SafetyModel::borderControlNoBcc:
        return "Border Control-noBCC";
      case SafetyModel::borderControlBcc:
        return "Border Control-BCC";
    }
    return "?";
}

const char *
gpuProfileName(GpuProfile profile)
{
    switch (profile) {
      case GpuProfile::highlyThreaded:
        return "highly threaded";
      case GpuProfile::moderatelyThreaded:
        return "moderately threaded";
    }
    return "?";
}

SafetyProperties
safetyProperties(SafetyModel model)
{
    switch (model) {
      case SafetyModel::atsOnlyIommu:
        return SafetyProperties{false, true, true, true, false, true};
      case SafetyModel::fullIommu:
        return SafetyProperties{true, false, false, false, false, false};
      case SafetyModel::capiLike:
        // The L2 exists but on the trusted side of the border.
        return SafetyProperties{true, false, false, false, false, false};
      case SafetyModel::borderControlNoBcc:
        return SafetyProperties{true, true, true, true, false, true};
      case SafetyModel::borderControlBcc:
        return SafetyProperties{true, true, true, true, true, true};
    }
    return SafetyProperties{};
}

} // namespace bctrl
