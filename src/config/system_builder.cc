#include "config/system_builder.hh"

#include "sim/logging.hh"

namespace bctrl {

System::System(const SystemConfig &config)
    : config_(config), allocProf_("system.allocprof"),
      eventqStats_("system.eventq"), parallelStats_("system.parallel")
{
    const Tick gpu_period = config_.gpuPeriod();
    const Tick cross_latency = config_.crossDomainLatency;

    fatal_if(config_.parallelLoop && config_.faultPlan.active(),
             "parallelLoop is incompatible with fault injection "
             "(the fault engine assumes a single host thread)");
    fatal_if(config_.parallelLoop && config_.traceMask != 0,
             "parallelLoop is incompatible with tracing "
             "(the trace sink assumes a single host thread)");
    fatal_if(cross_latency == 0,
             "crossDomainLatency must be nonzero: it is the border "
             "interconnect hop and the parallel loop's lookahead");

    // Observability first, so every component constructed below can
    // already see the hooks through the event queue.
    if (config_.traceMask != 0) {
        tracer_ = std::make_unique<trace::Tracer>(config_.traceMask);
        eventQueue_.setTracer(tracer_.get());
    }
    if (config_.hostProfile) {
        profiler_ = std::make_unique<HostProfiler>();
        // Parallel runs attribute on the coordinator thread only (the
        // shard queues never see the profiler — worker threads would
        // race on its counters); the loop itself charges the eventLoop
        // and coordinator slots.
        if (!config_.parallelLoop)
            eventQueue_.setProfiler(profiler_.get());
    }
    if (config_.faultPlan.active()) {
        faultEngine_ =
            std::make_unique<fault::FaultEngine>(config_.faultPlan);
        eventQueue_.setFaultEngine(faultEngine_.get());
        if (config_.faultPlan.watchdogInterval != 0) {
            watchdog_ = std::make_unique<fault::Watchdog>(
                eventQueue_, faultEngine_.get(),
                config_.faultPlan.watchdogInterval);
            eventQueue_.setWatchdog(watchdog_.get());
        }
    }

    // The domain queues must form their group while everything is
    // empty, before any component can schedule. Components then bind
    // to their domain's queue via queueFor(); the serial build gets
    // facades over one ladder, the parallel build gets real shards.
    gpuQueue_ = std::make_unique<EventQueue>(Domain::gpuCluster);
    dramQueue_ = std::make_unique<EventQueue>(Domain::dram);
    if (config_.parallelLoop) {
        loop_ = std::make_unique<ParallelLoop>(
            eventQueue_, *gpuQueue_, *dramQueue_, cross_latency);
        loop_->setProfiler(profiler_.get());
        packetPool_.setThreadSafe(true);
    } else {
        eventQueue_.formSerialGroup(*gpuQueue_, *dramQueue_,
                                    cross_latency);
    }

    store_ = std::make_unique<BackingStore>(config_.physMemBytes);
    store_->setThreadSafe(config_.parallelLoop);

    // Host-side allocation profile: how allocation-free the hot request
    // path actually is. All formulas so they read live counters at
    // dump time.
    allocProf_.formula("packetPoolAllocs",
                      "packets minted from the heap (in-flight peak)",
                      [this]() {
                          return static_cast<double>(
                              packetPool_.heapAllocations());
                      });
    allocProf_.formula("packetPoolPeak",
                      "high-water mark of packets in flight",
                      [this]() {
                          return static_cast<double>(
                              packetPool_.peakInFlight());
                      });
    allocProf_.formula("lambdaPoolAllocs",
                      "lambda events minted from the heap",
                      [this]() {
                          return static_cast<double>(
                              eventQueue_.lambdaAllocations());
                      });
    allocProf_.formula("callbackHeapSpills",
                      "callbacks that overflowed their inline buffer",
                      [this]() {
                          return static_cast<double>(
                              eventQueue_.lambdaSpills() +
                              packetPool_.callbackSpills());
                      });
    allocProf_.formula("backingStoreMruHitRate",
                      "page lookups served by the last-page MRU slot",
                      [this]() {
                          const std::uint64_t lookups =
                              store_->pageLookups();
                          return lookups != 0
                                     ? static_cast<double>(
                                           store_->mruHits()) /
                                           static_cast<double>(lookups)
                                     : 0.0;
                      });

    Dram::Params dram_params;
    dram_params.accessLatency = config_.dramAccessLatency;
    dram_params.bytesPerSecond = config_.memBandwidthBytesPerSec;
    dram_ = std::make_unique<Dram>(queueFor(Domain::dram), "system.mem",
                                   *store_, dram_params);

    // Everything below the coherence point crosses into the DRAM
    // domain: requests hop through this port at +crossDomainLatency
    // and responses hop back the same way (via Packet::homeQueue).
    borderToDram_ = std::make_unique<CrossDomainPort>(
        eventQueue_, *dramQueue_, *dram_, cross_latency);

    coherence_ = std::make_unique<CoherencePoint>(
        eventQueue_, "system.coherence", *borderToDram_,
        CoherencePoint::Params{});
    coherence_->setAccelRecallHop(gpuQueue_.get(), cross_latency);

    bus_ = std::make_unique<MemBus>(eventQueue_, "system.bus",
                                    *coherence_, MemBus::Params{});

    Kernel::Params kernel_params;
    kernel_params.shootdownLatency = config_.shootdownLatency;
    kernel_params.pageFaultLatency = config_.pageFaultLatency;
    kernel_params.selectiveFlush = config_.selectiveFlush;
    kernel_params.killOnViolation = config_.killOnViolation;
    kernel_params.quarantineOnViolation = config_.quarantineOnViolation;
    kernel_ = std::make_unique<Kernel>(eventQueue_, "system.kernel",
                                       *store_, kernel_params);

    // The host CPU (Table 3): one core with a write-through 64 KB L1
    // over a 2 MB write-back L2, on the trusted side of the coherence
    // point.
    {
        const Tick cpu_period = config_.cpuPeriod();
        Cache::Params cl2;
        cl2.size = config_.cpuL2Size;
        cl2.assoc = 16;
        cl2.hitLatency = 12;
        cl2.mshrs = 16;
        cl2.banks = 4;
        cl2.clockPeriod = cpu_period;
        cl2.side = Requestor::cpu;
        cpuL2_ = std::make_unique<Cache>(eventQueue_, "system.cpu.l2",
                                         cl2, *bus_, &packetPool_);
        Cache::Params cl1;
        cl1.size = config_.cpuL1Size;
        cl1.assoc = 8;
        cl1.hitLatency = 2;
        cl1.mshrs = 8;
        cl1.banks = 2;
        cl1.writeThrough = true;
        cl1.clockPeriod = cpu_period;
        cl1.side = Requestor::cpu;
        cpuL1_ = std::make_unique<Cache>(eventQueue_, "system.cpu.l1d",
                                         cl1, *cpuL2_, &packetPool_);
        CpuCore::Params cp;
        cp.clockPeriod = cpu_period;
        cpuCore_ = std::make_unique<CpuCore>(
            eventQueue_, "system.cpu.core0", cp, *kernel_, *cpuL1_,
            &packetPool_);
        coherence_->addCpuCache(cpuL1_.get());
        coherence_->addCpuCache(cpuL2_.get());
    }

    Ats::Params ats_params;
    ats_params.l2Tlb = Tlb::Params{config_.l2TlbEntries, 8};
    ats_params.l2TlbLatency = config_.l2TlbLatencyCycles;
    ats_params.clockPeriod = gpu_period;
    ats_ = std::make_unique<Ats>(eventQueue_, "system.ats", ats_params,
                                 *bus_, &packetPool_);
    ats_->setKernel(kernel_.get());

    // Cache parameter templates shared by the GPU-side structures.
    Cache::Params l1p;
    l1p.size = config_.gpuL1Size;
    l1p.assoc = 4;
    l1p.hitLatency = config_.gpuL1HitCycles;
    l1p.mshrs = 16;
    l1p.banks = 2;
    l1p.clockPeriod = gpu_period;

    Cache::Params l2p;
    l2p.size = config_.gpuL2Size();
    l2p.assoc = 8;
    l2p.hitLatency = config_.gpuL2HitCycles;
    l2p.mshrs = 64;
    l2p.banks = 8;
    l2p.clockPeriod = gpu_period;

    Gpu::Params gpu_params;
    gpu_params.numCus = config_.numCus();
    gpu_params.wavefrontsPerCu = config_.wfsPerCu();
    gpu_params.clockPeriod = gpu_period;
    gpu_params.l1Cache = l1p;
    gpu_params.l2Cache = l2p;
    gpu_params.l1Tlb = Tlb::Params{config_.l1TlbEntries, 0};

    MemDevice *gpu_mem_path = bus_.get();

    switch (config_.safety) {
      case SafetyModel::atsOnlyIommu:
        // Unsafe baseline: the accelerator's physical requests go
        // straight to the memory system.
        gpu_params.kind = Gpu::DatapathKind::physCached;
        break;

      case SafetyModel::fullIommu: {
        // No accelerator caches or TLBs; the IOMMU translates and
        // checks every request on its way to memory.
        gpu_params.kind = Gpu::DatapathKind::iommu;
        gpu_params.hasL2Cache = false;
        IommuFrontend::Params fe;
        fe.clockPeriod = gpu_period;
        fe.requestsPerCycle = 2;
        fe.ownTlb = false; // all translations hit the shared ATS port
        iommuFrontend_ = std::make_unique<IommuFrontend>(
            eventQueue_, "system.iommu", fe, *ats_, *bus_);
        gpu_mem_path = iommuFrontend_.get();
        break;
      }

      case SafetyModel::capiLike: {
        // Trusted host-side L2 behind the translation front end,
        // reached with extra latency (§5.1).
        gpu_params.kind = Gpu::DatapathKind::iommu;
        gpu_params.hasL2Cache = false;
        Cache::Params capi = l2p;
        capi.side = Requestor::cpu; // trusted hardware
        capiL2_ = std::make_unique<Cache>(eventQueue_, "system.capiL2",
                                          capi, *bus_, &packetPool_);
        IommuFrontend::Params fe;
        fe.frontLatency = config_.capiFrontCycles * gpu_period;
        fe.clockPeriod = gpu_period;
        // The CAPI-like unit is dedicated trusted hardware: it has its
        // own (wide-ported) TLB and only walks via the ATS on misses.
        fe.requestsPerCycle = 8;
        fe.ownTlb = true;
        gpu_params.splitIommuRequests = false;
        fe.tlb = Tlb::Params{config_.l2TlbEntries, 8};
        iommuFrontend_ = std::make_unique<IommuFrontend>(
            eventQueue_, "system.capi", fe, *ats_, *capiL2_);
        gpu_mem_path = iommuFrontend_.get();
        break;
      }

      case SafetyModel::borderControlNoBcc:
      case SafetyModel::borderControlBcc: {
        gpu_params.kind = Gpu::DatapathKind::physCached;
        BorderControl::Params bcp;
        bcp.useBcc = config_.safety == SafetyModel::borderControlBcc;
        bcp.bcc.entries = config_.bccEntries;
        bcp.bcc.pagesPerEntry = config_.bccPagesPerEntry;
        bcp.bccLatency = config_.bccLatencyCycles;
        bcp.tableLatency = config_.tableLatencyCycles;
        bcp.clockPeriod = gpu_period;
        bcp.serializeReadChecks = config_.bcSerializeReadChecks;
        borderControl_ = std::make_unique<BorderControl>(
            eventQueue_, "system.bc", bcp, *bus_, &packetPool_);
        gpu_mem_path = borderControl_.get();
        ats_->setBorderControl(borderControl_.get());
        break;
      }
    }

    // The accelerator's traffic leaves its cluster through this port:
    // whatever device guards the border (Border Control, the IOMMU
    // front end, or the bare bus) is reached at +crossDomainLatency on
    // the border queue, and the port stamps each packet's home queue
    // so the response crosses back the same way.
    gpuToBorder_ = std::make_unique<CrossDomainPort>(
        *gpuQueue_, eventQueue_, *gpu_mem_path, cross_latency);

    gpu_ = std::make_unique<Gpu>(queueFor(Domain::gpuCluster),
                                 "system.gpu", gpu_params, *ats_,
                                 *gpuToBorder_, &packetPool_);
    gpu_->setCrossDomainHop(&eventQueue_, cross_latency);

    if (gpu_->l2Cache() != nullptr)
        coherence_->setAccelCache(gpu_->l2Cache());
    if (capiL2_)
        coherence_->addCpuCache(capiL2_.get());

    // The kernel commands the accelerator through the border port:
    // pause/flush/invalidate hop to the GPU queue, completions hop
    // back, each leg carrying the crossing latency.
    accelPort_ = std::make_unique<AcceleratorPort>(
        eventQueue_, *gpuQueue_, *gpu_, cross_latency);
    kernel_->attachAccelerator(accelPort_.get(), borderControl_.get(),
                               ats_.get());
    if (iommuFrontend_)
        kernel_->attachIommuFrontend(iommuFrontend_.get());
    if (borderControl_) {
        borderControl_->setViolationHandler(
            [this](const Packet &pkt) { kernel_->onViolation(pkt); });
    }
    if (iommuFrontend_) {
        iommuFrontend_->setViolationHandler(
            [this](const Packet &pkt) { kernel_->onViolation(pkt); });
    }

    if (watchdog_) {
        watchdog_->setOutstandingProbe(
            [this]() { return gpu_->outstandingMemOps(); });
        watchdog_->addReporter([this]() {
            return "packets in flight: " +
                   std::to_string(packetPool_.inFlight());
        });
        watchdog_->addReporter([this]() {
            return "gpu mem ops outstanding: " +
                   std::to_string(gpu_->outstandingMemOps());
        });
    }

    // Event-queue internals, one block per domain queue. All formulas
    // read the live queue at dump time (quiescent: after runLoop).
    // These are host-side diagnostics — scheduling pressure, stale
    // purges, ladder overflow spills, mailbox overflow falls — and are
    // excluded from the sim-only dump: where events are *stored*
    // legitimately differs between the serial and sharded builds.
    {
        struct QueueRef { const char *name; const EventQueue *q; };
        const QueueRef refs[] = {
            {"border", &eventQueue_},
            {"gpu", gpuQueue_.get()},
            {"dram", dramQueue_.get()},
        };
        for (const QueueRef &ref : refs) {
            const EventQueue *q = ref.q;
            const std::string prefix = ref.name;
            eventqStats_.formula(
                prefix + ".stalePurged",
                "canceled entries discarded by the ladder sweep",
                [q]() { return static_cast<double>(q->stalePurged()); });
            eventqStats_.formula(
                prefix + ".pendingEntries",
                "entries resident in this queue's ladder storage",
                [q]() {
                    return static_cast<double>(q->pendingEntries());
                });
            eventqStats_.formula(
                prefix + ".overflowSpills",
                "insertions beyond the ladder horizon (overflow heap)",
                [q]() {
                    return static_cast<double>(q->overflowSpills());
                });
            eventqStats_.formula(
                prefix + ".mailboxOverflows",
                "cross-domain posts that missed the ring and took the "
                "locked fallback",
                [q]() {
                    return static_cast<double>(q->mailboxOverflows());
                });
        }
    }

    // Coordinator observability (parallel runs only): how wide the
    // windows are, how much work each grant covers, and how much wall
    // time the barriers cost.
    if (loop_) {
        ParallelLoop *loop = loop_.get();
        parallelStats_.formula(
            "lookaheadTicks", "conservative window width L",
            [loop]() { return static_cast<double>(loop->lookahead()); });
        parallelStats_.formula(
            "windows", "synchronization rounds run",
            [loop]() { return static_cast<double>(loop->windows()); });
        parallelStats_.formula(
            "grants", "shard releases issued across all windows",
            [loop]() { return static_cast<double>(loop->grants()); });
        const struct { const char *name; Domain d; } domains[] = {
            {"eventsBorder", Domain::border},
            {"eventsGpu", Domain::gpuCluster},
            {"eventsDram", Domain::dram},
        };
        for (const auto &dom : domains) {
            const Domain d = dom.d;
            parallelStats_.formula(
                dom.name, "events executed inside grants on this shard",
                [loop, d]() {
                    return static_cast<double>(loop->executedIn(d));
                });
        }
        parallelStats_.formula(
            "eventsPerGrant",
            "events a released shard averages per window",
            [loop]() {
                std::uint64_t total = 0;
                for (std::size_t i = 0; i < numDomains; ++i)
                    total += loop->executedIn(static_cast<Domain>(i));
                return loop->grants() != 0
                           ? static_cast<double>(total) /
                                 static_cast<double>(loop->grants())
                           : 0.0;
            });
        parallelStats_.formula(
            "coordinatorSyncSeconds",
            "wall time in serialized barrier work (drains + head scan)",
            [loop]() {
                return static_cast<double>(loop->coordinatorSyncNanos()) *
                       1e-9;
            });
        parallelStats_.formula(
            "coordinatorStallSeconds",
            "wall time waiting for released shards at the barrier",
            [loop]() {
                return static_cast<double>(
                           loop->coordinatorStallNanos()) *
                       1e-9;
            });
    }
}

System::~System() = default;

EventQueue &
System::queueFor(Domain d)
{
    switch (d) {
      case Domain::gpuCluster:
        return *gpuQueue_;
      case Domain::dram:
        return *dramQueue_;
      case Domain::border:
        break;
    }
    return eventQueue_;
}

void
System::runLoop()
{
    if (loop_)
        loop_->run();
    else
        eventQueue_.run();
}

MemDevice &
System::borderDevice()
{
    if (borderControl_)
        return *borderControl_;
    if (iommuFrontend_)
        return *iommuFrontend_;
    return *bus_;
}

void
System::startDowngradeInjector(Process &proc, const bool *finished)
{
    const double rate = config_.downgradesPerSecond;
    if (rate <= 0)
        return;
    const Tick period =
        static_cast<Tick>(static_cast<double>(ticksPerSecond) / rate);

    // Self-rescheduling injector; stops once the kernel completes. The
    // stored function must not capture a strong reference to itself
    // (shared_ptr cycle → leak); each scheduled event holds the strong
    // reference and the body re-locks a weak one to reschedule.
    auto injector = std::make_shared<std::function<void()>>();
    auto in_flight = std::make_shared<bool>(false);
    Process *procp = &proc;
    std::weak_ptr<std::function<void()>> weak_self = injector;
    *injector = [this, procp, finished, period, weak_self, in_flight]() {
        if (*finished)
            return;
        if (!*in_flight) {
            *in_flight = true;
            kernel_->injectDowngrade(
                *procp, [in_flight]() { *in_flight = false; });
        }
        auto self = weak_self.lock();
        if (!self)
            return;
        eventQueue_.scheduleLambda([self]() { (*self)(); },
                                   eventQueue_.curTick() + period);
    };
    eventQueue_.scheduleLambda([injector]() { (*injector)(); },
                               eventQueue_.curTick() + period);
}

RunResult
System::run(const std::string &workload_name)
{
    auto workload =
        makeWorkload(workload_name, config_.workloadScale, config_.seed);
    fatal_if(workload == nullptr, "unknown workload '%s'",
             workload_name.c_str());
    Process &proc = kernel_->createProcess();
    workload->setup(proc);
    return run(*workload, proc);
}

RunResult
System::run(Workload &workload, Process &proc)
{
    workload.bind(config_.numCus(), config_.wfsPerCu());
    kernel_->scheduleOnAccelerator(proc);

    const std::uint64_t mem_ops_before = gpu_->memOpsIssued();

    bool finished = false;
    gpu_->launch(workload, proc, [this, &finished]() {
        // Runs on the GPU queue when the last wavefront retires. The
        // completion notice crosses back into the border domain like
        // any other signal, so host-side readers (the downgrade
        // injector, the watchdog done-probe) never race with the GPU
        // shard — and serial runs see the identical +L hop.
        eventQueue_.scheduleLambda(
            [&finished]() { finished = true; },
            gpuQueue_->curTick() + config_.crossDomainLatency);
    });
    startDowngradeInjector(proc, &finished);

    if (watchdog_) {
        watchdog_->setDoneProbe([&finished]() { return finished; });
        watchdog_->arm();
    }
    runLoop();
    if (watchdog_)
        watchdog_->setDoneProbe(nullptr);

    bool hung = false;
    if (faultEngine_) {
        hung = watchdog_ != nullptr && watchdog_->hangDetected() &&
               !finished;
        // End of chaos: stop injecting, re-deliver everything the
        // engine held, and let the machine settle so caches, MSHRs,
        // and the packet pool drain (teardown contracts stay clean on
        // every chaos run, hung or not).
        faultEngine_->setEnabled(false);
        if (watchdog_)
            watchdog_->disarm();
        faultEngine_->releaseDropped(eventQueue_);
        runLoop();
    }
    panic_if(!finished && !hung,
             "event queue drained before kernel completion");

    const Tick end_tick =
        finished ? gpu_->endTick() : eventQueue_.curTick();
    const Tick runtime = end_tick - gpu_->startTick();
    const std::uint64_t mem_ops = gpu_->memOpsIssued() - mem_ops_before;

    bool released = false;
    kernel_->releaseAccelerator(proc, [&released]() { released = true; });
    runLoop();
    panic_if(!released, "accelerator release did not complete");

    return collect(workload.name(), runtime, mem_ops, hung);
}

RunResult
System::collect(const std::string &workload_name, Tick runtime,
                std::uint64_t mem_ops, bool hung) const
{
    RunResult r;
    r.workload = workload_name;
    r.safety = config_.safety;
    r.profile = config_.profile;
    r.runtimeTicks = runtime;
    r.gpuCycles = static_cast<double>(runtime) /
                  static_cast<double>(config_.gpuPeriod());
    r.memOps = mem_ops;

    if (borderControl_) {
        r.borderRequests = borderControl_->borderRequests();
        r.borderRequestsPerCycle =
            r.gpuCycles > 0 ? r.borderRequests / r.gpuCycles : 0;
        r.bccHits = borderControl_->bccHits();
        r.bccMisses = borderControl_->bccMisses();
        const std::uint64_t lookups = r.bccHits + r.bccMisses;
        r.bccMissRatio =
            lookups > 0 ? static_cast<double>(r.bccMisses) / lookups : 0;
        r.violations = borderControl_->violations();
    }
    if (iommuFrontend_)
        r.violations += iommuFrontend_->denials();

    r.downgrades = kernel_->downgradesPerformed();
    r.translations = ats_->translations();
    r.pageWalks = ats_->walks();
    r.dramBytes = dram_->bytesTransferred();
    r.dramUtilization = dram_->utilization();

    r.hung = hung;
    if (faultEngine_) {
        r.faultsInjected = faultEngine_->totalInjected();
        r.dropsReleased = faultEngine_->dropsReleased();
        r.unsafeWrites = faultEngine_->unsafeWrites();
        r.atsRetries = ats_->retries();
        r.shootdownRetries = kernel_->shootdownRetries();
        r.quarantines = kernel_->quarantines();
        r.kills = kernel_->kills();
    }

    if (gpu_->l2Cache() != nullptr) {
        r.l2Hits = gpu_->l2Cache()->demandHits();
        r.l2Misses = gpu_->l2Cache()->demandMisses();
    }

    r.packetPoolAllocs = packetPool_.heapAllocations();
    r.packetPoolPeak = packetPool_.peakInFlight();
    r.lambdaPoolAllocs = eventQueue_.lambdaAllocations();
    r.callbackHeapSpills =
        eventQueue_.lambdaSpills() + packetPool_.callbackSpills();
    const std::uint64_t page_lookups = store_->pageLookups();
    r.backingStoreMruHitRate =
        page_lookups != 0 ? static_cast<double>(store_->mruHits()) /
                                static_cast<double>(page_lookups)
                          : 0.0;
    return r;
}

void
System::dumpSimStats(std::ostream &os) const
{
    dram_->statGroup().print(os);
    cpuCore_->statGroup().print(os);
    cpuL1_->statGroup().print(os);
    cpuL2_->statGroup().print(os);
    coherence_->statGroup().print(os);
    bus_->statGroup().print(os);
    kernel_->statGroup().print(os);
    ats_->statGroup().print(os);
    if (borderControl_)
        borderControl_->statGroup().print(os);
    if (capiL2_)
        capiL2_->statGroup().print(os);
    if (iommuFrontend_)
        iommuFrontend_->statGroup().print(os);
    gpu_->statGroup().print(os);
    if (faultEngine_)
        faultEngine_->statGroup().print(os);
    for (const stats::StatGroup *group : extraStats_)
        group->print(os);
}

void
System::dumpSimStatsJson(std::ostream &os) const
{
    bool first = true;
    os << "{";
    dram_->statGroup().printJsonInto(os, first);
    cpuCore_->statGroup().printJsonInto(os, first);
    cpuL1_->statGroup().printJsonInto(os, first);
    cpuL2_->statGroup().printJsonInto(os, first);
    coherence_->statGroup().printJsonInto(os, first);
    bus_->statGroup().printJsonInto(os, first);
    kernel_->statGroup().printJsonInto(os, first);
    ats_->statGroup().printJsonInto(os, first);
    if (borderControl_)
        borderControl_->statGroup().printJsonInto(os, first);
    if (capiL2_)
        capiL2_->statGroup().printJsonInto(os, first);
    if (iommuFrontend_)
        iommuFrontend_->statGroup().printJsonInto(os, first);
    gpu_->statGroup().printJsonInto(os, first);
    if (faultEngine_)
        faultEngine_->statGroup().printJsonInto(os, first);
    for (const stats::StatGroup *group : extraStats_)
        group->printJsonInto(os, first);
    os << "}";
}

void
System::dumpStats(std::ostream &os) const
{
    dumpSimStats(os);
    eventqStats_.print(os);
    if (loop_)
        parallelStats_.print(os);
    allocProf_.print(os);
}

void
System::dumpStatsJson(std::ostream &os) const
{
    bool first = true;
    os << "{";
    dram_->statGroup().printJsonInto(os, first);
    cpuCore_->statGroup().printJsonInto(os, first);
    cpuL1_->statGroup().printJsonInto(os, first);
    cpuL2_->statGroup().printJsonInto(os, first);
    coherence_->statGroup().printJsonInto(os, first);
    bus_->statGroup().printJsonInto(os, first);
    kernel_->statGroup().printJsonInto(os, first);
    ats_->statGroup().printJsonInto(os, first);
    if (borderControl_)
        borderControl_->statGroup().printJsonInto(os, first);
    if (capiL2_)
        capiL2_->statGroup().printJsonInto(os, first);
    if (iommuFrontend_)
        iommuFrontend_->statGroup().printJsonInto(os, first);
    gpu_->statGroup().printJsonInto(os, first);
    if (faultEngine_)
        faultEngine_->statGroup().printJsonInto(os, first);
    for (const stats::StatGroup *group : extraStats_)
        group->printJsonInto(os, first);
    eventqStats_.printJsonInto(os, first);
    if (loop_)
        parallelStats_.printJsonInto(os, first);
    allocProf_.printJsonInto(os, first);
    os << "}";
}

} // namespace bctrl
