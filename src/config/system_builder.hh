/**
 * @file
 * System: constructs and wires a complete simulated machine for one
 * SystemConfig — memory, coherence point, kernel, ATS, the safety
 * mechanism under study, and the GPU — and runs workloads on it.
 *
 * This is the main entry point of the library's public API: examples
 * and benchmark harnesses build a System, call run(), and read the
 * returned RunResult.
 */

#ifndef BCTRL_CONFIG_SYSTEM_BUILDER_HH
#define BCTRL_CONFIG_SYSTEM_BUILDER_HH

#include <memory>
#include <ostream>

#include "bc/border_control.hh"
#include "cache/coherence_point.hh"
#include "cpu/cpu_core.hh"
#include "config/domain_bridges.hh"
#include "config/system_config.hh"
#include "gpu/gpu.hh"
#include "mem/dram.hh"
#include "mem/mem_bus.hh"
#include "mem/packet_pool.hh"
#include "os/kernel.hh"
#include "sim/fault.hh"
#include "sim/parallel_loop.hh"
#include "sim/host_profiler.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "vm/iommu_frontend.hh"

namespace bctrl {

class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run the named workload to completion on the accelerator and
     * return its measurements. Each call creates a fresh process.
     */
    RunResult run(const std::string &workload_name);

    /**
     * Run an already-constructed workload for @p proc (which must not
     * yet be scheduled on the accelerator). setup() must have been
     * called; bind() is performed here.
     */
    RunResult run(Workload &workload, Process &proc);

    /** @name Component access (examples, tests, attack injection) */
    /// @{
    const SystemConfig &config() const { return config_; }
    EventQueue &eventQueue() { return eventQueue_; }
    /**
     * The queue components of @p d schedule into. The three domain
     * queues always exist: in serial mode the GPU and DRAM queues are
     * facades over the border queue's single ladder (one clock, one
     * execution order), in parallel mode they are real shards with
     * their own threads. Components bind to their domain's queue
     * either way, which is what keeps the two modes bit-identical.
     */
    EventQueue &queueFor(Domain d);
    /** Null unless config.parallelLoop. */
    ParallelLoop *parallelLoop() { return loop_.get(); }
    PacketPool &packetPool() { return packetPool_; }
    BackingStore &memory() { return *store_; }
    Dram &dram() { return *dram_; }
    CoherencePoint &coherencePoint() { return *coherence_; }
    MemBus &bus() { return *bus_; }
    Kernel &kernel() { return *kernel_; }
    Ats &ats() { return *ats_; }
    Gpu &gpu() { return *gpu_; }
    CpuCore &cpu() { return *cpuCore_; }
    Cache &cpuL1() { return *cpuL1_; }
    Cache &cpuL2() { return *cpuL2_; }
    /** Null unless a Border Control configuration. */
    BorderControl *borderControl() { return borderControl_.get(); }
    /** Null unless full-IOMMU or CAPI-like. */
    IommuFrontend *iommuFrontend() { return iommuFrontend_.get(); }
    /** Null unless CAPI-like. */
    Cache *capiL2() { return capiL2_.get(); }
    /** The device accelerator traffic enters when it leaves the GPU. */
    MemDevice &borderDevice();
    /** Null unless the config's traceMask is nonzero. */
    trace::Tracer *tracer() { return tracer_.get(); }
    /** Null unless the config enabled host profiling. */
    HostProfiler *hostProfiler() { return profiler_.get(); }
    /** Null unless the config's faultPlan is active. */
    fault::FaultEngine *faultEngine() { return faultEngine_.get(); }
    /** Null unless the faultPlan asked for a watchdog. */
    fault::Watchdog *watchdog() { return watchdog_.get(); }
    /// @}

    /**
     * Register an externally owned stat group (e.g. an AttackInjector's
     * outcomes) to be included in dumpStats()/dumpStatsJson(). The
     * group must outlive the System's dump calls.
     */
    void addStatGroup(const stats::StatGroup *group)
    {
        extraStats_.push_back(group);
    }

    /** Print every component's statistics. */
    void dumpStats(std::ostream &os) const;

    /**
     * All components' statistics as one flat JSON object keyed by
     * fully qualified stat name.
     */
    void dumpStatsJson(std::ostream &os) const;

    /**
     * Simulated-state statistics only: the component groups (plus any
     * registered extra groups), without the host-side blocks
     * (system.allocprof, system.eventq, system.parallel). This is the
     * dump serial-vs-parallel bit-identity comparisons use — host
     * counters legitimately depend on the thread interleaving, the
     * simulation itself must not.
     */
    void dumpSimStats(std::ostream &os) const;
    /** JSON flavor of dumpSimStats (flat object, same key scheme). */
    void dumpSimStatsJson(std::ostream &os) const;

  private:
    RunResult collect(const std::string &workload_name, Tick runtime,
                      std::uint64_t mem_ops, bool hung) const;
    void startDowngradeInjector(Process &proc, const bool *finished);

    /** Drain the event loop: serial run() or the sharded loop. */
    void runLoop();

    SystemConfig config_;
    EventQueue eventQueue_;
    /**
     * The GPU-cluster and DRAM domain queues: serial facades or
     * parallel shards of the border queue depending on the config.
     * Declared right after the primary so they outlive every
     * component but are destroyed before the primary they group with.
     */
    std::unique_ptr<EventQueue> gpuQueue_;
    std::unique_ptr<EventQueue> dramQueue_;
    /**
     * Declared before every component so it outlives them: packets can
     * still be released into the pool while components tear down.
     */
    PacketPool packetPool_;
    /**
     * Trace sink and host profiler (null when disabled). Declared
     * before the components: trace Records borrow component name
     * strings, so the Tracer must still be alive while components emit
     * during teardown-adjacent activity, and both must outlive the
     * EventQueue consumers that hold raw pointers to them.
     */
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<HostProfiler> profiler_;
    /**
     * Chaos hooks (null on zero-fault runs). Declared before the
     * components like the tracer: injection sites reach them through
     * raw EventQueue pointers.
     */
    std::unique_ptr<fault::FaultEngine> faultEngine_;
    std::unique_ptr<fault::Watchdog> watchdog_;
    /** "system.allocprof" counters, printed last by dumpStats(). */
    stats::StatGroup allocProf_;
    /** "system.eventq" ladder/mailbox internals, one block per queue. */
    stats::StatGroup eventqStats_;
    /** "system.parallel" coordinator counters (parallel runs only). */
    stats::StatGroup parallelStats_;
    /** Externally owned groups appended to the stat dumps. */
    std::vector<const stats::StatGroup *> extraStats_;
    std::unique_ptr<BackingStore> store_;
    std::unique_ptr<Dram> dram_;
    /** Border -> DRAM crossing; the coherence point's memory path. */
    std::unique_ptr<CrossDomainPort> borderToDram_;
    std::unique_ptr<CoherencePoint> coherence_;
    std::unique_ptr<MemBus> bus_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<Cache> cpuL2_;
    std::unique_ptr<Cache> cpuL1_;
    std::unique_ptr<CpuCore> cpuCore_;
    std::unique_ptr<Ats> ats_;
    std::unique_ptr<BorderControl> borderControl_;
    std::unique_ptr<Cache> capiL2_;
    std::unique_ptr<IommuFrontend> iommuFrontend_;
    /** GPU cluster -> border crossing; the GPU's memory path. */
    std::unique_ptr<CrossDomainPort> gpuToBorder_;
    std::unique_ptr<Gpu> gpu_;
    /** Border -> GPU crossing for the kernel's control commands. */
    std::unique_ptr<AcceleratorPort> accelPort_;
    /**
     * Sharded-loop coordinator (null in serial mode). Last member:
     * its worker threads are joined before anything else tears down.
     */
    std::unique_ptr<ParallelLoop> loop_;
};

} // namespace bctrl

#endif // BCTRL_CONFIG_SYSTEM_BUILDER_HH
