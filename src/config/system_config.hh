/**
 * @file
 * System configuration: the paper's Table 3 parameters, the five
 * safety models of Table 2, and the two GPU threading profiles.
 */

#ifndef BCTRL_CONFIG_SYSTEM_CONFIG_HH
#define BCTRL_CONFIG_SYSTEM_CONFIG_HH

#include <string>

#include "mem/addr.hh"
#include "sim/fault.hh"
#include "sim/types.hh"

namespace bctrl {

/** The five approaches to memory safety evaluated in §5 (Table 2). */
enum class SafetyModel {
    atsOnlyIommu,       ///< unsafe baseline: ATS translation only
    fullIommu,          ///< every request translated+checked; no accel caches
    capiLike,           ///< trusted host-side L2 + TLB, no accel caches
    borderControlNoBcc, ///< Protection Table only
    borderControlBcc,   ///< Protection Table + Border Control Cache
};

/** The two accelerator profiles of §5.1. */
enum class GpuProfile {
    highlyThreaded,     ///< 8 CUs, many contexts (latency tolerant)
    moderatelyThreaded, ///< 1 CU, few contexts (latency sensitive)
};

const char *safetyModelName(SafetyModel model);
const char *gpuProfileName(GpuProfile profile);

/** Qualitative properties used by the Table 1 / Table 2 benches. */
struct SafetyProperties {
    bool safe;            ///< enforces OS page permissions
    bool accelL1Cache;    ///< accelerator-side L1 caches allowed
    bool accelL1Tlb;      ///< accelerator-side TLBs allowed
    bool accelL2Cache;    ///< an L2 on the accelerator side of the border
    bool hasBcc;          ///< Border Control Cache present
    bool directPhysical;  ///< accelerator issues physical addresses
};

SafetyProperties safetyProperties(SafetyModel model);

struct SystemConfig {
    SafetyModel safety = SafetyModel::borderControlBcc;
    GpuProfile profile = GpuProfile::highlyThreaded;

    /** @name Table 3: CPU and clocks */
    /// @{
    std::uint64_t cpuFreqHz = 3'000'000'000ULL;
    std::uint64_t gpuFreqHz = 700'000'000ULL;
    unsigned cpuCores = 1;
    Addr cpuL1Size = 64 * 1024;
    Addr cpuL2Size = 2 * 1024 * 1024;
    /// @}

    /** @name Table 3: GPU shape */
    /// @{
    unsigned highlyThreadedCus = 8;
    unsigned moderatelyThreadedCus = 1;
    unsigned highlyThreadedWfsPerCu = 32;
    unsigned moderatelyThreadedWfsPerCu = 16;
    Addr gpuL1Size = 16 * 1024;
    Addr highlyThreadedL2Size = 256 * 1024;
    Addr moderatelyThreadedL2Size = 64 * 1024;
    unsigned l1TlbEntries = 64;
    unsigned l2TlbEntries = 512;
    /// @}

    /** @name Table 3: memory system */
    /// @{
    Addr physMemBytes = 3ULL * 1024 * 1024 * 1024; // -> 196 KB table
    std::uint64_t memBandwidthBytesPerSec = 180ULL * 1000 * 1000 * 1000;
    Tick dramAccessLatency = 50'000; // 50 ns
    /// @}

    /** @name Table 3: Border Control */
    /// @{
    unsigned bccEntries = 64;          // 8 KB BCC
    unsigned bccPagesPerEntry = 512;
    Cycles bccLatencyCycles = 10;
    Cycles tableLatencyCycles = 100;
    /// @}

    /** @name Other latencies */
    /// @{
    Cycles gpuL1HitCycles = 4;
    Cycles gpuL2HitCycles = 16;
    Cycles l2TlbLatencyCycles = 20;
    /** Extra front latency to the CAPI-like trusted L2 (one way). */
    Cycles capiFrontCycles = 20;
    Tick shootdownLatency = 500'000;    // 500 ns
    Tick pageFaultLatency = 400'000;    // 400 ns
    /// @}

    /** Ablation: serialize read checks instead of overlapping them. */
    bool bcSerializeReadChecks = false;

    /** Permission-downgrade injection rate (Fig. 7); 0 disables. */
    double downgradesPerSecond = 0.0;
    /** Use the selective per-page downgrade flush (§3.2.4 option). */
    bool selectiveFlush = false;

    /** @name Violation response (OS policy) */
    /// @{
    /** Unschedule the offending process when BC reports a violation. */
    bool killOnViolation = false;
    /** Quarantine the accelerator (pause/flush/zero-table/resume). */
    bool quarantineOnViolation = false;
    /// @}

    /**
     * Deterministic fault-injection plan (chaos runs). An inactive
     * plan (the default) leaves the System without a FaultEngine or
     * Watchdog, keeping the simulation bit-identical to baseline.
     */
    fault::FaultPlan faultPlan;

    /** Workload scale factor and RNG seed. */
    std::uint64_t workloadScale = 1;
    std::uint64_t seed = 1;

    /** @name Observability (host-side; never alters simulated state) */
    /// @{
    /**
     * Bitwise OR of trace::Flag values; 0 (the default) leaves the
     * System without a Tracer, so the hot-path cost is one branch.
     */
    std::uint32_t traceMask = 0;
    /** Attribute host wall time to components (sweep profile block). */
    bool hostProfile = false;
    /// @}

    /**
     * Drive the run with the domain-sharded parallel event loop (GPU
     * cluster / border / DRAM shards on their own threads; see
     * sim/parallel_loop.hh) instead of the serial loop. Results are
     * bit-identical to the serial loop by construction. Incompatible
     * with fault injection and tracing (both assume a single host
     * thread); the builder rejects such configs.
     */
    bool parallelLoop = false;

    /**
     * Minimum latency of any interaction crossing a domain border
     * (GPU cluster <-> border host <-> DRAM), in ticks. This models
     * the interconnect hop between the accelerator, the border
     * complex, and memory — and doubles as the conservative-PDES
     * lookahead of the parallel loop. Applied identically in serial
     * and sharded runs, so the two stay bit-identical. Default: one
     * GPU clock period.
     */
    Tick crossDomainLatency = 1429;

    /** Derived: GPU clock period in ticks. */
    Tick gpuPeriod() const { return periodFromFrequency(gpuFreqHz); }
    Tick cpuPeriod() const { return periodFromFrequency(cpuFreqHz); }

    unsigned
    numCus() const
    {
        return profile == GpuProfile::highlyThreaded
                   ? highlyThreadedCus
                   : moderatelyThreadedCus;
    }
    unsigned
    wfsPerCu() const
    {
        return profile == GpuProfile::highlyThreaded
                   ? highlyThreadedWfsPerCu
                   : moderatelyThreadedWfsPerCu;
    }
    Addr
    gpuL2Size() const
    {
        return profile == GpuProfile::highlyThreaded
                   ? highlyThreadedL2Size
                   : moderatelyThreadedL2Size;
    }
};

/** Aggregated results of one simulated kernel execution. */
struct RunResult {
    std::string workload;
    SafetyModel safety{};
    GpuProfile profile{};

    Tick runtimeTicks = 0;
    double gpuCycles = 0;
    std::uint64_t memOps = 0;

    std::uint64_t borderRequests = 0;
    double borderRequestsPerCycle = 0;
    std::uint64_t bccHits = 0;
    std::uint64_t bccMisses = 0;
    double bccMissRatio = 0;

    std::uint64_t violations = 0;  ///< blocked accesses (BC + IOMMU)
    std::uint64_t downgrades = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t translations = 0;
    std::uint64_t pageWalks = 0;

    /** @name Chaos outcomes (zero unless a FaultPlan was active) */
    /// @{
    bool hung = false;             ///< watchdog declared a hang
    std::uint64_t faultsInjected = 0;
    std::uint64_t dropsReleased = 0; ///< held messages re-delivered
    std::uint64_t atsRetries = 0;
    std::uint64_t shootdownRetries = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t kills = 0;
    std::uint64_t unsafeWrites = 0; ///< poisoned-frame writes reaching DRAM
    /// @}

    std::uint64_t dramBytes = 0;
    double dramUtilization = 0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;

    /** @name Allocation profile (host-side, not simulated state) */
    /// @{
    /** Packets minted from the heap (bounded by the in-flight peak). */
    std::uint64_t packetPoolAllocs = 0;
    /** High-water mark of packets in flight at once. */
    std::uint64_t packetPoolPeak = 0;
    /** LambdaEvents minted from the heap by the event queue. */
    std::uint64_t lambdaPoolAllocs = 0;
    /** Callbacks that overflowed their inline buffer onto the heap. */
    std::uint64_t callbackHeapSpills = 0;
    /** BackingStore page lookups answered by the last-page MRU slot. */
    double backingStoreMruHitRate = 0;
    /// @}
};

} // namespace bctrl

#endif // BCTRL_CONFIG_SYSTEM_CONFIG_HH
