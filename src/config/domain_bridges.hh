/**
 * @file
 * Domain border ports: the only sanctioned crossings between the GPU
 * cluster, border host, and DRAM shards.
 *
 * Every interaction that crosses a domain boundary must carry at
 * least the configured cross-domain latency L and must execute on the
 * target domain's queue — that is what lets the parallel loop grant
 * each shard a whole window of events between barriers (the latency
 * *is* the PDES lookahead; see sim/parallel_loop.hh). These wrappers
 * package that rule behind the two interfaces traffic actually
 * crosses on:
 *
 *  - CrossDomainPort: a MemDevice facade in front of a device in
 *    another domain. Requests hop to the target's queue at +L; the
 *    port also stamps the packet's homeQueue so respondAt() can hop
 *    the response back (also at +L) onto the requester's shard.
 *
 *  - AcceleratorPort: an AcceleratorControl facade in front of the
 *    GPU for the OS kernel (border domain). Commands hop to the GPU
 *    queue at +L; completion callbacks (quiesced/flushed) hop back to
 *    the border queue at +L, each side always reading its *own* clock.
 *
 * Both ports are used identically by the serial and sharded builds —
 * in serial runs the hops land in the shared ladder through the
 * domain facades — which is what keeps the two modes bit-identical.
 */

#ifndef BCTRL_CONFIG_DOMAIN_BRIDGES_HH
#define BCTRL_CONFIG_DOMAIN_BRIDGES_HH

#include <functional>
#include <utility>

#include "mem/mem_device.hh"
#include "os/accelerator_control.hh"
#include "sim/event_queue.hh"

namespace bctrl {

/**
 * MemDevice facade that forwards access() across a domain border:
 * the request is delivered to @p target on @p targetQueue one
 * cross-domain latency after the source domain's current tick.
 */
class CrossDomainPort : public MemDevice
{
  public:
    /**
     * @param source  the requester-side queue (clock read at access).
     * @param targetQueue the responder-side queue (delivery).
     * @param target  the device behind the border.
     * @param latency the border-crossing latency L (>= lookahead).
     */
    CrossDomainPort(EventQueue &source, EventQueue &targetQueue,
                    MemDevice &target, Tick latency)
        : source_(&source), targetQueue_(&targetQueue), target_(&target),
          latency_(latency)
    {
    }

    void
    access(const PacketPtr &pkt) override
    {
        // First border on the request path stamps the home queue;
        // respondAt() uses it to hop the response back. Later borders
        // (border -> DRAM on a GPU-born packet) leave it alone so the
        // response returns in one hop to the original requester.
        if (pkt->homeQueue == nullptr)
            pkt->homeQueue = source_;
        MemDevice *target = target_;
        targetQueue_->scheduleLambda(
            [target, pkt]() { target->access(pkt); },
            source_->curTick() + latency_);
    }

  private:
    EventQueue *source_;
    EventQueue *targetQueue_;
    MemDevice *target_;
    Tick latency_;
};

/**
 * AcceleratorControl facade between the OS kernel (border domain) and
 * the GPU (accelerator domain). Every command is delivered on the GPU
 * queue at border-tick + L; every completion callback is delivered
 * back on the border queue at GPU-tick + L (read when the GPU side
 * finishes, which may be long after the command arrived).
 */
class AcceleratorPort : public AcceleratorControl
{
  public:
    AcceleratorPort(EventQueue &borderQueue, EventQueue &gpuQueue,
                    AcceleratorControl &target, Tick latency)
        : borderQueue_(&borderQueue), gpuQueue_(&gpuQueue),
          target_(&target), latency_(latency)
    {
    }

    void
    pause(std::function<void()> quiesced) override
    {
        AcceleratorControl *t = target_;
        gpuQueue_->scheduleLambda(
            [t, cb = hopBack(std::move(quiesced))]() mutable {
                t->pause(std::move(cb));
            },
            commandTick());
    }

    void
    resume() override
    {
        AcceleratorControl *t = target_;
        gpuQueue_->scheduleLambda([t]() { t->resume(); }, commandTick());
    }

    void
    flushCaches(std::function<void()> done) override
    {
        AcceleratorControl *t = target_;
        gpuQueue_->scheduleLambda(
            [t, cb = hopBack(std::move(done))]() mutable {
                t->flushCaches(std::move(cb));
            },
            commandTick());
    }

    void
    flushCachePage(Addr ppn, std::function<void()> done) override
    {
        AcceleratorControl *t = target_;
        gpuQueue_->scheduleLambda(
            [t, ppn, cb = hopBack(std::move(done))]() mutable {
                t->flushCachePage(ppn, std::move(cb));
            },
            commandTick());
    }

    void
    invalidateTlbs() override
    {
        AcceleratorControl *t = target_;
        gpuQueue_->scheduleLambda([t]() { t->invalidateTlbs(); },
                                  commandTick());
    }

    void
    invalidateTlbPage(Asid asid, Addr vpn) override
    {
        AcceleratorControl *t = target_;
        gpuQueue_->scheduleLambda(
            [t, asid, vpn]() { t->invalidateTlbPage(asid, vpn); },
            commandTick());
    }

  private:
    Tick commandTick() const { return borderQueue_->curTick() + latency_; }

    /**
     * Wrap a kernel-side completion callback so that, when the GPU
     * side eventually invokes it, it reschedules onto the border
     * queue one latency past the GPU side's *current* tick — the
     * quiesce/flush may complete long after the command landed.
     */
    std::function<void()>
    hopBack(std::function<void()> cb)
    {
        EventQueue *borderQueue = borderQueue_;
        EventQueue *gpuQueue = gpuQueue_;
        Tick latency = latency_;
        return [borderQueue, gpuQueue, latency,
                cb = std::move(cb)]() mutable {
            borderQueue->scheduleLambda(std::move(cb),
                                        gpuQueue->curTick() + latency);
        };
    }

    EventQueue *borderQueue_;
    EventQueue *gpuQueue_;
    AcceleratorControl *target_;
    Tick latency_;
};

} // namespace bctrl

#endif // BCTRL_CONFIG_DOMAIN_BRIDGES_HH
