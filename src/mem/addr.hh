/**
 * @file
 * Address-manipulation constants and helpers.
 *
 * The memory system uses 4 KB pages (the minimum page size Border
 * Control's Protection Table is indexed by) and 128 B cache/memory
 * blocks, matching the paper's evaluated system.
 */

#ifndef BCTRL_MEM_ADDR_HH
#define BCTRL_MEM_ADDR_HH

#include "sim/types.hh"

namespace bctrl {

constexpr unsigned pageShift = 12;
constexpr Addr pageSize = Addr(1) << pageShift;
constexpr Addr pageMask = pageSize - 1;

constexpr unsigned blockShift = 7;
constexpr Addr blockSize = Addr(1) << blockShift; // 128 B
constexpr Addr blockMask = blockSize - 1;

/** Large (huge) page parameters, for the §3.4.4 path. */
constexpr unsigned largePageShift = 21;
constexpr Addr largePageSize = Addr(1) << largePageShift; // 2 MB
constexpr Addr pagesPerLargePage = largePageSize / pageSize; // 512

constexpr Addr
pageAlign(Addr a)
{
    return a & ~pageMask;
}

constexpr Addr
pageOffset(Addr a)
{
    return a & pageMask;
}

constexpr Addr
pageNumber(Addr a)
{
    return a >> pageShift;
}

/** First byte address of page number @p ppn (inverse of pageNumber). */
constexpr Addr
pageBase(Addr ppn)
{
    return ppn << pageShift;
}

constexpr Addr
blockAlign(Addr a)
{
    return a & ~blockMask;
}

constexpr Addr
blockNumber(Addr a)
{
    return a >> blockShift;
}

/** First byte address of block number @p bn (inverse of blockNumber). */
constexpr Addr
blockBase(Addr bn)
{
    return bn << blockShift;
}

/** Round @p a up to a multiple of @p align (a power of two). */
constexpr Addr
roundUp(Addr a, Addr align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace bctrl

#endif // BCTRL_MEM_ADDR_HH
