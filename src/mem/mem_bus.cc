#include "mem/mem_bus.hh"

#include <algorithm>

namespace bctrl {

MemBus::MemBus(EventQueue &eq, const std::string &name,
               MemDevice &downstream, const Params &params)
    : SimObject(eq, name),
      downstream_(downstream),
      params_(params),
      packets_(statGroup().scalar("packets", "packets forwarded")),
      bytes_(statGroup().scalar("bytes", "bytes forwarded"))
{
}

void
MemBus::access(const PacketPtr &pkt)
{
    ++packets_;
    bytes_ += pkt->size;

    Tick ready = curTick() + params_.latency;
    if (params_.bytesPerSecond != 0) {
        const Tick xfer = static_cast<Tick>(
            (static_cast<__uint128_t>(pkt->size) * ticksPerSecond) /
            params_.bytesPerSecond);
        const Tick start = std::max(curTick(), busyUntil_);
        busyUntil_ = start + xfer;
        ready = busyUntil_ + params_.latency;
    }

    eventQueue().scheduleLambda(
        [this, pkt]() { downstream_.access(pkt); }, ready);
}

} // namespace bctrl
