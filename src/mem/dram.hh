/**
 * @file
 * A bandwidth- and latency-limited DRAM controller model.
 *
 * The model is deliberately simple but captures the two first-order
 * effects the paper's evaluation depends on: a fixed device access
 * latency, and a peak bandwidth that saturates when (for example) the
 * full-IOMMU configuration strips the accelerator of its caches and
 * every request goes to memory.
 */

#ifndef BCTRL_MEM_DRAM_HH
#define BCTRL_MEM_DRAM_HH

#include "mem/backing_store.hh"
#include "mem/mem_device.hh"
#include "sim/sim_object.hh"

namespace bctrl {

class Dram : public SimObject, public MemDevice
{
  public:
    struct Params {
        /** Fixed access latency in ticks (row access, bus, controller). */
        Tick accessLatency = 50'000; // 50 ns
        /** Peak bandwidth in bytes per second. */
        std::uint64_t bytesPerSecond = 180ULL * 1000 * 1000 * 1000;
        /**
         * Minimum transfer size: short requests still occupy the
         * channel for this many bytes (burst granularity).
         */
        unsigned minBurstBytes = 64;
    };

    Dram(EventQueue &eq, const std::string &name, BackingStore &store,
         const Params &params);

    void access(const PacketPtr &pkt) override;

    /** Fraction of elapsed time the channel was busy. */
    double utilization() const;

    const Params &params() const { return params_; }

    /** Total demand bytes transferred (reads + writes). */
    std::uint64_t bytesTransferred() const;

  private:
    Tick transferTime(unsigned bytes) const;

    BackingStore &store_;
    Params params_;
    /** Tick at which the channel becomes free. */
    Tick busyUntil_ = 0;
    /** Accumulated busy time, for utilization. */
    Tick busyTime_ = 0;

    stats::Scalar &readReqs_;
    stats::Scalar &writeReqs_;
    stats::Scalar &bytesRead_;
    stats::Scalar &bytesWritten_;
    stats::Distribution &readLatency_;
    /** Ticks a request waited for the channel before its transfer. */
    stats::Histogram &queueDelay_;
};

} // namespace bctrl

#endif // BCTRL_MEM_DRAM_HH
