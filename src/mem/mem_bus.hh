/**
 * @file
 * A simple interconnect: fixed-latency, optionally bandwidth-limited
 * forwarding from any number of upstream devices to one downstream
 * device.
 */

#ifndef BCTRL_MEM_MEM_BUS_HH
#define BCTRL_MEM_MEM_BUS_HH

#include "mem/mem_device.hh"
#include "sim/sim_object.hh"

namespace bctrl {

class MemBus : public SimObject, public MemDevice
{
  public:
    struct Params {
        /** One-way traversal latency in ticks. */
        Tick latency = 2'000; // 2 ns
        /** Peak bandwidth in bytes/s; 0 means unlimited. */
        std::uint64_t bytesPerSecond = 0;
    };

    MemBus(EventQueue &eq, const std::string &name, MemDevice &downstream,
           const Params &params);

    void access(const PacketPtr &pkt) override;

  private:
    MemDevice &downstream_;
    Params params_;
    Tick busyUntil_ = 0;

    stats::Scalar &packets_;
    stats::Scalar &bytes_;
};

} // namespace bctrl

#endif // BCTRL_MEM_MEM_BUS_HH
