/**
 * @file
 * PacketPool: a per-System free list of intrusively ref-counted
 * Packets, mirroring the EventQueue's LambdaEvent pool.
 *
 * Steady-state request traffic allocates nothing: heap allocations are
 * bounded by the in-flight peak, and reuse resets every field of the
 * recycled packet — including the `responded` contract bit and the
 * `denied`/`grantedWritable` flags — so a recycled packet is
 * indistinguishable from a fresh one. In sanitized builds the pool
 * poisons parked slots so a use-after-release traps under ASan
 * instead of silently reading a recycled packet.
 *
 * This file (with mem/packet.cc) is the only place allowed to mint
 * Packets directly; everywhere else the bclint rule `raw-packet-alloc`
 * enforces going through `allocPacket` / `PacketPool::make`.
 */

#ifndef BCTRL_MEM_PACKET_POOL_HH
#define BCTRL_MEM_PACKET_POOL_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mem/packet.hh"

namespace bctrl {

class PacketPool
{
  public:
    PacketPool() { free_.reserve(initialFreeListCapacity); }
    ~PacketPool();

    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Acquire a packet (recycled or fresh) with all fields reset. */
    PacketPtr make(MemCmd cmd, Addr paddr, unsigned size, Requestor req,
                   Asid asid = 0);

    /** Packets minted from the heap (== the in-flight peak, capped). */
    std::uint64_t heapAllocations() const { return heapAllocs_; }
    /** Packets currently owned by live PacketPtrs. */
    std::uint64_t inFlight() const { return inFlight_; }
    /** High-water mark of inFlight(). */
    std::uint64_t peakInFlight() const { return peakInFlight_; }
    /** Parked packets available for reuse. */
    std::size_t poolSize() const { return free_.size(); }

    /** Count an onResponse callback that overflowed its inline buffer. */
    void
    noteCallbackSpill()
    {
        callbackSpills_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t
    callbackSpills() const
    {
        return callbackSpills_.load(std::memory_order_relaxed);
    }

    /**
     * Serialize make/release with a mutex. Off (the default) for the
     * serial loop; the builder turns it on for parallel runs, where
     * any shard may mint a packet or drop the last reference. The
     * free list is cold enough (one lock per request round trip) that
     * this never shows up next to the simulation work itself.
     */
    void setThreadSafe(bool on) { threadSafe_ = on; }

    /**
     * Keep at most this many parked packets; beyond it, released
     * packets are freed (same backstop as the LambdaEvent pool).
     */
    static constexpr std::size_t maxPoolSize = 4096;
    static constexpr std::size_t initialFreeListCapacity = 256;

  private:
    friend void releasePacket(Packet *pkt);

    /** Called by releasePacket when the last PacketPtr drops. */
    void release(Packet *pkt);

    std::vector<Packet *> free_;
    /** Monotonic trace-id source; ids are never reused on recycle. */
    std::uint64_t nextTraceId_ = 0;
    std::uint64_t heapAllocs_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t peakInFlight_ = 0;
    std::atomic<std::uint64_t> callbackSpills_{0};
    bool threadSafe_ = false;
    std::mutex mutex_;
};

/**
 * Pool-aware factory: mint from @p pool when one is wired, else fall
 * back to the heap (unit tests construct components without a pool).
 */
inline PacketPtr
allocPacket(PacketPool *pool, MemCmd cmd, Addr paddr, unsigned size,
            Requestor req, Asid asid = 0)
{
    return pool != nullptr ? pool->make(cmd, paddr, size, req, asid)
                           : Packet::make(cmd, paddr, size, req, asid);
}

} // namespace bctrl

#endif // BCTRL_MEM_PACKET_POOL_HH
