#include "mem/packet.hh"

#include "sim/logging.hh"

namespace bctrl {

namespace {

const char *
cmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::Read:
        return "Read";
      case MemCmd::Write:
        return "Write";
      case MemCmd::Writeback:
        return "Writeback";
    }
    return "?";
}

} // namespace

std::string
Packet::toString() const
{
    return formatString("%s[%s 0x%llx sz=%u asid=%u%s]", cmdName(cmd),
                        requestor == Requestor::cpu          ? "cpu"
                        : requestor == Requestor::accelerator ? "acc"
                                                              : "hw",
                        (unsigned long long)paddr, size, (unsigned)asid,
                        denied ? " DENIED" : "");
}

PacketPtr
Packet::make(MemCmd cmd, Addr paddr, unsigned size, Requestor req,
             Asid asid)
{
    // Heap fallback (pool == nullptr): releasePacket() frees it when
    // the last PacketPtr drops. Pooled traffic goes through
    // PacketPool::make instead.
    Packet *pkt = new Packet;
    pkt->cmd = cmd;
    pkt->paddr = paddr;
    pkt->size = size;
    pkt->requestor = req;
    pkt->asid = asid;
    return PacketPtr(pkt);
}

} // namespace bctrl
