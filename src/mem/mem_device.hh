/**
 * @file
 * The timing-mode interface every memory-system component implements.
 *
 * A MemDevice accepts packets; responses travel back through the
 * packet's onResponse callback, scheduled on the event queue at the
 * responding device's computed completion tick. There is no explicit
 * backpressure protocol: devices with finite resources (MSHRs, DRAM
 * queues) model contention by delaying completion.
 */

#ifndef BCTRL_MEM_MEM_DEVICE_HH
#define BCTRL_MEM_MEM_DEVICE_HH

#include "mem/packet.hh"
#include "sim/contracts.hh"
#include "sim/event_queue.hh"

namespace bctrl {

class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Accept @p pkt for timing processing. */
    virtual void access(const PacketPtr &pkt) = 0;
};

/** Deliver @p pkt's response at tick @p when via the event queue. */
inline void
respondAt(EventQueue &eq, const PacketPtr &pkt, Tick when)
{
    if (!pkt->onResponse)
        return;
    eq.scheduleLambda([pkt]() {
        if (pkt->onResponse) {
            BCTRL_ASSERT_MSG(!pkt->responded,
                             "second response delivered for packet %s",
                             pkt->toString().c_str());
            pkt->responded = true;
            auto cb = std::move(pkt->onResponse);
            pkt->onResponse = nullptr;
            cb(*pkt);
        }
    }, when);
}

} // namespace bctrl

#endif // BCTRL_MEM_MEM_DEVICE_HH
