/**
 * @file
 * The timing-mode interface every memory-system component implements.
 *
 * A MemDevice accepts packets; responses travel back through the
 * packet's onResponse callback, scheduled on the event queue at the
 * responding device's computed completion tick. There is no explicit
 * backpressure protocol: devices with finite resources (MSHRs, DRAM
 * queues) model contention by delaying completion.
 */

#ifndef BCTRL_MEM_MEM_DEVICE_HH
#define BCTRL_MEM_MEM_DEVICE_HH

#include <algorithm>
#include <utility>

#include "mem/packet.hh"
#include "mem/packet_pool.hh"
#include "sim/contracts.hh"
#include "sim/event_queue.hh"

namespace bctrl {

class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Accept @p pkt for timing processing. */
    virtual void access(const PacketPtr &pkt) = 0;
};

/**
 * Deliver @p pkt's response at tick @p when via the event queue.
 *
 * If the packet crossed a domain border on the way in (homeQueue set
 * by the first CrossDomainPort it traversed), the response callback is
 * delivered on the requester's own queue one cross-domain latency
 * later — the callback touches requester-side state, so it must run
 * on the requester's shard, and the return trip over the interconnect
 * is not free. The hop is charged exactly once per response no matter
 * how many devices forwarded the request (the border complex is one
 * package; only the accelerator <-> host boundary pays).
 *
 * If Border Control armed a response gate (responseGateTick != 0, the
 * §3.4.1 parallel read check), the callback is deferred through one
 * more queue hop to max(now, gate) — the same two-hop schedule the
 * old wrapped-callback implementation produced, so event ordering is
 * bit-identical.
 */
inline void
respondAt(EventQueue &eq, const PacketPtr &pkt, Tick when)
{
    if (!pkt->onResponse)
        return;
    const bool cross =
        pkt->homeQueue != nullptr && pkt->homeQueue != &eq;
    EventQueue *eqp = cross ? pkt->homeQueue : &eq;
    const Tick fire = cross ? when + eq.crossLatency() : when;
    eqp->scheduleLambda([eqp, pkt]() {
        if (pkt->onResponse) {
            // Watchdog food: every delivered response is forward
            // progress (a plain host-side counter bump).
            eqp->noteProgress();
            BCTRL_ASSERT_MSG(!pkt->responded,
                             "second response delivered for packet %s",
                             pkt->toString().c_str());
            pkt->responded = true;
            if (pkt->onResponse.spilled() && pkt->pool != nullptr)
                pkt->pool->noteCallbackSpill();
            auto cb = std::move(pkt->onResponse);
            pkt->onResponse = nullptr;
            if (pkt->responseGateTick != 0) {
                const Tick fire =
                    std::max(eqp->curTick(), pkt->responseGateTick);
                pkt->responseGateTick = 0;
                eqp->scheduleLambda(
                    [pkt, cb = std::move(cb)]() mutable { cb(*pkt); },
                    fire);
            } else {
                cb(*pkt);
            }
        }
    }, fire);
}

} // namespace bctrl

#endif // BCTRL_MEM_MEM_DEVICE_HH
