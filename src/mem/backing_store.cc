#include "mem/backing_store.hh"

#include <cstring>

#include "sim/logging.hh"

namespace bctrl {

BackingStore::BackingStore(Addr size)
    : size_(roundUp(size, pageSize))
{
    panic_if(size_ == 0, "backing store of size zero");
}

void
BackingStore::checkRange(Addr addr, Addr len) const
{
    panic_if(addr + len > size_ || addr + len < addr,
             "physical access [0x%llx, +%llu) outside memory of size "
             "0x%llx",
             (unsigned long long)addr, (unsigned long long)len,
             (unsigned long long)size_);
}

BackingStore::Page &
BackingStore::pageFor(Addr addr)
{
    Addr ppn = pageNumber(addr);
    ++pageLookups_;
    if (ppn == mruPpn_ && mruPage_ != nullptr) {
        ++mruHits_;
        return *mruPage_;
    }
    auto it = pages_.find(ppn);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(ppn, std::move(page)).first;
    }
    // Sole allocation site: refreshing the MRU entry here is what
    // keeps a cached "absent" (nullptr) entry from going stale.
    mruPpn_ = ppn;
    mruPage_ = it->second.get();
    return *mruPage_;
}

const BackingStore::Page *
BackingStore::pageForConst(Addr addr) const
{
    Addr ppn = pageNumber(addr);
    ++pageLookups_;
    if (ppn == mruPpn_) {
        ++mruHits_;
        return mruPage_;
    }
    auto it = pages_.find(ppn);
    mruPpn_ = ppn;
    mruPage_ = it == pages_.end() ? nullptr : it->second.get();
    return mruPage_;
}

std::uint8_t *
BackingStore::pageData(Addr addr)
{
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    checkRange(addr, 1);
    return pageFor(addr).data();
}

const std::uint8_t *
BackingStore::pageDataIfResident(Addr addr) const
{
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    checkRange(addr, 1);
    const Page *page = pageForConst(addr);
    return page != nullptr ? page->data() : nullptr;
}

void
BackingStore::read(Addr addr, void *dst, Addr len) const
{
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        Addr off = pageOffset(addr);
        Addr chunk = std::min(len, pageSize - off);
        if (const Page *page = pageForConst(addr))
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *src, Addr len)
{
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    checkRange(addr, len);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        Addr off = pageOffset(addr);
        Addr chunk = std::min(len, pageSize - off);
        std::memcpy(pageFor(addr).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::uint64_t
BackingStore::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
BackingStore::write64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

std::uint8_t
BackingStore::read8(Addr addr) const
{
    std::uint8_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
BackingStore::write8(Addr addr, std::uint8_t value)
{
    write(addr, &value, sizeof(value));
}

void
BackingStore::zero(Addr addr, Addr len)
{
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    checkRange(addr, len);
    while (len > 0) {
        Addr off = pageOffset(addr);
        Addr chunk = std::min(len, pageSize - off);
        // Only touch pages that exist; absent pages already read as zero.
        auto it = pages_.find(pageNumber(addr));
        if (it != pages_.end())
            std::memset(it->second->data() + off, 0, chunk);
        addr += chunk;
        len -= chunk;
    }
}

} // namespace bctrl
