#include "mem/dram.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "sim/host_profiler.hh"
#include "sim/trace.hh"

namespace bctrl {

Dram::Dram(EventQueue &eq, const std::string &name, BackingStore &store,
           const Params &params)
    : SimObject(eq, name),
      store_(store),
      params_(params),
      readReqs_(statGroup().scalar("readReqs", "read requests serviced")),
      writeReqs_(statGroup().scalar("writeReqs",
                                    "write requests serviced")),
      bytesRead_(statGroup().scalar("bytesRead", "bytes read")),
      bytesWritten_(statGroup().scalar("bytesWritten", "bytes written")),
      readLatency_(statGroup().distribution(
          "readLatency", "read latency including queueing (ticks)")),
      queueDelay_(statGroup().histogram(
          "queueDelay", "ticks spent waiting for the channel"))
{
}

Tick
Dram::transferTime(unsigned bytes) const
{
    unsigned effective = std::max(bytes, params_.minBurstBytes);
    // ticks = bytes * ticksPerSecond / bytesPerSecond, computed without
    // overflow for realistic parameters.
    return static_cast<Tick>(
        (static_cast<__uint128_t>(effective) * ticksPerSecond) /
        params_.bytesPerSecond);
}

void
Dram::access(const PacketPtr &pkt)
{
    HostProfiler::Scope profile(eventQueue().profiler(),
                                HostProfiler::Slot::dram);

    const Tick now = curTick();
    const Tick start = std::max(now, busyUntil_);
    const Tick xfer = transferTime(pkt->size);
    busyUntil_ = start + xfer;
    busyTime_ += xfer;

    queueDelay_.sample(static_cast<double>(start - now));
    trace::emit(eventQueue(), trace::Flag::DRAM, name().c_str(),
                pkt->isRead() ? "read" : "write", start, xfer,
                pkt->traceId, pkt->paddr);

    fault::FaultEngine *fe = eventQueue().faultEngine();
    if (fe != nullptr) {
        // Safety-invariant audit: the memory endpoint is the ground
        // truth for "an unsafe access completed". If a corrupted
        // translation poisoned a frame and an accelerator write to it
        // got this far, every checker upstream failed.
        if (pkt->isWrite() && pkt->requestor == Requestor::accelerator &&
            fe->poisoned(pkt->pageNum()))
            fe->noteUnsafeWrite();
    }

    Tick done = pkt->isRead() ? busyUntil_ + params_.accessLatency
                              : busyUntil_;
    if (pkt->isRead()) {
        // Memory is the default owner: a fill that asked for a
        // writable copy gets one when it reaches the memory endpoint
        // directly (systems with a coherence point decide upstream).
        if (pkt->needsWritable)
            pkt->grantedWritable = true;
        ++readReqs_;
        bytesRead_ += pkt->size;
        readLatency_.sample(static_cast<double>(done - now));
    } else {
        ++writeReqs_;
        bytesWritten_ += pkt->size;
        // Writes are acknowledged once the channel accepts them.
    }

    // Injection point: the completion crossing back to the requester.
    if (fe != nullptr) {
        const fault::Decision fd =
            fe->decide(fault::Point::dramResponse, now);
        switch (fd.kind) {
          case fault::Kind::drop: {
            // The response vanishes until recovery re-delivers it (at
            // release time, not at the stale completion tick).
            PacketPtr held = pkt;
            EventQueue *eqp = &eventQueue();
            fe->holdDropped("dram.response", now, [eqp, held]() {
                respondAt(*eqp, held, eqp->curTick());
            });
            return;
          }
          case fault::Kind::delay:
            done += fd.delay;
            break;
          case fault::Kind::duplicate:
            // A replayed completion. respondAt() consumes onResponse
            // on first delivery, so the duplicate is absorbed — the
            // responded-once contract holds by construction.
            respondAt(eventQueue(), pkt, done);
            break;
          default:
            break;
        }
    }
    respondAt(eventQueue(), pkt, done);
}

double
Dram::utilization() const
{
    const Tick now = curTick();
    return now == 0 ? 0.0
                    : static_cast<double>(busyTime_) /
                          static_cast<double>(now);
}

std::uint64_t
Dram::bytesTransferred() const
{
    return static_cast<std::uint64_t>(bytesRead_.value() +
                                      bytesWritten_.value());
}

} // namespace bctrl
