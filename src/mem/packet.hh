/**
 * @file
 * Memory request packets exchanged between devices.
 *
 * A Packet carries one read, write, or writeback. The address is
 * physical except on datapaths that translate at the border (the full
 * IOMMU and CAPI-like configurations), where packets start out virtual.
 *
 * Lifetime model: Packets are intrusively ref-counted and handed
 * around as PacketPtr. Steady-state packets come from a per-System
 * PacketPool (mem/packet_pool.hh) and return to its free list when the
 * last PacketPtr drops; `Packet::make` is the pool-less heap fallback
 * used by unit tests and standalone harnesses. The response callback
 * is a fixed-capacity InlineFunction so delivering a response never
 * heap-allocates (oversized captures still work but are counted as
 * spills in the allocation profile).
 */

#ifndef BCTRL_MEM_PACKET_HH
#define BCTRL_MEM_PACKET_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "mem/addr.hh"
#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace bctrl {

class EventQueue;

enum class MemCmd : std::uint8_t {
    Read,       ///< demand read (also used for cache fills)
    Write,      ///< demand write (write-through traffic)
    Writeback,  ///< eviction of a dirty block
};

/**
 * Identifies the agent a packet originated from, for coherence and for
 * Border Control's trusted/untrusted distinction.
 */
enum class Requestor : std::uint8_t {
    cpu,        ///< trusted CPU core
    accelerator, ///< the untrusted accelerator (GPU)
    trustedHw,  ///< trusted hardware: page walker, Border Control itself
};

struct Packet;
class PacketPtr;
class PacketPool;

/** Return a dead Packet to its pool, or free it (pool-less fallback). */
void releasePacket(Packet *pkt);

/**
 * Inline capacity of Packet::onResponse. Sized for the measured
 * worst-case hot capture: the GPU issue path stores [self, done] where
 * `done` is a std::function completion token (8 + 32 bytes). Growing a
 * capture past this is functional but heap-spills, which the
 * allocation profile counts and the perf allocation-ceiling test
 * rejects.
 */
constexpr std::size_t packetCallbackCapacity = 48;

struct Packet {
    using Callback = InlineFunction<void(Packet &), packetCallbackCapacity>;

    MemCmd cmd = MemCmd::Read;
    /** Physical address (valid unless isVirtual). */
    Addr paddr = 0;
    /** Virtual address, kept for translate-at-border datapaths. */
    Addr vaddr = 0;
    /** True while the packet still needs translation. */
    bool isVirtual = false;
    unsigned size = blockSize;
    Asid asid = 0;
    Requestor requestor = Requestor::cpu;
    /** Tick the original requestor issued this packet. */
    Tick issuedAt = 0;
    /**
     * Called exactly once when the response (or write ack) arrives.
     * Null for fire-and-forget traffic.
     */
    Callback onResponse;
    /** Set if a safety mechanism denied the access. */
    bool denied = false;
    /**
     * For cache fill reads: the requester intends to write, so it asks
     * the coherence point for an exclusive (writable) copy.
     */
    bool needsWritable = false;
    /**
     * Set by the coherence point on the response path: whether the
     * filled block may be held in a writable state. Never true for an
     * untrusted requestor that asked read-only (paper §3.4.3).
     */
    bool grantedWritable = false;
    /**
     * Contract bookkeeping: set by respondAt() when the onResponse
     * callback is delivered, checked (under BCTRL_ASSERT) to enforce
     * the responded-exactly-once contract. Always present so the
     * struct layout does not depend on the contracts configuration.
     */
    bool responded = false;
    /**
     * Border Control's parallel read check (§3.4.1): when nonzero, the
     * response callback may not run before this tick. respondAt()
     * consumes it by adding the extra delivery hop the check requires.
     */
    Tick responseGateTick = 0;
    /**
     * Stable identity for trace correlation: assigned by the pool at
     * make() (never recycled with the packet), 0 for heap-fallback
     * packets. Purely observational — no simulated behavior reads it.
     */
    std::uint64_t traceId = 0;
    /**
     * The queue of the domain this packet was issued from, stamped by
     * the first cross-domain port it traverses (null until then, and
     * forever for domain-local traffic). respondAt() routes the
     * response callback back to this queue — with one cross-domain
     * latency — when the responder lives in another domain, so
     * callbacks always run on their owner's shard.
     */
    EventQueue *homeQueue = nullptr;
    /**
     * Intrusive reference count; managed by PacketPtr only. Atomic
     * (relaxed increments, acquire-release decrement) because
     * PacketPtr copies travel between shard threads in the parallel
     * loop.
     */
    std::atomic<std::uint32_t> refCount{0};
    /** Owning pool, or null for heap-fallback packets. */
    PacketPool *pool = nullptr;

    bool isRead() const { return cmd == MemCmd::Read; }
    bool isWrite() const { return cmd != MemCmd::Read; }
    bool isWriteback() const { return cmd == MemCmd::Writeback; }

    Addr blockAddr() const { return blockAlign(paddr); }
    Addr pageNum() const { return pageNumber(paddr); }

    std::string toString() const;

    /** Convenience factory (heap fallback; prefer a PacketPool). */
    static PacketPtr make(MemCmd cmd, Addr paddr, unsigned size,
                          Requestor req, Asid asid = 0);
};

/**
 * Intrusive smart pointer over Packet. Copy = refcount bump; the last
 * owner returns the packet to its pool (or the heap). Deliberately
 * minimal: no weak references, no aliasing, no custom deleters.
 */
class PacketPtr
{
  public:
    constexpr PacketPtr() noexcept = default;
    constexpr PacketPtr(std::nullptr_t) noexcept {}

    /** Adopt a raw packet (factory use); bumps the refcount. */
    explicit PacketPtr(Packet *pkt) noexcept : pkt_(pkt)
    {
        if (pkt_ != nullptr)
            pkt_->refCount.fetch_add(1, std::memory_order_relaxed);
    }

    PacketPtr(const PacketPtr &other) noexcept : pkt_(other.pkt_)
    {
        if (pkt_ != nullptr)
            pkt_->refCount.fetch_add(1, std::memory_order_relaxed);
    }

    PacketPtr(PacketPtr &&other) noexcept : pkt_(other.pkt_)
    {
        other.pkt_ = nullptr;
    }

    PacketPtr &
    operator=(const PacketPtr &other) noexcept
    {
        PacketPtr(other).swap(*this);
        return *this;
    }

    PacketPtr &
    operator=(PacketPtr &&other) noexcept
    {
        PacketPtr(std::move(other)).swap(*this);
        return *this;
    }

    PacketPtr &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    ~PacketPtr() { reset(); }

    void
    reset() noexcept
    {
        // acq_rel: the thread that drops the last reference must see
        // every other owner's writes before recycling the packet.
        if (pkt_ != nullptr &&
            pkt_->refCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
            releasePacket(pkt_);
        pkt_ = nullptr;
    }

    void
    swap(PacketPtr &other) noexcept
    {
        Packet *tmp = pkt_;
        pkt_ = other.pkt_;
        other.pkt_ = tmp;
    }

    Packet *get() const noexcept { return pkt_; }
    Packet &operator*() const noexcept { return *pkt_; }
    Packet *operator->() const noexcept { return pkt_; }
    explicit operator bool() const noexcept { return pkt_ != nullptr; }

    /** Current refcount (tests/diagnostics). */
    std::uint32_t
    useCount() const noexcept
    {
        return pkt_ != nullptr
                   ? pkt_->refCount.load(std::memory_order_relaxed)
                   : 0;
    }

    friend bool
    operator==(const PacketPtr &a, const PacketPtr &b) noexcept
    {
        return a.pkt_ == b.pkt_;
    }
    friend bool
    operator!=(const PacketPtr &a, const PacketPtr &b) noexcept
    {
        return a.pkt_ != b.pkt_;
    }
    friend bool
    operator==(const PacketPtr &a, std::nullptr_t) noexcept
    {
        return a.pkt_ == nullptr;
    }
    friend bool
    operator!=(const PacketPtr &a, std::nullptr_t) noexcept
    {
        return a.pkt_ != nullptr;
    }

  private:
    Packet *pkt_ = nullptr;
};

} // namespace bctrl

#endif // BCTRL_MEM_PACKET_HH
