/**
 * @file
 * Memory request packets exchanged between devices.
 *
 * A Packet carries one read, write, or writeback. The address is
 * physical except on datapaths that translate at the border (the full
 * IOMMU and CAPI-like configurations), where packets start out virtual.
 */

#ifndef BCTRL_MEM_PACKET_HH
#define BCTRL_MEM_PACKET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace bctrl {

enum class MemCmd : std::uint8_t {
    Read,       ///< demand read (also used for cache fills)
    Write,      ///< demand write (write-through traffic)
    Writeback,  ///< eviction of a dirty block
};

/**
 * Identifies the agent a packet originated from, for coherence and for
 * Border Control's trusted/untrusted distinction.
 */
enum class Requestor : std::uint8_t {
    cpu,        ///< trusted CPU core
    accelerator, ///< the untrusted accelerator (GPU)
    trustedHw,  ///< trusted hardware: page walker, Border Control itself
};

struct Packet;
using PacketPtr = std::shared_ptr<Packet>;

struct Packet {
    MemCmd cmd = MemCmd::Read;
    /** Physical address (valid unless isVirtual). */
    Addr paddr = 0;
    /** Virtual address, kept for translate-at-border datapaths. */
    Addr vaddr = 0;
    /** True while the packet still needs translation. */
    bool isVirtual = false;
    unsigned size = blockSize;
    Asid asid = 0;
    Requestor requestor = Requestor::cpu;
    /** Tick the original requestor issued this packet. */
    Tick issuedAt = 0;
    /**
     * Called exactly once when the response (or write ack) arrives.
     * Null for fire-and-forget traffic.
     */
    std::function<void(Packet &)> onResponse;
    /** Set if a safety mechanism denied the access. */
    bool denied = false;
    /**
     * For cache fill reads: the requester intends to write, so it asks
     * the coherence point for an exclusive (writable) copy.
     */
    bool needsWritable = false;
    /**
     * Set by the coherence point on the response path: whether the
     * filled block may be held in a writable state. Never true for an
     * untrusted requestor that asked read-only (paper §3.4.3).
     */
    bool grantedWritable = false;
    /**
     * Contract bookkeeping: set by respondAt() when the onResponse
     * callback is delivered, checked (under BCTRL_ASSERT) to enforce
     * the responded-exactly-once contract. Always present so the
     * struct layout does not depend on the contracts configuration.
     */
    bool responded = false;

    bool isRead() const { return cmd == MemCmd::Read; }
    bool isWrite() const { return cmd != MemCmd::Read; }
    bool isWriteback() const { return cmd == MemCmd::Writeback; }

    Addr blockAddr() const { return blockAlign(paddr); }
    Addr pageNum() const { return pageNumber(paddr); }

    std::string toString() const;

    /** Convenience factory. */
    static PacketPtr make(MemCmd cmd, Addr paddr, unsigned size,
                          Requestor req, Asid asid = 0);
};

} // namespace bctrl

#endif // BCTRL_MEM_PACKET_HH
