#include "mem/packet_pool.hh"

#include "sim/contracts.hh"

// ASan detection: poison parked pool slots so a use-after-release
// traps in sanitized builds instead of reading a recycled packet.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BCTRL_PACKET_POOL_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define BCTRL_PACKET_POOL_ASAN 1
#endif

#ifdef BCTRL_PACKET_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace bctrl {

namespace {

inline void
poisonSlot(Packet *pkt)
{
#ifdef BCTRL_PACKET_POOL_ASAN
    ASAN_POISON_MEMORY_REGION(pkt, sizeof(Packet));
#else
    (void)pkt;
#endif
}

inline void
unpoisonSlot(Packet *pkt)
{
#ifdef BCTRL_PACKET_POOL_ASAN
    ASAN_UNPOISON_MEMORY_REGION(pkt, sizeof(Packet));
#else
    (void)pkt;
#endif
}

} // namespace

PacketPool::~PacketPool()
{
    for (Packet *pkt : free_) {
        unpoisonSlot(pkt);
        delete pkt;
    }
}

PacketPtr
PacketPool::make(MemCmd cmd, Addr paddr, unsigned size, Requestor req,
                 Asid asid)
{
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    Packet *pkt;
    if (!free_.empty()) {
        pkt = free_.back();
        free_.pop_back();
        unpoisonSlot(pkt);
        BCTRL_ASSERT_MSG(pkt->refCount == 0,
                         "recycled packet still referenced");
    } else {
        pkt = new Packet;
        pkt->pool = this;
        ++heapAllocs_;
    }

    // Reuse resets *every* field (the pool contract): a recycled
    // packet must be indistinguishable from a fresh one, notably the
    // responded/denied/grantedWritable bits.
    pkt->cmd = cmd;
    pkt->paddr = paddr;
    pkt->vaddr = 0;
    pkt->isVirtual = false;
    pkt->size = size;
    pkt->asid = asid;
    pkt->requestor = req;
    pkt->issuedAt = 0;
    pkt->denied = false;
    pkt->needsWritable = false;
    pkt->grantedWritable = false;
    pkt->responded = false;
    pkt->responseGateTick = 0;
    pkt->traceId = ++nextTraceId_;
    pkt->homeQueue = nullptr;

    if (++inFlight_ > peakInFlight_)
        peakInFlight_ = inFlight_;
    return PacketPtr(pkt);
}

void
PacketPool::release(Packet *pkt)
{
    // Drop any captured callback state now (it may own references).
    // Outside the lock: destroying a capture can release another
    // packet, re-entering this pool.
    pkt->onResponse = nullptr;
    pkt->homeQueue = nullptr;
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (threadSafe_)
        lock.lock();
    BCTRL_ASSERT_MSG(inFlight_ > 0, "pool release with nothing in flight");
    --inFlight_;
    if (free_.size() >= maxPoolSize) {
        delete pkt;
        return;
    }
    free_.push_back(pkt);
    poisonSlot(pkt);
}

void
releasePacket(Packet *pkt)
{
    if (pkt->pool != nullptr)
        pkt->pool->release(pkt);
    else
        delete pkt;
}

} // namespace bctrl
