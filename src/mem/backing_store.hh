/**
 * @file
 * Functional backing store for simulated physical memory.
 *
 * Pages are allocated sparsely on first touch, so simulating a 4 GB
 * physical address space costs host memory only for pages actually
 * written. Page tables, Protection Tables, and workload data all live
 * here, which lets tests verify end-to-end data integrity.
 */

#ifndef BCTRL_MEM_BACKING_STORE_HH
#define BCTRL_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace bctrl {

class BackingStore
{
  public:
    /** @param size total physical memory in bytes (page aligned). */
    explicit BackingStore(Addr size);

    Addr size() const { return size_; }
    Addr numPages() const { return pageNumber(size_); }

    /** Functional read of @p len bytes at physical @p addr. */
    void read(Addr addr, void *dst, Addr len) const;

    /** Functional write of @p len bytes at physical @p addr. */
    void write(Addr addr, const void *src, Addr len);

    /** Read a little-endian 64-bit word. */
    std::uint64_t read64(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void write64(Addr addr, std::uint64_t value);

    std::uint8_t read8(Addr addr) const;
    void write8(Addr addr, std::uint8_t value);

    /** Zero-fill @p len bytes starting at @p addr. */
    void zero(Addr addr, Addr len);

    /** Number of host-resident simulated pages (for tests). */
    std::size_t residentPages() const { return pages_.size(); }

    /**
     * Raw byte storage of the page containing @p addr, allocating a
     * zeroed page if absent. The pointer stays valid for the store's
     * lifetime (pages are never freed or moved), so hot structures
     * like the ProtectionTable may cache it across accesses.
     */
    std::uint8_t *pageData(Addr addr);

    /** Like pageData, but nullptr if the page was never touched. */
    const std::uint8_t *pageDataIfResident(Addr addr) const;

    /** Page lookups through read/write/pageData (MRU stats). */
    std::uint64_t pageLookups() const { return pageLookups_; }
    /** Lookups answered by the last-page MRU cache, no hashing. */
    std::uint64_t mruHits() const { return mruHits_; }

    /**
     * Serialize page lookups (and the MRU cache) with a mutex. Off by
     * default; the builder turns it on for parallel runs, where the
     * GPU and DRAM shards both reach functional memory. Note the MRU
     * hit rate then depends on the thread interleaving — it is a
     * host-side counter, never simulated state, and is excluded from
     * bit-identity comparisons for exactly this reason.
     */
    void setThreadSafe(bool on) { threadSafe_ = on; }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    /** @return the page for @p addr, allocating a zeroed one if absent. */
    Page &pageFor(Addr addr);
    /** @return the page for @p addr or nullptr if never touched. */
    const Page *pageForConst(Addr addr) const;

    void checkRange(Addr addr, Addr len) const;

    Addr size_;
    mutable std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /**
     * Last-page MRU cache in front of the hash map: streaming access
     * touches the same page for (pageSize / request) consecutive
     * lookups, so remembering one (ppn, page) pair removes the hash
     * from the hot path. mruPage_ == nullptr records "absent" so
     * untouched pages keep reading as zero without allocating; every
     * allocation goes through pageFor, which refreshes the entry, and
     * pages are never freed, so the cache cannot go stale.
     */
    mutable Addr mruPpn_ = ~Addr(0);
    mutable Page *mruPage_ = nullptr;
    mutable std::uint64_t pageLookups_ = 0;
    mutable std::uint64_t mruHits_ = 0;

    bool threadSafe_ = false;
    mutable std::mutex mutex_;
};

} // namespace bctrl

#endif // BCTRL_MEM_BACKING_STORE_HH
