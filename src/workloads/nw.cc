#include "workloads/rodinia.hh"

#include "os/process.hh"

namespace bctrl {

NwWorkload::NwWorkload(std::uint64_t scale, std::uint64_t seed)
    : dim_(512 * scale), block_(16)
{
    (void)seed;
}

void
NwWorkload::setup(Process &proc)
{
    refBase_ = proc.mmap(dim_ * dim_ * 4, Perms::readOnly());
    scoreBase_ = proc.mmap(dim_ * dim_ * 4, Perms::readWrite());
}

std::uint64_t
NwWorkload::numUnits() const
{
    return (dim_ / block_) * (dim_ / block_);
}

std::uint64_t
NwWorkload::memItemsPerUnit() const
{
    const std::uint64_t row_accesses =
        std::max<std::uint64_t>(1, block_ * 4 / 64);
    return block_ * row_accesses /* reference block */ +
           2 /* boundaries */ + block_ * row_accesses /* score write */;
}

void
NwWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    // Process the DP matrix in blocks along anti-diagonals; each block
    // reads its reference sub-matrix and the boundary rows/columns of
    // the already-computed neighbours, then writes its scores.
    const std::uint64_t blocks_per_row = dim_ / block_;
    const std::uint64_t brow = unit / blocks_per_row;
    const std::uint64_t bcol = unit % blocks_per_row;
    const Addr row_bytes = dim_ * 4;
    const Addr origin = brow * block_ * row_bytes + bcol * block_ * 4;
    const Addr row_accesses =
        std::max<std::uint64_t>(1, block_ * 4 / 64);

    // Boundary reads: last row of the block above, last column strip
    // of the block to the left.
    if (brow > 0)
        out.push_back(
            WorkItem::mem(scoreBase_ + origin - row_bytes, false, 64));
    if (bcol > 0)
        out.push_back(
            WorkItem::mem(scoreBase_ + origin - 64, false, 64));

    for (std::uint64_t r = 0; r < block_; ++r) {
        const Addr row_off = origin + r * row_bytes;
        for (Addr a = 0; a < row_accesses; ++a)
            out.push_back(
                WorkItem::mem(refBase_ + row_off + a * 64, false, 64));
        // Re-read the previous DP row of this block (L1-hot) and
        // compute the cell updates.
        if (r > 0)
            out.push_back(WorkItem::mem(
                scoreBase_ + row_off - row_bytes, false, 64));
        out.push_back(WorkItem::compute(80));
        for (Addr a = 0; a < row_accesses; ++a)
            out.push_back(
                WorkItem::mem(scoreBase_ + row_off + a * 64, true, 64));
    }
}

} // namespace bctrl
