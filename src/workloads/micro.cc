#include "workloads/micro.hh"

#include "os/process.hh"
#include "sim/logging.hh"

namespace bctrl {

UniformRandomWorkload::UniformRandomWorkload(std::uint64_t scale,
                                             std::uint64_t seed)
    : footprint_(4 * 1024 * 1024 * scale),
      totalOps_(65536 * scale),
      writeFraction_(0.3),
      seed_(seed)
{
}

void
UniformRandomWorkload::configure(Addr footprint_bytes,
                                 std::uint64_t total_ops,
                                 double write_fraction)
{
    footprint_ = footprint_bytes;
    totalOps_ = total_ops;
    writeFraction_ = write_fraction;
}

void
UniformRandomWorkload::setup(Process &proc)
{
    base_ = proc.mmap(footprint_, Perms::readWrite(), false,
                      largePages_);
}

std::uint64_t
UniformRandomWorkload::numUnits() const
{
    return (totalOps_ + opsPerUnit_ - 1) / opsPerUnit_;
}

std::uint64_t
UniformRandomWorkload::memItemsPerUnit() const
{
    return opsPerUnit_;
}

void
UniformRandomWorkload::expand(std::uint64_t unit,
                              std::vector<WorkItem> &out)
{
    Random rng(seed_ * 0x2545f491 + unit);
    for (std::uint64_t i = 0; i < opsPerUnit_; ++i) {
        Addr addr = base_ + (rng.nextBounded(footprint_ / 64)) * 64;
        out.push_back(
            WorkItem::mem(addr, rng.nextBool(writeFraction_), 64));
    }
}

StreamWorkload::StreamWorkload(std::uint64_t scale, std::uint64_t seed)
    : footprint_(8 * 1024 * 1024 * scale),
      passes_(2),
      writeFraction_(0.25),
      seed_(seed)
{
}

void
StreamWorkload::configure(Addr footprint_bytes, unsigned passes,
                          double write_fraction)
{
    footprint_ = footprint_bytes;
    passes_ = passes;
    writeFraction_ = write_fraction;
}

void
StreamWorkload::useRegion(Addr base, Addr bytes)
{
    base_ = base;
    footprint_ = bytes;
    externalRegion_ = true;
}

void
StreamWorkload::setup(Process &proc)
{
    if (!externalRegion_)
        base_ = proc.mmap(footprint_, Perms::readWrite());
}

std::uint64_t
StreamWorkload::numUnits() const
{
    return passes_ * (footprint_ / bytesPerUnit_);
}

std::uint64_t
StreamWorkload::memItemsPerUnit() const
{
    return bytesPerUnit_ / 64;
}

void
StreamWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    Random rng(seed_ + unit);
    const Addr off = (unit % (footprint_ / bytesPerUnit_)) *
                     bytesPerUnit_;
    for (Addr b = 0; b < bytesPerUnit_; b += 64) {
        out.push_back(WorkItem::mem(base_ + off + b,
                                    rng.nextBool(writeFraction_), 64));
    }
}

StridedWorkload::StridedWorkload(std::uint64_t scale, std::uint64_t seed)
    : footprint_(16 * 1024 * 1024 * scale),
      stride_(pageSize),
      totalOps_(32768 * scale)
{
    (void)seed;
}

void
StridedWorkload::configure(Addr footprint_bytes, Addr stride,
                           std::uint64_t total_ops)
{
    footprint_ = footprint_bytes;
    stride_ = stride;
    totalOps_ = total_ops;
}

void
StridedWorkload::setup(Process &proc)
{
    base_ = proc.mmap(footprint_, Perms::readWrite());
}

std::uint64_t
StridedWorkload::numUnits() const
{
    return (totalOps_ + opsPerUnit_ - 1) / opsPerUnit_;
}

std::uint64_t
StridedWorkload::memItemsPerUnit() const
{
    return opsPerUnit_;
}

void
StridedWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t strides = footprint_ / stride_;
    std::uint64_t index = unit * opsPerUnit_;
    for (std::uint64_t i = 0; i < opsPerUnit_; ++i, ++index) {
        Addr addr = base_ + (index % strides) * stride_;
        out.push_back(WorkItem::mem(addr, false, 64));
    }
}

} // namespace bctrl
