#include "workloads/rodinia.hh"

#include "os/process.hh"

namespace bctrl {

namespace {
/** Passes of tile operations over the matrix (panel updates). */
constexpr std::uint64_t numSweeps = 8;
} // namespace

LudWorkload::LudWorkload(std::uint64_t scale, std::uint64_t seed)
    : dim_(256 * scale), tile_(32), tileReuse_(8)
{
    (void)seed;
}

void
LudWorkload::setup(Process &proc)
{
    // The matrix is factored in place.
    matrixBase_ = proc.mmap(dim_ * dim_ * 4, Perms::readWrite());
}

std::uint64_t
LudWorkload::numUnits() const
{
    // The factorization makes numSweeps passes of tile operations over
    // the (cache-resident) matrix.
    const std::uint64_t tiles = (dim_ / tile_) * (dim_ / tile_);
    return tiles * numSweeps;
}

std::uint64_t
LudWorkload::memItemsPerUnit() const
{
    const std::uint64_t tile_accesses = tile_ * tile_ * 4 / 64;
    return tile_accesses * (tileReuse_ + 1) /* reads + diag read */ +
           tile_accesses /* write back */;
}

void
LudWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t tiles_per_row = dim_ / tile_;
    const std::uint64_t tiles = tiles_per_row * tiles_per_row;
    const std::uint64_t tile_idx = unit % tiles;
    const Addr tile_bytes = tile_ * tile_ * 4;
    // Tiles stored contiguously (the blocked layout LUD kernels use).
    const Addr my_tile = matrixBase_ + tile_idx * tile_bytes;
    // The pivot tile for this tile's row: re-read by every unit in the
    // row, so it stays hot in the shared L2.
    const Addr diag_tile =
        matrixBase_ +
        (((tile_idx / tiles_per_row) * (tiles_per_row + 1)) % tiles) *
            tile_bytes;

    // Read the pivot tile once.
    for (Addr b = 0; b < tile_bytes; b += 64)
        out.push_back(WorkItem::mem(diag_tile + b, false, 64));

    // The inner GEMM re-reads the tile several times; the tile (4 KB)
    // fits in the 16 KB L1, so the re-reads hit.
    for (unsigned pass = 0; pass < tileReuse_; ++pass) {
        for (Addr b = 0; b < tile_bytes; b += 64) {
            out.push_back(WorkItem::mem(my_tile + b, false, 64));
            out.push_back(WorkItem::compute(2));
        }
    }

    // Write the updated tile.
    for (Addr b = 0; b < tile_bytes; b += 64)
        out.push_back(WorkItem::mem(my_tile + b, true, 64));
}

} // namespace bctrl
