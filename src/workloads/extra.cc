#include "workloads/extra.hh"

#include <algorithm>

#include "os/process.hh"

namespace bctrl {

// ---------------------------------------------------------------- kmeans

KmeansWorkload::KmeansWorkload(std::uint64_t scale, std::uint64_t seed)
    : numPoints_(32768 * scale),
      pointsPerUnit_(32),
      features_(16),
      clusters_(8),
      iterations_(4)
{
    (void)seed;
}

void
KmeansWorkload::setup(Process &proc)
{
    // Feature matrix is read-only to the kernel; memberships are
    // written; the (tiny, hot) centroid table is read each point.
    featureBase_ =
        proc.mmap(numPoints_ * features_ * 4, Perms::readOnly());
    centroidBase_ =
        proc.mmap(clusters_ * features_ * 4, Perms::readOnly());
    membershipBase_ = proc.mmap(numPoints_ * 4, Perms::readWrite());
}

std::uint64_t
KmeansWorkload::numUnits() const
{
    return iterations_ * (numPoints_ / pointsPerUnit_);
}

std::uint64_t
KmeansWorkload::memItemsPerUnit() const
{
    const std::uint64_t point_reads =
        pointsPerUnit_ * features_ * 4 / 64;
    return point_reads + pointsPerUnit_ /* centroid re-reads */ +
           pointsPerUnit_ * 4 / 64 + 1 /* membership writes */;
}

void
KmeansWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t slice = unit % (numPoints_ / pointsPerUnit_);
    const Addr point_bytes = features_ * 4;
    const Addr base = featureBase_ + slice * pointsPerUnit_ * point_bytes;
    for (std::uint64_t p = 0; p < pointsPerUnit_; ++p) {
        // Stream the point's features...
        for (Addr b = 0; b < point_bytes; b += 64)
            out.push_back(
                WorkItem::mem(base + p * point_bytes + b, false, 64));
        // ...re-read the (L1-hot) centroid table and compute distances.
        out.push_back(WorkItem::mem(
            centroidBase_ + (p % clusters_) * point_bytes, false, 64));
        out.push_back(WorkItem::compute(24)); // 8 clusters x distances
    }
    // Write the memberships for the whole slice.
    const Addr member_off = slice * pointsPerUnit_ * 4;
    for (Addr b = 0; b < pointsPerUnit_ * 4; b += 64)
        out.push_back(
            WorkItem::mem(membershipBase_ + member_off + b, true, 64));
}

// ------------------------------------------------------------------ srad

SradWorkload::SradWorkload(std::uint64_t scale, std::uint64_t seed)
    : rows_(96 * scale), cols_(256), segment_(256), iterations_(6)
{
    (void)seed;
}

void
SradWorkload::setup(Process &proc)
{
    imageBase_ = proc.mmap(rows_ * cols_ * 4, Perms::readWrite());
    derivBase_ = proc.mmap(4 * rows_ * cols_ * 4, Perms::readWrite());
    coeffBase_ = proc.mmap(rows_ * cols_ * 4, Perms::readWrite());
}

std::uint64_t
SradWorkload::numUnits() const
{
    // Two sweeps (derivatives+coefficient, then update) per iteration.
    return 2 * iterations_ * rows_ * (cols_ / segment_);
}

std::uint64_t
SradWorkload::memItemsPerUnit() const
{
    const std::uint64_t seg = segment_ * 4 / 64;
    return 5 * seg; // worst of the two sweeps
}

void
SradWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t segs_per_row = cols_ / segment_;
    const std::uint64_t sweep_units = rows_ * segs_per_row;
    const bool second_sweep = (unit / sweep_units) % 2 == 1;
    const std::uint64_t u = unit % sweep_units;
    const std::uint64_t row = u / segs_per_row;
    const Addr seg_bytes = segment_ * 4;
    const Addr row_bytes = cols_ * 4;
    const Addr off =
        row * row_bytes + (u % segs_per_row) * seg_bytes;
    const Addr above = row == 0 ? off : off - row_bytes;
    const Addr below = row == rows_ - 1 ? off : off + row_bytes;
    const Addr plane = rows_ * cols_ * 4;

    if (!second_sweep) {
        // Sweep 1: read the image stencil, write four derivative
        // planes and the diffusion coefficient.
        for (Addr b = 0; b < seg_bytes; b += 64) {
            out.push_back(WorkItem::mem(imageBase_ + off + b, false, 64));
            out.push_back(
                WorkItem::mem(imageBase_ + above + b, false, 64));
            out.push_back(
                WorkItem::mem(imageBase_ + below + b, false, 64));
            out.push_back(WorkItem::compute(10));
            out.push_back(
                WorkItem::mem(derivBase_ + off + b, true, 64));
            out.push_back(WorkItem::mem(
                derivBase_ + plane + off + b, true, 64));
            out.push_back(
                WorkItem::mem(coeffBase_ + off + b, true, 64));
        }
    } else {
        // Sweep 2: read derivatives + neighbouring coefficients,
        // update the image in place.
        for (Addr b = 0; b < seg_bytes; b += 64) {
            out.push_back(
                WorkItem::mem(derivBase_ + off + b, false, 64));
            out.push_back(
                WorkItem::mem(coeffBase_ + off + b, false, 64));
            out.push_back(
                WorkItem::mem(coeffBase_ + below + b, false, 64));
            out.push_back(WorkItem::compute(8));
            out.push_back(
                WorkItem::mem(imageBase_ + off + b, true, 64));
        }
    }
}

// -------------------------------------------------------------- gaussian

GaussianWorkload::GaussianWorkload(std::uint64_t scale,
                                   std::uint64_t seed)
    : dim_(512 * scale)
{
    (void)seed;
}

void
GaussianWorkload::setup(Process &proc)
{
    matrixBase_ = proc.mmap(dim_ * dim_ * 4, Perms::readWrite());
    vectorBase_ = proc.mmap(dim_ * 4, Perms::readWrite());
}

std::uint64_t
GaussianWorkload::numUnits() const
{
    // One unit per (pivot step, updated row); triangular, folded to a
    // fixed-size grid by sampling every fourth pivot.
    return (dim_ / 4) * 16;
}

std::uint64_t
GaussianWorkload::memItemsPerUnit() const
{
    return 3 * (dim_ / 2) * 4 / 64 + 2;
}

void
GaussianWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t pivot = (unit / 16) * 4;
    const std::uint64_t target =
        (pivot + 1 + (unit % 16)) % dim_;
    const Addr row_bytes = dim_ * 4;
    // Active columns shrink as elimination proceeds.
    const Addr active = std::max<Addr>(64, row_bytes - pivot * 4) &
                        ~Addr(63);
    const Addr pivot_row = matrixBase_ + pivot * row_bytes;
    const Addr target_row = matrixBase_ + target * row_bytes;

    // The pivot row is re-read by all 16 sibling units: L2-hot.
    for (Addr b = 0; b < active; b += 64) {
        out.push_back(WorkItem::mem(pivot_row + b, false, 64));
        out.push_back(WorkItem::mem(target_row + b, false, 64));
        out.push_back(WorkItem::compute(6));
        out.push_back(WorkItem::mem(target_row + b, true, 64));
    }
    out.push_back(
        WorkItem::mem(vectorBase_ + (target * 4 & ~Addr(63)), true,
                      64));
}

} // namespace bctrl
