/**
 * @file
 * The workload interface: per-wavefront instruction streams.
 *
 * A Workload stands in for a compiled GPU kernel. After setup()
 * allocates its buffers in a process's address space and bind() tells
 * it the machine shape, each hardware wavefront pulls a stream of
 * items — coalesced memory accesses and compute gaps — via next().
 * The streams are deterministic for a given seed, so two simulations
 * of different safety configurations execute identical access traces.
 *
 * These generators are the repository's substitute for the paper's
 * Rodinia benchmarks: they reproduce each benchmark's footprint,
 * read/write mix, spatial/temporal locality, and compute intensity,
 * which is everything Border Control's behaviour depends on (see
 * DESIGN.md §2).
 */

#ifndef BCTRL_WORKLOADS_WORKLOAD_HH
#define BCTRL_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace bctrl {

class Process;

/** One step of a wavefront's execution. */
struct WorkItem {
    enum class Kind : std::uint8_t {
        mem,     ///< a coalesced memory access
        compute, ///< ALU work: the wavefront stalls for `cycles`
        end,     ///< the wavefront has finished
    };

    Kind kind = Kind::end;
    Addr vaddr = 0;
    bool write = false;
    unsigned size = 32; ///< bytes actually needed (coalesced width)
    Cycles cycles = 0;  ///< for compute items

    static WorkItem
    mem(Addr vaddr, bool write, unsigned size = 32)
    {
        return WorkItem{Kind::mem, vaddr, write, size, 0};
    }
    static WorkItem
    compute(Cycles cycles)
    {
        return WorkItem{Kind::compute, 0, false, 0, cycles};
    }
    static WorkItem end() { return WorkItem{}; }
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate buffers in @p proc's address space. */
    virtual void setup(Process &proc) = 0;

    /** Inform the workload of the machine shape; resets all streams. */
    virtual void bind(unsigned num_cus, unsigned wfs_per_cu) = 0;

    /** Next item for hardware wavefront (@p cu, @p wf). */
    virtual WorkItem next(unsigned cu, unsigned wf) = 0;

    /** Total memory items the bound configuration will produce. */
    virtual std::uint64_t totalMemItems() const = 0;
};

/**
 * Base class for the Rodinia-proxy generators: handles binding,
 * per-wavefront cursors over a global list of work units, and the
 * common scale knob.
 *
 * Concrete workloads define work units (e.g. a tile, a row segment, a
 * frontier node) and expand one unit into a short item sequence.
 */
class TiledWorkload : public Workload
{
  public:
    void bind(unsigned num_cus, unsigned wfs_per_cu) override;
    WorkItem next(unsigned cu, unsigned wf) override;
    std::uint64_t totalMemItems() const override;

  protected:
    /** Number of global work units this workload generates. */
    virtual std::uint64_t numUnits() const = 0;

    /**
     * Expand unit @p unit into items, appended to @p out. Called once
     * per unit, on demand.
     */
    virtual void expand(std::uint64_t unit,
                        std::vector<WorkItem> &out) = 0;

    /** Mem items per unit (for totalMemItems; may be approximate). */
    virtual std::uint64_t memItemsPerUnit() const = 0;

  private:
    struct Cursor {
        std::uint64_t unit = 0;   ///< next global unit to expand
        std::vector<WorkItem> buffer;
        std::size_t pos = 0;
    };

    unsigned numCus_ = 0;
    unsigned wfsPerCu_ = 0;
    unsigned totalWfs_ = 0;
    std::vector<Cursor> cursors_;
};

/** Factory: construct a named workload (nullptr if unknown). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint64_t scale,
                                       std::uint64_t seed = 1);

/** The seven Rodinia-proxy workload names, in the paper's order. */
const std::vector<std::string> &rodiniaWorkloadNames();

} // namespace bctrl

#endif // BCTRL_WORKLOADS_WORKLOAD_HH
