#include "workloads/rodinia.hh"

#include <algorithm>

#include "os/process.hh"

namespace bctrl {

BfsWorkload::BfsWorkload(std::uint64_t scale, std::uint64_t seed)
    : numNodes_(16384 * scale),
      nodesPerUnit_(32),
      degree_(4),
      seed_(seed)
{
}

void
BfsWorkload::setup(Process &proc)
{
    // Graph structure is read-only; visitation state is read-write.
    frontierBase_ = proc.mmap(numNodes_ * 4, Perms::readOnly());
    rowOffsetBase_ = proc.mmap((numNodes_ + 1) * 4, Perms::readOnly());
    edgeBase_ = proc.mmap(numNodes_ * degree_ * 4, Perms::readOnly());
    visitedBase_ = proc.mmap(numNodes_, Perms::readWrite());
    costBase_ = proc.mmap(numNodes_ * 4, Perms::readWrite());
}

std::uint64_t
BfsWorkload::numUnits() const
{
    return numNodes_ / nodesPerUnit_;
}

std::uint64_t
BfsWorkload::memItemsPerUnit() const
{
    // frontier + (row offset + edge list) per node + (visited + ~30%
    // cost write) per edge.
    return 2 + nodesPerUnit_ * 2 +
           nodesPerUnit_ * degree_ + nodesPerUnit_ * degree_ * 3 / 10;
}

void
BfsWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    Random rng(seed_ * 0x9e3779b9 + unit);

    // Sequential read of this unit's slice of the frontier queue.
    const Addr frontier_off = unit * nodesPerUnit_ * 4;
    out.push_back(
        WorkItem::mem(frontierBase_ + frontier_off, false, 64));
    out.push_back(
        WorkItem::mem(frontierBase_ + frontier_off + 64, false, 64));

    // Clamp 64 B accesses so they never run past an array's end.
    auto clamp = [](Addr base, Addr offset, Addr array_bytes) {
        return base + std::min<Addr>(offset, array_bytes - 64);
    };

    for (std::uint64_t i = 0; i < nodesPerUnit_; ++i) {
        // The frontier holds effectively random node ids: the row
        // offset and edge-list reads scatter across the graph.
        const std::uint64_t node = rng.nextBounded(numNodes_);
        out.push_back(WorkItem::mem(
            clamp(rowOffsetBase_, node * 4, (numNodes_ + 1) * 4),
            false, 64));
        out.push_back(WorkItem::mem(
            clamp(edgeBase_, node * degree_ * 4,
                  numNodes_ * degree_ * 4),
            false, 64));
        for (unsigned e = 0; e < degree_; ++e) {
            const std::uint64_t neighbor = rng.nextBounded(numNodes_);
            out.push_back(WorkItem::mem(
                clamp(visitedBase_, neighbor, numNodes_), false, 64));
            out.push_back(WorkItem::compute(2));
            if (rng.nextBool(0.3)) {
                out.push_back(WorkItem::mem(
                    clamp(costBase_, neighbor * 4, numNodes_ * 4),
                    true, 64));
            }
        }
        out.push_back(WorkItem::compute(2));
    }
}

} // namespace bctrl
