/**
 * @file
 * Additional Rodinia-family workloads beyond the seven the paper
 * evaluates, for broader coverage of accelerator behaviours:
 *
 *  - kmeans: clustering — streams a feature matrix against a hot
 *    centroid table (gather + reduction, membership writes);
 *  - srad: speckle-reducing anisotropic diffusion — two dependent
 *    stencil sweeps per iteration with derivative temporaries;
 *  - gaussian: Gaussian elimination — shrinking row updates against a
 *    hot pivot row.
 *
 * They share the TiledWorkload machinery and the validity guarantees
 * the test suite enforces for every generator.
 */

#ifndef BCTRL_WORKLOADS_EXTRA_HH
#define BCTRL_WORKLOADS_EXTRA_HH

#include "workloads/workload.hh"

namespace bctrl {

class KmeansWorkload : public TiledWorkload
{
  public:
    KmeansWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "kmeans"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t numPoints_;
    std::uint64_t pointsPerUnit_;
    unsigned features_;   ///< floats per point
    unsigned clusters_;
    unsigned iterations_;
    Addr featureBase_ = 0;
    Addr centroidBase_ = 0;
    Addr membershipBase_ = 0;
};

class SradWorkload : public TiledWorkload
{
  public:
    SradWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "srad"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t rows_;
    std::uint64_t cols_;
    std::uint64_t segment_;
    unsigned iterations_;
    Addr imageBase_ = 0;
    Addr derivBase_ = 0;  ///< N/S/E/W derivative planes
    Addr coeffBase_ = 0;
};

class GaussianWorkload : public TiledWorkload
{
  public:
    GaussianWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "gaussian"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t dim_;
    Addr matrixBase_ = 0;
    Addr vectorBase_ = 0;
};

} // namespace bctrl

#endif // BCTRL_WORKLOADS_EXTRA_HH
