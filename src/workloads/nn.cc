#include "workloads/rodinia.hh"

#include "os/process.hh"

namespace bctrl {

namespace {
constexpr unsigned recordBytes = 64;
} // namespace

NnWorkload::NnWorkload(std::uint64_t scale, std::uint64_t seed)
    : numRecords_(3072 * scale), recordsPerUnit_(12), passes_(32)
{
    (void)seed;
}

void
NnWorkload::setup(Process &proc)
{
    recordBase_ =
        proc.mmap(numRecords_ * recordBytes, Perms::readOnly());
    resultBase_ = proc.mmap(numUnits() * 64, Perms::readWrite());
}

std::uint64_t
NnWorkload::numUnits() const
{
    // The (cache-resident) record set is scanned once per query point.
    return passes_ * (numRecords_ / recordsPerUnit_);
}

std::uint64_t
NnWorkload::memItemsPerUnit() const
{
    return recordsPerUnit_ + 1;
}

void
NnWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    // Pure streaming: read each record once, compute its distance,
    // keep a running best, and write the unit's candidate at the end.
    const std::uint64_t slice = unit % (numRecords_ / recordsPerUnit_);
    const Addr base = recordBase_ + slice * recordsPerUnit_ * recordBytes;
    for (std::uint64_t r = 0; r < recordsPerUnit_; ++r) {
        out.push_back(
            WorkItem::mem(base + r * recordBytes, false, recordBytes));
        // Distance computation over the record's 16 coordinates.
        out.push_back(WorkItem::compute(6));
    }
    out.push_back(WorkItem::mem(resultBase_ + unit * 64, true, 64));
}

} // namespace bctrl
