#include "workloads/rodinia.hh"

#include "os/process.hh"
#include "sim/logging.hh"

namespace bctrl {

namespace {
constexpr std::uint64_t hiddenGroup = 16; ///< hidden units per work unit
constexpr unsigned accessBytes = 64;
/**
 * Instructions per streamed weight line: 16 MACs plus index/loop
 * overhead. Backprop is MAC-dominated, which is why it shows the
 * lowest border request rate of the suite (Fig. 5).
 */
constexpr Cycles macBurst = 150;
} // namespace

BackpropWorkload::BackpropWorkload(std::uint64_t scale,
                                   std::uint64_t seed)
    : inputCount_(4096 * scale), hiddenCount_(64), chunk_(128)
{
    (void)seed;
}

void
BackpropWorkload::setup(Process &proc)
{
    // Input activations: read-only to the kernel, hot in the L1.
    inputBase_ = proc.mmap(inputCount_ * 4, Perms::readOnly());
    // Weight matrix, streamed once per pass per hidden group.
    weightBase_ =
        proc.mmap(inputCount_ * hiddenCount_ * 4, Perms::readOnly());
    deltaBase_ =
        proc.mmap(inputCount_ * hiddenCount_ * 4, Perms::readWrite());
    hiddenBase_ = proc.mmap(hiddenCount_ * 8, Perms::readWrite());
}

std::uint64_t
BackpropWorkload::numUnits() const
{
    // (input chunk, hidden group) pairs, for two passes (fwd + bwd).
    return 2 * (inputCount_ / chunk_) * (hiddenCount_ / hiddenGroup);
}

std::uint64_t
BackpropWorkload::memItemsPerUnit() const
{
    const std::uint64_t weight_reads =
        chunk_ * hiddenGroup * 4 / accessBytes;
    // Each weight line is paired with a (hot) input re-read; the
    // backward pass adds delta writes on half the units.
    return 2 * weight_reads + weight_reads / 2 + 1;
}

void
BackpropWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t units_per_pass = numUnits() / 2;
    const bool backward = unit >= units_per_pass;
    const std::uint64_t u = unit % units_per_pass;
    const std::uint64_t groups = hiddenCount_ / hiddenGroup;
    const std::uint64_t group = u % groups;
    const std::uint64_t chunk_idx = u / groups;
    const Addr in_off = chunk_idx * chunk_ * 4;
    const Addr in_bytes = chunk_ * 4;

    // Weights laid out group-major: each hidden group's slice of the
    // matrix is contiguous, streamed chunk by chunk.
    const Addr w_off =
        (group * inputCount_ + chunk_idx * chunk_) * hiddenGroup * 4;
    const Addr slice = chunk_ * hiddenGroup * 4;

    unsigned in_cursor = 0;
    for (Addr b = 0; b < slice; b += accessBytes) {
        // Re-read the input activations (hot: the chunk fits in L1).
        out.push_back(WorkItem::mem(
            inputBase_ + in_off + (in_cursor % in_bytes), false,
            accessBytes));
        in_cursor += accessBytes;
        // Stream the next line of weights and burn MACs on it.
        out.push_back(WorkItem::mem(weightBase_ + w_off + b, false,
                                    accessBytes));
        out.push_back(WorkItem::compute(macBurst));
        if (backward && (b / accessBytes) % 2 == 0) {
            out.push_back(WorkItem::mem(deltaBase_ + w_off + b, true,
                                        accessBytes));
        }
    }
    // Accumulate the partial sums for this hidden group.
    out.push_back(WorkItem::compute(6));
    out.push_back(
        WorkItem::mem(hiddenBase_ + group * hiddenGroup * 8, true, 32));
}

} // namespace bctrl
