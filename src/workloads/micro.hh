/**
 * @file
 * Microworkloads for unit tests, sensitivity sweeps, and the
 * google-benchmark suite: uniform-random, streaming, and strided
 * access patterns with configurable footprint and read/write mix.
 */

#ifndef BCTRL_WORKLOADS_MICRO_HH
#define BCTRL_WORKLOADS_MICRO_HH

#include "mem/addr.hh"
#include "workloads/workload.hh"

namespace bctrl {

/** Uniform-random accesses over a configurable footprint. */
class UniformRandomWorkload : public TiledWorkload
{
  public:
    UniformRandomWorkload(std::uint64_t scale, std::uint64_t seed);

    /** Override the defaults before setup(). */
    void configure(Addr footprint_bytes, std::uint64_t total_ops,
                   double write_fraction);

    /** Back the footprint with 2 MB large pages (paper §3.4.4). */
    void useLargePages() { largePages_ = true; }

    std::string name() const override { return "uniform"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    Addr footprint_;
    std::uint64_t totalOps_;
    double writeFraction_;
    std::uint64_t opsPerUnit_ = 64;
    std::uint64_t seed_;
    bool largePages_ = false;
    Addr base_ = 0;
};

/** Sequential streaming passes over a buffer. */
class StreamWorkload : public TiledWorkload
{
  public:
    StreamWorkload(std::uint64_t scale, std::uint64_t seed);

    void configure(Addr footprint_bytes, unsigned passes,
                   double write_fraction);

    /**
     * Stream over an already-mapped region of the process instead of
     * allocating a fresh buffer in setup() (shared-virtual-memory
     * pipelines where another engine produced the data).
     */
    void useRegion(Addr base, Addr bytes);

    std::string name() const override { return "stream"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    Addr footprint_;
    unsigned passes_;
    double writeFraction_;
    std::uint64_t bytesPerUnit_ = 4096;
    std::uint64_t seed_;
    Addr base_ = 0;
    bool externalRegion_ = false;
};

/** Fixed-stride accesses (one touch per cache block or per page). */
class StridedWorkload : public TiledWorkload
{
  public:
    StridedWorkload(std::uint64_t scale, std::uint64_t seed);

    void configure(Addr footprint_bytes, Addr stride,
                   std::uint64_t total_ops);

    std::string name() const override { return "strided"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    Addr footprint_;
    Addr stride_;
    std::uint64_t totalOps_;
    std::uint64_t opsPerUnit_ = 64;
    Addr base_ = 0;
};

} // namespace bctrl

#endif // BCTRL_WORKLOADS_MICRO_HH
