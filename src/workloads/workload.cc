#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/extra.hh"
#include "workloads/micro.hh"
#include "workloads/rodinia.hh"

namespace bctrl {

void
TiledWorkload::bind(unsigned num_cus, unsigned wfs_per_cu)
{
    panic_if(num_cus == 0 || wfs_per_cu == 0, "binding an empty machine");
    numCus_ = num_cus;
    wfsPerCu_ = wfs_per_cu;
    totalWfs_ = num_cus * wfs_per_cu;
    cursors_.assign(totalWfs_, Cursor{});
    // Interleave units across wavefronts so that consecutive units —
    // which usually touch adjacent data — run concurrently, as a GPU
    // scheduler would arrange.
    for (unsigned i = 0; i < totalWfs_; ++i)
        cursors_[i].unit = i;
}

WorkItem
TiledWorkload::next(unsigned cu, unsigned wf)
{
    panic_if(cursors_.empty(), "next() before bind()");
    Cursor &c = cursors_[std::size_t(cu) * wfsPerCu_ + wf];
    while (c.pos >= c.buffer.size()) {
        if (c.unit >= numUnits())
            return WorkItem::end();
        c.buffer.clear();
        c.pos = 0;
        expand(c.unit, c.buffer);
        c.unit += totalWfs_;
    }
    return c.buffer[c.pos++];
}

std::uint64_t
TiledWorkload::totalMemItems() const
{
    return numUnits() * memItemsPerUnit();
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint64_t scale,
             std::uint64_t seed)
{
    if (scale == 0)
        scale = 1;
    if (name == "backprop")
        return std::make_unique<BackpropWorkload>(scale, seed);
    if (name == "bfs")
        return std::make_unique<BfsWorkload>(scale, seed);
    if (name == "hotspot")
        return std::make_unique<HotspotWorkload>(scale, seed);
    if (name == "lud")
        return std::make_unique<LudWorkload>(scale, seed);
    if (name == "nn")
        return std::make_unique<NnWorkload>(scale, seed);
    if (name == "nw")
        return std::make_unique<NwWorkload>(scale, seed);
    if (name == "pathfinder")
        return std::make_unique<PathfinderWorkload>(scale, seed);
    if (name == "kmeans")
        return std::make_unique<KmeansWorkload>(scale, seed);
    if (name == "srad")
        return std::make_unique<SradWorkload>(scale, seed);
    if (name == "gaussian")
        return std::make_unique<GaussianWorkload>(scale, seed);
    if (name == "uniform")
        return std::make_unique<UniformRandomWorkload>(scale, seed);
    if (name == "stream")
        return std::make_unique<StreamWorkload>(scale, seed);
    if (name == "strided")
        return std::make_unique<StridedWorkload>(scale, seed);
    return nullptr;
}

const std::vector<std::string> &
rodiniaWorkloadNames()
{
    static const std::vector<std::string> names{
        "backprop", "bfs", "hotspot", "lud", "nn", "nw", "pathfinder"};
    return names;
}

} // namespace bctrl
