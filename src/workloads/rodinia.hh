/**
 * @file
 * The seven Rodinia-proxy workloads of the paper's evaluation (§5.1).
 *
 * Each class reproduces the memory behaviour of the corresponding
 * Rodinia benchmark running on a unified CPU/GPU address space:
 * footprint, read/write mix, locality, regular vs. data-dependent
 * access, and compute intensity. See DESIGN.md §2 for the
 * substitution rationale.
 */

#ifndef BCTRL_WORKLOADS_RODINIA_HH
#define BCTRL_WORKLOADS_RODINIA_HH

#include "workloads/workload.hh"

namespace bctrl {

/**
 * backprop: two-layer neural-network training. Streams a large weight
 * matrix through dense MACs twice (forward + backward), re-reading a
 * hot input vector; compute-dominated, so the border request rate is
 * the lowest of the suite (paper Fig. 5: ~0.025 req/cycle).
 */
class BackpropWorkload : public TiledWorkload
{
  public:
    BackpropWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "backprop"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t inputCount_;  ///< input-layer width (floats)
    std::uint64_t hiddenCount_; ///< hidden-layer width
    std::uint64_t chunk_;       ///< inputs per work unit
    Addr inputBase_ = 0;
    Addr weightBase_ = 0;
    Addr deltaBase_ = 0;
    Addr hiddenBase_ = 0;
};

/**
 * bfs: level-synchronous breadth-first search over a CSR graph.
 * Frontier reads are sequential but edge-endpoint visited/cost
 * accesses scatter across the node arrays — the suite's most irregular
 * stream and its highest border request rate (Fig. 5: ~0.29).
 */
class BfsWorkload : public TiledWorkload
{
  public:
    BfsWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "bfs"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t numNodes_;
    std::uint64_t nodesPerUnit_;
    unsigned degree_;
    std::uint64_t seed_;
    Addr frontierBase_ = 0;
    Addr rowOffsetBase_ = 0;
    Addr edgeBase_ = 0;
    Addr visitedBase_ = 0;
    Addr costBase_ = 0;
};

/**
 * hotspot: a 2-D thermal stencil. Each cell reads its neighbours and a
 * power grid and writes the output grid; row-to-row reuse gives
 * regular, cache-friendly behaviour.
 */
class HotspotWorkload : public TiledWorkload
{
  public:
    HotspotWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "hotspot"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t rows_;
    std::uint64_t cols_;
    std::uint64_t segment_;
    unsigned iterations_;
    Addr tempBase_ = 0;
    Addr powerBase_ = 0;
    Addr outBase_ = 0;
};

/**
 * lud: blocked LU decomposition of a dense matrix. Small tiles are
 * re-read many times from the L1, so the baseline is strongly
 * cache-resident — exactly the workload the full IOMMU hurts most
 * (Fig. 4a: ~983% overhead when the caches are stripped).
 */
class LudWorkload : public TiledWorkload
{
  public:
    LudWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "lud"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t dim_;      ///< matrix dimension (floats)
    std::uint64_t tile_;     ///< tile dimension
    unsigned tileReuse_;     ///< passes over each tile
    Addr matrixBase_ = 0;
};

/**
 * nn: nearest-neighbour search. Scans a (mostly cache-resident)
 * record set once per query point, computing a distance per record
 * with rare result writes — a read-dominated scan whose reuse comes
 * from repeated passes.
 */
class NnWorkload : public TiledWorkload
{
  public:
    NnWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "nn"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t numRecords_;
    std::uint64_t recordsPerUnit_;
    unsigned passes_;
    Addr recordBase_ = 0;
    Addr resultBase_ = 0;
};

/**
 * nw: Needleman-Wunsch sequence alignment — dynamic programming over
 * a 2-D score matrix in diagonal blocks, reading a reference matrix
 * and the top/left block boundaries, then writing the block.
 */
class NwWorkload : public TiledWorkload
{
  public:
    NwWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "nw"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t dim_;
    std::uint64_t block_;
    Addr refBase_ = 0;
    Addr scoreBase_ = 0;
};

/**
 * pathfinder: row-wise dynamic programming across a wide grid; each
 * row reads the previous row (partially L2-resident) and a wall row,
 * and writes the new row.
 */
class PathfinderWorkload : public TiledWorkload
{
  public:
    PathfinderWorkload(std::uint64_t scale, std::uint64_t seed);

    std::string name() const override { return "pathfinder"; }
    void setup(Process &proc) override;

  protected:
    std::uint64_t numUnits() const override;
    void expand(std::uint64_t unit, std::vector<WorkItem> &out) override;
    std::uint64_t memItemsPerUnit() const override;

  private:
    std::uint64_t cols_;
    std::uint64_t rows_;
    std::uint64_t segment_;
    Addr wallBase_ = 0;
    Addr srcBase_ = 0;
    Addr dstBase_ = 0;
};

} // namespace bctrl

#endif // BCTRL_WORKLOADS_RODINIA_HH
