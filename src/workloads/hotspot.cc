#include "workloads/rodinia.hh"

#include "os/process.hh"

namespace bctrl {

HotspotWorkload::HotspotWorkload(std::uint64_t scale, std::uint64_t seed)
    : rows_(96 * scale), cols_(256), segment_(256), iterations_(16)
{
    (void)seed;
}

void
HotspotWorkload::setup(Process &proc)
{
    tempBase_ = proc.mmap(rows_ * cols_ * 4, Perms::readOnly());
    powerBase_ = proc.mmap(rows_ * cols_ * 4, Perms::readOnly());
    outBase_ = proc.mmap(rows_ * cols_ * 4, Perms::readWrite());
}

std::uint64_t
HotspotWorkload::numUnits() const
{
    return iterations_ * rows_ * (cols_ / segment_);
}

std::uint64_t
HotspotWorkload::memItemsPerUnit() const
{
    const std::uint64_t seg_accesses = segment_ * 4 / 64;
    return 4 * seg_accesses /* row, above, below, power */ +
           seg_accesses /* output write */;
}

void
HotspotWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t segs_per_row = cols_ / segment_;
    const std::uint64_t u = unit % (rows_ * segs_per_row);
    const std::uint64_t row = u / segs_per_row;
    const std::uint64_t seg = u % segs_per_row;

    const Addr seg_bytes = segment_ * 4;
    const Addr row_bytes = cols_ * 4;
    const Addr off = row * row_bytes + seg * seg_bytes;
    const Addr above = row == 0 ? off : off - row_bytes;
    const Addr below = row == rows_ - 1 ? off : off + row_bytes;

    unsigned since = 0;
    auto read_seg = [&](Addr base, Addr o) {
        for (Addr b = 0; b < seg_bytes; b += 64) {
            out.push_back(WorkItem::mem(base + o + b, false, 64));
            if (++since == 2) {
                out.push_back(WorkItem::compute(6));
                since = 0;
            }
        }
    };
    // Five-point stencil: centre row, the row above, the row below,
    // and the power grid; then write the output segment.
    read_seg(tempBase_, off);
    read_seg(tempBase_, above);
    read_seg(tempBase_, below);
    read_seg(powerBase_, off);
    for (Addr b = 0; b < seg_bytes; b += 64)
        out.push_back(WorkItem::mem(outBase_ + off + b, true, 64));
}

} // namespace bctrl
