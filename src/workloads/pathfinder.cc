#include "workloads/rodinia.hh"

#include "os/process.hh"

namespace bctrl {

PathfinderWorkload::PathfinderWorkload(std::uint64_t scale,
                                       std::uint64_t seed)
    : cols_(8192 * scale), rows_(96), segment_(256)
{
    (void)seed;
}

void
PathfinderWorkload::setup(Process &proc)
{
    wallBase_ = proc.mmap(rows_ * cols_ * 4, Perms::readOnly());
    srcBase_ = proc.mmap(cols_ * 4, Perms::readWrite());
    dstBase_ = proc.mmap(cols_ * 4, Perms::readWrite());
}

std::uint64_t
PathfinderWorkload::numUnits() const
{
    return rows_ * (cols_ / segment_);
}

std::uint64_t
PathfinderWorkload::memItemsPerUnit() const
{
    const std::uint64_t seg_accesses = segment_ * 4 / 64;
    return 3 * seg_accesses;
}

void
PathfinderWorkload::expand(std::uint64_t unit, std::vector<WorkItem> &out)
{
    const std::uint64_t segs_per_row = cols_ / segment_;
    const std::uint64_t row = unit / segs_per_row;
    const std::uint64_t seg = unit % segs_per_row;
    const Addr seg_bytes = segment_ * 4;
    const Addr seg_off = seg * seg_bytes;
    // The row result buffers ping-pong between iterations.
    const Addr prev = (row % 2 == 0) ? srcBase_ : dstBase_;
    const Addr cur = (row % 2 == 0) ? dstBase_ : srcBase_;

    for (Addr b = 0; b < seg_bytes; b += 64) {
        // min(prev[j-1], prev[j], prev[j+1]) + wall[row][j]: the three
        // neighbour reads hit the same or the adjacent line, so the
        // previous row is strongly L1/L2 resident.
        const Addr p = prev + seg_off + b;
        out.push_back(WorkItem::mem(p >= prev + 64 ? p - 64 : p, false,
                                    64));
        out.push_back(WorkItem::mem(p, false, 64));
        out.push_back(WorkItem::mem(
            wallBase_ + row * cols_ * 4 + seg_off + b, false, 64));
        out.push_back(WorkItem::compute(45));
        out.push_back(WorkItem::mem(cur + seg_off + b, true, 64));
    }
}

} // namespace bctrl
