#include "os/kernel.hh"

#include "bc/border_control.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "vm/ats.hh"
#include "vm/iommu_frontend.hh"

namespace bctrl {

Kernel::Kernel(EventQueue &eq, const std::string &name,
               BackingStore &store, const Params &params)
    : SimObject(eq, name),
      store_(store),
      params_(params),
      rng_(0x05c0ffee),
      pageFaults_(statGroup().scalar("pageFaults",
                                     "demand-paging faults serviced")),
      shootdowns_(statGroup().scalar("shootdowns",
                                     "TLB shootdown rounds")),
      violationStat_(statGroup().scalar(
          "violations", "Border Control violations reported to the OS")),
      quarantines_(statGroup().scalar(
          "quarantines",
          "accelerator quarantine-and-recovery episodes completed")),
      killsPerformed_(statGroup().scalar(
          "kills", "processes unscheduled after a violation")),
      shootdownRetries_(statGroup().scalar(
          "shootdownRetries",
          "shootdown rounds re-issued after a lost ack")),
      shootdownRetriesExhausted_(statGroup().scalar(
          "shootdownRetriesExhausted",
          "shootdowns that fell back to a full table zero"))
{
    // Reserve the first megabyte (frame 0 stays a null page).
    nextFrame_ = 0x100000;
}

Kernel::~Kernel() = default;

Addr
Kernel::allocFrame()
{
    ++framesAllocated_;
    if (!freeFrames_.empty()) {
        Addr frame = freeFrames_.back();
        freeFrames_.pop_back();
        store_.zero(frame, pageSize);
        return frame;
    }
    panic_if(nextFrame_ + pageSize > store_.size(),
             "out of physical memory");
    Addr frame = nextFrame_;
    nextFrame_ += pageSize;
    return frame;
}

void
Kernel::freeFrame(Addr paddr)
{
    freeFrames_.push_back(pageAlign(paddr));
}

Addr
Kernel::allocContiguous(Addr bytes, Addr align)
{
    const Addr size = roundUp(bytes, pageSize);
    const Addr base = roundUp(nextFrame_, align);
    panic_if(base + size > store_.size(),
             "out of physical memory for contiguous allocation");
    nextFrame_ = base + size;
    store_.zero(base, size);
    return base;
}

Process &
Kernel::createProcess()
{
    Asid asid = nextAsid_++;
    auto proc = std::make_unique<Process>(*this, asid, store_);
    Process &ref = *proc;
    processes_.emplace(asid, std::move(proc));
    return ref;
}

Process *
Kernel::findProcess(Asid asid)
{
    auto it = processes_.find(asid);
    return it == processes_.end() ? nullptr : it->second.get();
}

void
Kernel::destroyProcess(Process &proc)
{
    panic_if(accelRunning(proc.asid()),
             "destroying a process still scheduled on the accelerator");
    processes_.erase(proc.asid());
}

void
Kernel::attachAccelerator(AcceleratorControl *accel, BorderControl *bc,
                          Ats *ats)
{
    accel_ = accel;
    borderControl_ = bc;
    ats_ = ats;
}

bool
Kernel::accelRunning(Asid asid) const
{
    return accelAsids_.count(asid) != 0;
}

void
Kernel::scheduleOnAccelerator(Process &proc)
{
    panic_if(accelRunning(proc.asid()), "process already scheduled");
    accelAsids_.insert(proc.asid());
    if (borderControl_ != nullptr) {
        if (!table_) {
            // First process on an idle accelerator: allocate and zero a
            // Protection Table covering all of physical memory, and
            // program the base/bounds registers (Fig. 3a).
            const Addr ppns = store_.numPages();
            const Addr bytes =
                roundUp(ppns, ProtectionTable::pagesPerByte) /
                ProtectionTable::pagesPerByte;
            const Addr base = allocContiguous(bytes);
            table_ =
                std::make_unique<ProtectionTable>(store_, base, ppns);
            borderControl_->attachTable(table_.get());
        }
        borderControl_->incrUseCount();
    }
}

void
Kernel::releaseAccelerator(Process &proc, std::function<void()> done)
{
    if (!accelRunning(proc.asid())) {
        // Already unscheduled — killed after a violation. The kill
        // path performed the teardown; completion is all that is left.
        eventQueue().scheduleLambda(
            [done = std::move(done)]() {
                if (done)
                    done();
            },
            curTick());
        return;
    }
    const Asid asid = proc.asid();

    auto finish = [this, asid, done = std::move(done)]() {
        if (ats_ != nullptr)
            ats_->invalidateAsid(asid);
        if (iommuFrontend_ != nullptr)
            iommuFrontend_->invalidateAsid(asid);
        if (accel_ != nullptr)
            accel_->invalidateTlbs();
        if (borderControl_ != nullptr) {
            borderControl_->zeroTableAndInvalidate();
            if (borderControl_->decrUseCount() == 0) {
                borderControl_->detachTable();
                table_.reset();
                // The bump allocator does not reclaim the contiguous
                // region eagerly; a real OS would return it to the
                // frame pool here.
            }
        }
        accelAsids_.erase(asid);
        if (done)
            done();
    };

    if (accel_ != nullptr)
        accel_->flushCaches(finish);
    else
        finish();
}

bool
Kernel::handlePageFault(Asid asid, Addr vaddr, bool need_write)
{
    Process *proc = findProcess(asid);
    if (proc == nullptr)
        return false;
    bool ok = proc->handleFault(vaddr, need_write);
    if (ok)
        ++pageFaults_;
    return ok;
}

void
Kernel::onViolation(const Packet &pkt)
{
    ++violationStat_;
    violations_.push_back(
        ViolationRecord{curTick(), pkt.paddr, pkt.isWrite()});
    trace::emit(eventQueue(), trace::Flag::Os, name().c_str(),
                "violation", curTick(), 0, pkt.traceId, pkt.paddr);
    if (params_.killOnViolation) {
        warn("border violation at paddr 0x%llx: killing asid %u",
             (unsigned long long)pkt.paddr, (unsigned)pkt.asid);
        killProcess(pkt.asid, pkt.paddr);
    }
    if (params_.quarantineOnViolation && !quarantinePending_) {
        quarantinePending_ = true;
        pendingRecovery_ = RecoveryRecord{};
        pendingRecovery_.paddr = pkt.paddr;
        pendingRecovery_.wasWrite = pkt.isWrite();
        pendingRecovery_.traceId = pkt.traceId;
        // Decouple from the delivery context (the violation arrives in
        // the middle of a memory-response path) and wait for any
        // in-flight downgrade protocol to release the accelerator.
        eventQueue().scheduleLambda([this]() { tryQuarantine(); },
                                    curTick());
    }
}

void
Kernel::killProcess(Asid asid, Addr paddr)
{
    // Wild (physical-address) attacks carry no usable ASID; there is
    // no process to unschedule, so only the record above remains.
    if (asid == 0 || !accelRunning(asid))
        return;
    ++killsPerformed_;
    trace::emit(eventQueue(), trace::Flag::Os, name().c_str(), "kill",
                curTick(), 0, 0, paddr);
    if (ats_ != nullptr)
        ats_->invalidateAsid(asid);
    if (iommuFrontend_ != nullptr)
        iommuFrontend_->invalidateAsid(asid);
    accelAsids_.erase(asid);
    if (borderControl_ != nullptr) {
        // The Protection Table holds merged permissions with no ASID
        // dimension (§3.1.1): revoking one process's grants means
        // zeroing it; survivors repopulate lazily (Fig. 3e).
        borderControl_->zeroTableAndInvalidate();
        trace::emit(eventQueue(), trace::Flag::Os, name().c_str(),
                    "ptZero", curTick(), 0, 0, 0);
        if (accel_ != nullptr)
            accel_->invalidateTlbs();
        if (borderControl_->decrUseCount() == 0) {
            borderControl_->detachTable();
            table_.reset();
        }
    }
}

void
Kernel::whenAccelIdle(std::function<void()> op)
{
    if (!accelBusy_) {
        op();
        return;
    }
    eventQueue().scheduleLambda(
        [this, op = std::move(op)]() mutable {
            whenAccelIdle(std::move(op));
        },
        curTick() + params_.shootdownLatency);
}

void
Kernel::tryQuarantine()
{
    if (accelBusy_) {
        eventQueue().scheduleLambda([this]() { tryQuarantine(); },
                                    curTick() + params_.shootdownLatency);
        return;
    }
    accelBusy_ = true;
    pendingRecovery_.begin = curTick();
    trace::emit(eventQueue(), trace::Flag::Os, name().c_str(),
                "quarantineBegin", curTick(), 0, pendingRecovery_.traceId,
                pendingRecovery_.paddr);

    auto protocol = [this]() {
        // Quiesced: flush everything the accelerator dirtied, then
        // revoke its entire view of memory.
        auto after_flush = [this]() {
            if (borderControl_ != nullptr && table_) {
                borderControl_->zeroTableAndInvalidate();
                trace::emit(eventQueue(), trace::Flag::Os,
                            name().c_str(), "ptZero", curTick(), 0,
                            pendingRecovery_.traceId, 0);
            }
            if (accel_ != nullptr)
                accel_->invalidateTlbs();
            if (ats_ != nullptr)
                ats_->invalidateAll();
            if (iommuFrontend_ != nullptr) {
                for (Asid a : accelAsids_)
                    iommuFrontend_->invalidateAsid(a);
            }
            eventQueue().scheduleLambda(
                [this]() {
                    ++quarantines_;
                    pendingRecovery_.end = curTick();
                    recoveries_.push_back(pendingRecovery_);
                    trace::emit(eventQueue(), trace::Flag::Os,
                                name().c_str(), "quarantineEnd",
                                pendingRecovery_.begin,
                                curTick() - pendingRecovery_.begin,
                                pendingRecovery_.traceId,
                                pendingRecovery_.paddr);
                    accelBusy_ = false;
                    quarantinePending_ = false;
                    // Surviving processes stay scheduled; their table
                    // entries and TLB state refill lazily on the next
                    // translation (Fig. 3e).
                    if (accel_ != nullptr)
                        accel_->resume();
                },
                curTick() + params_.shootdownLatency);
        };
        if (accel_ != nullptr)
            accel_->flushCaches(after_flush);
        else
            after_flush();
    };

    if (accel_ != nullptr)
        accel_->pause(protocol);
    else
        protocol();
}

void
Kernel::downgradePage(Process &proc, Addr vaddr, Perms new_perms,
                      std::function<void()> done)
{
    WalkResult walk = proc.pageTable().walk(vaddr);
    panic_if(!walk.valid, "downgrading an unmapped page 0x%llx",
             (unsigned long long)vaddr);
    const Addr ppn = pageNumber(walk.paddr);
    const Perms table_perms =
        (borderControl_ != nullptr && table_) ? table_->getPerms(ppn)
                                              : walk.perms;
    proc.protectPage(vaddr, new_perms);
    shootdownAndDowngrade(proc, vaddr, table_perms, new_perms, false,
                          Perms::noAccess(), std::move(done));
}

void
Kernel::injectDowngrade(Process &proc, std::function<void()> done)
{
    const auto &vpns = proc.mappedVpns();
    if (vpns.empty()) {
        if (done)
            done();
        return;
    }
    const Addr vpn = vpns[rng_.nextBounded(vpns.size())];
    const Addr vaddr = pageBase(vpn);
    WalkResult walk = proc.pageTable().walk(vaddr);
    if (!walk.valid) {
        if (done)
            done();
        return;
    }
    const Addr ppn = pageNumber(walk.paddr);
    const Perms table_perms =
        (borderControl_ != nullptr && table_) ? table_->getPerms(ppn)
                                              : walk.perms;
    const Perms restore = walk.perms;
    proc.protectPage(vaddr, Perms::readOnly());
    shootdownAndDowngrade(proc, vaddr, table_perms, Perms::readOnly(),
                          true, restore, std::move(done));
}

void
Kernel::shootdownRound(Asid asid, Addr vpn, unsigned attempt,
                       std::function<void()> next)
{
    ++shootdowns_;
    if (accel_ != nullptr)
        accel_->invalidateTlbPage(asid, vpn);
    if (ats_ != nullptr)
        ats_->invalidatePage(asid, vpn);
    if (iommuFrontend_ != nullptr)
        iommuFrontend_->invalidatePage(asid, vpn);

    // Injection point: the invalidation acknowledgement crossing back
    // from the accelerator. Zero-fault runs fall straight through.
    if (fault::FaultEngine *fe = eventQueue().faultEngine()) {
        const fault::Decision fd =
            fe->decide(fault::Point::shootdownAck, curTick());
        switch (fd.kind) {
          case fault::Kind::drop: {
            if (attempt < params_.maxShootdownRetries) {
                // Lost ack: re-run the (idempotent) round after a
                // backoff proportional to the shootdown cost.
                ++shootdownRetries_;
                trace::emit(eventQueue(), trace::Flag::Os,
                            name().c_str(), "shootdownRetry", curTick(),
                            0, 0, pageBase(vpn));
                const Tick backoff =
                    params_.shootdownLatency * (attempt + 1);
                eventQueue().scheduleLambda(
                    [this, asid, vpn, attempt,
                     next = std::move(next)]() mutable {
                        shootdownRound(asid, vpn, attempt + 1,
                                       std::move(next));
                    },
                    curTick() + backoff);
                return;
            }
            // Retries exhausted: fall back to the big hammer, which
            // needs no ack to be safe — zero the table and invalidate
            // every TLB, so no stale grant can survive.
            ++shootdownRetriesExhausted_;
            if (borderControl_ != nullptr && table_)
                borderControl_->zeroTableAndInvalidate();
            if (accel_ != nullptr)
                accel_->invalidateTlbs();
            if (ats_ != nullptr)
                ats_->invalidateAll();
            break;
          }
          case fault::Kind::delay: {
            eventQueue().scheduleLambda(
                [next = std::move(next)]() { next(); },
                curTick() + fd.delay);
            return;
          }
          case fault::Kind::duplicate: {
            // The ack (and so the round) lands twice; the
            // invalidations are idempotent.
            fault::FaultEngine::Suppressor guard(fe);
            if (accel_ != nullptr)
                accel_->invalidateTlbPage(asid, vpn);
            if (ats_ != nullptr)
                ats_->invalidatePage(asid, vpn);
            if (iommuFrontend_ != nullptr)
                iommuFrontend_->invalidatePage(asid, vpn);
            break;
          }
          default:
            break;
        }
    }
    next();
}

void
Kernel::shootdownAndDowngrade(Process &proc, Addr vaddr,
                              Perms table_perms, Perms new_perms,
                              bool restore_after, Perms restore_perms,
                              std::function<void()> done)
{
    Process *procp = &proc;
    const Asid asid = proc.asid();
    const Addr vpn = pageNumber(vaddr);
    WalkResult walk = proc.pageTable().walk(vaddr);
    const Addr ppn = walk.valid ? pageNumber(walk.paddr) : 0;
    const Perms prior = table_perms;

    auto protocol = [this, procp, asid, vaddr, vpn, ppn, prior,
                     new_perms, restore_after, restore_perms,
                     done = std::move(done)]() mutable {
        // Quiesced: invalidate the stale translation everywhere, then
        // continue once the shootdown round is acknowledged.
        auto after_round = [this, procp, vaddr, ppn, prior, new_perms,
                            restore_after, restore_perms,
                            done = std::move(done)]() mutable {
            auto finish = [this, procp, vaddr, restore_perms,
                           restore_after,
                           done = std::move(done)]() mutable {
                eventQueue().scheduleLambda(
                    [this, procp, vaddr, restore_perms, restore_after,
                     done = std::move(done)]() mutable {
                        if (restore_after)
                            procp->protectPage(vaddr, restore_perms);
                        ++downgradesPerformed_;
                        accelBusy_ = false;
                        if (accel_ != nullptr)
                            accel_->resume();
                        if (done)
                            done();
                    },
                    curTick() + params_.shootdownLatency);
        };

        if (borderControl_ == nullptr || !table_) {
            finish();
            return;
        }

        if (prior.write) {
            // The accelerator may hold dirty blocks of this page: they
            // must be written back before the table is downgraded, or
            // the later writeback would be (correctly but needlessly)
            // blocked.
            if (params_.selectiveFlush) {
                accel_->flushCachePage(
                    ppn, [this, ppn, new_perms,
                          finish = std::move(finish)]() mutable {
                        borderControl_->downgradePage(ppn, new_perms);
                        finish();
                    });
            } else {
                accel_->flushCaches([this, finish = std::move(finish)]()
                                        mutable {
                    // Equivalent full path: zero the table, invalidate
                    // BCC and accelerator TLBs (§3.2.4).
                    borderControl_->zeroTableAndInvalidate();
                    accel_->invalidateTlbs();
                    finish();
                });
            }
        } else {
            // Read-only page: no dirty blocks can exist; update the
            // table and BCC in place.
            borderControl_->downgradePage(ppn, new_perms);
            finish();
        }
        };

        shootdownRound(asid, vpn, 0, std::move(after_round));
    };

    auto start = [this, protocol = std::move(protocol)]() mutable {
        accelBusy_ = true;
        if (accel_ != nullptr)
            accel_->pause(std::move(protocol));
        else
            protocol();
    };
    whenAccelIdle(std::move(start));
}

} // namespace bctrl
