/**
 * @file
 * The kernel's view of an accelerator: the operations the OS needs
 * during shootdowns, permission downgrades, and process completion.
 * The GPU model implements this; tests can provide mocks.
 */

#ifndef BCTRL_OS_ACCELERATOR_CONTROL_HH
#define BCTRL_OS_ACCELERATOR_CONTROL_HH

#include <functional>

#include "sim/types.hh"

namespace bctrl {

class AcceleratorControl
{
  public:
    virtual ~AcceleratorControl() = default;

    /**
     * Stop issuing new memory requests and run @p quiesced once all
     * outstanding requests have completed ("finish all outstanding
     * requests", §5.2.4 — where most of the downgrade time is spent).
     */
    virtual void pause(std::function<void()> quiesced) = 0;

    /** Resume execution after a pause. */
    virtual void resume() = 0;

    /** Write back all dirty data and invalidate the caches. */
    virtual void flushCaches(std::function<void()> done) = 0;

    /** Selective flush of a single physical page (§3.2.4). */
    virtual void flushCachePage(Addr ppn, std::function<void()> done) = 0;

    /** Invalidate every accelerator TLB entry. */
    virtual void invalidateTlbs() = 0;

    /** Invalidate accelerator TLB entries for one page. */
    virtual void invalidateTlbPage(Asid asid, Addr vpn) = 0;
};

} // namespace bctrl

#endif // BCTRL_OS_ACCELERATOR_CONTROL_HH
