#include "os/process.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace bctrl {

Process::Process(Kernel &kernel, Asid asid, BackingStore &store)
    : kernel_(kernel),
      asid_(asid),
      pageTable_(std::make_unique<PageTable>(store, kernel))
{
}

Process::~Process() = default;

Addr
Process::mmap(Addr bytes, Perms perms, bool populate, bool large_pages)
{
    const Addr align = large_pages ? largePageSize : pageSize;
    const Addr start = roundUp(nextMmap_, align);
    const Addr size = roundUp(bytes, align);
    nextMmap_ = start + size + align; // guard gap
    vmas_.push_back(Vma{start, start + size, perms, large_pages});
    if (populate) {
        const Vma &vma = vmas_.back();
        const Addr step = large_pages ? largePageSize : pageSize;
        for (Addr va = start; va < start + size; va += step)
            mapPage(va, vma);
    }
    return start;
}

void
Process::mapPage(Addr vaddr, const Vma &vma)
{
    if (vma.largePages) {
        const Addr base = vaddr & ~(largePageSize - 1);
        const Addr frame =
            kernel_.allocContiguous(largePageSize, largePageSize);
        pageTable_->mapLarge(base, frame, vma.perms);
        for (Addr i = 0; i < pagesPerLargePage; ++i)
            mappedVpns_.push_back(pageNumber(base) + i);
    } else {
        const Addr base = pageAlign(vaddr);
        const Addr frame = kernel_.allocFrame();
        pageTable_->map(base, frame, vma.perms);
        mappedVpns_.push_back(pageNumber(base));
    }
}

const Process::Vma *
Process::findVma(Addr vaddr) const
{
    for (const Vma &vma : vmas_) {
        if (vaddr >= vma.start && vaddr < vma.end)
            return &vma;
    }
    return nullptr;
}

bool
Process::handleFault(Addr vaddr, bool need_write)
{
    const Vma *vma = findVma(vaddr);
    if (!vma)
        return false; // segfault: no region covers this address
    if (need_write && !vma->perms.write)
        return false; // write to a read-only region
    WalkResult existing = pageTable_->walk(vaddr);
    if (existing.valid) {
        // The mapping exists with region permissions; if it covers the
        // need, the fault was spurious (e.g. raced with another mapper).
        return existing.perms.covers(
            Perms{!need_write, need_write});
    }
    mapPage(vaddr, *vma);
    ++faultsServiced_;
    return true;
}

void
Process::protectRange(Addr vaddr, Addr bytes, Perms perms)
{
    const Addr end = vaddr + bytes;
    for (Vma &vma : vmas_) {
        if (vaddr < vma.end && end > vma.start) {
            panic_if(vaddr > vma.start || end < vma.end,
                     "partial-VMA protect is not supported");
            vma.perms = perms;
        }
    }
    for (Addr va = pageAlign(vaddr); va < end; va += pageSize) {
        WalkResult walk = pageTable_->walk(va);
        if (walk.valid) {
            pageTable_->protect(va, perms);
            if (walk.largePage)
                va = (va & ~(largePageSize - 1)) + largePageSize -
                     pageSize;
        }
    }
}

Perms
Process::protectPage(Addr vaddr, Perms perms)
{
    return pageTable_->protect(pageAlign(vaddr), perms);
}

void
Process::unmapRange(Addr vaddr, Addr bytes)
{
    const Addr end = vaddr + bytes;
    for (Addr va = pageAlign(vaddr); va < end; va += pageSize) {
        WalkResult walk = pageTable_->walk(va);
        if (walk.valid && !walk.largePage) {
            pageTable_->unmap(va);
            kernel_.freeFrame(pageAlign(walk.paddr));
        }
    }
    std::erase_if(vmas_, [&](const Vma &vma) {
        return vma.start >= vaddr && vma.end <= end;
    });
    std::erase_if(mappedVpns_, [&](Addr vpn) {
        Addr va = pageBase(vpn);
        return va >= vaddr && va < end;
    });
}

} // namespace bctrl
