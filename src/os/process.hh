/**
 * @file
 * A process: an address space with demand-paged regions.
 *
 * Workloads allocate their buffers with mmap(); physical frames are
 * assigned lazily on first touch (the common OS behaviour the paper's
 * lazy Protection Table population mirrors), or eagerly when
 * populate=true. Each process owns a page table resident in simulated
 * physical memory.
 */

#ifndef BCTRL_OS_PROCESS_HH
#define BCTRL_OS_PROCESS_HH

#include <memory>
#include <vector>

#include "vm/page_table.hh"

namespace bctrl {

class Kernel;

class Process
{
  public:
    struct Vma {
        Addr start = 0;
        Addr end = 0; ///< one past the last byte
        Perms perms;
        bool largePages = false;
    };

    Process(Kernel &kernel, Asid asid, BackingStore &store);
    ~Process();

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Asid asid() const { return asid_; }
    PageTable &pageTable() { return *pageTable_; }
    const PageTable &pageTable() const { return *pageTable_; }

    /**
     * Reserve @p bytes of virtual address space.
     * @param perms access permissions for the region
     * @param populate map physical frames eagerly instead of on fault
     * @param large_pages use 2 MB mappings (region is 2 MB aligned)
     * @return the region's base virtual address
     */
    Addr mmap(Addr bytes, Perms perms, bool populate = false,
              bool large_pages = false);

    /**
     * Change a region's permissions in the page table and VMA list.
     * NOTE: the caller (Kernel) is responsible for the TLB shootdown
     * and Border Control downgrade protocol.
     */
    void protectRange(Addr vaddr, Addr bytes, Perms perms);

    /**
     * Change one page's PTE permissions without altering the VMA (the
     * transient, context-switch-style downgrade of Fig. 7).
     * @return the previous permissions.
     */
    Perms protectPage(Addr vaddr, Perms perms);

    /** Remove mappings for a range (Kernel drives the shootdown). */
    void unmapRange(Addr vaddr, Addr bytes);

    /**
     * Demand-paging fault handler.
     * @return true if a frame was mapped and the access may be retried.
     */
    bool handleFault(Addr vaddr, bool need_write);

    /** The VMA containing @p vaddr, or nullptr. */
    const Vma *findVma(Addr vaddr) const;

    /** Virtual page numbers with a frame currently mapped. */
    const std::vector<Addr> &mappedVpns() const { return mappedVpns_; }

    std::uint64_t faultsServiced() const { return faultsServiced_; }

  private:
    Kernel &kernel_;
    Asid asid_;
    std::unique_ptr<PageTable> pageTable_;
    std::vector<Vma> vmas_;
    Addr nextMmap_ = 0x1000'0000;
    std::vector<Addr> mappedVpns_;
    std::uint64_t faultsServiced_ = 0;

    void mapPage(Addr vaddr, const Vma &vma);
};

} // namespace bctrl

#endif // BCTRL_OS_PROCESS_HH
