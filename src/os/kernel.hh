/**
 * @file
 * The OS model: physical frame allocation, process lifecycle,
 * accelerator scheduling (paper Fig. 3a/3e), the TLB-shootdown and
 * permission-downgrade protocol (Fig. 3d), page-fault service for
 * demand paging, and the handler invoked when Border Control blocks an
 * access.
 */

#ifndef BCTRL_OS_KERNEL_HH
#define BCTRL_OS_KERNEL_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bc/protection_table.hh"
#include "mem/packet.hh"
#include "os/accelerator_control.hh"
#include "os/process.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace bctrl {

class Ats;
class BorderControl;
class IommuFrontend;

/** A recorded Border Control violation, for the OS to act on. */
struct ViolationRecord {
    Tick when = 0;
    Addr paddr = 0;
    bool wasWrite = false;
};

/**
 * One quarantine-and-recovery episode: the OS paused the accelerator
 * after a violation, flushed it, zeroed the Protection Table, and let
 * the surviving processes continue. Graceful degradation as a
 * first-class measurable outcome.
 */
struct RecoveryRecord {
    Tick begin = 0;          ///< quarantine entered (accelerator pausing)
    Tick end = 0;            ///< accelerator resumed
    Addr paddr = 0;          ///< offending access's physical address
    bool wasWrite = false;   ///< offending access was a write
    std::uint64_t traceId = 0; ///< offending packet's trace id (0 = none)
};

class Kernel : public SimObject, public FrameAllocator
{
  public:
    struct Params {
        /**
         * OS + IPI cost of one TLB shootdown round, charged while the
         * accelerator is quiesced.
         */
        Tick shootdownLatency = 1'000'000; // 1 us
        /** Service latency of a (lazy-allocation) page fault. */
        Tick pageFaultLatency = 400'000; // 400 ns
        /**
         * Downgrade policy: selectively flush only the affected page
         * (and update one Protection Table entry) instead of flushing
         * the whole accelerator cache and zeroing the table.
         */
        bool selectiveFlush = false;
        /**
         * What to do when Border Control reports a violation:
         * unschedule the offending process from the accelerator.
         */
        bool killOnViolation = false;
        /**
         * Stronger violation response: quarantine the accelerator as a
         * whole — pause it, flush its caches, zero the Protection
         * Table, invalidate every TLB, then resume so surviving
         * processes can repopulate lazily (Fig. 3e). Each episode is
         * recorded as a RecoveryRecord.
         */
        bool quarantineOnViolation = false;
        /** Shootdown rounds re-issued when an ack is lost (chaos). */
        unsigned maxShootdownRetries = 4;
    };

    Kernel(EventQueue &eq, const std::string &name, BackingStore &store,
           const Params &params);
    ~Kernel() override;

    /** @name Physical frame management */
    /// @{
    Addr allocFrame() override;
    void freeFrame(Addr paddr) override;
    /**
     * Allocate a physically contiguous, zeroed region whose base is
     * aligned to @p align (a power of two; 2 MB frames for large
     * pages, page-aligned otherwise).
     */
    Addr allocContiguous(Addr bytes, Addr align = pageSize);
    Addr framesAllocated() const { return framesAllocated_; }
    BackingStore &memory() { return store_; }
    /// @}

    /** @name Processes */
    /// @{
    Process &createProcess();
    Process *findProcess(Asid asid);
    void destroyProcess(Process &proc);
    /// @}

    /** Wire up the accelerator-side components (System builder). */
    void attachAccelerator(AcceleratorControl *accel, BorderControl *bc,
                           Ats *ats);

    /** Register a translate-at-border front end (for shootdowns). */
    void attachIommuFrontend(IommuFrontend *frontend)
    {
        iommuFrontend_ = frontend;
    }

    /** @name Accelerator scheduling (Fig. 3a / 3e) */
    /// @{

    /**
     * Process initialization: binds @p proc's address space to the
     * ATS; on first use allocates and zeroes a Protection Table and
     * programs Border Control's base/bounds registers.
     */
    void scheduleOnAccelerator(Process &proc);

    /**
     * Process completion: flush accelerator caches, invalidate TLBs
     * and BCC, zero the Protection Table, and when the last process
     * leaves, reclaim the table memory. @p done runs when finished.
     */
    void releaseAccelerator(Process &proc, std::function<void()> done);

    /** True if @p asid is currently scheduled on the accelerator. */
    bool accelRunning(Asid asid) const;
    /// @}

    /**
     * Page-fault service (called by the ATS walker): demand-allocates
     * a frame if a VMA covers the address.
     * @return true if the translation may be retried.
     */
    bool handlePageFault(Asid asid, Addr vaddr, bool need_write);

    /** Extra latency a fault added, drained by the ATS timing path. */
    Tick pageFaultLatency() const { return params_.pageFaultLatency; }

    /** @name Memory-mapping updates (Fig. 3d) */
    /// @{

    /**
     * Downgrade permissions of one page: quiesce the accelerator,
     * update the page table, shoot down TLBs, run the Border Control
     * downgrade protocol, and resume.
     */
    void downgradePage(Process &proc, Addr vaddr, Perms new_perms,
                       std::function<void()> done);

    /**
     * Inject a context-switch-style downgrade: a mapped page is
     * downgraded and immediately restored (used by the Fig. 7 sweep).
     * The full shootdown/flush cost is paid; the address space ends
     * unchanged.
     */
    void injectDowngrade(Process &proc, std::function<void()> done);

    std::uint64_t downgradesPerformed() const
    {
        return downgradesPerformed_;
    }
    /// @}

    /** @name Border Control violation handling */
    /// @{
    void onViolation(const Packet &pkt);
    const std::vector<ViolationRecord> &violations() const
    {
        return violations_;
    }
    /** Completed quarantine-and-recovery episodes, in order. */
    const std::vector<RecoveryRecord> &recoveries() const
    {
        return recoveries_;
    }
    std::uint64_t quarantines() const
    {
        return static_cast<std::uint64_t>(quarantines_.value());
    }
    std::uint64_t kills() const
    {
        return static_cast<std::uint64_t>(killsPerformed_.value());
    }
    std::uint64_t shootdownRetries() const
    {
        return static_cast<std::uint64_t>(shootdownRetries_.value());
    }
    /// @}

  private:
    /**
     * The Fig. 3d protocol: quiesce, shoot down TLBs, flush if the
     * Protection Table held write permission, update table/BCC, and
     * resume. @p table_perms drives the flush decision; when
     * @p restore_after is set the PTE is restored to @p restore_perms
     * (context-switch-style transient downgrade).
     */
    void shootdownAndDowngrade(Process &proc, Addr vaddr,
                               Perms table_perms, Perms new_perms,
                               bool restore_after, Perms restore_perms,
                               std::function<void()> done);

    /**
     * One shootdown round: invalidate the page in every TLB, then wait
     * for the acknowledgement. A lost ack (chaos runs) re-issues the
     * round with backoff up to maxShootdownRetries; exhaustion falls
     * back to zeroing the table and invalidating everything, which
     * needs no ack to be safe. @p next continues the Fig. 3d protocol.
     */
    void shootdownRound(Asid asid, Addr vpn, unsigned attempt,
                        std::function<void()> next);

    /**
     * Serialize quiesce/resume cycles: the accelerator cannot be
     * paused twice. Runs @p op immediately when the accelerator is
     * free (the only case on zero-fault runs, so timing is identical),
     * otherwise retries on a shootdown-latency beat.
     */
    void whenAccelIdle(std::function<void()> op);

    /** Unschedule @p asid after a violation (killOnViolation). */
    void killProcess(Asid asid, Addr paddr);

    /** Run one quarantine episode when the accelerator is free. */
    void tryQuarantine();

    BackingStore &store_;
    Params params_;
    Random rng_;

    /** Bump pointer for never-used frames; low memory is reserved. */
    Addr nextFrame_;
    std::vector<Addr> freeFrames_;
    Addr framesAllocated_ = 0;

    Asid nextAsid_ = 1;
    std::unordered_map<Asid, std::unique_ptr<Process>> processes_;

    AcceleratorControl *accel_ = nullptr;
    BorderControl *borderControl_ = nullptr;
    Ats *ats_ = nullptr;
    IommuFrontend *iommuFrontend_ = nullptr;
    std::unordered_set<Asid> accelAsids_;
    /** Frames backing the current Protection Table (for reclaim). */
    std::vector<Addr> tableFrames_;
    std::unique_ptr<ProtectionTable> table_;

    std::vector<ViolationRecord> violations_;
    std::vector<RecoveryRecord> recoveries_;
    std::uint64_t downgradesPerformed_ = 0;

    /** A quiesce/resume cycle (downgrade or quarantine) is running. */
    bool accelBusy_ = false;
    /** A quarantine episode is queued or running. */
    bool quarantinePending_ = false;
    RecoveryRecord pendingRecovery_;

    stats::Scalar &pageFaults_;
    stats::Scalar &shootdowns_;
    stats::Scalar &violationStat_;
    stats::Scalar &quarantines_;
    stats::Scalar &killsPerformed_;
    stats::Scalar &shootdownRetries_;
    stats::Scalar &shootdownRetriesExhausted_;
};

} // namespace bctrl

#endif // BCTRL_OS_KERNEL_HH
