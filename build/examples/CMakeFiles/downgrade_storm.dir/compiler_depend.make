# Empty compiler generated dependencies file for downgrade_storm.
# This may be replaced when dependencies are built.
