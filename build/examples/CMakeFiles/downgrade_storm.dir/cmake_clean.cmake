file(REMOVE_RECURSE
  "CMakeFiles/downgrade_storm.dir/downgrade_storm.cpp.o"
  "CMakeFiles/downgrade_storm.dir/downgrade_storm.cpp.o.d"
  "downgrade_storm"
  "downgrade_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downgrade_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
