# Empty dependencies file for shared_virtual_memory.
# This may be replaced when dependencies are built.
