file(REMOVE_RECURSE
  "CMakeFiles/shared_virtual_memory.dir/shared_virtual_memory.cpp.o"
  "CMakeFiles/shared_virtual_memory.dir/shared_virtual_memory.cpp.o.d"
  "shared_virtual_memory"
  "shared_virtual_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_virtual_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
