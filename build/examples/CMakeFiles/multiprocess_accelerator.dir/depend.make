# Empty dependencies file for multiprocess_accelerator.
# This may be replaced when dependencies are built.
