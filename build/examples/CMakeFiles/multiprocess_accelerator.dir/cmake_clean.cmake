file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_accelerator.dir/multiprocess_accelerator.cpp.o"
  "CMakeFiles/multiprocess_accelerator.dir/multiprocess_accelerator.cpp.o.d"
  "multiprocess_accelerator"
  "multiprocess_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
