file(REMOVE_RECURSE
  "CMakeFiles/sandbox_attack.dir/sandbox_attack.cpp.o"
  "CMakeFiles/sandbox_attack.dir/sandbox_attack.cpp.o.d"
  "sandbox_attack"
  "sandbox_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
