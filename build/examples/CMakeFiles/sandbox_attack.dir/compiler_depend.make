# Empty compiler generated dependencies file for sandbox_attack.
# This may be replaced when dependencies are built.
