# Empty compiler generated dependencies file for table1_approaches.
# This may be replaced when dependencies are built.
