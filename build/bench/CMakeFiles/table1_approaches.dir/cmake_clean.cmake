file(REMOVE_RECURSE
  "CMakeFiles/table1_approaches.dir/table1_approaches.cc.o"
  "CMakeFiles/table1_approaches.dir/table1_approaches.cc.o.d"
  "table1_approaches"
  "table1_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
