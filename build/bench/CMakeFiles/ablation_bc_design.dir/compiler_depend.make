# Empty compiler generated dependencies file for ablation_bc_design.
# This may be replaced when dependencies are built.
