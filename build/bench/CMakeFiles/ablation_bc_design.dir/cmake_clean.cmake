file(REMOVE_RECURSE
  "CMakeFiles/ablation_bc_design.dir/ablation_bc_design.cc.o"
  "CMakeFiles/ablation_bc_design.dir/ablation_bc_design.cc.o.d"
  "ablation_bc_design"
  "ablation_bc_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bc_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
