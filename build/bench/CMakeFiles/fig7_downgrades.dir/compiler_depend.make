# Empty compiler generated dependencies file for fig7_downgrades.
# This may be replaced when dependencies are built.
