file(REMOVE_RECURSE
  "CMakeFiles/fig7_downgrades.dir/fig7_downgrades.cc.o"
  "CMakeFiles/fig7_downgrades.dir/fig7_downgrades.cc.o.d"
  "fig7_downgrades"
  "fig7_downgrades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_downgrades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
