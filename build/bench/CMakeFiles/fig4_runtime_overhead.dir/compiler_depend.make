# Empty compiler generated dependencies file for fig4_runtime_overhead.
# This may be replaced when dependencies are built.
