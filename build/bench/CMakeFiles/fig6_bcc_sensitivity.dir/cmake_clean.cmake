file(REMOVE_RECURSE
  "CMakeFiles/fig6_bcc_sensitivity.dir/fig6_bcc_sensitivity.cc.o"
  "CMakeFiles/fig6_bcc_sensitivity.dir/fig6_bcc_sensitivity.cc.o.d"
  "fig6_bcc_sensitivity"
  "fig6_bcc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bcc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
