# Empty dependencies file for fig6_bcc_sensitivity.
# This may be replaced when dependencies are built.
