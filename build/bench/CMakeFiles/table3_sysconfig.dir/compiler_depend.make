# Empty compiler generated dependencies file for table3_sysconfig.
# This may be replaced when dependencies are built.
