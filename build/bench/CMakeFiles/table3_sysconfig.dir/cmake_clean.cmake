file(REMOVE_RECURSE
  "CMakeFiles/table3_sysconfig.dir/table3_sysconfig.cc.o"
  "CMakeFiles/table3_sysconfig.dir/table3_sysconfig.cc.o.d"
  "table3_sysconfig"
  "table3_sysconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sysconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
