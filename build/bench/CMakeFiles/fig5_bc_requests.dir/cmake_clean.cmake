file(REMOVE_RECURSE
  "CMakeFiles/fig5_bc_requests.dir/fig5_bc_requests.cc.o"
  "CMakeFiles/fig5_bc_requests.dir/fig5_bc_requests.cc.o.d"
  "fig5_bc_requests"
  "fig5_bc_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bc_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
