# Empty compiler generated dependencies file for fig5_bc_requests.
# This may be replaced when dependencies are built.
