file(REMOVE_RECURSE
  "CMakeFiles/table_storage_overheads.dir/table_storage_overheads.cc.o"
  "CMakeFiles/table_storage_overheads.dir/table_storage_overheads.cc.o.d"
  "table_storage_overheads"
  "table_storage_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_storage_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
