# Empty dependencies file for table_storage_overheads.
# This may be replaced when dependencies are built.
