# Empty compiler generated dependencies file for bctrl_tests.
# This may be replaced when dependencies are built.
