
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ats.cc" "tests/CMakeFiles/bctrl_tests.dir/test_ats.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_ats.cc.o.d"
  "/root/repo/tests/test_attacks.cc" "tests/CMakeFiles/bctrl_tests.dir/test_attacks.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_attacks.cc.o.d"
  "/root/repo/tests/test_backing_store.cc" "tests/CMakeFiles/bctrl_tests.dir/test_backing_store.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_backing_store.cc.o.d"
  "/root/repo/tests/test_bcc.cc" "tests/CMakeFiles/bctrl_tests.dir/test_bcc.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_bcc.cc.o.d"
  "/root/repo/tests/test_border_control.cc" "tests/CMakeFiles/bctrl_tests.dir/test_border_control.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_border_control.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/bctrl_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/bctrl_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/bctrl_tests.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_cpu.cc.o.d"
  "/root/repo/tests/test_downgrades.cc" "tests/CMakeFiles/bctrl_tests.dir/test_downgrades.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_downgrades.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/bctrl_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/bctrl_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_geometry_properties.cc" "tests/CMakeFiles/bctrl_tests.dir/test_geometry_properties.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_geometry_properties.cc.o.d"
  "/root/repo/tests/test_gpu.cc" "tests/CMakeFiles/bctrl_tests.dir/test_gpu.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_gpu.cc.o.d"
  "/root/repo/tests/test_iommu_frontend.cc" "tests/CMakeFiles/bctrl_tests.dir/test_iommu_frontend.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_iommu_frontend.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/bctrl_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/bctrl_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_process_kernel.cc" "tests/CMakeFiles/bctrl_tests.dir/test_process_kernel.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_process_kernel.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/bctrl_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_protection_table.cc" "tests/CMakeFiles/bctrl_tests.dir/test_protection_table.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_protection_table.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/bctrl_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/bctrl_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system_integration.cc" "tests/CMakeFiles/bctrl_tests.dir/test_system_integration.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_system_integration.cc.o.d"
  "/root/repo/tests/test_tags.cc" "tests/CMakeFiles/bctrl_tests.dir/test_tags.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_tags.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/bctrl_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_virtualization.cc" "tests/CMakeFiles/bctrl_tests.dir/test_virtualization.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_virtualization.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/bctrl_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/bctrl_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bordercontrol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
