file(REMOVE_RECURSE
  "CMakeFiles/bctrl-sim.dir/bctrl_sim.cc.o"
  "CMakeFiles/bctrl-sim.dir/bctrl_sim.cc.o.d"
  "bctrl-sim"
  "bctrl-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bctrl-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
