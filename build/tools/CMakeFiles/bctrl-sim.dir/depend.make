# Empty dependencies file for bctrl-sim.
# This may be replaced when dependencies are built.
