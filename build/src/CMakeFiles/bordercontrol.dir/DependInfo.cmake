
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bc/attack.cc" "src/CMakeFiles/bordercontrol.dir/bc/attack.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/bc/attack.cc.o.d"
  "/root/repo/src/bc/bcc.cc" "src/CMakeFiles/bordercontrol.dir/bc/bcc.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/bc/bcc.cc.o.d"
  "/root/repo/src/bc/border_control.cc" "src/CMakeFiles/bordercontrol.dir/bc/border_control.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/bc/border_control.cc.o.d"
  "/root/repo/src/bc/protection_table.cc" "src/CMakeFiles/bordercontrol.dir/bc/protection_table.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/bc/protection_table.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/bordercontrol.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/coherence_point.cc" "src/CMakeFiles/bordercontrol.dir/cache/coherence_point.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/cache/coherence_point.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/bordercontrol.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/tags.cc" "src/CMakeFiles/bordercontrol.dir/cache/tags.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/cache/tags.cc.o.d"
  "/root/repo/src/config/system_builder.cc" "src/CMakeFiles/bordercontrol.dir/config/system_builder.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/config/system_builder.cc.o.d"
  "/root/repo/src/config/system_config.cc" "src/CMakeFiles/bordercontrol.dir/config/system_config.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/config/system_config.cc.o.d"
  "/root/repo/src/cpu/cpu_core.cc" "src/CMakeFiles/bordercontrol.dir/cpu/cpu_core.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/cpu/cpu_core.cc.o.d"
  "/root/repo/src/gpu/compute_unit.cc" "src/CMakeFiles/bordercontrol.dir/gpu/compute_unit.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/gpu/compute_unit.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/bordercontrol.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/wavefront.cc" "src/CMakeFiles/bordercontrol.dir/gpu/wavefront.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/gpu/wavefront.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/bordercontrol.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/bordercontrol.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/mem_bus.cc" "src/CMakeFiles/bordercontrol.dir/mem/mem_bus.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/mem/mem_bus.cc.o.d"
  "/root/repo/src/mem/packet.cc" "src/CMakeFiles/bordercontrol.dir/mem/packet.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/mem/packet.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/bordercontrol.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/bordercontrol.dir/os/process.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/os/process.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/bordercontrol.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/bordercontrol.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/bordercontrol.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/bordercontrol.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/bordercontrol.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/sim/stats.cc.o.d"
  "/root/repo/src/vm/ats.cc" "src/CMakeFiles/bordercontrol.dir/vm/ats.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/vm/ats.cc.o.d"
  "/root/repo/src/vm/iommu_frontend.cc" "src/CMakeFiles/bordercontrol.dir/vm/iommu_frontend.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/vm/iommu_frontend.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/bordercontrol.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/vm/page_table.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/CMakeFiles/bordercontrol.dir/vm/tlb.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/vm/tlb.cc.o.d"
  "/root/repo/src/workloads/backprop.cc" "src/CMakeFiles/bordercontrol.dir/workloads/backprop.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/backprop.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/bordercontrol.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/extra.cc" "src/CMakeFiles/bordercontrol.dir/workloads/extra.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/extra.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/CMakeFiles/bordercontrol.dir/workloads/hotspot.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/hotspot.cc.o.d"
  "/root/repo/src/workloads/lud.cc" "src/CMakeFiles/bordercontrol.dir/workloads/lud.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/lud.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/bordercontrol.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/nn.cc" "src/CMakeFiles/bordercontrol.dir/workloads/nn.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/nn.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/CMakeFiles/bordercontrol.dir/workloads/nw.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/nw.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/CMakeFiles/bordercontrol.dir/workloads/pathfinder.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/pathfinder.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/bordercontrol.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/bordercontrol.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
