# Empty compiler generated dependencies file for bordercontrol.
# This may be replaced when dependencies are built.
