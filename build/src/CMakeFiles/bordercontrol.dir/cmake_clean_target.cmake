file(REMOVE_RECURSE
  "libbordercontrol.a"
)
