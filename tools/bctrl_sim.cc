/**
 * @file
 * bctrl-sim: command-line driver for the Border Control simulator.
 *
 * Runs one workload on one configuration and reports the run metrics
 * (and optionally every component's statistics). Examples:
 *
 *   bctrl-sim --workload bfs
 *   bctrl-sim --workload lud --safety full-iommu --profile moderate
 *   bctrl-sim --workload hotspot --downgrades 1000 --stats
 *   bctrl-sim --workload uniform --safety ats-only --scale 4 --seed 7
 *   bctrl-sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <fstream>

#include "config/system_builder.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

using namespace bctrl;

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload NAME     workload to run (default: pathfinder)\n"
        "  --safety MODEL      ats-only | full-iommu | capi |\n"
        "                      bc-nobcc | bc-bcc (default: bc-bcc)\n"
        "  --profile P         highly | moderate (default: highly)\n"
        "  --scale N           workload scale factor (default: 1)\n"
        "  --seed N            workload RNG seed (default: 1)\n"
        "  --downgrades R      permission downgrades per second\n"
        "  --selective-flush   use the per-page downgrade flush\n"
        "  --serialize-checks  ablation: serialize BC read checks\n"
        "  --bcc-entries N     BCC entries (default: 64)\n"
        "  --bcc-pages N       BCC pages per entry (default: 512)\n"
        "  --mem-gb N          physical memory in GB (default: 3)\n"
        "  --stats             dump every component's statistics\n"
        "  --stats-json FILE   write every component's statistics as "
        "JSON\n"
        "  --trace FLAGS       enable tracing: comma-separated of BCC,\n"
        "                      ProtTable, Coherence, TLB, DRAM, Cache,\n"
        "                      PacketLife, or all\n"
        "  --trace-out FILE    Chrome-trace output (default: "
        "trace.json)\n"
        "  --trace-text        write the trace as text, not JSON\n"
        "  --verbose           enable warn/inform output\n"
        "  --list              list available workloads and exit\n"
        "  --help              this text\n",
        prog);
}

bool
parseSafety(const std::string &s, SafetyModel &out)
{
    if (s == "ats-only")
        out = SafetyModel::atsOnlyIommu;
    else if (s == "full-iommu")
        out = SafetyModel::fullIommu;
    else if (s == "capi")
        out = SafetyModel::capiLike;
    else if (s == "bc-nobcc")
        out = SafetyModel::borderControlNoBcc;
    else if (s == "bc-bcc")
        out = SafetyModel::borderControlBcc;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    std::string workload = "pathfinder";
    bool dump_stats = false;
    std::string stats_json_path;
    std::string trace_flags;
    std::string trace_out = "trace.json";
    bool trace_text = false;
    setLogVerbose(false);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--safety") {
            if (!parseSafety(next(), cfg.safety)) {
                std::fprintf(stderr, "unknown safety model\n");
                return 2;
            }
        } else if (arg == "--profile") {
            const std::string p = next();
            if (p == "highly")
                cfg.profile = GpuProfile::highlyThreaded;
            else if (p == "moderate")
                cfg.profile = GpuProfile::moderatelyThreaded;
            else {
                std::fprintf(stderr, "unknown profile\n");
                return 2;
            }
        } else if (arg == "--scale") {
            cfg.workloadScale = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--downgrades") {
            cfg.downgradesPerSecond = std::strtod(next(), nullptr);
        } else if (arg == "--selective-flush") {
            cfg.selectiveFlush = true;
        } else if (arg == "--serialize-checks") {
            cfg.bcSerializeReadChecks = true;
        } else if (arg == "--bcc-entries") {
            cfg.bccEntries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--bcc-pages") {
            cfg.bccPagesPerEntry =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--mem-gb") {
            cfg.physMemBytes =
                std::strtoull(next(), nullptr, 0) * (1ULL << 30);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--trace") {
            trace_flags = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-text") {
            trace_text = true;
        } else if (arg == "--verbose") {
            setLogVerbose(true);
        } else if (arg == "--list") {
            std::printf("Rodinia proxies:");
            for (const auto &n : rodiniaWorkloadNames())
                std::printf(" %s", n.c_str());
            std::printf("\nmicro: uniform stream strided\n");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (!trace_flags.empty()) {
        std::string err;
        if (!trace::parseFlags(trace_flags, cfg.traceMask, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
    }

    System system(cfg);
    RunResult r = system.run(workload);

    std::printf("workload             %s (scale %llu, seed %llu)\n",
                r.workload.c_str(),
                (unsigned long long)cfg.workloadScale,
                (unsigned long long)cfg.seed);
    std::printf("configuration        %s, %s GPU\n",
                safetyModelName(r.safety), gpuProfileName(r.profile));
    std::printf("runtime              %.3f ms  (%.0f GPU cycles)\n",
                r.runtimeTicks / 1e9, r.gpuCycles);
    std::printf("memory ops           %llu (%.3f per cycle)\n",
                (unsigned long long)r.memOps,
                r.gpuCycles > 0 ? r.memOps / r.gpuCycles : 0.0);
    std::printf("translations         %llu (%llu walks)\n",
                (unsigned long long)r.translations,
                (unsigned long long)r.pageWalks);
    if (system.borderControl() != nullptr) {
        std::printf("border requests      %llu (%.4f per cycle)\n",
                    (unsigned long long)r.borderRequests,
                    r.borderRequestsPerCycle);
        std::printf("BCC                  %llu hits, %llu misses "
                    "(%.4f%% miss)\n",
                    (unsigned long long)r.bccHits,
                    (unsigned long long)r.bccMisses,
                    100.0 * r.bccMissRatio);
    }
    std::printf("violations blocked   %llu\n",
                (unsigned long long)r.violations);
    std::printf("downgrades           %llu\n",
                (unsigned long long)r.downgrades);
    std::printf("DRAM                 %.2f MB moved, %.1f%% utilized\n",
                r.dramBytes / 1e6, 100.0 * r.dramUtilization);
    if (system.gpu().l2Cache() != nullptr) {
        std::printf("GPU L2               %llu hits, %llu misses\n",
                    (unsigned long long)r.l2Hits,
                    (unsigned long long)r.l2Misses);
    }

    if (dump_stats) {
        std::printf("\n=== component statistics ===\n");
        system.dumpStats(std::cout);
    }
    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        system.dumpStatsJson(os);
        os << "\n";
        std::fprintf(stderr, "wrote %s\n", stats_json_path.c_str());
    }
    if (trace::Tracer *tracer = system.tracer()) {
        std::ofstream os(trace_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            return 1;
        }
        if (trace_text) {
            tracer->writeText(os);
        } else {
            tracer->writeChromeTrace(
                os, 1,
                workload + " " + safetyModelName(cfg.safety) + " " +
                    gpuProfileName(cfg.profile));
        }
        std::fprintf(stderr, "wrote %s (%zu records)\n",
                     trace_out.c_str(), tracer->size());
    }
    return 0;
}
